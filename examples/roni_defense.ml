(* The paper's Section 5.1 defense: before admitting an email into the
   training set, measure what training on it would do to a validation
   set.  Dictionary-attack emails are loud — one email shifts thousands
   of token scores — so they separate cleanly from ordinary spam.

     dune exec examples/roni_defense.exe *)

open Spamlab_eval
module Dataset = Spamlab_corpus.Dataset
module Generator = Spamlab_corpus.Generator
module Label = Spamlab_spambayes.Label
module Roni = Spamlab_core.Roni
module Attack = Spamlab_core.Dictionary_attack

let () =
  let lab = Lab.create ~seed:5 ~scale:0.2 () in
  let tokenizer = Lab.tokenizer lab in
  let rng = Lab.rng lab "example-roni" in

  (* The trusted pool RONI resamples train/validation splits from. *)
  let pool =
    Lab.corpus lab ~name:"example-roni/pool" ~size:400 ~spam_fraction:0.5
  in
  Printf.printf
    "RONI config: %d-message train, %d-message validation, %d trials, reject if impact > %.1f\n\n"
    Roni.default_config.Roni.train_size
    Roni.default_config.Roni.validation_size
    Roni.default_config.Roni.trials Roni.default_config.Roni.threshold;

  let assess label candidate =
    let a = Roni.assess rng ~pool ~candidate in
    Printf.printf "%-26s impact %6.2f ham-as-ham  -> %s\n" label
      a.Roni.mean_ham_impact
      (if a.Roni.rejected then "REJECTED (not trained)" else "admitted");
    a
  in

  (* A stream of incoming mail: ordinary spam plus attack emails. *)
  print_endline "screening the incoming training stream:";
  for i = 1 to 5 do
    let msg = Generator.spam (Lab.config lab) rng in
    ignore
      (assess
         (Printf.sprintf "ordinary spam #%d" i)
         (Dataset.of_message tokenizer Label.Spam msg).Dataset.tokens)
  done;

  let attacks =
    [
      ("aspell dictionary email", Lab.aspell lab ~size:20_000);
      ("usenet dictionary email", Lab.usenet_top lab ~size:19_000);
      ("optimal attack email", Lab.optimal_words lab);
    ]
  in
  List.iter
    (fun (label, words) ->
      let payload =
        Attack.payload tokenizer (Attack.make ~name:label ~words)
      in
      ignore (assess label payload))
    attacks;

  print_endline
    "\nEvery dictionary-attack email is rejected; ordinary spam passes.\n\
     (A focused attack would slip through - its damage targets a future\n\
     email, invisible on today's validation set. That is the paper's\n\
     open problem.)"
