(* A deployed filter under attack, week by week (the paper's Section 2.1
   operational setting): the organization retrains weekly on what
   arrived; a spammer slips dictionary-attack emails into weeks 3-4.

     dune exec examples/weekly_pipeline.exe *)

open Spamlab_eval
module Dataset = Spamlab_corpus.Dataset
module Label = Spamlab_spambayes.Label
module Pipeline = Spamlab_core.Pipeline
module Attack = Spamlab_core.Dictionary_attack
module Roni = Spamlab_core.Roni

let () =
  let lab = Lab.create ~seed:31 ~scale:0.2 () in
  let rng = Lab.rng lab "example-pipeline" in
  let tokenizer = Lab.tokenizer lab in

  (* The filter starts from 400 trusted messages; each week brings 150
     more.  Weeks 3 and 4 carry 8 usenet dictionary-attack emails each. *)
  let initial_training =
    Lab.corpus lab ~name:"example-pipeline/initial" ~size:400
      ~spam_fraction:0.5
  in
  let payload =
    Attack.payload tokenizer
      (Attack.make ~name:"usenet" ~words:(Lab.usenet_top lab ~size:19_000))
  in
  let attack_example =
    Dataset.of_tokens Label.Spam payload
      ~raw_token_count:(Array.length payload)
  in
  let week i =
    let clean =
      Lab.corpus lab
        ~name:(Printf.sprintf "example-pipeline/week-%d" i)
        ~size:150 ~spam_fraction:0.5
    in
    if i = 3 || i = 4 then
      Array.append clean (Array.make 8 attack_example)
    else clean
  in
  let rounds = List.init 8 (fun i -> week (i + 1)) in

  let simulate name policy roni =
    let report =
      Pipeline.run
        { Pipeline.retrain_period = 1; policy; roni; initial_training }
        (Spamlab_stats.Rng.copy rng) ~rounds
    in
    Printf.printf "%-18s" name;
    List.iter
      (fun (r : Pipeline.round_report) ->
        Printf.printf " %5.1f"
          (100.0 *. Pipeline.ham_delivery_rate r.Pipeline.counts))
      report.Pipeline.rounds;
    Printf.printf "   (rejected %d)\n" report.Pipeline.total_rejected
  in

  print_endline
    "ham delivery rate (%) per week; attack arrives in weeks 3-4:\n";
  Printf.printf "%-18s" "";
  List.iter (fun w -> Printf.printf " week%d" w) (List.init 8 (fun i -> i + 1));
  print_newline ();
  simulate "train everything" Pipeline.Train_everything None;
  simulate "train on error" Pipeline.Train_on_error None;
  simulate "RONI screened" Pipeline.Train_everything (Some Roni.default_config);
  print_endline
    "\nTraining only on mistakes does not help: the attack emails score\n\
     'unsure' (their words are unknown), so a mistake-driven trainer\n\
     ingests them anyway - exactly the paper's Section 2.2 warning.\n\
     RONI screening keeps the pipeline healthy."
