(* The paper's Section 5.2 defense: a dictionary attack shifts every
   score upward, but it shifts ham and spam together — so re-deriving
   the ham/spam cutoffs from the (poisoned) data keeps the classes
   apart where the static 0.15/0.9 thresholds fail.

     dune exec examples/threshold_defense.exe *)

open Spamlab_eval
module Options = Spamlab_spambayes.Options
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify
module Filter = Spamlab_spambayes.Filter
module Dataset = Spamlab_corpus.Dataset
module Attack = Spamlab_core.Dictionary_attack
module Dynamic_threshold = Spamlab_core.Dynamic_threshold

let () =
  let lab = Lab.create ~seed:17 ~scale:0.2 () in
  let tokenizer = Lab.tokenizer lab in
  let rng = Lab.rng lab "example-threshold" in

  let train =
    Lab.corpus lab ~name:"example-threshold/train" ~size:2_000
      ~spam_fraction:0.5
  in
  let test =
    Lab.corpus lab ~name:"example-threshold/test" ~size:400 ~spam_fraction:0.5
  in

  (* Poison the training set with a 2% usenet dictionary attack. *)
  let payload =
    Attack.payload tokenizer
      (Attack.make ~name:"usenet" ~words:(Lab.usenet_top lab ~size:25_000))
  in
  let count =
    Poison.attack_count ~train_size:(Array.length train) ~fraction:0.02
  in
  Printf.printf "poisoning: %d attack emails (2%% of the training set)\n\n" count;
  let poisoned =
    Poison.poisoned (Poison.base_filter tokenizer train) ~payload ~count
  in

  let report label options =
    let confusion =
      Poison.confusion_of_scores options
        (Poison.score_examples poisoned test)
    in
    Printf.printf
      "%-24s theta0=%.3f theta1=%.3f | ham->spam %5.1f%%  ham->unsure %5.1f%%  spam->unsure %5.1f%%\n"
      label options.Options.ham_cutoff options.Options.spam_cutoff
      (100.0 *. Confusion.ham_as_spam_rate confusion)
      (100.0 *. Confusion.ham_as_unsure_rate confusion)
      (100.0 *. Confusion.spam_as_unsure_rate confusion)
  in

  report "static thresholds" Options.default;

  (* Derive data-driven thresholds from the poisoned training set: train
     on one half (with half the attack), score the other half, and place
     the cutoffs at the g-utility quantiles. *)
  List.iter
    (fun quantile ->
      let half_a, half_b = Dataset.split rng 0.5 train in
      let derivation = Poison.base_filter tokenizer half_a in
      let derivation =
        Poison.poisoned derivation ~payload ~count:(count / 2)
      in
      let scores =
        Array.append
          (Array.map
             (fun (e : Dataset.example) ->
               ( (Dataset.classify derivation e).Classify.indicator,
                 e.Dataset.label, 1 ))
             half_b)
          [|
            ( (Filter.classify_tokens derivation payload).Classify.indicator,
              Label.Spam, count - (count / 2) );
          |]
      in
      let theta0, theta1 =
        Dynamic_threshold.thresholds_of_scores
          ~config:{ Dynamic_threshold.quantile } scores
      in
      report
        (Printf.sprintf "dynamic (q=%.2f)" quantile)
        (Options.with_cutoffs Options.default ~ham:theta0 ~spam:theta1))
    [ 0.05; 0.10 ];

  print_endline
    "\nThe dynamic thresholds pull ham out of the spam folder (rankings\n\
     survive the attack even though absolute scores don't), at the price\n\
     the paper reports: much of the spam now lands in unsure."
