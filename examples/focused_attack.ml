(* The paper's Section 3.3 scenario: a malicious contractor wants the
   victim to never see a competitor's bid email.  The attacker knows
   roughly what the bid will say (the template, company names, jargon)
   and poisons the filter so the real bid is filtered on arrival.

     dune exec examples/focused_attack.exe *)

open Spamlab_eval
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify
module Dataset = Spamlab_corpus.Dataset
module Generator = Spamlab_corpus.Generator
module Trec = Spamlab_corpus.Trec
module Message = Spamlab_email.Message
module Focused = Spamlab_core.Focused_attack

let () =
  let lab = Lab.create ~seed:99 ~scale:0.2 () in
  let tokenizer = Lab.tokenizer lab in
  let rng = Lab.rng lab "example-focused" in

  (* The victim's inbox and trained filter. *)
  let messages =
    Lab.corpus_messages lab ~name:"example-focused/inbox" ~size:1_000
      ~spam_fraction:0.5
  in
  let base =
    Poison.base_filter tokenizer (Dataset.of_labeled tokenizer messages)
  in
  let header_pool = Array.map Message.headers (Trec.spam_only messages) in

  (* The competitor's bid email the attacker wants suppressed. *)
  let target = Generator.ham (Lab.config lab) rng in
  let before = Filter.classify base target in
  Printf.printf "the bid email before the attack: %s (score %.3f)\n"
    (Label.verdict_to_string before.Classify.verdict)
    before.Classify.indicator;
  Printf.printf "the target contains %d guessable words\n\n"
    (List.length (Focused.target_words target));

  (* The attacker guesses target words with probability p and mails the
     victim 60 attack messages dressed in stolen spam headers. *)
  List.iter
    (fun p ->
      let filter = Filter.copy base in
      let plan = Focused.craft rng ~target ~p ~count:60 ~header_pool in
      Focused.train filter plan;
      let after = Filter.classify filter target in
      Printf.printf
        "p=%.1f: guessed %3d words, missed %3d -> bid classified %-6s (score %.3f)\n"
        p
        (List.length plan.Focused.guessed)
        (List.length plan.Focused.missed)
        (Label.verdict_to_string after.Classify.verdict)
        after.Classify.indicator)
    [ 0.1; 0.3; 0.5; 0.9 ];

  (* Show what happened to individual token scores (the Figure 4 view). *)
  let filter = Filter.copy base in
  let plan = Focused.craft rng ~target ~p:0.5 ~count:60 ~header_pool in
  Focused.train filter plan;
  print_endline "\ntoken-level view (p=0.5), largest score movements:";
  let shifts =
    List.map
      (fun w ->
        let before = Filter.token_score base w in
        let after = Filter.token_score filter w in
        (w, before, after))
      (Focused.target_words target)
  in
  let by_shift_desc (_, b1, a1) (_, b2, a2) =
    Float.compare (Float.abs (a2 -. b2)) (Float.abs (a1 -. b1))
  in
  List.iteri
    (fun i (w, before, after) ->
      if i < 6 then
        Printf.printf "  %-16s %.3f -> %.3f%s\n" w before after
          (if List.mem w plan.Focused.guessed then "  (in attack)" else ""))
    (List.sort by_shift_desc shifts);
  print_endline
    "\nGuessed tokens jump toward 1.0; unguessed tokens drift slightly down\n\
     (the attack grew the spam class) - exactly the paper's Figure 4."
