(* The paper's Section 3.2 scenario: a spammer who controls 1% of the
   victim's training messages poisons the filter with dictionary emails
   until legitimate mail stops being delivered and the victim gives up
   on the filter.

     dune exec examples/dictionary_attack.exe *)

open Spamlab_eval
module Options = Spamlab_spambayes.Options
module Attack = Spamlab_core.Dictionary_attack
module Confusion = Spamlab_eval.Confusion

let () =
  let lab = Lab.create ~seed:7 ~scale:0.2 () in
  let tokenizer = Lab.tokenizer lab in

  (* The victim's world: a 2,000-message inbox, half spam, plus a
     held-out week of mail to measure delivery on. *)
  let train =
    Lab.corpus lab ~name:"example-dictionary/train" ~size:2_000
      ~spam_fraction:0.5
  in
  let test =
    Lab.corpus lab ~name:"example-dictionary/test" ~size:400 ~spam_fraction:0.5
  in
  let base = Poison.base_filter tokenizer train in

  let report label filter =
    let confusion =
      Poison.confusion_of_scores Options.default
        (Poison.score_examples filter test)
    in
    Printf.printf "%-28s ham->spam %5.1f%%   ham->unsure %5.1f%%   spam caught %5.1f%%\n"
      label
      (100.0 *. Confusion.ham_as_spam_rate confusion)
      (100.0 *. Confusion.ham_as_unsure_rate confusion)
      (100.0
      *. (1.0 -. Confusion.spam_misclassified_rate confusion))
  in

  print_endline "victim's filter before the attack:";
  report "clean filter" base;

  (* The attacker sends dictionary emails; the victim's weekly retrain
     dutifully learns them as spam. *)
  let attack =
    Attack.make ~name:"usenet-dictionary"
      ~words:(Lab.usenet_top lab ~size:25_000)
  in
  Printf.printf "\nattack: %s (%d words per email, %s)\n"
    (Attack.name attack) (Attack.word_count attack)
    (Spamlab_core.Taxonomy.describe Attack.taxonomy);

  print_endline "\nafter retraining on poisoned inboxes:";
  List.iter
    (fun fraction ->
      let count =
        Poison.attack_count ~train_size:(Array.length train) ~fraction
      in
      let payload = Attack.payload tokenizer attack in
      let poisoned = Poison.poisoned base ~payload ~count in
      report
        (Printf.sprintf "%4.1f%% control (%d emails)" (100.0 *. fraction)
           count)
        poisoned)
    [ 0.001; 0.005; 0.01; 0.02; 0.05 ];

  print_endline
    "\nWith ~1% control the filter is useless: nearly all legitimate mail\n\
     lands in the unsure/spam folders and the victim must read it all anyway."
