(* Tests for the token-interning layer and the copy-on-write Token_db:
   intern table invariants, the occurrence-aware untrain fix, and
   differential properties pitting the int-indexed/CoW implementation
   against a straightforward string-keyed reference on random
   train/untrain/classify traces. *)

open Spamlab_spambayes

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let test_case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let save_string db =
  let path = Filename.temp_file "spamlab" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Token_db.save oc db;
      close_out oc;
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s)

(* ------------------------------------------------------------------ *)
(* Intern table                                                        *)

let intern_tests =
  [
    test_case "same string, same id; to_string round-trips" (fun () ->
        let a1 = Intern.id "intern-test-alpha" in
        let a2 = Intern.id "intern-test-alpha" in
        let b = Intern.id "intern-test-beta" in
        check_int "stable" a1 a2;
        check_bool "distinct strings, distinct ids" true (a1 <> b);
        check_str "round-trip a" "intern-test-alpha" (Intern.to_string a1);
        check_str "round-trip b" "intern-test-beta" (Intern.to_string b));
    test_case "empty string is a real token" (fun () ->
        let e = Intern.id "" in
        check_str "round-trip" "" (Intern.to_string e);
        check_int "stable" e (Intern.id ""));
    test_case "find never interns" (fun () ->
        let probe = "intern-test-never-interned-gamma" in
        check_bool "absent" true (Intern.find probe = None);
        let before = Intern.size () in
        check_bool "still absent" true (Intern.find probe = None);
        check_int "size unchanged" before (Intern.size ());
        let id = Intern.id probe in
        check_bool "found after intern" true (Intern.find probe = Some id));
    test_case "intern_array agrees with id, elementwise" (fun () ->
        let tokens =
          [| "intern-test-x"; "intern-test-y"; "intern-test-x"; "" |]
        in
        let ids = Intern.intern_array tokens in
        check_int "length" (Array.length tokens) (Array.length ids);
        Array.iteri
          (fun i tok -> check_int tok (Intern.id tok) ids.(i))
          tokens;
        check_int "duplicates share an id" ids.(0) ids.(2));
    test_case "freeze keeps lookups working and is idempotent" (fun () ->
        let pre = Intern.id "intern-test-pre-freeze" in
        Intern.freeze ();
        check_int "pre-freeze id survives" pre
          (Intern.id "intern-test-pre-freeze");
        let post = Intern.id "intern-test-post-freeze" in
        Intern.freeze ();
        Intern.freeze ();
        check_int "post-freeze id survives" post
          (Intern.id "intern-test-post-freeze");
        check_str "to_string after freeze" "intern-test-post-freeze"
          (Intern.to_string post));
    test_case "to_string rejects unknown ids" (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Intern.to_string: unknown id") (fun () ->
            ignore (Intern.to_string (-1)));
        Alcotest.check_raises "past the end"
          (Invalid_argument "Intern.to_string: unknown id") (fun () ->
            ignore (Intern.to_string (Intern.size () + 1_000_000))));
  ]

(* ------------------------------------------------------------------ *)
(* Occurrence-aware untrain (regression: duplicate tokens)             *)

let untrain_duplicate_tests =
  [
    test_case "duplicate token with count 1 fails atomically" (fun () ->
        (* The old per-token validation passed for each occurrence of
           "dup" (count 1 > 0), decremented once, then blew up mid-way,
           leaving nspam and the counts corrupted. *)
        let db = Token_db.create () in
        Token_db.train db Label.Spam [| "dup"; "solo" |];
        Alcotest.check_raises "rejected"
          (Invalid_argument
             "Token_db.untrain: token \"dup\" was never trained") (fun () ->
            Token_db.untrain db Label.Spam [| "dup"; "dup" |]);
        check_int "nspam intact" 1 (Token_db.nspam db);
        check_int "dup count intact" 1 (Token_db.spam_count db "dup");
        check_int "solo count intact" 1 (Token_db.spam_count db "solo");
        check_int "distinct intact" 2 (Token_db.distinct_tokens db));
    test_case "duplicates round-trip when trained with duplicates"
      (fun () ->
        let db = Token_db.create () in
        Token_db.train db Label.Ham [| "dup"; "dup"; "other" |];
        check_int "trained twice" 2 (Token_db.ham_count db "dup");
        Token_db.untrain db Label.Ham [| "dup"; "dup"; "other" |];
        check_int "back to zero" 0 (Token_db.ham_count db "dup");
        check_int "nham zero" 0 (Token_db.nham db);
        check_int "empty again" 0 (Token_db.distinct_tokens db));
    test_case "validation precedes all mutation on a copy" (fun () ->
        let base = Token_db.create () in
        Token_db.train base Label.Spam [| "shared-a"; "shared-b" |];
        let copy = Token_db.copy base in
        Alcotest.check_raises "rejected on the copy"
          (Invalid_argument
             "Token_db.untrain: token \"shared-a\" was never trained")
          (fun () ->
            Token_db.untrain copy Label.Spam [| "shared-a"; "shared-a" |]);
        check_str "copy still byte-identical to base" (save_string base)
          (save_string copy));
  ]

(* ------------------------------------------------------------------ *)
(* Reference implementation: a plain string-keyed count table with the
   semantics the pre-interning Token_db had.  Deliberately naive — its
   job is to be obviously correct.                                     *)

module Ref_db = struct
  type t = {
    counts : (string, int * int) Hashtbl.t;
    mutable nspam : int;
    mutable nham : int;
  }

  let create () = { counts = Hashtbl.create 64; nspam = 0; nham = 0 }

  let copy t =
    { counts = Hashtbl.copy t.counts; nspam = t.nspam; nham = t.nham }

  let get t tok =
    Option.value (Hashtbl.find_opt t.counts tok) ~default:(0, 0)

  let set t tok (s, h) =
    if s = 0 && h = 0 then Hashtbl.remove t.counts tok
    else Hashtbl.replace t.counts tok (s, h)

  let bump t label tok k =
    let s, h = get t tok in
    match (label : Label.gold) with
    | Label.Spam -> set t tok (s + k, h)
    | Label.Ham -> set t tok (s, h + k)

  let train_many t label tokens k =
    Array.iter (fun tok -> bump t label tok k) tokens;
    match (label : Label.gold) with
    | Label.Spam -> t.nspam <- t.nspam + k
    | Label.Ham -> t.nham <- t.nham + k

  let train t label tokens = train_many t label tokens 1
  let untrain t label tokens = train_many t label tokens (-1)
  let spam_count t tok = fst (get t tok)
  let ham_count t tok = snd (get t tok)
  let distinct t = Hashtbl.length t.counts

  let escape token =
    let buf = Buffer.create (String.length token + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | c -> Buffer.add_char buf c)
      token;
    Buffer.contents buf

  (* Bitwise (non-table) CRC-32, deliberately a different algorithmic
     shape from the table-driven one in [Token_db]. *)
  let crc32 s =
    let c = ref 0xffffffff in
    String.iter
      (fun ch ->
        c := !c lxor Char.code ch;
        for _ = 0 to 7 do
          c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
        done)
      s;
    !c lxor 0xffffffff

  (* An independent rendering of the v3 text format, for byte-level
     comparison against [Token_db.save]. *)
  let save_string t =
    let buf = Buffer.create 256 in
    Printf.bprintf buf "spamlab-token-db 3 %d %d\n" t.nspam t.nham;
    Hashtbl.fold (fun tok c acc -> (tok, c) :: acc) t.counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.iter (fun (tok, (s, h)) ->
           Printf.bprintf buf "%s\t%d\t%d\n" (escape tok) s h);
    Printf.bprintf buf "#spamlab-db-footer crc32=%08x entries=%d\n"
      (crc32 (Buffer.contents buf))
      (Hashtbl.length t.counts);
    Buffer.contents buf

  (* Classification from reference counts: strength-filter every token's
     smoothed score, then reuse the real selection/Fisher pipeline
     ([Classify.score_clues] is pure in the counts). *)
  let score options t tokens =
    let nspam = t.nspam and nham = t.nham in
    let min_strength = options.Options.minimum_prob_strength in
    let candidates =
      Array.fold_left
        (fun acc tok ->
          let score =
            Score.smoothed_counts options ~spam:(spam_count t tok)
              ~ham:(ham_count t tok) ~nspam ~nham
          in
          if Float.abs (score -. 0.5) >= min_strength then
            { Classify.token = tok; score } :: acc
          else acc)
        [] tokens
    in
    Classify.score_clues options candidates
end

(* ------------------------------------------------------------------ *)
(* Random traces                                                       *)

(* A small universe forces collisions, duplicates, and re-zeroed
   entries; the nasty strings exercise save escaping. *)
let universe =
  [|
    "alpha"; "beta"; "gamma"; "delta"; ""; "tab\tinside"; "nl\ninside";
    "back\\slash"; "cr\rinside"; "unicode-é";
  |]

type op =
  | Train of Label.gold * int array  (* indices into [universe] *)
  | Train_many of Label.gold * int array * int
  | Untrain of int  (* index into the list of previously trained msgs *)

let gen_ops =
  let open QCheck2.Gen in
  let label = map (fun b -> if b then Label.Spam else Label.Ham) bool in
  let msg = array_size (int_range 0 6) (int_range 0 (Array.length universe - 1)) in
  let op =
    frequency
      [
        (4, map2 (fun l m -> Train (l, m)) label msg);
        (2, map3 (fun l m k -> Train_many (l, m, k)) label msg (int_range 0 4));
        (2, map (fun i -> Untrain i) (int_range 0 1000));
      ]
  in
  list_size (int_range 0 40) op

(* Messages honor the documented contract (deduplicated token arrays);
   duplicate-token behavior is pinned separately above. *)
let resolve idx =
  Array.to_list idx
  |> List.map (fun i -> universe.(i))
  |> List.sort_uniq String.compare
  |> Array.of_list

(* Applies a trace to both implementations.  Untrains only ever target a
   message recorded as trained (and still un-untrained), so both sides
   stay on the defined part of the API. *)
let apply_trace ops db rdb =
  let trained = ref [] in
  List.iter
    (fun op ->
      match op with
      | Train (label, idx) ->
          let tokens = resolve idx in
          Token_db.train db label tokens;
          Ref_db.train rdb label tokens;
          trained := (label, tokens) :: !trained
      | Train_many (label, idx, k) ->
          let tokens = resolve idx in
          Token_db.train_many db label tokens k;
          Ref_db.train_many rdb label tokens k;
          for _ = 1 to k do
            trained := (label, tokens) :: !trained
          done
      | Untrain i -> (
          match !trained with
          | [] -> ()
          | l ->
              let n = List.length l in
              let label, tokens = List.nth l (i mod n) in
              Token_db.untrain db label tokens;
              Ref_db.untrain rdb label tokens;
              trained :=
                List.filteri (fun j _ -> j <> i mod n) l))
    ops

let agree db rdb =
  Token_db.nspam db = rdb.Ref_db.nspam
  && Token_db.nham db = rdb.Ref_db.nham
  && Token_db.distinct_tokens db = Ref_db.distinct rdb
  && Array.for_all
       (fun tok ->
         Token_db.spam_count db tok = Ref_db.spam_count rdb tok
         && Token_db.ham_count db tok = Ref_db.ham_count rdb tok)
       universe
  && Token_db.spam_count db "never-trained-token" = 0
  && save_string db = Ref_db.save_string rdb

let scores_agree db rdb =
  let options = Options.default in
  (* Distinct-token probe messages drawn from the universe. *)
  let probes =
    [
      [| "alpha"; "beta"; "" |];
      [| "gamma"; "tab\tinside"; "back\\slash"; "unicode-é" |];
      Array.copy universe;
      [| "never-trained-token"; "delta" |];
    ]
  in
  List.for_all
    (fun probe ->
      let got = Classify.score_tokens options db probe in
      let want = Ref_db.score options rdb probe in
      got.Classify.indicator = want.Classify.indicator
      && got.Classify.verdict = want.Classify.verdict
      && got.Classify.clues = want.Classify.clues)
    probes

let differential_tests =
  [
    qtest ~count:200 "trace: counts, distinct, saved bytes match reference"
      gen_ops
      (fun ops ->
        let db = Token_db.create () and rdb = Ref_db.create () in
        apply_trace ops db rdb;
        agree db rdb);
    qtest ~count:100 "trace: classification matches reference scoring"
      gen_ops
      (fun ops ->
        let db = Token_db.create () and rdb = Ref_db.create () in
        apply_trace ops db rdb;
        scores_agree db rdb);
    qtest ~count:100 "trace: save/load round-trip is the identity" gen_ops
      (fun ops ->
        let db = Token_db.create () and rdb = Ref_db.create () in
        apply_trace ops db rdb;
        let path = Filename.temp_file "spamlab" ".db" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            Token_db.save oc db;
            close_out oc;
            let ic = open_in path in
            let loaded = Token_db.load ic in
            close_in ic;
            match loaded with
            | Error _ -> false
            | Ok loaded -> save_string loaded = save_string db));
  ]

(* ------------------------------------------------------------------ *)
(* Copy-on-write vs deep copy                                          *)

let gen_three_traces =
  let open QCheck2.Gen in
  triple gen_ops gen_ops gen_ops

let cow_tests =
  [
    qtest ~count:100 "overlay copy behaves exactly like a deep copy"
      gen_three_traces
      (fun (base_ops, a_ops, b_ops) ->
        (* CoW world: one base, one copy, divergent mutations. *)
        let db = Token_db.create () and rdb = Ref_db.create () in
        apply_trace base_ops db rdb;
        let db_copy = Token_db.copy db in
        let rdb_copy = Ref_db.copy rdb in
        apply_trace a_ops db rdb;
        apply_trace b_ops db_copy rdb_copy;
        (* Each side must match a reference that was deep-copied, i.e.
           neither side's mutations may leak into the other. *)
        agree db rdb && agree db_copy rdb_copy
        && scores_agree db rdb
        && scores_agree db_copy rdb_copy);
    test_case "copy chains stay independent" (fun () ->
        let a = Token_db.create () in
        Token_db.train a Label.Spam [| "chain-s" |];
        let b = Token_db.copy a in
        let c = Token_db.copy b in
        Token_db.train b Label.Ham [| "chain-h" |];
        Token_db.untrain c Label.Spam [| "chain-s" |];
        check_int "a keeps its spam count" 1 (Token_db.spam_count a "chain-s");
        check_int "a has no ham" 0 (Token_db.ham_count a "chain-h");
        check_int "b keeps both" 1 (Token_db.ham_count b "chain-h");
        check_int "b keeps spam" 1 (Token_db.spam_count b "chain-s");
        check_int "c emptied" 0 (Token_db.spam_count c "chain-s");
        check_int "c distinct" 0 (Token_db.distinct_tokens c);
        check_int "a nspam" 1 (Token_db.nspam a);
        check_int "c nspam" 0 (Token_db.nspam c));
    test_case "mutating the original never leaks into an earlier copy"
      (fun () ->
        let base = Token_db.create () in
        Token_db.train base Label.Ham [| "leak-x"; "leak-y" |];
        let snapshot = Token_db.copy base in
        let bytes_before = save_string snapshot in
        Token_db.train_many base Label.Spam [| "leak-x"; "leak-z" |] 7;
        Token_db.untrain base Label.Ham [| "leak-x"; "leak-y" |];
        check_str "snapshot bytes unchanged" bytes_before
          (save_string snapshot);
        check_int "snapshot ham intact" 1
          (Token_db.ham_count snapshot "leak-x"));
  ]

let () =
  Alcotest.run "spamlab_intern"
    [
      ("intern", intern_tests);
      ("untrain-duplicates", untrain_duplicate_tests);
      ("differential", differential_tests);
      ("cow", cow_tests);
    ]
