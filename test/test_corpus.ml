(* Tests for the synthetic corpus substrate: word generation,
   vocabulary partitioning, attacker word sources, language models,
   email generation and dataset plumbing. *)

open Spamlab_corpus
open Spamlab_stats
module Label = Spamlab_spambayes.Label
module Message = Spamlab_email.Message
module Header = Spamlab_email.Header
module Tokenizer = Spamlab_tokenizer.Tokenizer

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let test_case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Small vocabulary sizes keep corpus tests fast. *)
let small_sizes =
  {
    Vocabulary.shared = 300;
    ham_specific = 200;
    spam_specific = 150;
    colloquial = 100;
    rare_standard = 400;
    rare_nonstandard = 400;
  }

let vocab = Vocabulary.create ~sizes:small_sizes ~seed:7 ()

(* ------------------------------------------------------------------ *)
(* Wordgen                                                             *)

let wordgen_tests =
  [
    test_case "words are within the token length band" (fun () ->
        for i = 0 to 5_000 do
          let w = Wordgen.word (i * 17) in
          let n = String.length w in
          check_bool (w ^ " length") true (n >= 3 && n <= 12)
        done);
    test_case "injective over a sample" (fun () ->
        let seen = Hashtbl.create 100_000 in
        for i = 0 to 60_000 do
          let w = Wordgen.word i in
          check_bool ("dup " ^ w) false (Hashtbl.mem seen w);
          Hashtbl.replace seen w ()
        done);
    test_case "deterministic" (fun () ->
        check_str "same" (Wordgen.word 123456) (Wordgen.word 123456));
    test_case "alternating consonant-vowel shape" (fun () ->
        let consonants = "bcdfghjklmnpqrstvwxyz" in
        let w = Wordgen.word 9999 in
        String.iteri
          (fun i c ->
            let is_consonant = String.contains consonants c in
            check_bool "pattern" (i mod 2 = 0) is_consonant)
          w);
    test_case "negative index rejected" (fun () ->
        Alcotest.check_raises "neg"
          (Invalid_argument "Wordgen.word: negative index") (fun () ->
            ignore (Wordgen.word (-1))));
    test_case "words builds a contiguous range" (fun () ->
        let ws = Wordgen.words 100 5 in
        check_int "count" 5 (Array.length ws);
        check_str "first" (Wordgen.word 100) ws.(0);
        check_str "last" (Wordgen.word 104) ws.(4));
    test_case "misspell changes the word" (fun () ->
        let rng = Rng.create 3 in
        for i = 0 to 200 do
          let w = Wordgen.word (i * 31) in
          let m = Wordgen.misspell rng w in
          check_bool "different" true (m <> w);
          check_bool "length ok" true (String.length m >= 3)
        done);
    test_case "max_injective_index is large" (fun () ->
        check_bool "big" true (Wordgen.max_injective_index > 100_000_000));
  ]

(* ------------------------------------------------------------------ *)
(* Vocabulary                                                          *)

let vocabulary_tests =
  [
    test_case "category sizes" (fun () ->
        check_int "shared" 300 (Array.length vocab.Vocabulary.shared);
        check_int "ham" 200 (Array.length vocab.Vocabulary.ham_specific);
        check_int "spam" 150 (Array.length vocab.Vocabulary.spam_specific);
        check_int "colloquial" 100 (Array.length vocab.Vocabulary.colloquial);
        check_int "rare std" 400 (Array.length vocab.Vocabulary.rare_standard);
        check_int "rare non" 400
          (Array.length vocab.Vocabulary.rare_nonstandard);
        check_int "total" 1550 (Vocabulary.total vocab));
    test_case "categories are pairwise disjoint" (fun () ->
        let seen = Hashtbl.create 4096 in
        let all = Vocabulary.all_words vocab in
        Array.iter
          (fun w ->
            check_bool ("dup " ^ w) false (Hashtbl.mem seen w);
            Hashtbl.replace seen w ())
          all;
        check_int "no dups overall" (Vocabulary.total vocab) (Array.length all));
    test_case "colloquial is not standard" (fun () ->
        let mem_std = Vocabulary.mem_standard vocab in
        Array.iter
          (fun w -> check_bool ("colloquial " ^ w) false (mem_std w))
          vocab.Vocabulary.colloquial);
    test_case "membership predicates" (fun () ->
        let mem_std = Vocabulary.mem_standard vocab in
        let mem_col = Vocabulary.mem_colloquial vocab in
        check_bool "shared standard" true (mem_std vocab.Vocabulary.shared.(0));
        check_bool "rare standard" true
          (mem_std vocab.Vocabulary.rare_standard.(0));
        check_bool "rare nonstandard" false
          (mem_std vocab.Vocabulary.rare_nonstandard.(0));
        check_bool "colloquial" true
          (mem_col vocab.Vocabulary.colloquial.(0)));
    test_case "deterministic in the seed" (fun () ->
        let v2 = Vocabulary.create ~sizes:small_sizes ~seed:7 () in
        check_str "same colloquial" vocab.Vocabulary.colloquial.(50)
          v2.Vocabulary.colloquial.(50));
    test_case "different seeds differ in misspellings" (fun () ->
        let v2 = Vocabulary.create ~sizes:small_sizes ~seed:8 () in
        (* Slang half is positional, misspelling half is seeded. *)
        check_bool "some difference" true
          (vocab.Vocabulary.colloquial <> v2.Vocabulary.colloquial));
    test_case "rejects bad sizes" (fun () ->
        Alcotest.check_raises "zero shared"
          (Invalid_argument "Vocabulary.create: shared size must be positive")
          (fun () ->
            ignore
              (Vocabulary.create
                 ~sizes:{ small_sizes with Vocabulary.shared = 0 }
                 ~seed:1 ())));
  ]

(* ------------------------------------------------------------------ *)
(* Dictionary and Usenet                                               *)

let word_list_tests =
  [
    test_case "aspell has the requested size" (fun () ->
        check_int "size" 3000 (Array.length (Dictionary.aspell ~size:3000 vocab));
        check_int "default" Dictionary.aspell_size
          (Array.length (Dictionary.aspell vocab)));
    test_case "aspell contains standard words, not colloquial" (fun () ->
        let mem = Dictionary.contains (Dictionary.aspell ~size:2000 vocab) in
        check_bool "shared" true (mem vocab.Vocabulary.shared.(0));
        check_bool "ham" true (mem vocab.Vocabulary.ham_specific.(0));
        check_bool "rare std" true (mem vocab.Vocabulary.rare_standard.(0));
        Array.iter
          (fun w -> check_bool ("colloquial " ^ w) false (mem w))
          vocab.Vocabulary.colloquial;
        Array.iter
          (fun w -> check_bool ("rare non " ^ w) false (mem w))
          vocab.Vocabulary.rare_nonstandard);
    test_case "aspell truncates to a pocket dictionary" (fun () ->
        let pocket = Dictionary.aspell ~size:100 vocab in
        check_int "size" 100 (Array.length pocket);
        check_str "prefix" vocab.Vocabulary.shared.(0) pocket.(0));
    test_case "aspell rejects non-positive size" (fun () ->
        Alcotest.check_raises "size 0"
          (Invalid_argument "Dictionary.aspell: size must be positive")
          (fun () -> ignore (Dictionary.aspell ~size:0 vocab)));
    test_case "usenet covers colloquial and partial rare tails" (fun () ->
        let ranked = Usenet.ranked ~total:2500 ~dictionary_overlap:1500 vocab in
        let mem = Dictionary.contains ranked in
        Array.iter
          (fun w -> check_bool ("colloquial " ^ w) true (mem w))
          vocab.Vocabulary.colloquial;
        (* Head of rare_standard is covered, tail is not. *)
        check_bool "rare std head" true (mem vocab.Vocabulary.rare_standard.(0));
        check_bool "rare std tail" false
          (mem vocab.Vocabulary.rare_standard.(399));
        check_bool "rare non head" true
          (mem vocab.Vocabulary.rare_nonstandard.(0));
        check_bool "rare non tail" false
          (mem vocab.Vocabulary.rare_nonstandard.(399)));
    test_case "usenet honors the total" (fun () ->
        check_int "size" 2500
          (Array.length (Usenet.ranked ~total:2500 ~dictionary_overlap:1500 vocab)));
    test_case "usenet truncation keeps the head" (fun () ->
        let ranked = Usenet.ranked ~total:200 ~dictionary_overlap:100 vocab in
        check_int "size" 200 (Array.length ranked);
        check_str "head is shared" vocab.Vocabulary.shared.(0) ranked.(0));
    test_case "top clamps" (fun () ->
        let ranked = Usenet.ranked ~total:500 ~dictionary_overlap:400 vocab in
        check_int "top 10" 10 (Array.length (Usenet.top ranked 10));
        check_int "top beyond" 500 (Array.length (Usenet.top ranked 9999)));
    test_case "overlap_count aspell/usenet near the target" (fun () ->
        let aspell = Dictionary.aspell ~size:3000 vocab in
        let usenet = Usenet.ranked ~total:2500 ~dictionary_overlap:1500 vocab in
        let overlap = Dictionary.overlap_count aspell usenet in
        (* vocab-part overlap (standard 650 + covered rare 200) plus 650
           dictionary filler = 1500, the requested target. *)
        check_int "overlap" 1500 overlap);
    test_case "paper-scale overlap statistic" (fun () ->
        (* With default sizes the full lists reproduce the published
           61k overlap; use the real vocabulary here. *)
        let full = Vocabulary.create ~seed:1 () in
        let aspell = Dictionary.aspell full in
        let usenet = Usenet.ranked full in
        let overlap = Dictionary.overlap_count aspell usenet in
        check_bool "near 61000" true (abs (overlap - 61_000) < 2_000));
  ]

(* ------------------------------------------------------------------ *)
(* Language model                                                      *)

let lm_tests =
  [
    test_case "samples stay in the support" (fun () ->
        let model = Language_model.ham vocab in
        let support = Language_model.support model in
        let mem = Dictionary.contains support in
        let rng = Rng.create 5 in
        for _ = 1 to 2000 do
          check_bool "in support" true (mem (Language_model.sample_word model rng))
        done);
    test_case "ham support excludes spam-specific vocabulary" (fun () ->
        let model = Language_model.ham vocab in
        let mem = Dictionary.contains (Language_model.support model) in
        check_bool "no spam vocab" false (mem vocab.Vocabulary.spam_specific.(0));
        check_bool "has colloquial" true (mem vocab.Vocabulary.colloquial.(0));
        check_bool "has rare non" true
          (mem vocab.Vocabulary.rare_nonstandard.(17)));
    test_case "word_prob sums to 1 over the support" (fun () ->
        let model = Language_model.spam vocab in
        let support = Language_model.support model in
        let total =
          Array.fold_left
            (fun acc w -> acc +. Language_model.word_prob model w)
            0.0 support
        in
        Alcotest.(check (float 1e-6)) "sums to one" 1.0 total);
    test_case "word_prob outside support is 0" (fun () ->
        let model = Language_model.ham vocab in
        Alcotest.(check (float 0.0)) "zero" 0.0
          (Language_model.word_prob model "zzzznotaword"));
    test_case "head words more probable than tail words" (fun () ->
        let model = Language_model.ham vocab in
        check_bool "zipf head" true
          (Language_model.word_prob model vocab.Vocabulary.shared.(0)
          > Language_model.word_prob model vocab.Vocabulary.shared.(250)));
    test_case "sample_words length" (fun () ->
        let model = Language_model.ham vocab in
        check_int "n" 37
          (List.length (Language_model.sample_words model (Rng.create 1) 37)));
    test_case "make validates" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Language_model.make: no components") (fun () ->
            ignore (Language_model.make []));
        Alcotest.check_raises "bad weight"
          (Invalid_argument "Language_model.make: non-positive weight")
          (fun () ->
            ignore
              (Language_model.make
                 [ { Language_model.words = [| "abc" |]; weight = 0.0;
                     zipf_exponent = 1.0 } ])));
  ]

(* ------------------------------------------------------------------ *)
(* Persons and Generator                                               *)

let config = Generator.default_config ~sizes:small_sizes ~seed:11 ()

let persons_tests =
  [
    test_case "pool has requested size and valid addresses" (fun () ->
        let rng = Rng.create 2 in
        let people = Persons.pool rng ~domains:[| "a.com"; "b.com" |] 25 in
        check_int "size" 25 (Array.length people);
        Array.iter
          (fun p ->
            let addr = p.Persons.address in
            check_bool "domain" true
              (addr.Spamlab_email.Address.domain = "a.com"
              || addr.Spamlab_email.Address.domain = "b.com"))
          people);
    test_case "pool rejects empty domains" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Persons.pool: no domains") (fun () ->
            ignore (Persons.pool (Rng.create 1) ~domains:[||] 3)));
    test_case "header_date has RFC-ish shape" (fun () ->
        let d = Persons.header_date (Rng.create 9) in
        check_bool "comma" true (String.contains d ',');
        check_bool "year" true
          (Option.is_some
             (String.index_opt d '2')));
    test_case "message_id embeds the domain" (fun () ->
        let id = Persons.message_id (Rng.create 4) ~domain:"host.example" in
        check_bool "domain present" true
          (String.length id > String.length "host.example"
          && String.contains id '@'));
    test_case "domains_for uses the tld" (fun () ->
        let ds = Persons.domains_for (Rng.create 3) ~tld:"biz" 5 in
        Array.iter
          (fun d ->
            let n = String.length d in
            check_str "suffix" ".biz" (String.sub d (n - 4) 4))
          ds);
  ]

let generator_tests =
  [
    test_case "ham has complete headers" (fun () ->
        let m = Generator.ham config (Rng.create 21) in
        List.iter
          (fun field ->
            check_bool field true (Header.mem (Message.headers m) field))
          [ "from"; "to"; "subject"; "date"; "message-id" ];
        check_bool "body" true (String.length (Message.body m) > 0));
    test_case "ham is addressed to the victim" (fun () ->
        let m = Generator.ham config (Rng.create 22) in
        match Message.to_address m with
        | Some a ->
            check_bool "victim" true
              (Spamlab_email.Address.equal a
                 config.Generator.victim.Persons.address)
        | None -> Alcotest.fail "no To");
    test_case "spam sometimes carries a URL" (fun () ->
        let contains_http body =
          let n = String.length body in
          let rec scan i =
            if i + 7 > n then false
            else if String.sub body i 7 = "http://" then true
            else scan (i + 1)
          in
          scan 0
        in
        let rng = Rng.create 23 in
        let with_url = ref 0 in
        for _ = 1 to 50 do
          if contains_http (Message.body (Generator.spam config rng)) then
            incr with_url
        done;
        check_bool "majority" true (!with_url > 25));
    test_case "generation is deterministic per rng state" (fun () ->
        let a = Generator.ham config (Rng.create 99) in
        let b = Generator.ham config (Rng.create 99) in
        check_bool "equal" true (Message.equal a b));
    test_case "body_of_words includes every word" (fun () ->
        let words = [ "alpha"; "beta"; "gamma"; "delta" ] in
        let body = Generator.body_of_words (Rng.create 1) words in
        let tokens = Spamlab_tokenizer.Text.words body in
        List.iter
          (fun w -> check_bool w true (List.mem w tokens))
          words);
    test_case "some spam is HTML, some base64, ham never base64" (fun () ->
        let rng = Rng.create 41 in
        let html = ref 0 and b64 = ref 0 in
        for _ = 1 to 100 do
          let m = Generator.spam config rng in
          let headers = Message.headers m in
          (match Header.find headers "content-type" with
          | Some ct when String.length ct >= 9 && String.sub ct 0 9 = "text/html" ->
              incr html
          | _ -> ());
          match Header.find headers "content-transfer-encoding" with
          | Some "base64" -> incr b64
          | _ -> ()
        done;
        check_bool "html spam exists" true (!html > 10);
        check_bool "base64 spam exists" true (!b64 > 2);
        for _ = 1 to 60 do
          let m = Generator.ham config rng in
          check_bool "ham not base64" true
            (Header.find (Message.headers m) "content-transfer-encoding"
            = None)
        done);
    test_case "tokens survive spam obfuscation end to end" (fun () ->
        let rng = Rng.create 43 in
        (* Find a base64-encoded spam and check its tokens are words,
           not base64 gibberish. *)
        let rec find tries =
          if tries = 0 then Alcotest.fail "no base64 spam generated"
          else
            let m = Generator.spam config rng in
            match Header.find (Message.headers m) "content-transfer-encoding" with
            | Some "base64" -> m
            | _ -> find (tries - 1)
        in
        let m = find 200 in
        let tokens = Tokenizer.unique_tokens Tokenizer.spambayes m in
        let vocab_words = Dictionary.contains (Vocabulary.all_words vocab) in
        let recovered =
          Array.fold_left
            (fun acc t -> if vocab_words t then acc + 1 else acc)
            0 tokens
        in
        check_bool "many vocabulary words recovered" true (recovered > 10);
        check_bool "encoding tell present" true
          (Array.exists (( = ) "content-transfer-encoding:base64") tokens));
    test_case "ham and spam vocabularies differ" (fun () ->
        let rng = Rng.create 31 in
        let ham_tokens =
          Tokenizer.unique_tokens Tokenizer.spambayes (Generator.ham config rng)
        in
        let mem_spam = Dictionary.contains vocab.Vocabulary.spam_specific in
        (* Ham bodies never draw from spam-specific vocabulary. *)
        Array.iter
          (fun t -> check_bool ("spam word in ham: " ^ t) false (mem_spam t))
          ham_tokens);
  ]

(* ------------------------------------------------------------------ *)
(* Trec and Dataset                                                    *)

let trec_tests =
  [
    test_case "generate honors size and prevalence" (fun () ->
        let corpus =
          Trec.generate config (Rng.create 5) ~size:200 ~spam_fraction:0.25
        in
        check_int "size" 200 (Array.length corpus);
        let ham, spam = Trec.counts corpus in
        check_int "spam" 50 spam;
        check_int "ham" 150 ham);
    test_case "generate rejects bad arguments" (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Trec.generate: negative size") (fun () ->
            ignore (Trec.generate config (Rng.create 1) ~size:(-1) ~spam_fraction:0.5));
        Alcotest.check_raises "fraction"
          (Invalid_argument "Trec.generate: spam_fraction outside [0,1]")
          (fun () ->
            ignore (Trec.generate config (Rng.create 1) ~size:10 ~spam_fraction:1.5)));
    test_case "ham_only and spam_only partition" (fun () ->
        let corpus =
          Trec.generate config (Rng.create 6) ~size:60 ~spam_fraction:0.5
        in
        check_int "ham" 30 (Array.length (Trec.ham_only corpus));
        check_int "spam" 30 (Array.length (Trec.spam_only corpus)));
    test_case "mbox files round-trip a corpus" (fun () ->
        let corpus =
          Trec.generate config (Rng.create 7) ~size:20 ~spam_fraction:0.5
        in
        let ham_path = Filename.temp_file "spamlab" ".ham" in
        let spam_path = Filename.temp_file "spamlab" ".spam" in
        Fun.protect
          ~finally:(fun () ->
            Sys.remove ham_path;
            Sys.remove spam_path)
          (fun () ->
            Trec.to_mbox_files ~ham_path ~spam_path corpus;
            match Trec.of_mbox_files ~ham_path ~spam_path with
            | Error e -> Alcotest.fail e
            | Ok loaded ->
                check_int "size" 20 (Array.length loaded);
                let ham, spam = Trec.counts loaded in
                check_int "ham" 10 ham;
                check_int "spam" 10 spam));
  ]

let dataset_tests =
  [
    test_case "of_labeled tokenizes everything" (fun () ->
        let corpus =
          Trec.generate config (Rng.create 8) ~size:30 ~spam_fraction:0.5
        in
        let examples = Dataset.of_labeled Tokenizer.spambayes corpus in
        check_int "size" 30 (Array.length examples);
        Array.iter
          (fun (e : Dataset.example) ->
            check_bool "has tokens" true (Array.length e.Dataset.tokens > 0);
            check_bool "raw >= unique" true
              (e.Dataset.raw_token_count >= Array.length e.Dataset.tokens))
          examples);
    test_case "kfold partitions without overlap" (fun () ->
        let arr = Array.init 25 (fun i -> i) in
        let folds = Dataset.kfold ~k:4 arr in
        check_int "folds" 4 (Array.length folds);
        let total_test =
          Array.fold_left (fun acc (_, test) -> acc + Array.length test) 0 folds
        in
        check_int "tests cover all" 25 total_test;
        Array.iter
          (fun (train, test) ->
            check_int "sizes" 25 (Array.length train + Array.length test);
            let train_set = Hashtbl.create 32 in
            Array.iter (fun x -> Hashtbl.replace train_set x ()) train;
            Array.iter
              (fun x -> check_bool "disjoint" false (Hashtbl.mem train_set x))
              test)
          folds);
    test_case "kfold validates k" (fun () ->
        Alcotest.check_raises "k=1"
          (Invalid_argument "Dataset.kfold: k must be at least 2") (fun () ->
            ignore (Dataset.kfold ~k:1 [| 1; 2 |]));
        Alcotest.check_raises "k>n"
          (Invalid_argument "Dataset.kfold: more folds than elements")
          (fun () -> ignore (Dataset.kfold ~k:3 [| 1; 2 |])));
    test_case "split respects the fraction" (fun () ->
        let a, b = Dataset.split (Rng.create 3) 0.3 (Array.init 10 Fun.id) in
        check_int "a" 3 (Array.length a);
        check_int "b" 7 (Array.length b);
        let merged = List.sort compare (Array.to_list a @ Array.to_list b) in
        Alcotest.(check (list int)) "partition" (List.init 10 Fun.id) merged);
    test_case "filter_label selects the class" (fun () ->
        let corpus =
          Trec.generate config (Rng.create 9) ~size:40 ~spam_fraction:0.5
        in
        let examples = Dataset.of_labeled Tokenizer.spambayes corpus in
        let hams = Dataset.filter_label Label.Ham examples in
        check_int "half" 20 (Array.length hams);
        Array.iter
          (fun (e : Dataset.example) ->
            check_bool "label" true (e.Dataset.label = Label.Ham))
          hams);
    test_case "train_filter and classify agree with Filter" (fun () ->
        let corpus =
          Trec.generate config (Rng.create 10) ~size:60 ~spam_fraction:0.5
        in
        let examples = Dataset.of_labeled Tokenizer.spambayes corpus in
        let filter = Spamlab_spambayes.Filter.create () in
        Dataset.train_filter filter examples;
        check_int "nham + nspam" 60
          (Spamlab_spambayes.Token_db.nham (Spamlab_spambayes.Filter.db filter)
          + Spamlab_spambayes.Token_db.nspam
              (Spamlab_spambayes.Filter.db filter)));
    qtest "total_raw_tokens is the sum" ~count:20
      QCheck2.Gen.(int_range 1 30)
      (fun n ->
        let corpus =
          Trec.generate config (Rng.create n) ~size:n ~spam_fraction:0.5
        in
        let examples = Dataset.of_labeled Tokenizer.spambayes corpus in
        Dataset.total_raw_tokens examples
        = Array.fold_left
            (fun acc (e : Dataset.example) -> acc + e.Dataset.raw_token_count)
            0 examples);
  ]

(* ------------------------------------------------------------------ *)
(* Substrate pipeline: jobs-invariant generation and the fused path    *)

let substrate_tests =
  let corpus_equal a b =
    Array.length a = Array.length b
    && Array.for_all2
         (fun (l1, m1) (l2, m2) -> l1 = l2 && Message.equal m1 m2)
         a b
  in
  [
    test_case "generation is identical at jobs 1/4/8" (fun () ->
        let seq =
          Trec.generate config (Rng.create 77) ~size:120 ~spam_fraction:0.5
        in
        List.iter
          (fun jobs ->
            let pool = Spamlab_parallel.Pool.create ~jobs in
            Fun.protect
              ~finally:(fun () -> Spamlab_parallel.Pool.shutdown pool)
              (fun () ->
                let par =
                  Trec.generate ~pool config (Rng.create 77) ~size:120
                    ~spam_fraction:0.5
                in
                check_bool
                  (Printf.sprintf "same corpus at jobs %d" jobs)
                  true (corpus_equal seq par)))
          [ 1; 4; 8 ]);
    test_case "generate advances the caller's rng" (fun () ->
        (* Per-index children are keyed on the parent's current
           position, so two draws from one rng give different
           corpora (train/test splits stay distinct). *)
        let rng = Rng.create 123 in
        let a = Trec.generate config rng ~size:30 ~spam_fraction:0.5 in
        let b = Trec.generate config rng ~size:30 ~spam_fraction:0.5 in
        check_bool "sequential corpora differ" false (corpus_equal a b));
    test_case "tokenize_ids agrees with the list pipeline" (fun () ->
        let rng = Rng.create 88 in
        let messages =
          List.init 25 (fun _ -> Generator.ham config rng)
          @ List.init 50 (fun _ -> Generator.spam config rng)
          (* Force the HTML and base64 decode paths regardless of what
             the generator happened to sample. *)
          @ [
              Spamlab_email.Mime.make_html
                "<html><body><p>Visit <a \
                 href=\"http://example.test/offer\">now</a> for great \
                 savings</p></body></html>";
              Spamlab_email.Mime.with_base64_transfer
                (Generator.spam config rng);
            ]
        in
        List.iteri
          (fun i msg ->
            let ids, raw = Dataset.tokenize_ids Tokenizer.spambayes msg in
            let tokens, raw_ref =
              Tokenizer.unique_counted
                (Tokenizer.tokenize Tokenizer.spambayes msg)
            in
            let ids_ref = Spamlab_spambayes.Intern.intern_array tokens in
            check_int (Printf.sprintf "raw count %d" i) raw_ref raw;
            Alcotest.(check (array int))
              (Printf.sprintf "ids %d" i)
              ids_ref ids)
          messages);
    qtest "unique_counted_tokens = unique_counted o tokenize" ~count:60
      QCheck2.Gen.(int_range 0 10_000)
      (fun n ->
        let rng = Rng.create n in
        let msg =
          if n mod 2 = 0 then Generator.ham config rng
          else Generator.spam config rng
        in
        let fused, raw = Tokenizer.unique_counted_tokens Tokenizer.spambayes msg in
        let listed, raw_ref =
          Tokenizer.unique_counted (Tokenizer.tokenize Tokenizer.spambayes msg)
        in
        raw = raw_ref && fused = listed);
    test_case "word_prob is safe and consistent under domains" (fun () ->
        (* Regression for the unsynchronized prob_index memoization:
           four domains racing the first build must all see the same
           fully-built table. *)
        let model = Language_model.ham vocab in
        let words = vocab.Vocabulary.shared in
        let sum () =
          Array.fold_left
            (fun acc w -> acc +. Language_model.word_prob model w)
            0.0 words
        in
        let domains = List.init 4 (fun _ -> Domain.spawn sum) in
        let results = List.map Domain.join domains in
        let expected = sum () in
        List.iter
          (fun r ->
            check_bool "same mass" true (Float.abs (r -. expected) < 1e-12))
          results);
  ]

(* ------------------------------------------------------------------ *)
(* Corpus statistics                                                   *)

let stats_tests =
  [
    test_case "measure reports consistent counts" (fun () ->
        let corpus =
          Trec.generate config (Rng.create 61) ~size:120 ~spam_fraction:0.5
        in
        let s = Corpus_stats.measure Tokenizer.spambayes corpus in
        check_int "messages" 120 s.Corpus_stats.messages;
        check_int "ham" 60 s.Corpus_stats.ham;
        check_int "spam" 60 s.Corpus_stats.spam;
        check_bool "raw >= distinct" true
          (s.Corpus_stats.raw_tokens >= s.Corpus_stats.distinct_tokens);
        check_bool "classes partition vocabulary" true
          (s.Corpus_stats.ham_vocabulary + s.Corpus_stats.spam_vocabulary
           - s.Corpus_stats.shared_vocabulary
          = s.Corpus_stats.distinct_tokens));
    test_case "lengths are heavy-tailed" (fun () ->
        let corpus =
          Trec.generate config (Rng.create 62) ~size:300 ~spam_fraction:0.5
        in
        let s = Corpus_stats.measure Tokenizer.spambayes corpus in
        check_bool "median below mean" true
          (s.Corpus_stats.median_tokens_per_message
          < s.Corpus_stats.mean_tokens_per_message);
        check_bool "p95 above mean" true
          (s.Corpus_stats.p95_tokens_per_message
          > s.Corpus_stats.mean_tokens_per_message));
    test_case "singleton tail exists" (fun () ->
        let corpus =
          Trec.generate config (Rng.create 63) ~size:200 ~spam_fraction:0.5
        in
        let s = Corpus_stats.measure Tokenizer.spambayes corpus in
        check_bool "singletons" true (s.Corpus_stats.singleton_fraction > 0.1);
        check_bool "bounded" true (s.Corpus_stats.singleton_fraction <= 1.0));
    test_case "heaps curve is monotone and sub-linear" (fun () ->
        let corpus =
          Trec.generate config (Rng.create 64) ~size:400 ~spam_fraction:0.5
        in
        let s = Corpus_stats.measure Tokenizer.spambayes corpus in
        let curve = s.Corpus_stats.heaps_curve in
        check_bool "enough checkpoints" true (List.length curve >= 5);
        let rec monotone = function
          | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
          | _ -> true
        in
        check_bool "monotone" true (monotone curve);
        (* Sub-linear: the second half of the corpus adds fewer new
           tokens than the first half. *)
        let first = List.nth curve 0 in
        let mid = List.nth curve (List.length curve / 2) in
        let last = List.nth curve (List.length curve - 1) in
        let growth (m0, v0) (m1, v1) =
          float_of_int (v1 - v0) /. float_of_int (m1 - m0)
        in
        check_bool "decelerating" true (growth mid last < growth first mid));
    test_case "measure rejects an empty corpus" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Corpus_stats.measure: empty corpus") (fun () ->
            ignore (Corpus_stats.measure Tokenizer.spambayes [||])));
    test_case "render mentions the key facts" (fun () ->
        let corpus =
          Trec.generate config (Rng.create 65) ~size:60 ~spam_fraction:0.5
        in
        let out =
          Corpus_stats.render (Corpus_stats.measure Tokenizer.spambayes corpus)
        in
        check_bool "mentions heaps" true (String.length out > 300));
  ]

let () =
  Alcotest.run "corpus"
    [
      ("wordgen", wordgen_tests);
      ("vocabulary", vocabulary_tests);
      ("word_lists", word_list_tests);
      ("language_model", lm_tests);
      ("persons", persons_tests);
      ("generator", generator_tests);
      ("trec", trec_tests);
      ("dataset", dataset_tests);
      ("substrate", substrate_tests);
      ("stats", stats_tests);
    ]
