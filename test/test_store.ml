(* Tests for the multi-tenant token store: the sharded backend must be
   observationally identical to the memory backend under arbitrary op
   interleavings (including forced evictions and reopen/replay), and
   its crash edges — torn journal tails, compactions interrupted
   between their two renames — must recover to the last committed
   state without losing or double-applying ops. *)

module Store = Spamlab_store.Store
module Token_db = Spamlab_spambayes.Token_db
module Label = Spamlab_spambayes.Label

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let test_case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Scaffolding. *)

let with_tmp_dir f =
  let dir = Filename.temp_file "spamlab_test" ".store" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let messages =
  [|
    [| "cheap"; "pharmacy"; "deal" |];
    [| "meeting"; "agenda"; "friday" |];
    [| "cheap"; "flight"; "deal"; "now" |];
    [| "lunch"; "friday" |];
    [| "pharmacy"; "online"; "now" |];
    [| "quarterly"; "report"; "agenda" |];
    [| "deal"; "deal"; "deal" |];
    [| "hello"; "world" |];
  |]

let make_prior () =
  let db = Token_db.create () in
  Token_db.train db Label.Spam [| "cheap"; "pharmacy"; "viagra" |];
  Token_db.train db Label.Ham [| "meeting"; "report"; "hello" |];
  db

let open_exn ?prior config =
  match Store.open_store ?prior config with
  | Ok t -> t
  | Error e -> Alcotest.fail ("open_store: " ^ e)

let mem_config = { Store.default_config with Store.backend = `Memory }

(* Tiny geometry: 4 shards, 2 cached overlays total — almost every
   access under multiple users is a cold materialization, so the
   differential tests exercise evict/replay constantly. *)
let sharded_config dir =
  {
    Store.backend = `Sharded dir;
    shards = 4;
    cache = 2;
    compact_ratio = 4.0;
  }

let user u = Printf.sprintf "user-%d" u

(* Interpret a seed list as an op sequence that is valid by
   construction: untrain only ever targets a message the user has
   trained and not yet untrained. *)
type op = Train of string * Label.gold * string array * int
        | Untrain of string * Label.gold * string array

let ops_of_seeds ~users seeds =
  let trained = Hashtbl.create 16 in
  let push u x =
    Hashtbl.replace trained u (x :: (try Hashtbl.find trained u with Not_found -> []))
  in
  List.filter_map
    (fun (a, b, c) ->
      let u = user (a mod users) in
      let msg = messages.(b mod Array.length messages) in
      let label = if b mod 2 = 0 then Label.Spam else Label.Ham in
      match c mod 4 with
      | 3 -> (
          match Hashtbl.find_opt trained u with
          | Some ((label, msg) :: rest) ->
              Hashtbl.replace trained u rest;
              Some (Untrain (u, label, msg))
          | _ ->
              push u (label, msg);
              Some (Train (u, label, msg, 1)))
      | k ->
          let k = 1 + (k mod 2) in
          for _ = 1 to k do
            push u (label, msg)
          done;
          Some (Train (u, label, msg, k)))
    seeds

let apply st = function
  | Train (u, label, msg, 1) -> Store.train st ~user:u label msg
  | Train (u, label, msg, k) -> Store.train_many st ~user:u label msg k
  | Untrain (u, label, msg) -> Store.untrain st ~user:u label msg

let snapshot st u = Store.with_user st u Token_db.to_string

(* Byte-compare every user's effective database across two stores. *)
let check_equal ~users what a b =
  for i = 0 to users - 1 do
    check_string
      (Printf.sprintf "%s: %s" what (user i))
      (snapshot a (user i)) (snapshot b (user i))
  done

let seeds_gen =
  QCheck.(list_of_size Gen.(int_range 1 60) (triple small_nat small_nat small_nat))

(* ------------------------------------------------------------------ *)
(* Differential properties: sharded == memory. *)

let differential_tests =
  let users = 5 in
  let prop_live seeds =
    with_tmp_dir @@ fun dir ->
    let ops = ops_of_seeds ~users seeds in
    let mem = open_exn ~prior:(make_prior ()) mem_config in
    let sh = open_exn ~prior:(make_prior ()) (sharded_config dir) in
    Fun.protect ~finally:(fun () -> Store.close sh) @@ fun () ->
    List.iter (fun op -> apply mem op; apply sh op) ops;
    check_equal ~users "live" mem sh;
    (* Unknown users see exactly the shared prior on both backends. *)
    check_string "unknown user = prior"
      (snapshot mem "nobody") (snapshot sh "nobody");
    true
  in
  let prop_reopen seeds =
    with_tmp_dir @@ fun dir ->
    let ops = ops_of_seeds ~users seeds in
    let mem = open_exn ~prior:(make_prior ()) mem_config in
    let sh = open_exn ~prior:(make_prior ()) (sharded_config dir) in
    List.iter (fun op -> apply mem op; apply sh op) ops;
    Store.close sh;
    (* Reopen reads the persisted prior and replays the journals; the
       ?prior argument must be ignored on an existing store. *)
    let sh = open_exn ~prior:(Token_db.create ()) (sharded_config dir) in
    Fun.protect ~finally:(fun () -> Store.close sh) @@ fun () ->
    check_equal ~users "reopened" mem sh;
    (match Store.verify_dir dir with
    | Error e -> Alcotest.fail ("verify_dir: " ^ e)
    | Ok r ->
        List.iter
          (fun (s : Store.shard_report) ->
            check_bool "segment ok" true
              (match s.Store.segment with `Ok | `Missing -> true | _ -> false);
            check_bool "journal clean" true
              (match s.Store.journal with
              | `Ok _ | `Missing -> true
              | _ -> false))
          r.Store.shard_reports);
    true
  in
  let prop_compacted seeds =
    with_tmp_dir @@ fun dir ->
    let ops = ops_of_seeds ~users seeds in
    let mem = open_exn ~prior:(make_prior ()) mem_config in
    let sh = open_exn ~prior:(make_prior ()) (sharded_config dir) in
    List.iter (fun op -> apply mem op; apply sh op) ops;
    Store.compact_all sh;
    Store.close sh;
    let sh = open_exn (sharded_config dir) in
    Fun.protect ~finally:(fun () -> Store.close sh) @@ fun () ->
    check_equal ~users "compacted" mem sh;
    true
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:30 ~name:"sharded == memory (live, tiny cache)"
         seeds_gen prop_live);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:30 ~name:"sharded == memory (close + reopen)"
         seeds_gen prop_reopen);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:30
         ~name:"sharded == memory (compact_all + reopen)" seeds_gen
         prop_compacted);
  ]

(* ------------------------------------------------------------------ *)
(* Crash edges. *)

let journal_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".journal")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let train_all st =
  Array.iteri
    (fun i msg ->
      Store.train st ~user:(user (i mod 3))
        (if i mod 2 = 0 then Label.Spam else Label.Ham)
        msg)
    messages

let crash_tests =
  [
    test_case "torn journal tail is truncated to the last commit" (fun () ->
        with_tmp_dir @@ fun dir ->
        let sh = open_exn ~prior:(make_prior ()) (sharded_config dir) in
        train_all sh;
        Store.commit sh;
        let committed = List.map (fun u -> snapshot sh (user u)) [ 0; 1; 2 ] in
        Store.close sh;
        (* A crash mid-append leaves garbage past the last commit
           marker: a half-written record and trailing junk. *)
        List.iter
          (fun j ->
            write_file j
              (read_file j ^ "T\tuser-0\ts\t1\tcheap\tcrc=deadbeef\nT\tgarb"))
          (journal_files dir);
        (match Store.verify_dir dir with
        | Error e -> Alcotest.fail ("verify_dir: " ^ e)
        | Ok r ->
            check_bool "verify reports torn journals" true
              (List.exists
                 (fun (s : Store.shard_report) ->
                   match s.Store.journal with `Torn _ -> true | _ -> false)
                 r.Store.shard_reports));
        let sh = open_exn (sharded_config dir) in
        Fun.protect ~finally:(fun () -> Store.close sh) @@ fun () ->
        List.iteri
          (fun u before ->
            check_string "recovers last committed state" before
              (snapshot sh (user u)))
          committed);
    test_case "stale journal after crash-mid-compaction is discarded"
      (fun () ->
        with_tmp_dir @@ fun dir ->
        (* High ratio: commit leaves the ops in the journal. *)
        let cfg = { (sharded_config dir) with Store.compact_ratio = 1e9 } in
        let sh = open_exn ~prior:(make_prior ()) cfg in
        train_all sh;
        Store.commit sh;
        let pre = List.map (fun j -> (j, read_file j)) (journal_files dir) in
        Store.compact_all sh;
        let committed = List.map (fun u -> snapshot sh (user u)) [ 0; 1; 2 ] in
        Store.close sh;
        (* Simulate a compaction that crashed after renaming the new
           segment but before renaming the fresh journal: the old
           journal (whose ops the new segment already contains) is
           still on disk.  Its header CRC no longer matches the
           segment, so replaying it would double-apply every op. *)
        List.iter (fun (j, data) -> write_file j data) pre;
        (match Store.verify_dir dir with
        | Error e -> Alcotest.fail ("verify_dir: " ^ e)
        | Ok r ->
            check_bool "verify reports stale journals" true
              (List.exists
                 (fun (s : Store.shard_report) -> s.Store.journal = `Stale)
                 r.Store.shard_reports));
        let sh = open_exn cfg in
        Fun.protect ~finally:(fun () -> Store.close sh) @@ fun () ->
        List.iteri
          (fun u want ->
            check_string "no double-apply" want (snapshot sh (user u)))
          committed);
    test_case "corrupt segment is flagged by verify_dir" (fun () ->
        with_tmp_dir @@ fun dir ->
        let sh = open_exn ~prior:(make_prior ()) (sharded_config dir) in
        train_all sh;
        Store.compact_all sh;
        Store.close sh;
        let seg =
          (* The largest segment: big enough that a mid-file bit flip
             lands inside user data, not the header. *)
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".seg")
          |> List.map (Filename.concat dir)
          |> List.sort (fun a b ->
                 compare (Unix.stat b).Unix.st_size (Unix.stat a).Unix.st_size)
          |> List.hd
        in
        let data = Bytes.of_string (read_file seg) in
        let mid = Bytes.length data / 2 in
        Bytes.set data mid
          (if Bytes.get data mid = 'x' then 'y' else 'x');
        write_file seg (Bytes.to_string data);
        match Store.verify_dir dir with
        | Error e -> Alcotest.fail ("verify_dir: " ^ e)
        | Ok r ->
            check_bool "verify reports a corrupt segment" true
              (List.exists
                 (fun (s : Store.shard_report) ->
                   match s.Store.segment with `Corrupt _ -> true | _ -> false)
                 r.Store.shard_reports));
  ]

(* ------------------------------------------------------------------ *)
(* Semantics details. *)

let semantics_tests =
  [
    test_case "train_many k then k untrains returns to the prior" (fun () ->
        with_tmp_dir @@ fun dir ->
        let sh = open_exn ~prior:(make_prior ()) (sharded_config dir) in
        Fun.protect ~finally:(fun () -> Store.close sh) @@ fun () ->
        let before = snapshot sh "alice" in
        Store.train_many sh ~user:"alice" Label.Spam messages.(0) 3;
        for _ = 1 to 3 do
          Store.untrain sh ~user:"alice" Label.Spam messages.(0)
        done;
        check_string "round trip" before (snapshot sh "alice"));
    test_case "untrain of a never-trained message mutates nothing" (fun () ->
        with_tmp_dir @@ fun dir ->
        let sh = open_exn ~prior:(make_prior ()) (sharded_config dir) in
        Store.train sh ~user:"alice" Label.Ham messages.(1);
        let before = snapshot sh "alice" in
        let ops_before = (Store.stats sh).Store.journal_ops in
        check_bool "raises" true
          (match Store.untrain sh ~user:"alice" Label.Spam messages.(0) with
          | () -> false
          | exception Invalid_argument _ -> true);
        check_string "state untouched" before (snapshot sh "alice");
        check_int "nothing journaled" ops_before
          (Store.stats sh).Store.journal_ops;
        Store.close sh;
        (* And nothing of it survives a reopen either. *)
        let sh = open_exn (sharded_config dir) in
        Fun.protect ~finally:(fun () -> Store.close sh) @@ fun () ->
        check_string "disk untouched" before (snapshot sh "alice"));
    test_case "evict_all drops overlays without losing state" (fun () ->
        with_tmp_dir @@ fun dir ->
        let sh = open_exn ~prior:(make_prior ()) (sharded_config dir) in
        Fun.protect ~finally:(fun () -> Store.close sh) @@ fun () ->
        train_all sh;
        let want = List.map (fun u -> snapshot sh (user u)) [ 0; 1; 2 ] in
        Store.evict_all sh;
        check_int "cache empty" 0 (Store.stats sh).Store.cached;
        List.iteri
          (fun u w ->
            check_string "cold rematerialization" w (snapshot sh (user u)))
          want);
    test_case "stats counters move" (fun () ->
        with_tmp_dir @@ fun dir ->
        let sh = open_exn ~prior:(make_prior ()) (sharded_config dir) in
        Fun.protect ~finally:(fun () -> Store.close sh) @@ fun () ->
        (* 8 users through a 2-slot cache: evictions are forced. *)
        for i = 0 to 7 do
          Store.train sh ~user:(user i) Label.Spam messages.(i mod 8)
        done;
        let s = Store.stats sh in
        check_bool "ops journaled" true (s.Store.journal_ops >= 8);
        check_bool "bytes journaled" true (s.Store.journal_bytes > 0);
        check_bool "evictions under pressure" true (s.Store.evictions > 0));
    test_case "is_store_dir sniffs manifests only" (fun () ->
        with_tmp_dir @@ fun dir ->
        check_bool "plain dir" false (Store.is_store_dir dir);
        let sh = open_exn (sharded_config dir) in
        Store.close sh;
        check_bool "store dir" true (Store.is_store_dir dir));
  ]

let () =
  Alcotest.run "store"
    [
      ("differential", differential_tests);
      ("crash", crash_tests);
      ("semantics", semantics_tests);
    ]
