(* Tests for the observability layer: counter/span bookkeeping, the
   JSONL trace sink (validated with a small hand-rolled checker — the
   emitter must not be trusted to check itself), and the contract that
   aggregate counters are invariant under the jobs setting. *)

module Obs = Spamlab_obs.Obs
module Json = Spamlab_obs.Json
open Spamlab_parallel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let test_case name f = Alcotest.test_case name `Quick f

(* Every test that enables observability must disable it again, or the
   global flags leak into later tests. *)
let with_obs f =
  Fun.protect
    ~finally:(fun () ->
      Obs.stop ();
      Obs.reset ())
    f

let with_trace f =
  let path = Filename.temp_file "spamlab-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      with_obs (fun () ->
          Obs.start_trace ~path;
          f ());
      In_channel.with_open_text path In_channel.input_lines)

(* ------------------------------------------------------------------ *)
(* A minimal JSON object scanner: validates one flat JSONL object of
   string/number fields and returns its key/value pairs (numbers as
   strings).  Fails on anything the trace format does not emit. *)

let parse_flat_json line =
  let n = String.length line in
  let fail msg = Alcotest.failf "%s in line %S" msg line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %C at %d" c !pos)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                (match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> ()
                | _ -> fail "bad \\u escape");
                advance ()
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some '0' .. '9' ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected a number";
    String.sub line start (!pos - start)
  in
  expect '{';
  let fields = ref [] in
  let rec members () =
    let key = parse_string () in
    expect ':';
    let value =
      match peek () with Some '"' -> parse_string () | _ -> parse_number ()
    in
    fields := (key, value) :: !fields;
    match peek () with
    | Some ',' ->
        advance ();
        members ()
    | _ -> ()
  in
  if peek () <> Some '}' then members ();
  expect '}';
  if !pos <> n then fail "trailing garbage";
  List.rev !fields

let field key fields =
  match List.assoc_opt key fields with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" key

(* ------------------------------------------------------------------ *)

let counter_tests =
  [
    test_case "counters are inert when disabled" (fun () ->
        Obs.reset ();
        let c = Obs.counter "test.inert" in
        Obs.add c 5;
        Obs.incr c;
        check_int "stays zero" 0 (Obs.counter_value "test.inert"));
    test_case "counters accumulate when enabled" (fun () ->
        with_obs (fun () ->
            Obs.enable_metrics ();
            let c = Obs.counter "test.accum" in
            Obs.add c 5;
            Obs.incr c;
            check_int "summed" 6 (Obs.counter_value "test.accum"));
        Obs.reset ());
    test_case "snapshot omits zero counters and sorts" (fun () ->
        with_obs (fun () ->
            Obs.enable_metrics ();
            ignore (Obs.counter "test.zero");
            Obs.add (Obs.counter "test.b") 2;
            Obs.add (Obs.counter "test.a") 1;
            let snap =
              List.filter
                (fun (name, _) -> String.length name >= 5
                                  && String.sub name 0 5 = "test.")
                (Obs.counters_snapshot ())
            in
            check_bool "sorted, no zeros" true
              (snap = [ ("test.a", 1); ("test.b", 2) ]));
        Obs.reset ());
    test_case "span is a pass-through when disabled" (fun () ->
        Obs.reset ();
        check_int "result" 42 (Obs.span "test.span" (fun () -> 42));
        check_int "not recorded" 0 (Obs.span_count "test.span"));
    test_case "span records count and re-raises" (fun () ->
        with_obs (fun () ->
            Obs.enable_metrics ();
            ignore (Obs.span "test.span" (fun () -> 1));
            check_bool "exception propagates" true
              (try
                 ignore (Obs.span "test.span" (fun () -> failwith "boom"));
                 false
               with Failure _ -> true);
            check_int "both recorded" 2 (Obs.span_count "test.span"));
        Obs.reset ());
  ]

(* ------------------------------------------------------------------ *)

let trace_tests =
  [
    test_case "trace is valid JSONL with balanced spans" (fun () ->
        let lines =
          with_trace (fun () ->
              let c = Obs.counter "test.trace.work" in
              ignore
                (Obs.span "outer" (fun () ->
                     Obs.add c 3;
                     Obs.span "inner" (fun () -> 7))))
        in
        check_bool "non-empty" true (lines <> []);
        let parsed = List.map parse_flat_json lines in
        (* First line is the meta header. *)
        (match parsed with
        | meta :: _ ->
            check_str "meta" "meta" (field "ev" meta);
            check_str "format" "spamlab-trace" (field "format" meta)
        | [] -> Alcotest.fail "empty trace");
        let opens = Hashtbl.create 8 in
        let closes = Hashtbl.create 8 in
        List.iter
          (fun fields ->
            match field "ev" fields with
            | "span_open" -> Hashtbl.replace opens (field "id" fields) fields
            | "span_close" -> Hashtbl.replace closes (field "id" fields) fields
            | "meta" | "counter" -> ()
            | ev -> Alcotest.failf "unknown event %S" ev)
          parsed;
        check_int "two spans" 2 (Hashtbl.length opens);
        check_int "balanced" (Hashtbl.length opens) (Hashtbl.length closes);
        Hashtbl.iter
          (fun id o ->
            match Hashtbl.find_opt closes id with
            | None -> Alcotest.failf "span id %s never closed" id
            | Some c ->
                check_str "names match" (field "name" o) (field "name" c);
                check_bool "duration non-negative" true
                  (int_of_string (field "dur_ns" c) >= 0))
          opens;
        (* Counters are flushed as events on stop. *)
        check_bool "counter event present" true
          (List.exists
             (fun fields ->
               field "ev" fields = "counter"
               && field "name" fields = "test.trace.work"
               && field "value" fields = "3")
             parsed);
        Obs.reset ());
    test_case "escape_string survives adversarial tokens" (fun () ->
        let nasty = "a\"b\\c\td\ne\rf\x01g" in
        let line = Json.line [ Json.str "token" nasty ] in
        let fields = parse_flat_json line in
        (* The validator unescapes simple escapes; \u escapes are checked
           for shape above, so compare the printable skeleton. *)
        check_bool "round-trips through the validator" true
          (String.length (field "token" fields) > 0));
    test_case "start_trace twice is refused" (fun () ->
        let path = Filename.temp_file "spamlab-trace" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            with_obs (fun () ->
                Obs.start_trace ~path;
                check_bool "second sink refused" true
                  (try
                     Obs.start_trace ~path;
                     false
                   with Invalid_argument _ -> true));
            Obs.reset ()));
  ]

(* ------------------------------------------------------------------ *)
(* The acceptance contract: experiment-layer counters are identical at
   every jobs setting.  Runs the poisoning sweep (the counter-bearing
   hot path) under pools of different widths over identical inputs. *)

let counted_work pool =
  let inputs = Array.init 16 (fun i -> i) in
  let c = Obs.counter "test.invariant.items" in
  ignore
    (Pool.map_array pool
       (fun i ->
         Obs.add c (1 + (i mod 3));
         i)
       inputs)

let invariance_tests =
  [
    test_case "counters identical at jobs=1 and jobs=4" (fun () ->
        let totals =
          List.map
            (fun jobs ->
              with_obs (fun () ->
                  Obs.enable_metrics ();
                  let pool = Pool.create ~jobs in
                  Fun.protect
                    ~finally:(fun () -> Pool.shutdown pool)
                    (fun () -> counted_work pool);
                  let v = Obs.counter_value "test.invariant.items" in
                  Obs.reset ();
                  v))
            [ 1; 4 ]
        in
        match totals with
        | [ at1; at4 ] ->
            check_bool "non-trivial" true (at1 > 0);
            check_int "invariant" at1 at4
        | _ -> assert false);
    test_case "eval counters invariant across jobs for a real sweep"
      (fun () ->
        let run_sweep jobs =
          with_obs (fun () ->
              Obs.enable_metrics ();
              let lab =
                Spamlab_eval.Lab.create ~seed:7 ~scale:0.02 ~jobs ()
              in
              Fun.protect
                ~finally:(fun () -> Spamlab_eval.Lab.shutdown lab)
                (fun () ->
                  ignore
                    (Spamlab_eval.Dictionary_exp.run lab
                       (Spamlab_eval.Params.dictionary ~scale:0.02 ())));
              let messages = Obs.counter_value "eval.messages_classified" in
              let tokens = Obs.counter_value "eval.tokens_scored" in
              Obs.reset ();
              (messages, tokens))
        in
        let m1, t1 = run_sweep 1 in
        let m2, t2 = run_sweep 3 in
        check_bool "messages counted" true (m1 > 0);
        check_bool "tokens counted" true (t1 > 0);
        check_int "messages invariant" m1 m2;
        check_int "tokens invariant" t1 t2);
  ]

let () =
  Alcotest.run "spamlab_obs"
    [
      ("counters", counter_tests); ("trace", trace_tests);
      ("jobs-invariance", invariance_tests);
    ]
