(* Tests for the evaluation library: confusion accounting, rendering,
   parameters, poisoning plumbing, the lab and the registry. *)

open Spamlab_eval
module Label = Spamlab_spambayes.Label
module Options = Spamlab_spambayes.Options
module Filter = Spamlab_spambayes.Filter
module Token_db = Spamlab_spambayes.Token_db
module Dataset = Spamlab_corpus.Dataset

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let test_case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Confusion                                                           *)

let confusion_tests =
  [
    test_case "counts and rates" (fun () ->
        let c = Confusion.create () in
        Confusion.add c Label.Ham Label.Ham_v;
        Confusion.add c Label.Ham Label.Unsure_v;
        Confusion.add c Label.Ham Label.Spam_v;
        Confusion.add c Label.Ham Label.Spam_v;
        Confusion.add c Label.Spam Label.Spam_v;
        Confusion.add c Label.Spam Label.Ham_v;
        check_int "total" 6 (Confusion.total c);
        check_int "ham row" 4 (Confusion.total_ham c);
        check_int "spam row" 2 (Confusion.total_spam c);
        check_int "ham as spam" 2 (Confusion.count c Label.Ham Label.Spam_v);
        check_float "ham->spam rate" 0.5 (Confusion.ham_as_spam_rate c);
        check_float "ham->unsure rate" 0.25 (Confusion.ham_as_unsure_rate c);
        check_float "ham misclassified" 0.75 (Confusion.ham_misclassified_rate c);
        check_float "spam->ham rate" 0.5 (Confusion.spam_as_ham_rate c);
        check_float "spam->unsure" 0.0 (Confusion.spam_as_unsure_rate c);
        check_float "accuracy" (2.0 /. 6.0) (Confusion.accuracy c));
    test_case "empty matrix rates are 0" (fun () ->
        let c = Confusion.create () in
        check_float "ham rate" 0.0 (Confusion.ham_as_spam_rate c);
        check_float "accuracy" 0.0 (Confusion.accuracy c));
    test_case "merge sums cell-wise" (fun () ->
        let a = Confusion.create () in
        let b = Confusion.create () in
        Confusion.add a Label.Ham Label.Ham_v;
        Confusion.add b Label.Ham Label.Ham_v;
        Confusion.add b Label.Spam Label.Unsure_v;
        let m = Confusion.merge a b in
        check_int "ham-ham" 2 (Confusion.count m Label.Ham Label.Ham_v);
        check_int "spam-unsure" 1 (Confusion.count m Label.Spam Label.Unsure_v);
        (* Inputs are untouched. *)
        check_int "a intact" 1 (Confusion.count a Label.Ham Label.Ham_v));
    test_case "pp renders" (fun () ->
        let c = Confusion.create () in
        Confusion.add c Label.Ham Label.Ham_v;
        let s = Format.asprintf "%a" Confusion.pp c in
        check_bool "mentions gold" true (String.length s > 10));
    test_case "cells/of_cells round-trip" (fun () ->
        let c = Confusion.create () in
        Confusion.add c Label.Ham Label.Ham_v;
        Confusion.add c Label.Ham Label.Spam_v;
        Confusion.add c Label.Spam Label.Unsure_v;
        Confusion.add c Label.Spam Label.Spam_v;
        match Confusion.of_cells (Confusion.cells c) with
        | None -> Alcotest.fail "round-trip lost the matrix"
        | Some c' ->
            List.iter
              (fun gold ->
                List.iter
                  (fun v ->
                    check_int "cell" (Confusion.count c gold v)
                      (Confusion.count c' gold v))
                  [ Label.Ham_v; Label.Unsure_v; Label.Spam_v ])
              [ Label.Ham; Label.Spam ]);
    test_case "of_cells rejects bad shapes" (fun () ->
        check_bool "short" true (Confusion.of_cells [| 1; 2 |] = None);
        check_bool "negative" true
          (Confusion.of_cells [| 0; 0; -1; 0; 0; 0 |] = None));
  ]

(* ------------------------------------------------------------------ *)
(* Table and Plot                                                      *)

let table_tests =
  [
    test_case "render aligns columns" (fun () ->
        let s =
          Table.render ~header:[ "aa"; "b" ]
            ~rows:[ [ "1"; "22" ]; [ "333"; "4" ] ]
        in
        let lines = String.split_on_char '\n' s in
        (match lines with
        | header :: rule :: _ ->
            check_bool "rule dashes" true (String.for_all (( = ) '-') rule);
            check_bool "rule covers header" true
              (String.length rule >= String.length (String.trim header))
        | _ -> Alcotest.fail "too short");
        check_int "line count" 5 (List.length lines));
    test_case "render pads short rows" (fun () ->
        let s = Table.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "x" ] ] in
        check_bool "no exception, has x" true (String.contains s 'x'));
    test_case "render rejects empty header" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Table.render: empty header") (fun () ->
            ignore (Table.render ~header:[] ~rows:[])));
    test_case "render_kv aligns keys" (fun () ->
        let s = Table.render_kv [ ("k", "v"); ("longer", "w") ] in
        check_bool "has both" true
          (String.length s > 10 && String.contains s 'w'));
    test_case "pct and f2" (fun () ->
        check_str "pct" "36.3" (Table.pct 0.363);
        check_str "f2" "1.50" (Table.f2 1.5));
  ]

let plot_tests =
  [
    test_case "line_chart shows series glyphs and legend" (fun () ->
        let s =
          Plot.line_chart ~x_label:"x" ~y_label:"y"
            [ ("first", [ (0.0, 0.0); (1.0, 1.0) ]);
              ("second", [ (0.0, 1.0); (1.0, 0.0) ]) ]
        in
        check_bool "glyph *" true (String.contains s '*');
        check_bool "glyph o" true (String.contains s 'o');
        check_bool "legend" true
          (String.length s > 0
          && Option.is_some
               (String.index_opt s '='));
    );
    test_case "line_chart with no data" (fun () ->
        check_str "empty" "(no data)\n"
          (Plot.line_chart ~x_label:"x" ~y_label:"y" [ ("e", []) ]));
    test_case "bar_chart lengths scale with values" (fun () ->
        let s = Plot.bar_chart ~title:"t" [ ("a", 10.0); ("b", 5.0) ] in
        let count line =
          String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 line
        in
        match String.split_on_char '\n' s with
        | _title :: a :: b :: _ ->
            check_bool "a longer" true (count a > count b)
        | _ -> Alcotest.fail "unexpected shape");
    test_case "stacked_bars emits one row per entry" (fun () ->
        let s =
          Plot.stacked_bars ~title:"t" ~segments:[ "spam"; "unsure"; "ham" ]
            [ ("row1", [ 50.0; 25.0; 25.0 ]); ("row2", [ 0.0; 0.0; 100.0 ]) ]
        in
        let lines =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
        in
        check_int "rows + title" 3 (List.length lines));
  ]

(* ------------------------------------------------------------------ *)
(* Params                                                              *)

let params_tests =
  [
    test_case "paper scale matches Table 1" (fun () ->
        let d = Params.dictionary () in
        check_int "train" 10_000 d.Params.train_size;
        check_int "folds" 10 d.Params.folds;
        check_bool "fractions include 1%" true
          (List.mem 0.01 d.Params.attack_fractions);
        check_bool "fractions include baseline" true
          (List.mem 0.0 d.Params.attack_fractions);
        let f = Params.focused () in
        check_int "inbox" 5_000 f.Params.inbox_size;
        check_int "attack emails" 300 f.Params.attack_count;
        check_int "targets" 20 f.Params.targets;
        check_bool "probabilities" true
          (f.Params.guess_probabilities = [ 0.1; 0.3; 0.5; 0.9 ]);
        let r = Params.roni () in
        check_int "train 20" 20 r.Params.train_size;
        check_int "validation 50" 50 r.Params.validation_size;
        check_int "non-attack queries" 120 r.Params.non_attack_queries;
        let t = Params.threshold () in
        check_bool "quantiles" true (t.Params.quantiles = [ 0.05; 0.10 ]));
    test_case "scaling shrinks but respects minima" (fun () ->
        let d = Params.dictionary ~scale:0.01 () in
        check_bool "min train" true (d.Params.train_size >= 200);
        check_bool "min folds" true (d.Params.folds >= 3);
        let f = Params.focused ~scale:0.01 () in
        check_bool "min targets" true (f.Params.targets >= 5));
    test_case "scale above 1 does not shrink repetitions" (fun () ->
        let d = Params.dictionary ~scale:2.0 () in
        check_int "folds capped" 10 d.Params.folds;
        check_int "train doubled" 20_000 d.Params.train_size);
    test_case "table1 renders both scales" (fun () ->
        let s1 = Params.table1 () in
        check_bool "paper" true (String.length s1 > 100);
        let s2 = Params.table1 ~scale:0.5 () in
        check_bool "scaled note" true (String.length s2 > 100));
  ]

(* ------------------------------------------------------------------ *)
(* Poison                                                              *)

let tiny_examples =
  Array.init 40 (fun i ->
      let label = if i mod 2 = 0 then Label.Ham else Label.Spam in
      let tokens =
        match label with
        | Label.Ham -> [| "meeting"; "budget"; "uniq" ^ string_of_int i |]
        | Label.Spam -> [| "cheap"; "pills"; "uniq" ^ string_of_int i |]
      in
      Dataset.of_tokens label tokens ~raw_token_count:3)

let poison_tests =
  [
    test_case "attack_count reproduces the paper's 101" (fun () ->
        check_int "1% of 10000" 101
          (Poison.attack_count ~train_size:10_000 ~fraction:0.01);
        check_int "zero" 0 (Poison.attack_count ~train_size:10_000 ~fraction:0.0);
        check_int "10%" 1111
          (Poison.attack_count ~train_size:10_000 ~fraction:0.10));
    test_case "attack_count validates the fraction" (fun () ->
        Alcotest.check_raises "1.0"
          (Invalid_argument "Poison.attack_count: fraction must lie in [0,1)")
          (fun () -> ignore (Poison.attack_count ~train_size:10 ~fraction:1.0));
        Alcotest.check_raises "negative"
          (Invalid_argument "Poison.attack_count: fraction must lie in [0,1)")
          (fun () -> ignore (Poison.attack_count ~train_size:10 ~fraction:(-0.1)));
        Alcotest.check_raises "nan"
          (Invalid_argument "Poison.attack_count: fraction must lie in [0,1)")
          (fun () -> ignore (Poison.attack_count ~train_size:10 ~fraction:Float.nan)));
    test_case "attack_count refuses to overflow near fraction 1" (fun () ->
        (* n·f/(1−f) blows past max_int as f → 1, where int_of_float is
           undefined — must raise, not silently return garbage. *)
        let just_under_one = 1.0 -. epsilon_float in
        Alcotest.check_raises "overflow"
          (Invalid_argument "Poison.attack_count: attack volume overflows")
          (fun () ->
            ignore
              (Poison.attack_count ~train_size:10_000
                 ~fraction:just_under_one));
        (* Large-but-finite volumes still work. *)
        check_int "50%" 10_000
          (Poison.attack_count ~train_size:10_000 ~fraction:0.5));
    test_case "sweep equals one poisoned copy per grid point" (fun () ->
        let base =
          Poison.base_filter Spamlab_tokenizer.Tokenizer.spambayes tiny_examples
        in
        let payload = [| "cheap"; "pills"; "meeting"; "unseen-token" |] in
        (* Deliberately unsorted counts: results must come back in input
           order. *)
        let counts = [ 50; 0; 7; 500 ] in
        let swept = Poison.sweep base ~payload ~counts tiny_examples in
        let naive =
          List.map
            (fun count ->
              Poison.score_examples
                (Poison.poisoned base ~payload ~count)
                tiny_examples)
            counts
        in
        check_bool "bit-identical scores" true (swept = naive);
        (* The sweep mutated nothing. *)
        check_int "base nspam intact" 20 (Token_db.nspam (Filter.db base)));
    test_case "base_filter trains everything" (fun () ->
        let f =
          Poison.base_filter Spamlab_tokenizer.Tokenizer.spambayes tiny_examples
        in
        check_int "nham" 20 (Token_db.nham (Filter.db f));
        check_int "nspam" 20 (Token_db.nspam (Filter.db f)));
    test_case "poisoned copies, never mutates the base" (fun () ->
        let base =
          Poison.base_filter Spamlab_tokenizer.Tokenizer.spambayes tiny_examples
        in
        let poisoned =
          Poison.poisoned base ~payload:[| "meeting"; "budget" |] ~count:50
        in
        check_int "base nspam" 20 (Token_db.nspam (Filter.db base));
        check_int "poisoned nspam" 70 (Token_db.nspam (Filter.db poisoned)));
    test_case "score_examples + confusion_of_scores coherent" (fun () ->
        let base =
          Poison.base_filter Spamlab_tokenizer.Tokenizer.spambayes tiny_examples
        in
        let scores = Poison.score_examples base tiny_examples in
        check_int "one score per example" 40 (Array.length scores);
        let c = Poison.confusion_of_scores Options.default scores in
        check_int "total" 40 (Confusion.total c);
        (* On its own training data the filter separates the classes. *)
        check_bool "accuracy high" true (Confusion.accuracy c > 0.9));
  ]

(* ------------------------------------------------------------------ *)
(* Lab and Registry                                                    *)

let lab_tests =
  [
    test_case "lab is deterministic in its seed" (fun () ->
        let a = Lab.create ~seed:5 ~scale:0.05 () in
        let b = Lab.create ~seed:5 ~scale:0.05 () in
        let ca = Lab.corpus a ~name:"x" ~size:20 ~spam_fraction:0.5 in
        let cb = Lab.corpus b ~name:"x" ~size:20 ~spam_fraction:0.5 in
        check_bool "same tokens" true
          (Array.for_all2
             (fun (e1 : Dataset.example) (e2 : Dataset.example) ->
               e1.Dataset.tokens = e2.Dataset.tokens)
             ca cb));
    test_case "word sources have requested sizes" (fun () ->
        let lab = Lab.create ~seed:1 ~scale:0.05 () in
        check_int "aspell" 5_000 (Array.length (Lab.aspell lab ~size:5_000));
        check_int "usenet" 4_000 (Array.length (Lab.usenet_top lab ~size:4_000));
        check_bool "optimal nonempty" true
          (Array.length (Lab.optimal_words lab) > 10_000));
    test_case "accessors" (fun () ->
        let lab = Lab.create ~seed:9 ~scale:0.3 () in
        check_int "seed" 9 (Lab.seed lab);
        Alcotest.(check (float 1e-12)) "scale" 0.3 (Lab.scale lab));
    test_case "corpus cache hit returns the same examples" (fun () ->
        let module Obs = Spamlab_obs.Obs in
        let lab = Lab.create ~seed:11 ~scale:0.05 () in
        Obs.enable_metrics ();
        Obs.reset ();
        Fun.protect ~finally:Obs.stop (fun () ->
            let c1 = Lab.corpus lab ~name:"cache" ~size:30 ~spam_fraction:0.5 in
            let c2 = Lab.corpus lab ~name:"cache" ~size:30 ~spam_fraction:0.5 in
            (* Fresh copies of one cached array: callers may shuffle
               independently, but the examples themselves are shared. *)
            check_bool "distinct arrays" false (c1 == c2);
            Array.iteri
              (fun i e1 -> check_bool "shared example" true (e1 == c2.(i)))
              c1;
            (* First call misses both the message and example caches;
               the second hits the example cache only. *)
            check_int "misses" 2 (Obs.counter_value "lab.corpus_cache.miss");
            check_int "hits" 1 (Obs.counter_value "lab.corpus_cache.hit")));
    test_case "corpus streams are independent per name" (fun () ->
        let lab = Lab.create ~seed:11 ~scale:0.05 () in
        let a = Lab.corpus lab ~name:"left" ~size:30 ~spam_fraction:0.5 in
        let b = Lab.corpus lab ~name:"right" ~size:30 ~spam_fraction:0.5 in
        check_bool "different worlds" false
          (Array.for_all2
             (fun (e1 : Dataset.example) (e2 : Dataset.example) ->
               e1.Dataset.tokens = e2.Dataset.tokens)
             a b));
    test_case "corpus and corpus_messages share the message cache" (fun () ->
        let module Obs = Spamlab_obs.Obs in
        let lab = Lab.create ~seed:11 ~scale:0.05 () in
        Obs.enable_metrics ();
        Obs.reset ();
        Fun.protect ~finally:Obs.stop (fun () ->
            let _ = Lab.corpus lab ~name:"shared" ~size:30 ~spam_fraction:0.5 in
            let _ =
              Lab.corpus_messages lab ~name:"shared" ~size:30 ~spam_fraction:0.5
            in
            check_int "one generation" 2
              (Obs.counter_value "lab.corpus_cache.miss");
            check_int "message-cache hit" 1
              (Obs.counter_value "lab.corpus_cache.hit")));
    test_case "usenet_top is safe under concurrent first use" (fun () ->
        (* Regression for the unsynchronized usenet_full memoization:
           racing domains must agree on the ranked word list. *)
        let lab = Lab.create ~seed:13 ~scale:0.05 () in
        let read () = Lab.usenet_top lab ~size:500 in
        let domains = List.init 4 (fun _ -> Domain.spawn read) in
        let results = List.map Domain.join domains in
        let expected = read () in
        List.iter
          (fun words -> check_bool "same ranking" true (words = expected))
          results);
  ]

let registry_tests =
  [
    test_case "all experiments present with unique ids" (fun () ->
        check_int "count" 20 (List.length Registry.all);
        let ids = Registry.ids in
        check_int "unique" (List.length ids)
          (List.length (List.sort_uniq compare ids));
        List.iter
          (fun id -> check_bool id true (Registry.find id <> None))
          [
            "table1"; "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "roni"; "tokens";
            "ablate-disc"; "ablate-band"; "ablate-smooth"; "ablate-coverage";
            "pseudospam"; "goodword"; "roni-sweep"; "timeline"; "tokenizers"; "budget"; "corpus"; "stealth";
          ]);
    test_case "find of unknown id is None" (fun () ->
        check_bool "none" true (Registry.find "fig99" = None));
    test_case "table1 experiment runs" (fun () ->
        match Registry.find "table1" with
        | None -> Alcotest.fail "missing"
        | Some e ->
            let lab = Lab.create ~seed:1 ~scale:0.05 () in
            check_bool "output" true
              (String.length (e.Registry.run lab) > 100));
  ]

(* ------------------------------------------------------------------ *)
(* Ablations and extensions                                            *)

let extension_tests =
  let lab = Lab.create ~seed:21 ~scale:0.05 () in
  [
    test_case "discriminator sweep produces a row per setting" (fun () ->
        let rows = Ablation.discriminator_sweep lab in
        check_int "rows" 4 (List.length rows);
        (* Tiny caps lose clean accuracy relative to the default. *)
        let by_setting s =
          List.find (fun (r : Ablation.row) -> r.Ablation.setting = s) rows
        in
        let tiny = by_setting "max_discriminators=10" in
        let default = by_setting "max_discriminators=150" in
        check_bool "tiny cap no better clean" true
          (tiny.Ablation.clean_ham_misclassified
           >= default.Ablation.clean_ham_misclassified));
    test_case "coverage sweep is monotone in attacker knowledge" (fun () ->
        let rows = Ablation.coverage_sweep lab in
        check_int "points" 5 (List.length rows);
        let misclassified = List.map (fun (_, _, m) -> m) rows in
        let rec non_decreasing = function
          | a :: (b :: _ as rest) -> a <= b +. 15.0 && non_decreasing rest
          | _ -> true
        in
        (* Allow sampling noise but demand the overall trend. *)
        check_bool "trend" true (non_decreasing misclassified);
        let last = List.nth misclassified 4 in
        let first = List.hd misclassified in
        check_bool "full knowledge worst" true (last > first));
    test_case "pseudospam delivers the campaign without ham damage" (fun () ->
        let points = Extension_exp.pseudospam lab in
        let baseline = List.hd points in
        let strongest = List.nth points (List.length points - 1) in
        check_bool "baseline blocked" true
          (baseline.Extension_exp.campaign_spam_as_ham < 10.0);
        check_bool "attack delivers" true
          (strongest.Extension_exp.campaign_spam_missed
           > baseline.Extension_exp.campaign_spam_missed);
        (* Relative check: whitewashing spam as ham must not hurt ham
           delivery (small-scale baselines carry some clean unsure). *)
        check_bool "ham unharmed" true
          (strongest.Extension_exp.ham_damage
          <= baseline.Extension_exp.ham_damage +. 3.0));
    test_case "good-word evasion grows with the budget" (fun () ->
        let points = Extension_exp.good_word lab in
        let rate b =
          (List.find
             (fun (p : Extension_exp.good_word_point) ->
               p.Extension_exp.words_budget = b)
             points)
            .Extension_exp.evasion_rate
        in
        check_bool "zero budget, no evasion" true (rate 0 = 0.0);
        check_bool "big budget evades more" true (rate 200 >= rate 10);
        check_bool "big budget evades a lot" true (rate 200 > 50.0));
    test_case "attack transfers across tokenizers" (fun () ->
        let points = Extension_exp.tokenizer_comparison lab in
        check_int "three filters" 3 (List.length points);
        List.iter
          (fun (p : Extension_exp.tokenizer_point) ->
            (* Tiny-scale corpora carry noticeable clean unsure mass;
               the property under test is the attack delta, below. *)
            check_bool
              (p.Extension_exp.tokenizer_name ^ " clean ok") true
              (p.Extension_exp.clean_ham_misclassified < 30.0);
            check_bool
              (p.Extension_exp.tokenizer_name ^ " attacked") true
              (p.Extension_exp.attacked_ham_misclassified
              > p.Extension_exp.clean_ham_misclassified +. 30.0))
          points);
    test_case "stealth splitting preserves coverage at lower visibility"
      (fun () ->
        let points = Extension_exp.stealth lab in
        check_int "points" 4 (List.length points);
        let first = List.hd points in
        let last = List.nth points (List.length points - 1) in
        (* The unsplit email is maximally visible; the smallest chunks
           blend in. *)
        check_bool "full email flagged" true
          (first.Extension_exp.flagged_by_size_filter = 100.0);
        check_bool "small chunks blend" true
          (last.Extension_exp.email_size_percentile
          < first.Extension_exp.email_size_percentile);
        check_bool "more emails when split" true
          (last.Extension_exp.attack_emails
          > first.Extension_exp.attack_emails);
        check_bool "damage still present" true
          (last.Extension_exp.ham_misclassified > 10.0));
    test_case "roni sweep covers the grid" (fun () ->
        let cells = Extension_exp.roni_sweep lab in
        check_int "grid" 9 (List.length cells);
        List.iter
          (fun (c : Extension_exp.roni_cell) ->
            check_bool "rates bounded" true
              (c.Extension_exp.detection_rate >= 0.0
              && c.Extension_exp.detection_rate <= 100.0
              && c.Extension_exp.false_positive_rate >= 0.0
              && c.Extension_exp.false_positive_rate <= 100.0))
          cells);
    test_case "render functions produce tables" (fun () ->
        check_bool "rows" true
          (String.length
             (Ablation.render_rows ~title:"t" (Ablation.band_sweep lab))
          > 50);
        check_bool "coverage" true
          (String.length (Ablation.render_coverage (Ablation.coverage_sweep lab))
          > 50));
  ]

(* ------------------------------------------------------------------ *)
(* Checkpoint: the resumable-sweep substrate.                          *)

let with_temp_ckpt f =
  let path = Filename.temp_file "spamlab" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let opened ~path ~params ~resume f =
  match Checkpoint.open_ ~path ~params ~resume with
  | Error e -> Alcotest.fail e
  | Ok ck -> Fun.protect ~finally:(fun () -> Checkpoint.close ck) (fun () -> f ck)

let with_lab ?checkpoint f =
  let lab = Lab.create ~seed:5 ~scale:0.05 ~jobs:2 ?checkpoint () in
  Fun.protect ~finally:(fun () -> Lab.shutdown lab) (fun () -> f lab)

let encode = string_of_int
let decode _item s = int_of_string_opt s

let checkpoint_tests =
  [
    test_case "record, find, last-wins, resume" (fun () ->
        with_temp_ckpt (fun path ->
            opened ~path ~params:"seed=1" ~resume:false (fun ck ->
                check_bool "fresh" true (Checkpoint.find ck "a/0" = None);
                Checkpoint.record ck ~key:"a/0" ~value:"41";
                Checkpoint.record ck ~key:"a/1" ~value:"x y \"quoted\"\\n";
                check_bool "found" true (Checkpoint.find ck "a/0" = Some "41");
                (* Duplicate keys are legal; the last record wins. *)
                Checkpoint.record ck ~key:"a/0" ~value:"42";
                check_int "entries count distinct keys" 2
                  (Checkpoint.entries ck);
                check_bool "last wins" true
                  (Checkpoint.find ck "a/0" = Some "42"));
            opened ~path ~params:"seed=1" ~resume:true (fun ck ->
                check_int "restored" 2 (Checkpoint.entries ck);
                check_bool "value" true (Checkpoint.find ck "a/0" = Some "42");
                check_bool "escapes round-trip" true
                  (Checkpoint.find ck "a/1" = Some "x y \"quoted\"\\n"))));
    test_case "params mismatch is refused on resume" (fun () ->
        with_temp_ckpt (fun path ->
            opened ~path ~params:"seed=1" ~resume:false (fun _ -> ());
            check_bool "refused" true
              (Result.is_error
                 (Checkpoint.open_ ~path ~params:"seed=2" ~resume:true))));
    test_case "resume=false truncates; missing file resumes fresh" (fun () ->
        with_temp_ckpt (fun path ->
            opened ~path ~params:"p" ~resume:false (fun ck ->
                Checkpoint.record ck ~key:"k" ~value:"v");
            opened ~path ~params:"p" ~resume:false (fun ck ->
                check_int "truncated" 0 (Checkpoint.entries ck));
            Sys.remove path;
            opened ~path ~params:"p" ~resume:true (fun ck ->
                check_int "fresh" 0 (Checkpoint.entries ck);
                Checkpoint.record ck ~key:"k" ~value:"v")));
    test_case "a torn trailing line is dropped, file stays appendable"
      (fun () ->
        with_temp_ckpt (fun path ->
            opened ~path ~params:"p" ~resume:false (fun ck ->
                Checkpoint.record ck ~key:"a" ~value:"1";
                Checkpoint.record ck ~key:"b" ~value:"2");
            (* Simulate a kill mid-write: half a record, no newline. *)
            let oc =
              open_out_gen [ Open_append; Open_binary ] 0o644 path
            in
            output_string oc "{\"k\":\"c\",\"va";
            close_out oc;
            opened ~path ~params:"p" ~resume:true (fun ck ->
                check_int "torn line lost, rest kept" 2
                  (Checkpoint.entries ck);
                check_bool "torn key absent" true
                  (Checkpoint.find ck "c" = None);
                Checkpoint.record ck ~key:"c" ~value:"3");
            opened ~path ~params:"p" ~resume:true (fun ck ->
                check_int "record after tear survives" 3
                  (Checkpoint.entries ck);
                check_bool "c" true (Checkpoint.find ck "c" = Some "3"))));
    test_case "checkpointed_map equals the plain map" (fun () ->
        let input = Array.init 12 (fun i -> i) in
        let plain =
          with_lab (fun lab ->
              Lab.checkpointed_map lab ~stage:"sq" ~encode ~decode
                (fun i -> i * i)
                input)
        in
        with_temp_ckpt (fun path ->
            let fresh =
              opened ~path ~params:"p" ~resume:false (fun ck ->
                  with_lab ~checkpoint:ck (fun lab ->
                      Lab.checkpointed_map lab ~stage:"sq" ~encode ~decode
                        (fun i -> i * i)
                        input))
            in
            check_bool "fresh checkpoint run" true (fresh = plain);
            (* A full resume restores every cell: nothing recomputes. *)
            let computed = Atomic.make 0 in
            let resumed =
              opened ~path ~params:"p" ~resume:true (fun ck ->
                  with_lab ~checkpoint:ck (fun lab ->
                      Lab.checkpointed_map lab ~stage:"sq" ~encode ~decode
                        (fun i ->
                          Atomic.incr computed;
                          i * i)
                        input))
            in
            check_bool "resumed run" true (resumed = plain);
            check_int "no cell recomputed" 0 (Atomic.get computed)));
    test_case "partial resume recomputes exactly the missing cells"
      (fun () ->
        let full = Array.init 10 (fun i -> i) in
        let prefix = Array.sub full 0 4 in
        with_temp_ckpt (fun path ->
            (* A "killed" sweep: only the first four cells landed. *)
            opened ~path ~params:"p" ~resume:false (fun ck ->
                with_lab ~checkpoint:ck (fun lab ->
                    ignore
                      (Lab.checkpointed_map lab ~stage:"sq" ~encode ~decode
                         (fun i -> i * i)
                         prefix)));
            let computed = Atomic.make 0 in
            let prepared = ref [||] in
            let resumed =
              opened ~path ~params:"p" ~resume:true (fun ck ->
                  with_lab ~checkpoint:ck (fun lab ->
                      Lab.checkpointed_map lab ~stage:"sq"
                        ~prepare:(fun misses -> prepared := misses)
                        ~encode ~decode
                        (fun i ->
                          Atomic.incr computed;
                          i * i)
                        full))
            in
            check_bool "identical to an uninterrupted run" true
              (resumed = Array.map (fun i -> i * i) full);
            check_int "only the six missing cells ran" 6
              (Atomic.get computed);
            check_bool "prepare saw only the misses" true
              (!prepared = Array.sub full 4 6)));
    test_case "an undecodable record is treated as a miss" (fun () ->
        with_temp_ckpt (fun path ->
            let results =
              opened ~path ~params:"p" ~resume:false (fun ck ->
                  Checkpoint.record ck ~key:"sq/2" ~value:"rot";
                  with_lab ~checkpoint:ck (fun lab ->
                      Lab.checkpointed_map lab ~stage:"sq" ~encode ~decode
                        (fun i -> i * i)
                        [| 0; 1; 2 |]))
            in
            check_bool "recomputed over the rot" true
              (results = [| 0; 1; 4 |])));
  ]

let () =
  Alcotest.run "eval"
    [
      ("confusion", confusion_tests);
      ("table", table_tests);
      ("plot", plot_tests);
      ("params", params_tests);
      ("poison", poison_tests);
      ("lab", lab_tests);
      ("checkpoint", checkpoint_tests);
      ("registry", registry_tests);
      ("extensions", extension_tests);
    ]
