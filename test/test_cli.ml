(* End-to-end tests of the spamlab command-line tool: each test drives
   the real binary through a temp directory, the way a user would. *)

(* The binary sits next to this test in the build tree; resolving it
   from the executable's own path keeps the tests independent of the
   working directory dune runs them from. *)
let binary =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "spamlab.exe"))

let tmp_dir =
  let dir = Filename.temp_file "spamlab-cli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let in_tmp name = Filename.concat tmp_dir name

let run_command args =
  let command =
    Filename.quote_command binary args
    ^ " > " ^ Filename.quote (in_tmp "stdout")
    ^ " 2> " ^ Filename.quote (in_tmp "stderr")
  in
  Sys.command command

let read_output () = In_channel.with_open_text (in_tmp "stdout") In_channel.input_all

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let test_case name f = Alcotest.test_case name `Quick f

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec scan i =
    i + m <= n && (String.sub haystack i m = needle || scan (i + 1))
  in
  scan 0

let ham_mbox = in_tmp "ham.mbox"
let spam_mbox = in_tmp "spam.mbox"
let db_file = in_tmp "filter.db"

(* Extract the first message of an mbox into a standalone .eml file. *)
let extract_first mbox target =
  match Spamlab_email.Mbox.read_file mbox with
  | Ok (msg :: _) ->
      Out_channel.with_open_text target (fun oc ->
          Out_channel.output_string oc (Spamlab_email.Rfc2822.print msg))
  | Ok [] -> Alcotest.fail "empty mbox"
  | Error e -> Alcotest.fail e

let cli_tests =
  [
    test_case "corpus generates both mboxes" (fun () ->
        check_int "exit" 0
          (run_command
             [ "corpus"; "--size"; "400"; "--seed"; "11"; "--ham"; ham_mbox;
               "--spam"; spam_mbox ]);
        check_bool "ham exists" true (Sys.file_exists ham_mbox);
        check_bool "spam exists" true (Sys.file_exists spam_mbox);
        match Spamlab_email.Mbox.read_file ham_mbox with
        | Ok msgs -> check_int "ham count" 200 (List.length msgs)
        | Error e -> Alcotest.fail e);
    test_case "corpus rejects a bad spam fraction" (fun () ->
        check_bool "nonzero exit" true
          (run_command
             [ "corpus"; "--spam-fraction"; "1.5"; "--ham"; ham_mbox;
               "--spam"; spam_mbox ]
          <> 0));
    test_case "train produces a loadable database" (fun () ->
        check_int "exit" 0
          (run_command
             [ "train"; "--ham"; ham_mbox; "--spam"; spam_mbox; "--db"; db_file ]);
        check_bool "db exists" true (Sys.file_exists db_file);
        match Spamlab_spambayes.Filter.load_file db_file with
        | Ok filter ->
            check_int "trained messages" 400
              (Spamlab_spambayes.Token_db.nham
                 (Spamlab_spambayes.Filter.db filter)
              + Spamlab_spambayes.Token_db.nspam
                  (Spamlab_spambayes.Filter.db filter))
        | Error e -> Alcotest.fail e);
    test_case "classify labels ham and spam correctly" (fun () ->
        extract_first ham_mbox (in_tmp "one_ham.eml");
        extract_first spam_mbox (in_tmp "one_spam.eml");
        check_int "exit" 0
          (run_command [ "classify"; "--db"; db_file; in_tmp "one_ham.eml" ]);
        check_bool "ham verdict" true
          (String.length (read_output ()) >= 3
          && String.sub (read_output ()) 0 3 = "ham");
        check_int "exit" 0
          (run_command [ "classify"; "--db"; db_file; in_tmp "one_spam.eml" ]);
        check_bool "spam verdict" true
          (String.length (read_output ()) >= 4
          && String.sub (read_output ()) 0 4 = "spam"));
    test_case "tokenize prints distinct tokens" (fun () ->
        check_int "exit" 0
          (run_command [ "tokenize"; in_tmp "one_spam.eml" ]);
        let lines =
          String.split_on_char '\n' (read_output ())
          |> List.filter (fun l -> l <> "")
        in
        check_bool "many tokens" true (List.length lines > 10);
        check_bool "sorted" true
          (List.sort compare lines = lines));
    test_case "attack dictionary emits the requested emails" (fun () ->
        check_int "exit" 0
          (run_command
             [ "attack"; "dictionary"; "--variant"; "usenet"; "--words";
               "5000"; "--count"; "3"; "--out"; in_tmp "attack.mbox" ]);
        match Spamlab_email.Mbox.read_file (in_tmp "attack.mbox") with
        | Ok msgs -> check_int "count" 3 (List.length msgs)
        | Error e -> Alcotest.fail e);
    test_case "roni rejects the attack email but not ordinary spam" (fun () ->
        extract_first (in_tmp "attack.mbox") (in_tmp "one_attack.eml");
        check_int "exit" 0
          (run_command
             [ "roni"; "--ham"; ham_mbox; "--spam"; spam_mbox;
               in_tmp "one_attack.eml" ]);
        check_bool "rejected" true
          (String.length (read_output ()) > 0
          && contains (read_output ()) "REJECT"));
    test_case "thresholds prints an ordered pair" (fun () ->
        check_int "exit" 0
          (run_command [ "thresholds"; "--ham"; ham_mbox; "--spam"; spam_mbox ]);
        match
          String.split_on_char '\n' (read_output ())
          |> List.filter (fun l -> l <> "")
        with
        | [ line0; line1 ] ->
            let value line =
              match String.split_on_char ' ' line with
              | [ _; v ] -> float_of_string v
              | _ -> Alcotest.fail ("bad line " ^ line)
            in
            check_bool "ordered" true (value line0 < value line1)
        | _ -> Alcotest.fail "expected two lines");
    test_case "evade pads a spam message toward ham" (fun () ->
        check_int "exit" 0
          (run_command
             [ "evade"; "--db"; db_file; in_tmp "one_spam.eml"; "--max-words";
               "120"; "--out"; in_tmp "padded.eml" ]);
        check_bool "padded written" true (Sys.file_exists (in_tmp "padded.eml")));
    test_case "stats characterizes a corpus" (fun () ->
        check_int "exit" 0
          (run_command [ "stats"; "--ham"; ham_mbox; "--spam"; spam_mbox ]);
        check_bool "mentions vocabulary" true
          (String.length (read_output ()) > 200));
    test_case "attack pseudospam emits ham-labeled attack emails" (fun () ->
        check_int "exit" 0
          (run_command
             [ "attack"; "pseudospam"; "--campaign"; in_tmp "one_spam.eml";
               "--count"; "2"; "--out"; in_tmp "pseudo.mbox" ]);
        match Spamlab_email.Mbox.read_file (in_tmp "pseudo.mbox") with
        | Ok msgs -> check_int "count" 2 (List.length msgs)
        | Error e -> Alcotest.fail e);
    test_case "experiment table1 runs" (fun () ->
        check_int "exit" 0
          (run_command [ "experiment"; "table1"; "--scale"; "0.05" ]);
        check_bool "output" true (String.length (read_output ()) > 100));
    test_case "unknown experiment fails cleanly" (fun () ->
        check_bool "nonzero" true
          (run_command [ "experiment"; "fig99" ] <> 0));
    test_case "experiment rejects --jobs 0 with the shared message" (fun () ->
        check_bool "nonzero" true
          (run_command [ "experiment"; "table1"; "--jobs"; "0" ] <> 0);
        let err =
          In_channel.with_open_text (in_tmp "stderr") In_channel.input_all
        in
        (* cmdliner may line-wrap the message, so match its head only. *)
        check_bool "shared jobs message" true
          (contains err "--jobs/SPAMLAB_JOBS must be a positive integer"));
    test_case "--trace writes JSONL without changing stdout" (fun () ->
        let trace = in_tmp "table1.jsonl" in
        check_int "exit" 0
          (run_command [ "experiment"; "table1"; "--scale"; "0.05" ]);
        let untraced = read_output () in
        check_int "exit traced" 0
          (run_command
             [ "experiment"; "table1"; "--scale"; "0.05"; "--trace"; trace ]);
        check_bool "stdout byte-identical with tracing on" true
          (read_output () = untraced);
        let lines =
          In_channel.with_open_text trace In_channel.input_lines
          |> List.filter (fun l -> l <> "")
        in
        (match lines with
        | first :: _ ->
            check_bool "meta header first" true
              (contains first "\"ev\":\"meta\""
              && contains first "spamlab-trace")
        | [] -> Alcotest.fail "empty trace");
        let count needle =
          List.length (List.filter (fun l -> contains l needle) lines)
        in
        check_bool "has experiment span" true
          (count "\"name\":\"exp/table1\"" > 0);
        check_int "spans balanced" (count "\"ev\":\"span_open\"")
          (count "\"ev\":\"span_close\""));
    test_case "--metrics dumps counters to stderr" (fun () ->
        (* table1 renders a static table, so use a (tiny) real
           experiment that actually classifies messages. *)
        check_int "exit" 0
          (run_command
             [ "experiment"; "fig1"; "--scale"; "0.02"; "--metrics" ]);
        let err =
          In_channel.with_open_text (in_tmp "stderr") In_channel.input_all
        in
        check_bool "metrics banner" true (contains err "== spamlab metrics ==");
        check_bool "messages counter present" true
          (contains err "eval.messages_classified"));
    test_case "traced counter aggregates identical at --jobs 1 and 4" (fun () ->
        let trace_for jobs path =
          check_int "exit" 0
            (run_command
               [ "experiment"; "fig1"; "--scale"; "0.02"; "--jobs";
                 string_of_int jobs; "--trace"; path ]);
          let stdout = read_output () in
          let counters =
            In_channel.with_open_text path In_channel.input_lines
            |> List.filter (fun l -> contains l "\"ev\":\"counter\"")
            |> List.sort compare
          in
          (stdout, counters)
        in
        let out1, counters1 = trace_for 1 (in_tmp "fig1-j1.jsonl") in
        let out4, counters4 = trace_for 4 (in_tmp "fig1-j4.jsonl") in
        check_bool "stdout identical across jobs" true (out1 = out4);
        check_bool "some counters recorded" true (counters1 <> []);
        check_bool "counter lines identical across jobs" true
          (counters1 = counters4));
  ]

(* Fault tolerance at the CLI boundary: db verify, graceful errors,
   quarantine, fault injection and checkpoint resume. *)
let robustness_tests =
  let read_stderr () =
    In_channel.with_open_text (in_tmp "stderr") In_channel.input_all
  in
  [
    test_case "db verify accepts a freshly trained database" (fun () ->
        check_int "exit" 0 (run_command [ "db"; "verify"; db_file ]);
        let out = read_output () in
        check_bool "ok" true (contains out ": ok");
        check_bool "version" true (contains out "format version: 3");
        check_bool "checksum" true (contains out "checksum:       ok"));
    test_case "db verify detects a flipped byte, with salvage stats"
      (fun () ->
        let bad = in_tmp "bad.db" in
        let contents =
          In_channel.with_open_bin db_file In_channel.input_all
        in
        let b = Bytes.of_string contents in
        let pos = Bytes.length b / 2 in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
        Out_channel.with_open_bin bad (fun oc ->
            Out_channel.output_bytes oc b);
        check_bool "nonzero exit" true
          (run_command [ "db"; "verify"; bad ] <> 0);
        let err = read_stderr () in
        check_bool "names the problem" true
          (contains err "corrupt token database");
        check_bool "reports salvage" true (contains err "salvageable"));
    test_case "db verify on a missing file fails cleanly" (fun () ->
        check_bool "nonzero exit" true
          (run_command [ "db"; "verify"; in_tmp "nope.db" ] <> 0);
        check_bool "no backtrace" false
          (contains (read_stderr ()) "Fatal error"));
    test_case "classify against a missing database fails cleanly" (fun () ->
        check_bool "nonzero exit" true
          (run_command
             [ "classify"; "--db"; in_tmp "nope.db"; in_tmp "one_ham.eml" ]
          <> 0);
        let err = read_stderr () in
        check_bool "names the file" true (contains err "nope.db");
        check_bool "no backtrace" false (contains err "Fatal error"));
    test_case "train quarantines unparseable messages and proceeds"
      (fun () ->
        let bad_spam = in_tmp "bad_spam.mbox" in
        let good =
          In_channel.with_open_text spam_mbox In_channel.input_all
        in
        Out_channel.with_open_text bad_spam (fun oc ->
            Out_channel.output_string oc good;
            (* One mbox chunk that is not an RFC 2822 message. *)
            Out_channel.output_string oc
              "From intruder@example.com\nthis line is no header\n\n");
        let quarantine_db = in_tmp "quarantine.db" in
        check_int "exit" 0
          (run_command
             [ "train"; "--ham"; ham_mbox; "--spam"; bad_spam; "--db";
               quarantine_db ]);
        check_bool "warned" true
          (contains (read_stderr ()) "quarantined 1 unparseable");
        match Spamlab_spambayes.Filter.load_file quarantine_db with
        | Ok filter ->
            check_int "trained on the surviving 400" 400
              (Spamlab_spambayes.Token_db.nham
                 (Spamlab_spambayes.Filter.db filter)
              + Spamlab_spambayes.Token_db.nspam
                  (Spamlab_spambayes.Filter.db filter))
        | Error e -> Alcotest.fail e);
    test_case "experiment rejects a malformed --fault-spec" (fun () ->
        check_bool "nonzero exit" true
          (run_command
             [ "experiment"; "table1"; "--fault-spec"; "pool.task:sometimes" ]
          <> 0);
        check_bool "cites the grammar" true
          (contains (read_stderr ()) "fault spec"));
    test_case "experiment rejects --resume without --checkpoint" (fun () ->
        check_bool "nonzero exit" true
          (run_command [ "experiment"; "table1"; "--resume" ] <> 0);
        check_bool "explains" true
          (contains (read_stderr ()) "--resume requires --checkpoint"));
    test_case "transient faults leave experiment output byte-identical"
      (fun () ->
        check_int "exit" 0
          (run_command [ "experiment"; "fig1"; "--scale"; "0.02" ]);
        let clean = read_output () in
        check_int "exit with faults" 0
          (run_command
             [ "experiment"; "fig1"; "--scale"; "0.02"; "--fault-spec";
               "pool.task:transient@2+5" ]);
        check_bool "byte-identical" true (read_output () = clean));
    test_case "crash mid-sweep, then --resume, reproduces the output"
      (fun () ->
        check_int "baseline exit" 0
          (run_command [ "experiment"; "fig1"; "--scale"; "0.02" ]);
        let baseline = read_output () in
        let ckpt = in_tmp "fig1.ckpt" in
        (* The injected crash kills the process right after the second
           grid point lands in the checkpoint. *)
        check_int "killed with status 70" 70
          (run_command
             [ "experiment"; "fig1"; "--scale"; "0.02"; "--checkpoint"; ckpt;
               "--fault-spec"; "checkpoint.record:crash@2" ]);
        check_bool "injected crash announced" true
          (contains (read_stderr ()) "injected crash at checkpoint.record");
        check_bool "checkpoint survives the kill" true (Sys.file_exists ckpt);
        check_int "resumed exit" 0
          (run_command
             [ "experiment"; "fig1"; "--scale"; "0.02"; "--checkpoint"; ckpt;
               "--resume" ]);
        check_bool "byte-identical to the uninterrupted run" true
          (read_output () = baseline));
  ]

let () =
  Alcotest.run "cli"
    [ ("cli", cli_tests); ("robustness", robustness_tests) ]
