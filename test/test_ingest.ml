(* Differential tests for the zero-copy ingest path (PR 6): the span
   pipeline (Tokenizer.iter_spans → Intern.intern_sub → Ingest) must
   agree with the legacy string pipeline on every registered tokenizer,
   and the raw-mbox path must agree with parse-then-tokenize after
   header suppression. *)

open Spamlab_tokenizer
module Header = Spamlab_email.Header
module Message = Spamlab_email.Message
module Mime = Spamlab_email.Mime
module Mbox = Spamlab_email.Mbox
module Intern = Spamlab_spambayes.Intern
module Ingest = Spamlab_spambayes.Ingest
module Classify = Spamlab_spambayes.Classify
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Generator = Spamlab_corpus.Generator
module Vocabulary = Spamlab_corpus.Vocabulary
module Rng = Spamlab_stats.Rng

let test_case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let msg ?(headers = []) body =
  Message.make ~headers:(Header.of_list headers) body

let small_sizes =
  {
    Vocabulary.shared = 300;
    ham_specific = 200;
    spam_specific = 150;
    colloquial = 100;
    rare_standard = 400;
    rare_nonstandard = 400;
  }

let config = Generator.default_config ~sizes:small_sizes ~seed:31 ()

let gen_message n =
  let rng = Rng.create n in
  if n mod 2 = 0 then Generator.ham config rng else Generator.spam config rng

(* ------------------------------------------------------------------ *)
(* Span path vs legacy string path                                     *)

(* Collect the span stream as strings (materializing each slice). *)
let span_stream tokenizer m =
  let acc = ref [] in
  Tokenizer.iter_spans tokenizer m
    ~span:(fun buf off len -> acc := String.sub buf off len :: !acc)
    ~token:(fun t -> acc := t :: !acc);
  List.rev !acc

let same_multiset a b =
  List.sort String.compare a = List.sort String.compare b

let check_spans_match tokenizer m =
  let legacy = Tokenizer.tokenize tokenizer m in
  let spans = span_stream tokenizer m in
  if not (same_multiset legacy spans) then
    Alcotest.failf "%s: span stream differs from tokenize\nlegacy: %s\nspans: %s"
      (Tokenizer.name tokenizer)
      (String.concat " | " legacy)
      (String.concat " | " spans)

(* Ingest-level: (unique ids, raw count) vs the legacy pipeline. *)
let check_ids_match tokenizer m =
  let tokens, raw_legacy = Tokenizer.unique_counted_tokens tokenizer m in
  let legacy_ids = Intern.intern_array tokens in
  Array.sort compare legacy_ids;
  let ids, raw_span = Ingest.unique_ids tokenizer m in
  check_int
    (Tokenizer.name tokenizer ^ ": raw count")
    raw_legacy raw_span;
  Alcotest.(check (array int))
    (Tokenizer.name tokenizer ^ ": unique ids")
    legacy_ids ids

let all_tokenizers = List.map snd Tokenizer.all

let fixture_messages =
  [
    msg "plain words only";
    msg "";
    msg ~headers:[ ("Subject", "URGENT free OFFER") ] "Buy NOW at http://spam.biz/cheap-pills or mail bob@corp.example.com";
    msg ~headers:[ ("From", "Eve Attacker <eve@evil.example>"); ("To", "victim@corp.example") ]
      "supercalifragilisticexpialidocious word v-i-a-g-r-a $99 don't";
    (* 8-bit content. *)
    msg "caf\xc3\xa9 na\xc3\xafve r\xc3\xa9sum\xc3\xa9 plain words";
    (* HTML part. *)
    Mime.make_html
      ~headers:(Header.of_list [ ("Subject", "deal") ])
      "<html><body><a href=\"http://shop.example.com/buy\">Click HERE</a> <b>great deal</b></body></html>";
    (* Base64 transfer encoding. *)
    Mime.with_base64_transfer (msg "hidden spam payload words inside base64");
    (* Quoted-printable. *)
    Mime.with_quoted_printable_transfer (msg "caf\xc3\xa9 offer= great");
    (* Received relay trail. *)
    msg
      ~headers:
        [
          ("Received", "from relay.spam.example (10.7.3.4) by mx.victim.example");
          ("Received", "from 192.168.001.001 by relay.spam.example");
        ]
      "body words here";
  ]

let span_vs_legacy_tests =
  List.concat_map
    (fun tokenizer ->
      let tname = Tokenizer.name tokenizer in
      [
        test_case (tname ^ ": fixtures, span stream = tokenize") (fun () ->
            List.iter (check_spans_match tokenizer) fixture_messages);
        test_case (tname ^ ": fixtures, unique ids = legacy ids") (fun () ->
            List.iter (check_ids_match tokenizer) fixture_messages);
        qtest ~count:60
          (tname ^ ": generated corpus, span stream = tokenize")
          QCheck2.Gen.(int_range 0 10_000)
          (fun n ->
            let m = gen_message n in
            check_spans_match tokenizer m;
            check_ids_match tokenizer m;
            true);
        qtest ~count:120
          (tname ^ ": random bodies (incl. 8-bit), span = legacy")
          QCheck2.Gen.(
            string_size ~gen:(map Char.chr (int_range 1 255)) (int_range 0 200))
          (fun body ->
            let m = msg ~headers:[ ("Subject", "Mixed CASE subject") ] body in
            check_spans_match tokenizer m;
            check_ids_match tokenizer m;
            true);
      ])
    all_tokenizers

(* ------------------------------------------------------------------ *)
(* intern_sub vs intern                                                *)

let intern_sub_tests =
  [
    qtest ~count:300 "intern_sub agrees with id on every slice"
      QCheck2.Gen.(
        pair
          (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 60))
          (pair (int_range 0 60) (int_range 0 60)))
      (fun (s, (a, b)) ->
        let n = String.length s in
        let off = min a n in
        let len = min b (n - off) in
        Intern.intern_sub s off len = Intern.id (String.sub s off len));
    qtest ~count:300 "find_sub agrees with find"
      QCheck2.Gen.(
        pair
          (string_size ~gen:(char_range 'a' 'd') (int_range 0 8))
          (string_size ~gen:(char_range 'a' 'd') (int_range 0 8)))
      (fun (prefix, w) ->
        let s = prefix ^ w in
        let off = String.length prefix in
        let len = String.length w in
        Intern.find_sub s off len = Intern.find w);
    test_case "intern_sub validates slices" (fun () ->
        Alcotest.check_raises "negative off"
          (Invalid_argument "Intern.intern_sub") (fun () ->
            ignore (Intern.intern_sub "abc" (-1) 2));
        Alcotest.check_raises "past end"
          (Invalid_argument "Intern.intern_sub") (fun () ->
            ignore (Intern.intern_sub "abc" 2 2)));
    test_case "intern_sub after freeze stays consistent" (fun () ->
        let s = "freeze-slice-token-xyzzy plus tail" in
        let id0 = Intern.intern_sub s 0 24 in
        Intern.freeze ();
        check_int "frozen lookup" id0 (Intern.intern_sub s 0 24);
        check_int "string path" id0 (Intern.id (String.sub s 0 24)));
  ]

(* ------------------------------------------------------------------ *)
(* Raw mbox path                                                       *)

(* Reference: parse with the string pipeline, drop ignored headers,
   then run the span path on the resulting message. *)
let strip_ignored m =
  let kept =
    List.filter
      (fun (name, _) -> not (Ingest.ignored_header name))
      (Header.to_list (Message.headers m))
  in
  Message.make ~headers:(Header.of_list kept) (Message.body m)

let check_raw_matches tokenizer text =
  let reference =
    List.map
      (fun m -> Ingest.unique_ids tokenizer (strip_ignored m))
      (fst (Mbox.parse_lenient text))
  in
  let raw =
    List.filter_map
      (fun (off, len) -> Ingest.unique_ids_raw tokenizer text ~off ~len)
      (Array.to_list (Ingest.raw_message_chunks text))
  in
  check_int "message count" (List.length reference) (List.length raw);
  List.iter2
    (fun (ids_ref, raw_ref) (ids_raw, raw_raw) ->
      check_int "raw token count" raw_ref raw_raw;
      Alcotest.(check (array int)) "ids" ids_ref ids_raw)
    reference raw

let mbox_of_messages msgs = Mbox.print msgs

let raw_fixture_mbox =
  mbox_of_messages
    [
      msg
        ~headers:
          [
            ("From", "alice@corp.example");
            ("Subject", "quarterly numbers");
            ("Date", "Thu, 1 Jan 1970 00:00:00 +0000");
            ("Message-Id", "<1@corp.example>");
            ("X-Spam-Status", "No, score=-1.2");
          ]
        "the numbers look Good this quarter";
      msg
        ~headers:[ ("Subject", "Free OFFER"); ("List-Id", "<bulk.example>") ]
        "visit http://spam.biz/offer NOW caf\xc3\xa9";
      (* Body needing >From unquoting. *)
      msg ~headers:[ ("Subject", "quoting") ] "From the start\nof the line";
      (* Folded header. *)
      Message.make
        ~headers:(Header.of_list [ ("Subject", "folded\nacross lines") ])
        "short body";
      Mime.with_base64_transfer
        (msg ~headers:[ ("Subject", "encoded") ] "base64 encoded body words");
    ]

let raw_tests =
  List.concat_map
    (fun tokenizer ->
      let tname = Tokenizer.name tokenizer in
      [
        test_case (tname ^ ": raw mbox = parse+suppress+spans") (fun () ->
            check_raw_matches tokenizer raw_fixture_mbox);
        test_case (tname ^ ": torn mbox drops the torn tail only") (fun () ->
            (* Cut mid-header-line so the last chunk is malformed. *)
            let cut = String.length raw_fixture_mbox - 40 in
            let torn = String.sub raw_fixture_mbox 0 cut ^ "\nbroken header line without colon\nx" in
            check_raw_matches tokenizer torn);
        qtest ~count:25 (tname ^ ": generated mboxes, raw = reference")
          QCheck2.Gen.(int_range 0 1_000)
          (fun n ->
            let msgs = List.init 4 (fun i -> gen_message ((4 * n) + i)) in
            check_raw_matches tokenizer (mbox_of_messages msgs);
            true);
      ])
    all_tokenizers

let suppression_tests =
  [
    test_case "ignored_header: bookkeeping suppressed, mined kept" (fun () ->
        List.iter
          (fun h -> check_bool h true (Ingest.ignored_header h))
          [ "Date"; "Message-Id"; "X-Spam-Status"; "List-Id"; "MIME-Version"; "return-path" ];
        List.iter
          (fun h -> check_bool h false (Ingest.ignored_header h))
          [ "Subject"; "From"; "To"; "Reply-To"; "Received"; "Content-Type";
            "Content-Transfer-Encoding"; "X-Mailer" ]);
    test_case "raw path drops suppressed header tokens" (fun () ->
        let text =
          mbox_of_messages
            [ msg ~headers:[ ("X-Spam-Status", "yes hits=99 spamword") ] "plain body" ]
        in
        let chunks = Ingest.raw_message_chunks text in
        check_int "one chunk" 1 (Array.length chunks);
        let off, len = chunks.(0) in
        let ids, _ =
          Option.get (Ingest.unique_ids_raw Tokenizer.bogofilter text ~off ~len)
        in
        let tokens = Array.map Intern.to_string ids in
        check_bool "no x-spam token" false
          (Array.exists
             (fun t ->
               String.length t >= 7 && String.sub t 0 7 = "x-spam-")
             tokens));
    test_case "empty and whitespace mboxes have no chunks" (fun () ->
        check_int "empty" 0 (Array.length (Ingest.raw_message_chunks ""));
        check_int "ws" 0 (Array.length (Ingest.raw_message_chunks " \n\t\n")));
  ]

(* ------------------------------------------------------------------ *)
(* Edge divergence: separator and tail shapes where the raw chunker
   and the lenient string parser historically disagreed               *)

(* Stronger oracle: besides token agreement on surviving messages, the
   two sides must agree on how many chunks exist and how many were
   quarantined. *)
let check_edge_agreement text =
  let kept, dropped = Mbox.parse_lenient text in
  let chunks = Ingest.raw_message_chunks text in
  let raw_kept =
    Array.to_list chunks
    |> List.filter_map (fun (off, len) ->
           Ingest.unique_ids_raw Tokenizer.bogofilter text ~off ~len)
  in
  check_int "chunks = kept + dropped" (List.length kept + dropped)
    (Array.length chunks);
  check_int "raw kept count" (List.length kept) (List.length raw_kept);
  check_raw_matches Tokenizer.bogofilter text

let sep = "From a@b Thu Jan  1 00:00:00 1970\n"

(* Building blocks for the concatenation fuzz: every shape that has
   ever confused one side of the pipeline. *)
let edge_pieces =
  [|
    sep;
    "From a@b Thu Jan  1 00:00:00 1970\r\n";
    "Subject: hello world\n";
    "Subject: crlf line\r\n";
    "X-Spam-Status: suppressed stuff\n";
    "\tcontinuation line\n";
    "\r\n";
    "\n";
    "plain body words here\n";
    ">From quoted body line\n";
    "broken header line no colon\n";
    "torn tail without newline";
  |]

let edge_tests =
  [
    test_case "CRLF-terminated From separators split identically" (fun () ->
        check_edge_agreement
          ("From a@b Thu Jan  1 00:00:00 1970\r\nSubject: one\r\n\r\n\
            body line\r\n\
            From c@d Thu Jan  1 00:00:00 1970\r\nSubject: two\r\n\r\n\
            more body\r\n"));
    test_case "torn final message without trailing newline" (fun () ->
        check_edge_agreement
          (sep ^ "Subject: whole\n\nbody\n" ^ sep ^ "Subject: torn\n\ncut of"));
    test_case "torn final headers (no blank line) quarantined on both sides"
      (fun () ->
        check_edge_agreement
          (sep ^ "Subject: whole\n\nbody\n" ^ sep ^ "Subject: no bo"));
    test_case "mbox ending in a bare separator adds no phantom message"
      (fun () ->
        (* Regression: the chunker used to emit a final empty chunk for
           a trailing separator, which the string parser never saw. *)
        check_edge_agreement (sep ^ "Subject: only\n\nbody\n" ^ sep));
    test_case "continuation of a suppressed header stays suppressed"
      (fun () ->
        (* Regression: a folded continuation after an ignored header
           made the raw path declare the whole chunk malformed. *)
        check_edge_agreement
          (sep
          ^ "X-Spam-Status: ignored value\n\tcontinuation line\n\
             Subject: kept\n\nbody words\n"));
    test_case "continuation as the first header line is malformed on both"
      (fun () ->
        check_edge_agreement (sep ^ "\tdangling continuation\n\nbody\n"));
    qtest ~count:400 "piece concatenations: chunker = lenient parser"
      QCheck2.Gen.(
        list_size (int_range 0 12)
          (int_range 0 (Array.length edge_pieces - 1)))
      (fun picks ->
        let text = String.concat "" (List.map (Array.get edge_pieces) picks) in
        check_edge_agreement text;
        true);
  ]

(* ------------------------------------------------------------------ *)
(* Batched classify                                                    *)

let classify_tests =
  [
    test_case "classify_many agrees with per-message classify" (fun () ->
        let filter = Filter.create () in
        let rng = Rng.create 5 in
        let train =
          List.init 30 (fun _ -> (Label.Ham, Generator.ham config rng))
          @ List.init 30 (fun _ -> (Label.Spam, Generator.spam config rng))
        in
        Filter.train_corpus filter train;
        let test_msgs = Array.init 40 gen_message in
        let batched = Filter.classify_many filter test_msgs in
        Array.iteri
          (fun i m ->
            let single = Filter.classify filter m in
            let b = batched.(i) in
            Alcotest.(check (float 1e-12))
              "indicator" single.Classify.indicator b.Classify.indicator;
            check_bool "verdict" true
              (single.Classify.verdict = b.Classify.verdict);
            check_bool "clues" true (single.Classify.clues = b.Classify.clues))
          test_msgs);
    test_case "classify_mbox classifies every chunk" (fun () ->
        let filter = Filter.create () in
        let rng = Rng.create 6 in
        Filter.train_corpus filter
          (List.init 20 (fun _ -> (Label.Ham, Generator.ham config rng))
          @ List.init 20 (fun _ -> (Label.Spam, Generator.spam config rng)));
        let msgs = List.init 10 gen_message in
        let text = mbox_of_messages msgs in
        let results = Filter.classify_mbox filter text in
        check_int "count" 10 (Array.length results);
        Array.iter (fun r -> check_bool "parsed" true (Option.is_some r)) results);
  ]

let () =
  Alcotest.run "ingest"
    [
      ("span-vs-legacy", span_vs_legacy_tests);
      ("intern-sub", intern_sub_tests);
      ("raw-mbox", raw_tests);
      ("suppression", suppression_tests);
      ("edge-divergence", edge_tests);
      ("classify", classify_tests);
    ]
