(* Tests for the defenses: RONI and the dynamic threshold. *)

open Spamlab_core
open Spamlab_stats
module Label = Spamlab_spambayes.Label
module Filter = Spamlab_spambayes.Filter
module Options = Spamlab_spambayes.Options
module Dataset = Spamlab_corpus.Dataset
module Tokenizer = Spamlab_tokenizer.Tokenizer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let test_case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A small generated corpus as the trusted pool: RONI's separation
   property needs realistic token statistics (rare tokens that a
   dictionary email flips), which the full generator provides. *)
let generator_config =
  Spamlab_corpus.Generator.default_config
    ~sizes:
      {
        Spamlab_corpus.Vocabulary.shared = 600;
        ham_specific = 400;
        spam_specific = 300;
        colloquial = 200;
        rare_standard = 1_500;
        rare_nonstandard = 1_500;
      }
    ~seed:1234 ()

let pool =
  let corpus =
    Spamlab_corpus.Trec.generate generator_config (Rng.create 55) ~size:200
      ~spam_fraction:0.5
  in
  Dataset.of_labeled Tokenizer.spambayes corpus

let ham_covering_attack =
  (* A dictionary-attack-like candidate: the whole ham-model support. *)
  Spamlab_corpus.Language_model.support
    generator_config.Spamlab_corpus.Generator.ham_model

let ordinary_spam =
  (Dataset.of_message Tokenizer.spambayes Label.Spam
     (Spamlab_corpus.Generator.spam generator_config (Rng.create 77)))
    .Dataset.tokens

(* ------------------------------------------------------------------ *)
(* RONI                                                                *)

let roni_tests =
  [
    test_case "default config matches the paper" (fun () ->
        let c = Roni.default_config in
        check_int "train" 20 c.Roni.train_size;
        check_int "validation" 50 c.Roni.validation_size;
        check_int "trials" 5 c.Roni.trials);
    test_case "dictionary-style candidate is rejected" (fun () ->
        let rng = Rng.create 1 in
        let a = Roni.assess rng ~pool ~candidate:ham_covering_attack in
        check_bool "harmful" true (a.Roni.mean_ham_impact > 0.0);
        check_bool "rejected" true a.Roni.rejected);
    test_case "ordinary spam is accepted" (fun () ->
        let rng = Rng.create 2 in
        let a = Roni.assess rng ~pool ~candidate:ordinary_spam in
        check_bool "not rejected" false a.Roni.rejected);
    test_case "attack impact exceeds ordinary-spam impact" (fun () ->
        let rng = Rng.create 3 in
        let attack = Roni.assess rng ~pool ~candidate:ham_covering_attack in
        let benign = Roni.assess rng ~pool ~candidate:ordinary_spam in
        check_bool "separation" true
          (attack.Roni.mean_ham_impact > benign.Roni.mean_ham_impact));
    test_case "per-trial results have the configured length" (fun () ->
        let rng = Rng.create 4 in
        let config = { Roni.default_config with Roni.trials = 7 } in
        let a = Roni.assess ~config rng ~pool ~candidate:ordinary_spam in
        check_int "trials" 7 (Array.length a.Roni.per_trial));
    test_case "pool too small is rejected" (fun () ->
        let rng = Rng.create 5 in
        let tiny = Array.sub pool 0 10 in
        Alcotest.check_raises "small"
          (Invalid_argument "Roni.assess: pool smaller than train + validation sizes")
          (fun () -> ignore (Roni.assess rng ~pool:tiny ~candidate:ordinary_spam)));
    test_case "pool without ham is rejected" (fun () ->
        let rng = Rng.create 6 in
        let spam_only =
          Array.map (fun e -> { e with Dataset.label = Label.Spam }) pool
        in
        Alcotest.check_raises "no ham"
          (Invalid_argument "Roni.assess: pool contains no ham") (fun () ->
            ignore (Roni.assess rng ~pool:spam_only ~candidate:ordinary_spam)));
    test_case "screen assesses a whole stream" (fun () ->
        let rng = Rng.create 7 in
        let stream = [| ordinary_spam; ham_covering_attack |] in
        let results = Roni.screen rng ~pool ~stream in
        check_int "two results" 2 (Array.length results);
        let _, benign = results.(0) in
        let _, attack = results.(1) in
        check_bool "benign passes" false benign.Roni.rejected;
        check_bool "attack caught" true attack.Roni.rejected);
    test_case "assessment is deterministic given the rng seed" (fun () ->
        let a1 = Roni.assess (Rng.create 8) ~pool ~candidate:ordinary_spam in
        let a2 = Roni.assess (Rng.create 8) ~pool ~candidate:ordinary_spam in
        Alcotest.(check (float 1e-12))
          "same impact" a1.Roni.mean_ham_impact a2.Roni.mean_ham_impact);
  ]

(* ------------------------------------------------------------------ *)
(* Dynamic threshold                                                   *)

let scored_separable =
  (* Ham scores low, spam scores high: the clean case. *)
  Array.init 100 (fun i ->
      if i < 50 then (0.01 +. (0.002 *. float_of_int i), Label.Ham, 1)
      else (0.85 +. (0.003 *. float_of_int (i - 50)), Label.Spam, 1))

let threshold_tests =
  [
    test_case "utility g is 0 below everything, 1 above" (fun () ->
        let scores =
          Array.map (fun (s, g, _) -> (s, g)) scored_separable
        in
        Alcotest.(check (float 1e-9))
          "low t" 0.0
          (Dynamic_threshold.utility ~scores 0.0);
        Alcotest.(check (float 1e-9))
          "high t" 1.0
          (Dynamic_threshold.utility ~scores 1.0));
    test_case "utility is monotone in t" (fun () ->
        let scores = Array.map (fun (s, g, _) -> (s, g)) scored_separable in
        let prev = ref (-1.0) in
        for i = 0 to 20 do
          let t = float_of_int i /. 20.0 in
          let g = Dynamic_threshold.utility ~scores t in
          check_bool "nondecreasing" true (g >= !prev);
          prev := g
        done);
    test_case "thresholds_of_scores separates the separable case" (fun () ->
        let theta0, theta1 =
          Dynamic_threshold.thresholds_of_scores scored_separable
        in
        check_bool "ordered" true (theta0 < theta1);
        (* All ham sits below theta0's region top, all spam above. *)
        check_bool "theta0 above ham" true (theta0 > 0.1);
        check_bool "theta1 within spam" true (theta1 > 0.5));
    test_case "weights are equivalent to duplication" (fun () ->
        let weighted =
          [| (0.1, Label.Ham, 3); (0.9, Label.Spam, 2); (0.5, Label.Ham, 1) |]
        in
        let duplicated =
          [|
            (0.1, Label.Ham, 1); (0.1, Label.Ham, 1); (0.1, Label.Ham, 1);
            (0.9, Label.Spam, 1); (0.9, Label.Spam, 1); (0.5, Label.Ham, 1);
          |]
        in
        let t0w, t1w = Dynamic_threshold.thresholds_of_scores weighted in
        let t0d, t1d = Dynamic_threshold.thresholds_of_scores duplicated in
        Alcotest.(check (float 1e-12)) "theta0" t0d t0w;
        Alcotest.(check (float 1e-12)) "theta1" t1d t1w);
    test_case "thresholds_of_scores rejects empty input" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Dynamic_threshold.thresholds_of_scores: no scores")
          (fun () -> ignore (Dynamic_threshold.thresholds_of_scores [||])));
    test_case "thresholds from a clean training set behave" (fun () ->
        let rng = Rng.create 11 in
        let theta0, theta1 = Dynamic_threshold.thresholds rng pool in
        check_bool "ordered" true (0.0 <= theta0 && theta0 < theta1 && theta1 <= 1.0));
    test_case "thresholds rejects a tiny training set" (fun () ->
        Alcotest.check_raises "small"
          (Invalid_argument "Dynamic_threshold.thresholds: training set too small")
          (fun () ->
            ignore
              (Dynamic_threshold.thresholds (Rng.create 1) (Array.sub pool 0 2))));
    test_case "harden installs derived cutoffs and shares the db" (fun () ->
        let filter = Filter.create () in
        Dataset.train_filter filter pool;
        let rng = Rng.create 12 in
        let hardened = Dynamic_threshold.harden rng filter pool in
        check_bool "same db" true (Filter.db hardened == Filter.db filter);
        let o = Filter.options hardened in
        check_bool "cutoffs ordered" true
          (o.Options.ham_cutoff < o.Options.spam_cutoff));
    test_case "config quantiles" (fun () ->
        Alcotest.(check (float 1e-12))
          "05" 0.05 Dynamic_threshold.config_05.Dynamic_threshold.quantile;
        Alcotest.(check (float 1e-12))
          "10" 0.10 Dynamic_threshold.config_10.Dynamic_threshold.quantile);
    qtest "thresholds always ordered on random score sets"
      QCheck2.Gen.(
        list_size (int_range 4 60)
          (pair (float_range 0.0 1.0) bool))
      (fun scored ->
        let scores =
          Array.of_list
            (List.map
               (fun (s, is_spam) ->
                 (s, (if is_spam then Label.Spam else Label.Ham), 1))
               scored)
        in
        let theta0, theta1 = Dynamic_threshold.thresholds_of_scores scores in
        0.0 <= theta0 && theta0 < theta1 && theta1 <= 1.0);
  ]

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)

let pipeline_tests =
  let open Spamlab_core in
  let initial = Array.sub pool 0 120 in
  let clean_round = Array.sub pool 120 60 in
  let attack_round =
    let attack_example =
      Dataset.of_tokens Label.Spam ham_covering_attack
        ~raw_token_count:(Array.length ham_covering_attack)
    in
    Array.append (Array.sub pool 120 60) (Array.make 5 attack_example)
  in
  [
    test_case "validates configuration" (fun () ->
        Alcotest.check_raises "period"
          (Invalid_argument "Pipeline.run: retrain_period must be positive")
          (fun () ->
            ignore
              (Pipeline.run
                 { Pipeline.retrain_period = 0; policy = Pipeline.Train_everything; roni = None;
                   initial_training = initial }
                 (Rng.create 1) ~rounds:[]));
        Alcotest.check_raises "tiny pool for roni"
          (Invalid_argument "Pipeline.run: initial training pool too small for RONI")
          (fun () ->
            ignore
              (Pipeline.run
                 { Pipeline.retrain_period = 1;
                   policy = Pipeline.Train_everything;
                   roni = Some Roni.default_config;
                   initial_training = Array.sub pool 0 10 }
                 (Rng.create 1) ~rounds:[])));
    test_case "clean rounds keep delivery high" (fun () ->
        let report =
          Pipeline.run
            { Pipeline.retrain_period = 1; policy = Pipeline.Train_everything;
              roni = None;
              initial_training = initial }
            (Rng.create 2)
            ~rounds:[ clean_round; clean_round ]
        in
        check_int "rounds" 2 (List.length report.Pipeline.rounds);
        List.iter
          (fun (r : Pipeline.round_report) ->
            check_bool "delivery" true
              (Pipeline.ham_delivery_rate r.Pipeline.counts > 0.8))
          report.Pipeline.rounds);
    test_case "undefended pipeline collapses after an attack round" (fun () ->
        let report =
          Pipeline.run
            { Pipeline.retrain_period = 1; policy = Pipeline.Train_everything;
              roni = None;
              initial_training = initial }
            (Rng.create 3)
            ~rounds:[ attack_round; clean_round ]
        in
        match report.Pipeline.rounds with
        | [ first; second ] ->
            (* The attack trains at the end of round 1, so round 2's
               delivery is the damaged one. *)
            check_bool "before" true
              (Pipeline.ham_delivery_rate first.Pipeline.counts > 0.8);
            check_bool "after" true
              (Pipeline.ham_delivery_rate second.Pipeline.counts < 0.5)
        | _ -> Alcotest.fail "wrong round count");
    test_case "RONI pipeline rejects the attack and survives" (fun () ->
        let report =
          Pipeline.run
            { Pipeline.retrain_period = 1;
              policy = Pipeline.Train_everything;
              roni = Some Roni.default_config;
              initial_training = initial }
            (Rng.create 4)
            ~rounds:[ attack_round; clean_round ]
        in
        check_bool "rejected the attack" true
          (report.Pipeline.total_rejected >= 5);
        match report.Pipeline.rounds with
        | [ _; second ] ->
            check_bool "still delivering" true
              (Pipeline.ham_delivery_rate second.Pipeline.counts > 0.8)
        | _ -> Alcotest.fail "wrong round count");
    test_case "retrain period defers learning" (fun () ->
        let report =
          Pipeline.run
            { Pipeline.retrain_period = 3; policy = Pipeline.Train_everything;
              roni = None;
              initial_training = initial }
            (Rng.create 5)
            ~rounds:[ attack_round; clean_round; clean_round ]
        in
        match report.Pipeline.rounds with
        | [ _; second; _third ] ->
            (* Nothing retrains until round 3, so round 2 is still
               served by the clean initial filter. *)
            check_bool "round 2 clean" true
              (Pipeline.ham_delivery_rate second.Pipeline.counts > 0.8)
        | _ -> Alcotest.fail "wrong round count");
    test_case "ham_delivery_rate of an empty round is 1" (fun () ->
        let counts =
          {
            Pipeline.ham_as_ham = 0; ham_as_unsure = 0; ham_as_spam = 0;
            spam_as_ham = 0; spam_as_unsure = 0; spam_as_spam = 0;
          }
        in
        Alcotest.(check (float 1e-12))
          "one" 1.0
          (Pipeline.ham_delivery_rate counts));
  ]

let () =
  Alcotest.run "defenses"
    [
      ("roni", roni_tests);
      ("dynamic_threshold", threshold_tests);
      ("pipeline", pipeline_tests);
    ]
