(* The serve stack: EINTR/short-transfer I/O, protocol framing (and
   its failure modes), and the daemon end-to-end on a unix socket. *)

module Io = Spamlab_io
module Protocol = Spamlab_serve.Protocol
module Daemon = Spamlab_serve.Daemon
module Client = Spamlab_serve.Client
module Fault = Spamlab_fault
module Label = Spamlab_spambayes.Label
module Filter = Spamlab_spambayes.Filter
module Header = Spamlab_email.Header
module Message = Spamlab_email.Message
module Mbox = Spamlab_email.Mbox

let test_case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let msg ?(headers = []) body =
  Message.make ~headers:(Header.of_list headers) body

let mbox msgs = Mbox.print msgs

(* A reader over fixed bytes (a temp file, so bodies of any size). *)
let with_reader_of_string s f =
  let path = Filename.temp_file "spamlab_serve" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s);
  let fd = Unix.openfile path [ O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  f (Io.reader fd)

let read_all fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Spamlab_io                                                          *)

let io_tests =
  [
    test_case "really_read across byte-at-a-time pipe delivery" (fun () ->
        (* Every read returns exactly one byte: the short-read loop in
           really_read/read_line must reassemble the stream. *)
        let payload = "PING SPAMLAB/1.0\r\n\r\nand then some body bytes" in
        let r, w = Unix.pipe ~cloexec:true () in
        let writer =
          Domain.spawn (fun () ->
              String.iter
                (fun c ->
                  let b = Bytes.make 1 c in
                  ignore (Unix.write w b 0 1))
                payload;
              Unix.close w)
        in
        Fun.protect ~finally:(fun () -> Unix.close r) @@ fun () ->
        let reader = Io.reader ~buf_size:1 r in
        (match Io.read_line reader ~max:100 with
        | `Line l -> check_string "line" "PING SPAMLAB/1.0" l
        | _ -> Alcotest.fail "expected a line");
        (match Io.read_line reader ~max:100 with
        | `Line l -> check_string "blank" "" l
        | _ -> Alcotest.fail "expected blank line");
        let body = Bytes.create 24 in
        check_bool "read_exact" true (Io.read_exact reader body 0 24);
        check_string "body" "and then some body bytes" (Bytes.to_string body);
        check_bool "eof" true (Io.read_exact reader body 0 1 = false);
        Domain.join writer);
    test_case "really_write drains a multi-megabyte buffer" (fun () ->
        (* Socketpair buffers are tiny; the writer must loop over many
           short writes while the reader drains concurrently. *)
        let a, b = Unix.socketpair ~cloexec:true PF_UNIX SOCK_STREAM 0 in
        let data = String.init 3_000_000 (fun i -> Char.chr (i land 0xff)) in
        let writer =
          Domain.spawn (fun () ->
              Io.really_write_string a data 0 (String.length data);
              Unix.close a)
        in
        let got = read_all b in
        Domain.join writer;
        Unix.close b;
        check_int "length" (String.length data) (String.length got);
        check_bool "bytes" true (String.equal data got));
    test_case "read_line: CRLF and bare LF both work, CR stripped" (fun () ->
        with_reader_of_string "one\r\ntwo\nthree" @@ fun r ->
        (match Io.read_line r ~max:10 with
        | `Line l -> check_string "crlf" "one" l
        | _ -> Alcotest.fail "line");
        (match Io.read_line r ~max:10 with
        | `Line l -> check_string "lf" "two" l
        | _ -> Alcotest.fail "line");
        (* Stream ends mid-line: the partial line is yielded. *)
        (match Io.read_line r ~max:10 with
        | `Line l -> check_string "partial" "three" l
        | _ -> Alcotest.fail "line");
        check_bool "eof" true (Io.read_line r ~max:10 = `Eof));
    test_case "read_line: oversized lines resynchronize" (fun () ->
        let long = String.make 5_000 'x' in
        with_reader_of_string (long ^ "\nok\n") @@ fun r ->
        check_bool "too long" true (Io.read_line r ~max:1024 = `Too_long);
        (match Io.read_line r ~max:1024 with
        | `Line l -> check_string "next line survives" "ok" l
        | _ -> Alcotest.fail "line"));
    test_case "read_line: max enforced within one buffered chunk" (fun () ->
        with_reader_of_string (String.make 64 'y' ^ "\n") @@ fun r ->
        check_bool "too long" true (Io.read_line r ~max:10 = `Too_long));
    test_case "transient injected faults retried like EINTR" (fun () ->
        (match Fault.configure "io.test:transient@1+2" with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Fun.protect ~finally:Fault.disable @@ fun () ->
        let r, w = Unix.pipe ~cloexec:true () in
        let data = Bytes.of_string "abc" in
        ignore (Unix.write w data 0 3);
        Unix.close w;
        let buf = Bytes.create 3 in
        (* Occurrences 1 and 2 fire transiently; the loop must absorb
           both and still deliver the bytes. *)
        Io.really_read ~site:"io.test" r buf 0 3;
        Unix.close r;
        check_string "payload" "abc" (Bytes.to_string buf));
    test_case "fatal injected faults propagate" (fun () ->
        (match Fault.configure "io.test:fatal@1" with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Fun.protect ~finally:Fault.disable @@ fun () ->
        let r, w = Unix.pipe ~cloexec:true () in
        Fun.protect
          ~finally:(fun () ->
            Unix.close r;
            Unix.close w)
        @@ fun () ->
        let buf = Bytes.create 1 in
        check_bool "raises" true
          (match Io.really_read ~site:"io.test" r buf 0 1 with
          | () -> false
          | exception Fault.Injected _ -> true));
    test_case "bounded retry of a stuck transient site" (fun () ->
        (* A probability-1 transient selector would spin forever
           without the attempt bound. *)
        (match Fault.configure "io.test:transient~1.0" with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Fun.protect ~finally:Fault.disable @@ fun () ->
        let r, w = Unix.pipe ~cloexec:true () in
        Fun.protect
          ~finally:(fun () ->
            Unix.close r;
            Unix.close w)
        @@ fun () ->
        let buf = Bytes.create 1 in
        check_bool "eventually raises" true
          (match Io.really_read ~site:"io.test" r buf 0 1 with
          | () -> false
          | exception Fault.Injected { kind = Transient; _ } -> true));
    test_case "deadline: read on a silent pipe raises Timeout" (fun () ->
        let r, w = Unix.pipe ~cloexec:true () in
        Fun.protect
          ~finally:(fun () ->
            Unix.close r;
            Unix.close w)
        @@ fun () ->
        let buf = Bytes.create 1 in
        let t0 = Io.monotonic_s () in
        check_bool "times out" true
          (match Io.really_read ~deadline:(t0 +. 0.05) r buf 0 1 with
          | () -> false
          | exception Io.Timeout _ -> true);
        (* The wait is the deadline, not some internal retry budget. *)
        check_bool "bounded wait" true (Io.monotonic_s () -. t0 < 2.0));
    test_case "deadline: bytes already in flight beat the clock" (fun () ->
        let r, w = Unix.pipe ~cloexec:true () in
        ignore (Unix.write_substring w "ab" 0 2);
        Unix.close w;
        Fun.protect ~finally:(fun () -> Unix.close r) @@ fun () ->
        let buf = Bytes.create 2 in
        Io.really_read ~deadline:(Io.monotonic_s () +. 5.0) r buf 0 2;
        check_string "payload" "ab" (Bytes.to_string buf));
    test_case "serve.deadline transient fault reports as the timeout" (fun () ->
        (* The site only fires when a deadline is armed, and surfaces as
           Timeout — so fault schedules can exercise reaping paths
           without real waiting. *)
        (match Fault.configure "serve.deadline:transient@1" with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Fun.protect ~finally:Fault.disable @@ fun () ->
        let r, w = Unix.pipe ~cloexec:true () in
        ignore (Unix.write_substring w "x" 0 1);
        Unix.close w;
        Fun.protect ~finally:(fun () -> Unix.close r) @@ fun () ->
        let buf = Bytes.create 1 in
        check_bool "simulated timeout" true
          (match Io.really_read ~deadline:(Io.monotonic_s () +. 5.0) r buf 0 1 with
          | () -> false
          | exception Io.Timeout _ -> true);
        (* With the fault disarmed the same bytes are deliverable. *)
        Fault.disable ();
        Io.really_read ~deadline:(Io.monotonic_s () +. 5.0) r buf 0 1;
        check_string "delivered after disarm" "x" (Bytes.to_string buf));
    test_case "reader deadline: oversized-line resync, byte-at-a-time" (fun () ->
        (* A slow-loris peer trickling an oversized line one byte per
           syscall: the armed (absolute) deadline spans all refills, and
           resynchronization still lands on the next line. *)
        let r, w = Unix.pipe ~cloexec:true () in
        let writer =
          Domain.spawn (fun () ->
              String.iter
                (fun c -> ignore (Unix.write w (Bytes.make 1 c) 0 1))
                (String.make 3_000 'x' ^ "\nok\n");
              Unix.close w)
        in
        Fun.protect ~finally:(fun () -> Unix.close r) @@ fun () ->
        let reader = Io.reader ~buf_size:16 r in
        Io.set_deadline reader (Some (Io.monotonic_s () +. 30.0));
        check_bool "too long" true (Io.read_line reader ~max:1024 = `Too_long);
        (match Io.read_line reader ~max:1024 with
        | `Line l -> check_string "resynchronized" "ok" l
        | _ -> Alcotest.fail "expected the next line");
        check_bool "eof" true (Io.read_line reader ~max:1024 = `Eof);
        Domain.join writer);
  ]

(* ------------------------------------------------------------------ *)
(* Protocol framing                                                    *)

let recv s = with_reader_of_string s Protocol.recv_request

let expect_error name s =
  match recv s with
  | `Error _ -> ()
  | `Request _ -> Alcotest.failf "%s: parsed instead of erroring" name
  | `Eof -> Alcotest.failf "%s: EOF instead of error" name

let gen_verb =
  QCheck2.Gen.oneofl
    [
      Protocol.Ping;
      Protocol.Health;
      Protocol.Stats;
      Protocol.Publish;
      Protocol.Classify;
      Protocol.Train Label.Ham;
      Protocol.Train Label.Spam;
      Protocol.Untrain Label.Ham;
      Protocol.Untrain Label.Spam;
    ]

let gen_body =
  QCheck2.Gen.(
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 2_000))

(* User header values: nonempty VCHAR, so they survive the trim in
   [split_header] unchanged. *)
let gen_user =
  QCheck2.Gen.(
    option (string_size ~gen:(char_range '!' '~') (int_range 1 12)))

let protocol_tests =
  [
    qtest ~count:150 "render/recv round-trips every request"
      QCheck2.Gen.(triple gen_verb gen_body gen_user)
      (fun (verb, body, user) ->
        let body = if Protocol.verb_name verb = "PING" then "" else body in
        let body =
          match verb with
          | Protocol.Classify | Protocol.Train _ | Protocol.Untrain _ -> body
          | _ -> ""
        in
        let req = { Protocol.verb; body; user } in
        match recv (Protocol.render_request req) with
        | `Request r -> r = req
        | _ -> false);
    qtest ~count:100 "pipelined requests all parse, in order"
      QCheck2.Gen.(list_size (int_range 2 5) (pair gen_verb gen_body))
      (fun reqs ->
        let reqs =
          List.map
            (fun (verb, body) ->
              let body =
                match verb with
                | Protocol.Classify | Protocol.Train _ | Protocol.Untrain _ ->
                    body
                | _ -> ""
              in
              { Protocol.verb; body; user = None })
            reqs
        in
        let wire = String.concat "" (List.map Protocol.render_request reqs) in
        with_reader_of_string wire @@ fun reader ->
        let got =
          List.map
            (fun _ ->
              match Protocol.recv_request reader with
              | `Request r -> Some r
              | _ -> None)
            reqs
        in
        Protocol.recv_request reader = `Eof
        && List.for_all2 (fun r g -> g = Some r) reqs got);
    test_case "zero-length bodies are legal" (fun () ->
        match recv "CLASSIFY SPAMLAB/1.0\r\nContent-Length: 0\r\n\r\n" with
        | `Request { verb = Protocol.Classify; body = ""; user = None } -> ()
        | _ -> Alcotest.fail "zero-length CLASSIFY should parse");
    test_case "Content-Length overflow is an error, not a wrap" (fun () ->
        (match Protocol.parse_content_length "18446744073709551616" with
        | Error _ -> ()
        | Ok n -> Alcotest.failf "overflow parsed as %d" n);
        (match Protocol.parse_content_length "4611686018427387903" with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "in-range value rejected: %s" e);
        expect_error "overflow header"
          "CLASSIFY SPAMLAB/1.0\r\nContent-Length: 99999999999999999999\r\n\r\n");
    test_case "Content-Length above the cap refuses before the body" (fun () ->
        (* The declared length alone must trigger the error — no body
           bytes are present at all. *)
        expect_error "over cap"
          "CLASSIFY SPAMLAB/1.0\r\nContent-Length: 999999999\r\n\r\n");
    test_case "mid-body drop is a torn frame" (fun () ->
        let req = { Protocol.verb = Protocol.Classify; body = String.make 100 'b'; user = None } in
        let wire = Protocol.render_request req in
        match recv (String.sub wire 0 (String.length wire - 40)) with
        | `Error e ->
            check_string "reason" "connection closed mid-body" e
        | _ -> Alcotest.fail "torn body should error");
    test_case "trailing garbage after a request is the next frame's error"
      (fun () ->
        let wire =
          Protocol.render_request { Protocol.verb = Protocol.Ping; body = ""; user = None }
          ^ "random trailing garbage\r\n"
        in
        with_reader_of_string wire @@ fun reader ->
        (match Protocol.recv_request reader with
        | `Request { verb = Protocol.Ping; _ } -> ()
        | _ -> Alcotest.fail "first frame should parse");
        match Protocol.recv_request reader with
        | `Error _ -> ()
        | _ -> Alcotest.fail "garbage should be a framing error");
    test_case "malformed frames: each yields one error" (fun () ->
        List.iter
          (fun (name, s) -> expect_error name s)
          [
            ("no verb", "\r\n");
            ("unknown verb", "FROBNICATE SPAMLAB/1.0\r\n\r\n");
            ("wrong magic", "PING SPAMLAB/9.9\r\n\r\n");
            ("no magic", "PING\r\n\r\n");
            ("header without colon", "PING SPAMLAB/1.0\r\nbogus\r\n\r\n");
            ("unknown header", "PING SPAMLAB/1.0\r\nX-Weird: 1\r\n\r\n");
            ("negative length", "CLASSIFY SPAMLAB/1.0\r\nContent-Length: -1\r\n\r\n");
            ("junk length", "CLASSIFY SPAMLAB/1.0\r\nContent-Length: ten\r\n\r\n");
            ("body on PING", "PING SPAMLAB/1.0\r\nContent-Length: 3\r\n\r\nabc");
            ("TRAIN without class", "TRAIN SPAMLAB/1.0\r\nContent-Length: 0\r\n\r\n");
            ("bad class", "TRAIN SPAMLAB/1.0\r\nMessage-Class: eggs\r\nContent-Length: 0\r\n\r\n");
            ("missing length", "CLASSIFY SPAMLAB/1.0\r\n\r\n");
            ("EOF in headers", "PING SPAMLAB/1.0\r\n");
            ( "oversized verb line",
              String.make 4_000 'A' ^ " SPAMLAB/1.0\r\n\r\n" );
          ]);
    qtest ~count:300 "random bytes never crash the request parser"
      QCheck2.Gen.(
        string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 400))
      (fun junk ->
        with_reader_of_string junk @@ fun reader ->
        (* Drain the stream; every step must return a constructor, and
           the loop must terminate. *)
        let rec drain n =
          if n > 500 then false
          else
            match Protocol.recv_request reader with
            | `Eof | `Error _ -> true
            | `Request _ -> drain (n + 1)
        in
        drain 0);
    qtest ~count:100 "render/recv round-trips responses"
      QCheck2.Gen.(
        pair bool
          (string_size ~gen:(map Char.chr (int_range 1 255)) (int_range 0 500)))
      (fun (ok, payload) ->
        let resp =
          if ok then Protocol.Ok payload
          else
            Protocol.Err
              (String.map (fun c -> if c = '\r' || c = '\n' then ' ' else c) payload)
        in
        with_reader_of_string (Protocol.render_response resp) @@ fun reader ->
        match Protocol.recv_response reader with
        | `Response r -> r = resp
        | _ -> false);
    test_case "HEALTH round-trips and carries no body" (fun () ->
        match
          recv
            (Protocol.render_request
               { Protocol.verb = Protocol.Health; body = ""; user = None })
        with
        | `Request { verb = Protocol.Health; body = ""; user = None } -> ()
        | _ -> Alcotest.fail "HEALTH should parse");
    test_case "BUSY response round-trips as a bare status line" (fun () ->
        check_string "wire form" "SPAMLAB/1.0 BUSY\r\n"
          (Protocol.render_response Protocol.Busy);
        with_reader_of_string (Protocol.render_response Protocol.Busy)
        @@ fun reader ->
        match Protocol.recv_response reader with
        | `Response Protocol.Busy -> ()
        | _ -> Alcotest.fail "BUSY should parse");
    test_case "over-cap Content-Length refused byte-at-a-time under deadline"
      (fun () ->
        (* An attacker declaring a body far over the 16 MiB cap, fed one
           byte per syscall with a read deadline armed: the declared
           length alone must produce the framing error, well before the
           deadline and without reading any body byte. *)
        let wire = "CLASSIFY SPAMLAB/1.0\r\nContent-Length: 999999999\r\n\r\n" in
        let r, w = Unix.pipe ~cloexec:true () in
        let writer =
          Domain.spawn (fun () ->
              String.iter
                (fun c -> ignore (Unix.write w (Bytes.make 1 c) 0 1))
                wire;
              Unix.close w)
        in
        Fun.protect ~finally:(fun () -> Unix.close r) @@ fun () ->
        let reader = Io.reader ~buf_size:8 r in
        Io.set_deadline reader (Some (Io.monotonic_s () +. 30.0));
        let t0 = Io.monotonic_s () in
        (match Protocol.recv_request reader with
        | `Error _ -> ()
        | `Request _ -> Alcotest.fail "over-cap request should be refused"
        | `Eof -> Alcotest.fail "EOF instead of framing error");
        check_bool "refused promptly, no hang" true
          (Io.monotonic_s () -. t0 < 10.0);
        Domain.join writer);
    test_case "stalled mid-header hits the read deadline, never hangs"
      (fun () ->
        (* Half a header then silence: without the deadline this read
           would block forever; with it armed the frame read raises
           Timeout in bounded time. *)
        let r, w = Unix.pipe ~cloexec:true () in
        Fun.protect
          ~finally:(fun () ->
            Unix.close r;
            Unix.close w)
        @@ fun () ->
        let partial = "CLASSIFY SPAMLAB/1.0\r\nContent-Le" in
        ignore (Unix.write_substring w partial 0 (String.length partial));
        let reader = Io.reader r in
        Io.set_deadline reader (Some (Io.monotonic_s () +. 0.1));
        let t0 = Io.monotonic_s () in
        check_bool "times out" true
          (match Protocol.recv_request reader with
          | exception Io.Timeout _ -> true
          | `Error _ | `Request _ | `Eof -> false);
        check_bool "bounded" true (Io.monotonic_s () -. t0 < 5.0));
  ]

(* ------------------------------------------------------------------ *)
(* serve_connection: framing errors answer once and close              *)

let with_temp_dir f =
  let dir = Filename.temp_file "spamlab_serve" ".dir" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () -> f dir

let with_daemon_state ?(publish_every = 4) f =
  with_temp_dir @@ fun dir ->
  let config =
    {
      (Daemon.default_config ~db_path:(Filename.concat dir "db.bin") ()) with
      Daemon.publish_every;
    }
  in
  match Daemon.create config with
  | Error e -> Alcotest.fail e
  | Ok t -> Fun.protect ~finally:(fun () -> Daemon.shutdown t) @@ fun () -> f t

(* Feed raw bytes into serve_connection over a socketpair; return the
   daemon's raw reply bytes. *)
let converse t raw =
  let client, server = Unix.socketpair ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  let server_side =
    Domain.spawn (fun () ->
        Daemon.serve_connection t server;
        Unix.close server)
  in
  Io.really_write_string client raw 0 (String.length raw);
  Unix.shutdown client SHUTDOWN_SEND;
  let reply = read_all client in
  Domain.join server_side;
  Unix.close client;
  reply

let count_lines_with prefix s =
  List.length
    (List.filter
       (fun l ->
         String.length l >= String.length prefix
         && String.sub l 0 (String.length prefix) = prefix)
       (String.split_on_char '\n' s))

let connection_tests =
  [
    test_case "malformed frame: exactly one ERR line, then close" (fun () ->
        with_daemon_state @@ fun t ->
        List.iter
          (fun raw ->
            let reply = converse t raw in
            check_int "one ERR"  1 (count_lines_with "SPAMLAB/1.0 ERR" reply);
            check_int "no OK" 0 (count_lines_with "SPAMLAB/1.0 OK" reply))
          [
            "GARBAGE\r\n";
            "PING SPAMLAB/1.0\r\nContent-Length: 9\r\n\r\nxxxxxxxxx";
            "CLASSIFY SPAMLAB/1.0\r\nContent-Length: 99999999999999999999\r\n\r\n";
            "CLASSIFY SPAMLAB/1.0\r\nContent-Length: 50\r\n\r\nshort";
            String.make 2_000 'Z';
          ]);
    test_case "valid pipeline after which garbage: replies then one ERR"
      (fun () ->
        with_daemon_state @@ fun t ->
        let wire =
          Protocol.render_request { Protocol.verb = Protocol.Ping; body = ""; user = None }
          ^ Protocol.render_request { Protocol.verb = Protocol.Ping; body = ""; user = None }
          ^ "junk\r\n"
        in
        let reply = converse t wire in
        check_int "two OK" 2 (count_lines_with "SPAMLAB/1.0 OK" reply);
        check_int "one ERR" 1 (count_lines_with "SPAMLAB/1.0 ERR" reply));
    qtest ~count:120 "random bytes never kill the connection loop"
      QCheck2.Gen.(
        string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 300))
      (fun junk ->
        with_daemon_state @@ fun t ->
        (* Must terminate and never raise; reply shape is free. *)
        ignore (converse t junk);
        true);
    test_case "valid frames survive serve.read transient faults" (fun () ->
        with_daemon_state @@ fun t ->
        (match Fault.configure "serve.read:transient@1+2+5" with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Fun.protect ~finally:Fault.disable @@ fun () ->
        let wire =
          Protocol.render_request { Protocol.verb = Protocol.Ping; body = ""; user = None }
          ^ Protocol.render_request
              { Protocol.verb = Protocol.Train Label.Spam;
                body = mbox [ msg ~headers:[ ("Subject", "x") ] "spam words" ];
                user = None }
        in
        let reply = converse t wire in
        check_int "no ERR" 0 (count_lines_with "SPAMLAB/1.0 ERR" reply);
        check_int "two OK" 2 (count_lines_with "SPAMLAB/1.0 OK" reply));
  ]

(* ------------------------------------------------------------------ *)
(* Daemon end-to-end on a unix socket                                  *)

let with_daemon ?(publish_every = 4) ?(limits = Daemon.default_limits) f =
  with_temp_dir @@ fun dir ->
  let addr = Daemon.Unix_sock (Filename.concat dir "s.sock") in
  let db_path = Filename.concat dir "db.bin" in
  let config =
    { (Daemon.default_config ~addr ~db_path ()) with Daemon.publish_every; limits }
  in
  match Daemon.create config with
  | Error e -> Alcotest.fail e
  | Ok t ->
      let stop = Atomic.make false in
      let up = Atomic.make false in
      let d =
        Domain.spawn (fun () ->
            Daemon.run
              ~ready:(fun _ -> Atomic.set up true)
              ~stop:(fun () -> Atomic.get stop)
              t)
      in
      let finish () =
        Atomic.set stop true;
        (match Domain.join d with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Daemon.shutdown t
      in
      Fun.protect ~finally:finish @@ fun () ->
      while not (Atomic.get up) do
        Domain.cpu_relax ()
      done;
      f addr t db_path

let ok_payload = function
  | Ok (Protocol.Ok p) -> p
  | Ok (Protocol.Err e) -> Alcotest.failf "daemon error: %s" e
  | Ok Protocol.Busy -> Alcotest.fail "unexpected BUSY"
  | Error e -> Alcotest.failf "transport error: %s" (Client.error_message e)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let spam_mbox n =
  mbox
    (List.init n (fun i ->
         msg
           ~headers:[ ("Subject", Printf.sprintf "offer %d" i) ]
           (Printf.sprintf "buy cheap pills now batch%d" i)))

let e2e_tests =
  [
    test_case "ping, train, publish, classify, stats" (fun () ->
        with_daemon @@ fun addr t db_path ->
        check_string "pong" "pong\n"
          (ok_payload (Client.roundtrip addr { Protocol.verb = Ping; body = ""; user = None }));
        let ack =
          ok_payload
            (Client.roundtrip addr
               { Protocol.verb = Train Label.Spam; body = spam_mbox 3; user = None })
        in
        check_bool "train ack" true
          (String.length ack > 0 && String.sub ack 0 8 = "trained=");
        (* publish_every is 4: 3 trains leave the delta unpublished and
           invisible to classify. *)
        check_int "not yet published" 0 (Daemon.publish_seq t);
        check_bool "db not yet on disk" false (Sys.file_exists db_path);
        ignore
          (ok_payload
             (Client.roundtrip addr { Protocol.verb = Publish; body = ""; user = None }));
        check_int "published" 1 (Daemon.publish_seq t);
        check_bool "db on disk" true (Sys.file_exists db_path);
        let verdicts =
          ok_payload
            (Client.roundtrip addr
               { Protocol.verb = Classify; body = spam_mbox 2; user = None })
        in
        check_int "one line per message" 2
          (List.length
             (List.filter (( <> ) "") (String.split_on_char '\n' verdicts)));
        let stats =
          ok_payload
            (Client.roundtrip addr { Protocol.verb = Stats; body = ""; user = None })
        in
        check_bool "stats has train count" true
          (count_lines_with "train.messages 3" stats = 1);
        check_bool "stats has publish seq" true
          (count_lines_with "publish.seq 1" stats = 1));
    test_case "classify of an empty body answers an empty payload" (fun () ->
        with_daemon @@ fun addr _ _ ->
        check_string "empty" ""
          (ok_payload
             (Client.roundtrip addr { Protocol.verb = Classify; body = ""; user = None })));
    test_case "auto-publish at publish-every, counted in seq" (fun () ->
        with_daemon ~publish_every:2 @@ fun addr t _ ->
        ignore
          (ok_payload
             (Client.roundtrip addr
                { Protocol.verb = Train Label.Spam; body = spam_mbox 5; user = None }));
        check_int "one auto publish" 1 (Daemon.publish_seq t);
        let ack =
          ok_payload
            (Client.roundtrip addr
               { Protocol.verb = Train Label.Spam; body = spam_mbox 1; user = None })
        in
        check_bool "pending after ack" true
          (Client.(
             match roundtrip addr { Protocol.verb = Stats; body = ""; user = None } with
             | Ok (Protocol.Ok s) -> count_lines_with "train.pending 2" s = 1
             | _ -> false)
          || String.length ack > 0));
    test_case "impossible UNTRAIN answers ERR and keeps the connection"
      (fun () ->
        with_daemon @@ fun addr _ _ ->
        match Client.connect addr with
        | Error e -> Alcotest.fail (Client.error_message e)
        | Ok conn ->
            Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
            (match
               Client.request conn
                 { Protocol.verb = Untrain Label.Spam; body = spam_mbox 1; user = None }
             with
            | Ok (Protocol.Err _) -> ()
            | Ok _ -> Alcotest.fail "untrain of unseen succeeded"
            | Error e ->
                Alcotest.failf "transport error: %s" (Client.error_message e));
            (* Semantic error: the same connection still answers. *)
            (match Client.request conn { Protocol.verb = Ping; body = ""; user = None } with
            | Ok (Protocol.Ok p) -> check_string "pong after ERR" "pong\n" p
            | _ -> Alcotest.fail "connection should survive a semantic ERR"));
    test_case "transient publish fault degrades to ERR, next publish works"
      (fun () ->
        with_daemon @@ fun addr t _ ->
        (match Fault.configure "serve.publish:transient@1" with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Fun.protect ~finally:Fault.disable @@ fun () ->
        (match Client.roundtrip addr { Protocol.verb = Publish; body = ""; user = None } with
        | Ok (Protocol.Err _) -> ()
        | Ok _ -> Alcotest.fail "injected publish should fail"
        | Error e ->
            Alcotest.failf "transport error: %s" (Client.error_message e));
        check_int "nothing published" 0 (Daemon.publish_seq t);
        ignore
          (ok_payload
             (Client.roundtrip addr { Protocol.verb = Publish; body = ""; user = None }));
        check_int "recovered" 1 (Daemon.publish_seq t));
    test_case "restart from the published store serves the same verdicts"
      (fun () ->
        with_temp_dir @@ fun dir ->
        let db_path = Filename.concat dir "db.bin" in
        let eval = spam_mbox 4 in
        let serve_once f =
          let addr = Daemon.Unix_sock (Filename.concat dir "s.sock") in
          let config =
            { (Daemon.default_config ~addr ~db_path ()) with Daemon.publish_every = 0 }
          in
          match Daemon.create config with
          | Error e -> Alcotest.fail e
          | Ok t ->
              let stop = Atomic.make false in
              let up = Atomic.make false in
              let d =
                Domain.spawn (fun () ->
                    Daemon.run
                      ~ready:(fun _ -> Atomic.set up true)
                      ~stop:(fun () -> Atomic.get stop)
                      t)
              in
              Fun.protect
                ~finally:(fun () ->
                  Atomic.set stop true;
                  (match Domain.join d with
                  | Ok () -> ()
                  | Error e -> Alcotest.fail e);
                  Daemon.shutdown t)
              @@ fun () ->
              while not (Atomic.get up) do
                Domain.cpu_relax ()
              done;
              f addr
        in
        let first =
          serve_once (fun addr ->
              ignore
                (ok_payload
                   (Client.roundtrip addr
                      { Protocol.verb = Train Label.Spam; body = spam_mbox 6; user = None }));
              ignore
                (ok_payload
                   (Client.roundtrip addr { Protocol.verb = Publish; body = ""; user = None }));
              ok_payload
                (Client.roundtrip addr { Protocol.verb = Classify; body = eval; user = None }))
        in
        let second =
          serve_once (fun addr ->
              ok_payload
                (Client.roundtrip addr { Protocol.verb = Classify; body = eval; user = None }))
        in
        check_string "verdicts identical across restart" first second);
    test_case "HEALTH answers READY; unarmed STATS keeps its byte shape"
      (fun () ->
        with_daemon @@ fun addr _ _ ->
        ignore
          (ok_payload
             (Client.roundtrip addr { Protocol.verb = Ping; body = ""; user = None }));
        (* Before any HEALTH request, an unarmed daemon's STATS must
           not grow new families — the disabled-path byte-compat
           contract with pre-hardening releases. *)
        let stats () =
          ok_payload
            (Client.roundtrip addr { Protocol.verb = Stats; body = ""; user = None })
        in
        let s = stats () in
        List.iter
          (fun prefix ->
            check_int (Printf.sprintf "no %s lines" prefix) 0
              (count_lines_with prefix s))
          [ "shed."; "timeout."; "degraded."; "requests.health" ];
        let h =
          ok_payload
            (Client.roundtrip addr { Protocol.verb = Health; body = ""; user = None })
        in
        check_bool "ready" true (contains h "state=READY");
        (* Once exercised, the verb is counted like any other. *)
        check_int "health counted" 1 (count_lines_with "requests.health 1" (stats ())));
    test_case "stalled half-header conn is reaped while CLASSIFY proceeds"
      (fun () ->
        with_daemon
          ~limits:{ Daemon.default_limits with read_timeout_s = 0.3 }
        @@ fun addr _ _ ->
        let parasite =
          Domain.spawn (fun () ->
              Client.stall ~addr ~bytes:"CLASSIFY SPAMLAB/1.0\r\nContent-Le"
                ~hold_s:10.0)
        in
        (* The parasite holds one connection hostage mid-frame; a
           well-behaved client must still be served promptly. *)
        let t0 = Io.monotonic_s () in
        ignore
          (ok_payload
             (Client.roundtrip addr
                { Protocol.verb = Classify; body = spam_mbox 2; user = None }));
        check_bool "served while parasite stalls" true
          (Io.monotonic_s () -. t0 < 5.0);
        match Domain.join parasite with
        | Ok "reaped" -> ()
        | Ok other -> Alcotest.failf "parasite outcome: %s" other
        | Error e -> Alcotest.fail (Client.error_message e));
    test_case "max-conns: the excess connection is answered BUSY" (fun () ->
        with_daemon ~limits:{ Daemon.default_limits with max_conns = 1 }
        @@ fun addr _ _ ->
        match Client.connect addr with
        | Error e -> Alcotest.fail (Client.error_message e)
        | Ok held ->
            Fun.protect ~finally:(fun () -> Client.close held) @@ fun () ->
            (* Complete a request so the holder is definitely admitted
               before the second connection arrives. *)
            (match
               Client.request held { Protocol.verb = Ping; body = ""; user = None }
             with
            | Ok (Protocol.Ok _) -> ()
            | _ -> Alcotest.fail "holder should be served");
            (* The excess connection is shed at admission: BUSY is
               written and the socket closed before any request byte —
               observed with a raw reader (a writing client can race
               the close into EPIPE, which its retry path absorbs). *)
            let path =
              match addr with
              | Daemon.Unix_sock p -> p
              | Daemon.Tcp _ -> Alcotest.fail "unix socket expected"
            in
            let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
            Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
            Unix.connect fd (Unix.ADDR_UNIX path);
            check_string "shed with BUSY" "SPAMLAB/1.0 BUSY\r\n" (read_all fd);
            (* Shedding is bookkept, and the held connection survives. *)
            (match
               Client.request held { Protocol.verb = Stats; body = ""; user = None }
             with
            | Ok (Protocol.Ok s) ->
                check_int "shed counted" 1 (count_lines_with "shed.connections 1" s)
            | _ -> Alcotest.fail "held connection should still answer"));
    test_case "publish-failure streak degrades TRAIN; PUBLISH recovers"
      (fun () ->
        with_daemon ~publish_every:2
          ~limits:{ Daemon.default_limits with degraded_after = 1 }
        @@ fun addr _ _ ->
        (match Fault.configure "serve.publish:transient~1.0" with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Fun.protect ~finally:Fault.disable @@ fun () ->
        let rt verb body =
          Client.roundtrip addr { Protocol.verb = verb; body; user = None }
        in
        (* 3 >= publish_every msgs: the auto-publish fails, but training
           itself succeeded, so the ack is Ok with the failure noted. *)
        let ack = ok_payload (rt (Train Label.Spam) (spam_mbox 3)) in
        check_bool "publish failure noted in ack" true
          (contains ack "publish_error=1");
        (* Streak 1 >= degraded_after: mutations now refused... *)
        (match rt (Train Label.Spam) (spam_mbox 1) with
        | Ok (Protocol.Err e) ->
            check_bool "DEGRADED error" true (contains e "DEGRADED")
        | Ok _ -> Alcotest.fail "TRAIN should be refused when degraded"
        | Error e -> Alcotest.fail (Client.error_message e));
        check_bool "health says degraded" true
          (contains (ok_payload (rt Health "")) "state=DEGRADED");
        (* ...while reads keep serving from the last good snapshot. *)
        ignore (ok_payload (rt Classify (spam_mbox 2)));
        (* Operator clears the fault; an explicit PUBLISH recovers. *)
        Fault.disable ();
        check_bool "publish recovers" true
          (contains (ok_payload (rt Publish "")) "seq=1");
        check_bool "ready again" true
          (contains (ok_payload (rt Health "")) "state=READY");
        ignore (ok_payload (rt (Train Label.Spam) (spam_mbox 1))));
    test_case "connect failure surfaces the errno, marked recoverable"
      (fun () ->
        with_temp_dir @@ fun dir ->
        let addr = Daemon.Unix_sock (Filename.concat dir "nobody-home.sock") in
        match Client.connect addr with
        | Ok conn ->
            Client.close conn;
            Alcotest.fail "connect to an unbound socket succeeded"
        | Error e ->
            check_bool "errno surfaced" true
              (match e.Client.errno with
              | Some Unix.ENOENT | Some Unix.ECONNREFUSED -> true
              | _ -> false);
            check_bool "recoverable" true e.Client.recoverable;
            (* The rendering names the syscall failure, not a vague
               "connection lost". *)
            check_bool "message carries strerror" true
              (String.length (Client.error_message e) > String.length "connect"));
    test_case "load summary is byte-identical with limits armed" (fun () ->
        (* The acceptance invariant in miniature: the same deterministic
           schedule against an unconstrained daemon and against one with
           admission caps + deadlines armed must produce the same
           summary bytes — shedding and retries are absorbed by the
           client backoff, never surfacing in the deterministic output. *)
        let run limits =
          with_daemon ~publish_every:8 ~limits @@ fun addr _ _ ->
          match
            Client.load
              {
                (Client.default_load ~addr ~seed:7) with
                clients = 2;
                train_size = 24;
                eval_size = 12;
                train_batch = 4;
                classify_batch = 4;
              }
          with
          | Ok r -> r.Client.summary
          | Error e -> Alcotest.fail e
        in
        let unarmed = run Daemon.default_limits in
        let armed =
          run
            {
              Daemon.default_limits with
              read_timeout_s = 2.0;
              idle_timeout_s = 5.0;
              max_conns = 1;
              max_inflight = 1;
            }
        in
        check_string "summaries" unarmed armed);
  ]

let () =
  Alcotest.run "serve"
    [
      ("io", io_tests);
      ("protocol", protocol_tests);
      ("connection", connection_tests);
      ("e2e", e2e_tests);
    ]
