(* Tests for the deterministic fault-injection registry: spec parsing,
   occurrence and probability selectors, determinism in the seed, and
   the disabled-path no-op contract. *)

open Spamlab_fault

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let test_case name f = Alcotest.test_case name `Quick f

(* Every test leaves the registry disarmed, whatever happens inside. *)
let armed spec f =
  match configure spec with
  | Error e -> Alcotest.fail e
  | Ok () -> Fun.protect ~finally:disable f

(* Run [n] checks of [site], returning the 1-based occurrences that
   raised. *)
let firing_occurrences site n =
  let fired = ref [] in
  for i = 1 to n do
    match check site with
    | () -> ()
    | exception Injected { occurrence; _ } ->
        check_int "occurrence matches call number" i occurrence;
        fired := i :: !fired
  done;
  List.rev !fired

let parse_tests =
  [
    test_case "well-formed specs parse" (fun () ->
        List.iter
          (fun spec ->
            match configure spec with
            | Ok () -> disable ()
            | Error e -> Alcotest.fail (spec ^ ": " ^ e))
          [
            "pool.task:transient@1";
            "pool.task:transient@2+7+100";
            "db.save.write:crash@1";
            "pool.task:fatal~0.25";
            "a:transient@1,b:fatal@2,c:crash@3";
          ]);
    test_case "empty spec disarms" (fun () ->
        armed "pool.task:transient@1" (fun () ->
            check_bool "armed" true (enabled ()));
        check_bool "disarmed after disable" false (enabled ());
        check_bool "empty spec ok" true (configure "" = Ok ());
        check_bool "still disarmed" false (enabled ()));
    test_case "malformed specs are rejected with the grammar" (fun () ->
        List.iter
          (fun spec ->
            match configure spec with
            | Ok () ->
                disable ();
                Alcotest.fail (spec ^ ": expected an error")
            | Error e ->
                check_bool
                  (spec ^ ": error cites the grammar")
                  true
                  (let sub = "site:kind" in
                   let n = String.length e and m = String.length sub in
                   let rec scan i =
                     i + m <= n && (String.sub e i m = sub || scan (i + 1))
                   in
                   ignore grammar;
                   scan 0))
          [
            "no-colon";
            ":transient@1";
            "site:@1";
            "site:maybe@1";
            "site:transient";
            "site:transient@";
            "site:transient@zero";
            "site:transient@0";
            "site:transient@-2";
            "site:transient~";
            "site:transient~1.5";
            "site:transient~nope";
          ]);
    test_case "configure_env with variable unset is Ok" (fun () ->
        (* The suite runs without SPAMLAB_FAULTS set. *)
        check_bool "unset" true (Sys.getenv_opt "SPAMLAB_FAULTS" = None);
        check_bool "ok" true (configure_env () = Ok ());
        check_bool "disarmed" false (enabled ()));
  ]

let selector_tests =
  [
    test_case "disabled check is a no-op at any site" (fun () ->
        disable ();
        for _ = 1 to 100 do
          check "pool.task";
          check "never.configured"
        done);
    test_case "occurrence selector fires exactly the named hits" (fun () ->
        armed "pool.task:transient@2+5" (fun () ->
            check_bool "fires 2 and 5" true
              (firing_occurrences "pool.task" 10 = [ 2; 5 ])));
    test_case "unnamed sites never fire" (fun () ->
        armed "pool.task:transient@1" (fun () ->
            check_bool "other site silent" true
              (firing_occurrences "db.save.write" 10 = [])));
    test_case "kinds are carried on the exception" (fun () ->
        armed "s:transient@1" (fun () ->
            match check "s" with
            | () -> Alcotest.fail "expected Injected"
            | exception (Injected { kind; _ } as exn) ->
                check_bool "transient kind" true (kind = Transient);
                check_bool "is_transient" true (is_transient exn));
        armed "s:fatal@1" (fun () ->
            match check "s" with
            | () -> Alcotest.fail "expected Injected"
            | exception (Injected { kind; _ } as exn) ->
                check_bool "fatal kind" true (kind = Fatal);
                check_bool "fatal not transient" false (is_transient exn)));
    test_case "is_transient rejects foreign exceptions" (fun () ->
        check_bool "failure" false (is_transient (Failure "x")));
    test_case "reconfigure resets occurrence counters" (fun () ->
        armed "s:transient@1" (fun () ->
            check_bool "first run fires at 1" true
              (firing_occurrences "s" 3 = [ 1 ]));
        armed "s:transient@1" (fun () ->
            check_bool "fresh counter fires at 1 again" true
              (firing_occurrences "s" 3 = [ 1 ])));
    test_case "probability selector is deterministic in the seed" (fun () ->
        let run seed =
          match configure ~seed "s:transient~0.3" with
          | Error e -> Alcotest.fail e
          | Ok () ->
              Fun.protect ~finally:disable (fun () ->
                  firing_occurrences "s" 200)
        in
        let a = run 42 and b = run 42 and c = run 43 in
        check_bool "same seed, same firings" true (a = b);
        check_bool "some firings at p=0.3 over 200 draws" true (a <> []);
        check_bool "not every draw fires" true (List.length a < 200);
        (* Different seeds should decide at least one of 200 draws
           differently; equality would mean the seed is ignored. *)
        check_bool "seed changes the pattern" true (a <> c));
    test_case "probability 0 never fires, 1 always fires" (fun () ->
        armed "s:transient~0" (fun () ->
            check_bool "never" true (firing_occurrences "s" 50 = []));
        armed "s:transient~1" (fun () ->
            check_int "always" 50
              (List.length (firing_occurrences "s" 50))));
  ]

let catalogue_tests =
  [
    test_case "known_sites pins the catalogue behind `fault sites`" (fun () ->
        (* `spamlab fault sites` prints exactly this list.  Adding a
           Fault.check call site without registering it here (and
           deciding its chaos eligibility in Serve.Chaos) is the bug
           this test exists to catch. *)
        let names = List.map fst known_sites in
        Alcotest.(check (list string))
          "catalogue"
          [
            "checkpoint.record";
            "db.save.rename";
            "db.save.write";
            "intern.grow";
            "pool.task";
            "score.cache.fill";
            "serve.accept";
            "serve.deadline";
            "serve.publish";
            "serve.read";
            "serve.write";
            "store.compact";
            "store.evict";
            "store.journal.append";
          ]
          names;
        Alcotest.(check (list string))
          "sorted and duplicate-free"
          (List.sort_uniq compare names)
          names;
        List.iter
          (fun (site, doc) ->
            check_bool (site ^ " documented") true (String.length doc > 0))
          known_sites);
  ]

let () =
  Alcotest.run "spamlab_fault"
    [
      ("parse", parse_tests);
      ("selectors", selector_tests);
      ("catalogue", catalogue_tests);
    ]
