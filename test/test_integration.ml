(* End-to-end integration tests: the whole pipeline from corpus
   generation through attacks and defenses, at a reduced but faithful
   scale.  These pin the qualitative results of the paper:

   - a clean filter separates ham from spam,
   - dictionary attacks degrade ham classification sharply,
   - better-informed word sources hurt more (optimal >= usenet, and
     usenet covers what aspell misses),
   - the focused attack flips its target and strengthens with p,
   - RONI separates attack emails from ordinary spam,
   - dynamic thresholds keep poisoned ham out of the spam folder. *)

open Spamlab_eval
open Spamlab_stats
module Label = Spamlab_spambayes.Label
module Options = Spamlab_spambayes.Options
module Filter = Spamlab_spambayes.Filter
module Classify = Spamlab_spambayes.Classify
module Dataset = Spamlab_corpus.Dataset
module Generator = Spamlab_corpus.Generator
module Trec = Spamlab_corpus.Trec
module Attack = Spamlab_core.Dictionary_attack
module Focused = Spamlab_core.Focused_attack
module Roni = Spamlab_core.Roni
module Dynamic_threshold = Spamlab_core.Dynamic_threshold

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let test_case name f = Alcotest.test_case name `Quick f

let lab = Lab.create ~seed:42 ~scale:0.05 ()
let tokenizer = Lab.tokenizer lab

(* One shared train/test split for the attack tests. *)
let train_examples, test_examples =
  let examples =
    Lab.corpus lab ~name:"integration-corpus" ~size:600 ~spam_fraction:0.5
  in
  (Array.sub examples 0 500, Array.sub examples 500 100)

let base_filter = Poison.base_filter tokenizer train_examples

let confusion_of filter examples =
  Poison.confusion_of_scores Options.default
    (Poison.score_examples filter examples)

let ham_damage filter =
  Confusion.ham_misclassified_rate (confusion_of filter test_examples)

let clean_tests =
  [
    test_case "clean filter separates the classes" (fun () ->
        let c = confusion_of base_filter test_examples in
        check_bool "ham ok" true (Confusion.ham_misclassified_rate c < 0.10);
        check_bool "spam ok" true (Confusion.spam_misclassified_rate c < 0.10);
        check_bool "no false positives" true
          (Confusion.ham_as_spam_rate c < 0.02));
    test_case "held-out scores order by class" (fun () ->
        let scores = Poison.score_examples base_filter test_examples in
        let mean label =
          let xs =
            Array.of_list
              (List.filter_map
                 (fun (s, g) -> if g = label then Some s else None)
                 (Array.to_list scores))
          in
          Summary.mean xs
        in
        check_bool "spam scores higher" true
          (mean Label.Spam > mean Label.Ham +. 0.5));
  ]

let dictionary_attack_tests =
  [
    test_case "a 5% dictionary attack cripples ham delivery" (fun () ->
        let payload =
          Attack.payload tokenizer
            (Attack.make ~name:"aspell" ~words:(Lab.aspell lab ~size:20_000))
        in
        let count = Poison.attack_count ~train_size:500 ~fraction:0.05 in
        let poisoned = Poison.poisoned base_filter ~payload ~count in
        let before = ham_damage base_filter in
        let after = ham_damage poisoned in
        check_bool "clean is fine" true (before < 0.10);
        check_bool "poisoned is crippled" true (after > 0.5));
    test_case "optimal attack dominates aspell at equal size" (fun () ->
        let optimal_payload =
          Attack.payload tokenizer
            (Attack.make ~name:"optimal" ~words:(Lab.optimal_words lab))
        in
        let aspell_payload =
          Attack.payload tokenizer
            (Attack.make ~name:"aspell" ~words:(Lab.aspell lab ~size:20_000))
        in
        let count = Poison.attack_count ~train_size:500 ~fraction:0.02 in
        let optimal_damage =
          ham_damage (Poison.poisoned base_filter ~payload:optimal_payload ~count)
        in
        let aspell_damage =
          ham_damage (Poison.poisoned base_filter ~payload:aspell_payload ~count)
        in
        check_bool "ordering" true (optimal_damage >= aspell_damage));
    test_case "attack barely touches spam classification" (fun () ->
        let payload =
          Attack.payload tokenizer
            (Attack.make ~name:"usenet" ~words:(Lab.usenet_top lab ~size:19_000))
        in
        let count = Poison.attack_count ~train_size:500 ~fraction:0.05 in
        let poisoned = Poison.poisoned base_filter ~payload ~count in
        let c = confusion_of poisoned test_examples in
        check_bool "spam still caught" true
          (Confusion.spam_as_ham_rate c < 0.05));
  ]

let focused_attack_tests =
  [
    test_case "focused attack flips a known target" (fun () ->
        let rng = Lab.rng lab "integration-focused" in
        let messages =
          Lab.corpus_messages lab ~name:"integration-focused" ~size:400
            ~spam_fraction:0.5
        in
        let examples = Dataset.of_labeled tokenizer messages in
        let filter = Poison.base_filter tokenizer examples in
        let header_pool =
          Array.map Spamlab_email.Message.headers (Trec.spam_only messages)
        in
        let target = Generator.ham (Lab.config lab) rng in
        let before = (Filter.classify filter target).Classify.verdict in
        check_bool "target delivered before" true (before = Label.Ham_v);
        let plan = Focused.craft rng ~target ~p:0.9 ~count:60 ~header_pool in
        Focused.train filter plan;
        let after = (Filter.classify filter target).Classify.verdict in
        check_bool "target blocked after" true (after <> Label.Ham_v));
    test_case "attack strength grows with guess probability" (fun () ->
        let rng = Lab.rng lab "integration-focused-p" in
        let messages =
          Lab.corpus_messages lab ~name:"integration-focused-p" ~size:400
            ~spam_fraction:0.5
        in
        let examples = Dataset.of_labeled tokenizer messages in
        let base = Poison.base_filter tokenizer examples in
        let header_pool =
          Array.map Spamlab_email.Message.headers (Trec.spam_only messages)
        in
        let mean_indicator p =
          let acc = ref 0.0 in
          let n = 10 in
          for _ = 1 to n do
            let target = Generator.ham (Lab.config lab) rng in
            let filter = Filter.copy base in
            let plan = Focused.craft rng ~target ~p ~count:60 ~header_pool in
            Focused.train filter plan;
            acc := !acc +. (Filter.classify filter target).Classify.indicator
          done;
          !acc /. float_of_int n
        in
        let weak = mean_indicator 0.1 in
        let strong = mean_indicator 0.9 in
        check_bool "monotone in p" true (strong > weak));
  ]

let defense_tests =
  [
    test_case "RONI separates attack emails from ordinary spam" (fun () ->
        let rng = Lab.rng lab "integration-roni" in
        let pool =
          Lab.corpus lab ~name:"integration-roni" ~size:200 ~spam_fraction:0.5
        in
        let attack_payload =
          Attack.payload tokenizer
            (Attack.make ~name:"usenet" ~words:(Lab.usenet_top lab ~size:19_000))
        in
        let attack = Roni.assess rng ~pool ~candidate:attack_payload in
        let benign_spam =
          Dataset.of_message tokenizer Label.Spam
            (Generator.spam (Lab.config lab) rng)
        in
        let benign = Roni.assess rng ~pool ~candidate:benign_spam.Dataset.tokens in
        check_bool "attack rejected" true attack.Roni.rejected;
        check_bool "benign accepted" false benign.Roni.rejected;
        check_bool "margin" true
          (attack.Roni.mean_ham_impact > benign.Roni.mean_ham_impact +. 2.0));
    test_case "dynamic thresholds keep poisoned ham out of the spam folder"
      (fun () ->
        let payload =
          Attack.payload tokenizer
            (Attack.make ~name:"usenet" ~words:(Lab.usenet_top lab ~size:19_000))
        in
        let count = Poison.attack_count ~train_size:500 ~fraction:0.05 in
        let poisoned = Poison.poisoned base_filter ~payload ~count in
        (* Derive thresholds from the poisoned training distribution. *)
        let rng = Lab.rng lab "integration-threshold" in
        let half_a, half_b = Dataset.split rng 0.5 train_examples in
        let derivation = Poison.base_filter tokenizer half_a in
        let derivation = Poison.poisoned derivation ~payload ~count:(count / 2) in
        let scores =
          Array.append
            (Array.map
               (fun (e : Dataset.example) ->
                 ((Dataset.classify derivation e).Classify.indicator,
                  e.Dataset.label, 1))
               half_b)
            [| ((Filter.classify_tokens derivation payload).Classify.indicator,
                Label.Spam, count - (count / 2)) |]
        in
        let theta0, theta1 = Dynamic_threshold.thresholds_of_scores scores in
        let options = Options.with_cutoffs Options.default ~ham:theta0 ~spam:theta1 in
        let undefended =
          Poison.confusion_of_scores Options.default
            (Poison.score_examples poisoned test_examples)
        in
        let defended =
          Poison.confusion_of_scores options
            (Poison.score_examples poisoned test_examples)
        in
        (* Under the SpamBayes boundary semantics (indicator >= theta1
           is spam) a ham whose indicator saturates at exactly 1.0 is
           unreachable by any cutoff, so the defense cannot drive
           ham-as-spam to zero here — this 5% dictionary attack
           saturates a fraction of the test ham.  The previous
           near-zero expectation only held because the old strict-">"
           comparison silently disabled the spam verdict whenever
           theta1 = 1.0.  The honest property is a large reduction. *)
        let undefended_rate = Confusion.ham_as_spam_rate undefended in
        let defended_rate = Confusion.ham_as_spam_rate defended in
        check_bool "attack succeeds without the defense" true
          (undefended_rate > 0.5);
        check_bool "defense reduces ham-as-spam" true
          (defended_rate <= undefended_rate);
        check_bool "defended ham-as-spam at most a third of undefended" true
          (defended_rate < undefended_rate /. 3.0));
  ]

let persistence_tests =
  [
    test_case "filter state survives save/load byte-for-byte" (fun () ->
        let path = Filename.temp_file "spamlab" ".db" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Filter.save_file base_filter path;
            match Filter.load_file path with
            | Error e -> Alcotest.fail e
            | Ok loaded ->
                Array.iter
                  (fun (e : Dataset.example) ->
                    let a = (Dataset.classify base_filter e).Classify.indicator in
                    let b = (Dataset.classify loaded e).Classify.indicator in
                    Alcotest.(check (float 1e-12)) "same score" a b)
                  test_examples));
    test_case "corpus mbox round-trip preserves classification" (fun () ->
        let corpus =
          Lab.corpus_messages lab ~name:"integration-mbox" ~size:30
            ~spam_fraction:0.5
        in
        let ham_path = Filename.temp_file "spamlab" ".ham" in
        let spam_path = Filename.temp_file "spamlab" ".spam" in
        Fun.protect
          ~finally:(fun () ->
            Sys.remove ham_path;
            Sys.remove spam_path)
          (fun () ->
            Trec.to_mbox_files ~ham_path ~spam_path corpus;
            match Trec.of_mbox_files ~ham_path ~spam_path with
            | Error e -> Alcotest.fail e
            | Ok loaded ->
                check_int "size" 30 (Array.length loaded);
                (* Tokenization must agree after the round-trip. *)
                let tokens_of c =
                  List.sort compare
                    (Array.to_list c
                    |> List.concat_map (fun (_, m) ->
                           Array.to_list
                             (Spamlab_tokenizer.Tokenizer.unique_tokens
                                tokenizer m)))
                in
                check_bool "same token multiset" true
                  (tokens_of corpus = tokens_of loaded)));
  ]

let () =
  Alcotest.run "integration"
    [
      ("clean", clean_tests);
      ("dictionary_attack", dictionary_attack_tests);
      ("focused_attack", focused_attack_tests);
      ("defenses", defense_tests);
      ("persistence", persistence_tests);
    ]
