(* Differential tests for the generation-stamped probability cache
   (PR 9): every scoring engine — private per-filter cache, shared
   snapshot cache, tenant overlay over the store's prior cache — must
   be bit-identical to the verbatim pre-cache scoring path
   [Classify.score_ids_reference] under arbitrary interleavings of
   training, untraining and classification, including forced store
   evictions, daemon publish cycles, and injected cache-fill faults. *)

open Spamlab_spambayes
module Store = Spamlab_store.Store
module Fault = Spamlab_fault

let check_bool = Alcotest.(check bool)
let test_case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 100) ?print name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ?print ~count ~name gen prop)

(* Bit-exact result equality: indicator and every clue score compared
   as float *bits* (Int64.bits_of_float), not with a tolerance — the
   cache contract is byte-identical output, so 1 ulp is a failure. *)
let same_float a b = Int64.bits_of_float a = Int64.bits_of_float b

let same_result (a : Classify.result) (b : Classify.result) =
  same_float a.Classify.indicator b.Classify.indicator
  && a.Classify.verdict = b.Classify.verdict
  && List.length a.Classify.clues = List.length b.Classify.clues
  && List.for_all2
       (fun (x : Classify.clue) (y : Classify.clue) ->
         String.equal x.Classify.token y.Classify.token
         && same_float x.Classify.score y.Classify.score)
       a.Classify.clues b.Classify.clues

(* A small vocabulary so random messages collide with the trained set
   and hapax clusters produce lots of exact strength ties (the
   tie-break path).  Tokens are plain strings; ids come from the
   process-global interner. *)
let vocab =
  Array.init 48 (fun i -> Printf.sprintf "%c%02d" (Char.chr (97 + (i mod 7))) i)

let msg_of_indices ixs =
  Array.of_list
    (List.sort_uniq compare (List.map (fun i -> vocab.(i mod Array.length vocab)) ixs))

(* One random workload step.  [Untrain] pops the oldest still-trained
   message, so untraining is always of something actually trained
   (negative counts are a different module's contract). *)
type op =
  | Train of bool * int list  (* spam?, token indices *)
  | Untrain
  | Classify of int list

let op_gen =
  QCheck2.Gen.(
    let ixs = list_size (int_range 1 8) (int_range 0 1000) in
    frequency
      [
        (3, map2 (fun s m -> Train (s, m)) bool ixs);
        (1, return Untrain);
        (4, map (fun m -> Classify m) ixs);
      ])

let ops_gen = QCheck2.Gen.(list_size (int_range 1 40) op_gen)

let print_op = function
  | Train (s, m) ->
      Printf.sprintf "Train(%b,[%s])" s
        (String.concat ";" (List.map string_of_int m))
  | Untrain -> "Untrain"
  | Classify m ->
      Printf.sprintf "Classify([%s])"
        (String.concat ";" (List.map string_of_int m))

let print_ops ops = String.concat " " (List.map print_op ops)

(* ------------------------------------------------------------------ *)
(* Filter path: one persistent filter (and thus one persistent private
   cache) across the whole interleaving; every classification must
   match the uncached engine and the verbatim reference on the same
   live db.                                                            *)

let filter_differential ops =
  let filter = Filter.create () in
  let options = Filter.options filter in
  let trained = Queue.create () in
  List.for_all
    (function
      | Train (spam, ixs) ->
          let label = if spam then Label.Spam else Label.Ham in
          let tokens = msg_of_indices ixs in
          Filter.train_tokens filter label tokens;
          Queue.push (label, tokens) trained;
          true
      | Untrain ->
          (match Queue.take_opt trained with
          | Some (label, tokens) -> Filter.untrain_tokens filter label tokens
          | None -> ());
          true
      | Classify ixs ->
          let ids = Intern.intern_array (msg_of_indices ixs) in
          let db = Filter.db filter in
          let cached = Filter.classify_ids filter ids in
          let uncached = Classify.score_engine (Classify.engine options db) ids in
          let reference = Classify.score_ids_reference options db ids in
          same_result cached reference && same_result uncached reference)
    ops

(* ------------------------------------------------------------------ *)
(* Store path: tenant overlays scored through the shared prior cache
   ([with_user_engine]) vs the reference on the raw overlay db.  The
   store geometry is deliberately tiny (4 shards, 2 cached overlays)
   so the random workload constantly evicts and rematerializes
   overlays underneath the engines.                                    *)

let with_tmp_dir f =
  let dir = Filename.temp_file "spamlab_test" ".probcache" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let store_differential ops =
  with_tmp_dir @@ fun dir ->
  let prior = Token_db.create () in
  Token_db.train prior Label.Spam (msg_of_indices [ 0; 1; 2; 3 ]);
  Token_db.train prior Label.Ham (msg_of_indices [ 4; 5; 6; 7 ]);
  let config =
    { Store.default_config with Store.backend = `Sharded dir; shards = 4;
      cache = 2 }
  in
  match Store.open_store ~prior config with
  | Error e -> Alcotest.fail ("open_store: " ^ e)
  | Ok st ->
      Fun.protect ~finally:(fun () -> Store.close st) @@ fun () ->
      let options = Options.default in
      let user_of ixs =
        Printf.sprintf "user-%d" (match ixs with [] -> 0 | i :: _ -> i mod 5)
      in
      List.for_all
        (function
          | Train (spam, ixs) ->
              let label = if spam then Label.Spam else Label.Ham in
              Store.train st ~user:(user_of ixs) label (msg_of_indices ixs);
              true
          | Untrain -> true  (* the store journal is append-only *)
          | Classify ixs ->
              let user = user_of ixs in
              let ids = Intern.intern_array (msg_of_indices ixs) in
              let fast =
                Store.with_user_engine st user (fun e ->
                    Classify.score_engine e ids)
              in
              let reference =
                Store.with_user st user (fun db ->
                    Classify.score_ids_reference options db ids)
              in
              same_result fast reference)
        ops

(* ------------------------------------------------------------------ *)
(* Daemon publish cycle: train, publish an immutable snapshot with a
   fresh shared cache, fan classifications against it, train more,
   republish.  Each round's cached results must match the reference on
   that round's snapshot.                                              *)

let publish_cycle_differential ops =
  let filter = Filter.create () in
  let options = Filter.options filter in
  let rounds =
    (* Partition the op stream into publish rounds at each Untrain. *)
    List.fold_left
      (fun acc op ->
        match (op, acc) with
        | Untrain, _ -> [] :: acc
        | _, cur :: rest -> (op :: cur) :: rest
        | _, [] -> [ [ op ] ])
      [ [] ] ops
  in
  List.for_all
    (fun round ->
      let snapshot = Token_db.copy (Filter.db filter) in
      let cache = Prob_cache.create ~shared:true options snapshot in
      let engine = Classify.engine_cached cache in
      List.for_all
        (fun op ->
          match op with
          | Train (spam, ixs) ->
              (* Mutates the live filter only: the published snapshot
                 and its cache must keep serving the old state. *)
              let label = if spam then Label.Spam else Label.Ham in
              Filter.train_tokens filter label (msg_of_indices ixs);
              true
          | Untrain -> true
          | Classify ixs ->
              let ids = Intern.intern_array (msg_of_indices ixs) in
              let cached = Classify.score_engine engine ids in
              let reference =
                Classify.score_ids_reference options snapshot ids
              in
              same_result cached reference)
        (List.rev round))
    rounds

(* ------------------------------------------------------------------ *)
(* Tie-break: a hapax cluster — dozens of tokens each trained exactly
   once as spam — scores every token identically, so clue order within
   the cluster is decided purely by the token-string tie-break.  The
   scratch-array sort must reproduce the reference's List.sort order
   exactly, both for rank-covered ids and for ids interned after the
   last freeze (rank -1, byte-compare fallback).                       *)

let tie_break_tests =
  [
    test_case "hapax cluster order matches reference" (fun () ->
        let db = Token_db.create () in
        let cluster =
          Array.init 40 (fun i -> Printf.sprintf "tie-%c-%d" (Char.chr (122 - (i mod 9))) i)
        in
        Array.iter (fun t -> Token_db.train db Label.Spam [| t |]) cluster;
        Token_db.train db Label.Ham [| "ballast" |];
        Intern.freeze ();
        let ids = Intern.intern_array cluster in
        let options = Options.default in
        let fast = Classify.score_ids options db ids in
        let reference = Classify.score_ids_reference options db ids in
        check_bool "bit-identical" true (same_result fast reference);
        let tokens = List.map (fun c -> c.Classify.token) fast.Classify.clues in
        check_bool "clues sorted by byte order within the tie" true
          (List.sort String.compare tokens = tokens));
    test_case "post-freeze ids fall back to byte compare" (fun () ->
        let db = Token_db.create () in
        let covered = Array.init 12 (fun i -> Printf.sprintf "cov-%02d" i) in
        Array.iter (fun t -> Token_db.train db Label.Spam [| t |]) covered;
        Intern.freeze ();
        (* Interned after the freeze: rank is -1 for these, so sorting
           mixes int-compare and byte-compare paths in one message. *)
        let fresh = Array.init 12 (fun i -> Printf.sprintf "cov-%02d-x" i) in
        Array.iter (fun t -> Token_db.train db Label.Spam [| t |]) fresh;
        let ids = Intern.intern_array (Array.append covered fresh) in
        let options = Options.default in
        let fast = Classify.score_ids options db ids in
        let reference = Classify.score_ids_reference options db ids in
        check_bool "bit-identical" true (same_result fast reference));
    test_case "winner truncation happens after the tie-break" (fun () ->
        (* More equal-strength candidates than max_discriminators: which
           ones survive depends entirely on the tie-break order. *)
        let db = Token_db.create () in
        let cluster = Array.init 30 (fun i -> Printf.sprintf "trunc-%02d" i) in
        Array.iter (fun t -> Token_db.train db Label.Spam [| t |]) cluster;
        Intern.freeze ();
        let options = { Options.default with Options.max_discriminators = 7 } in
        let ids = Intern.intern_array cluster in
        let fast = Classify.score_ids options db ids in
        let reference = Classify.score_ids_reference options db ids in
        check_bool "bit-identical" true (same_result fast reference);
        check_bool "truncated" true (List.length fast.Classify.clues = 7));
  ]

(* ------------------------------------------------------------------ *)
(* Fault site score.cache.fill.                                        *)

let with_faults spec f =
  match Fault.configure spec with
  | Error e -> Alcotest.fail ("fault spec: " ^ e)
  | Ok () -> Fun.protect ~finally:Fault.disable f

let fault_tests =
  [
    test_case "transient fill faults are byte-identical" (fun () ->
        let filter = Filter.create () in
        Filter.train_tokens filter Label.Spam (msg_of_indices [ 0; 1; 2 ]);
        Filter.train_tokens filter Label.Ham (msg_of_indices [ 3; 4; 5 ]);
        let options = Filter.options filter in
        let ids = Intern.intern_array (msg_of_indices [ 0; 1; 3; 4; 8 ]) in
        let reference =
          Classify.score_ids_reference options (Filter.db filter) ids
        in
        (* Every fill attempt faults: the cache never warms, every read
           falls through to the uncached compute, output unchanged. *)
        with_faults "score.cache.fill:transient~1" (fun () ->
            let r = Filter.classify_ids filter ids in
            check_bool "all-faults run matches" true (same_result r reference));
        (* Sporadic faults: some slots fill, some fall through, then a
           clean pass serves the (partially warm) cache. *)
        with_faults "score.cache.fill:transient@1+3+5" (fun () ->
            let r = Filter.classify_ids filter ids in
            check_bool "sporadic-faults run matches" true
              (same_result r reference));
        let r = Filter.classify_ids filter ids in
        check_bool "post-fault warm run matches" true (same_result r reference));
    test_case "fatal fill fault raises" (fun () ->
        let filter = Filter.create () in
        Filter.train_tokens filter Label.Spam (msg_of_indices [ 0; 1; 2 ]);
        let ids = Intern.intern_array (msg_of_indices [ 0; 1; 2 ]) in
        with_faults "score.cache.fill:fatal@1" (fun () ->
            check_bool "raises Injected" true
              (match Filter.classify_ids filter ids with
              | _ -> false
              | exception Fault.Injected { site; _ } ->
                  site = "score.cache.fill")));
  ]

(* ------------------------------------------------------------------ *)

let differential_tests =
  [
    qtest ~count:60 ~print:print_ops
      "filter: cached = uncached = reference over interleavings" ops_gen
      filter_differential;
    qtest ~count:30 ~print:print_ops
      "store: overlay engine = reference under evictions" ops_gen
      store_differential;
    qtest ~count:40 ~print:print_ops
      "daemon: published snapshot cache = reference" ops_gen
      publish_cycle_differential;
  ]

let () =
  Alcotest.run "prob_cache"
    [
      ("differential", differential_tests);
      ("tie_break", tie_break_tests);
      ("faults", fault_tests);
    ]
