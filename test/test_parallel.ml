(* Tests for the deterministic domain pool, and the end-to-end
   regression that experiment results do not depend on the jobs
   setting. *)

open Spamlab_parallel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let test_case name f = Alcotest.test_case name `Quick f

let with_pool ~jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let pool_tests =
  [
    test_case "map_array preserves order" (fun () ->
        with_pool ~jobs:4 (fun pool ->
            let input = Array.init 100 (fun i -> i) in
            let got = Pool.map_array pool (fun i -> i * i) input in
            check_bool "equals Array.map" true
              (got = Array.map (fun i -> i * i) input)));
    test_case "jobs=1 equals Array.map" (fun () ->
        with_pool ~jobs:1 (fun pool ->
            let input = Array.init 17 string_of_int in
            check_bool "identical" true
              (Pool.map_array pool String.length input
              = Array.map String.length input)));
    test_case "map_list preserves order" (fun () ->
        with_pool ~jobs:3 (fun pool ->
            check_bool "equals List.map" true
              (Pool.map_list pool succ [ 5; 1; 4; 1; 5 ]
              = [ 6; 2; 5; 2; 6 ])));
    test_case "empty and singleton inputs" (fun () ->
        with_pool ~jobs:4 (fun pool ->
            check_int "empty" 0
              (Array.length (Pool.map_array pool succ [||]));
            check_bool "singleton" true
              (Pool.map_array pool succ [| 41 |] = [| 42 |])));
    test_case "worker exception re-raised at join" (fun () ->
        with_pool ~jobs:4 (fun pool ->
            (* Several indices raise; the contract picks the lowest so
               the surfaced error does not depend on scheduling. *)
            Alcotest.check_raises "lowest raising index wins"
              (Failure "boom-3") (fun () ->
                ignore
                  (Pool.map_array pool
                     (fun i ->
                       if i >= 3 && i mod 2 = 1 then
                         failwith (Printf.sprintf "boom-%d" i);
                       i)
                     (Array.init 64 (fun i -> i))))));
    test_case "pool survives a raising map" (fun () ->
        with_pool ~jobs:4 (fun pool ->
            (try
               ignore
                 (Pool.map_array pool
                    (fun i -> if i = 0 then failwith "once" else i)
                    [| 0; 1; 2 |])
             with Failure _ -> ());
            check_bool "next map fine" true
              (Pool.map_array pool succ [| 1; 2; 3 |] = [| 2; 3; 4 |])));
    test_case "nested use falls back sequentially" (fun () ->
        with_pool ~jobs:4 (fun pool ->
            let got =
              Pool.map_array pool
                (fun i ->
                  Array.fold_left ( + ) 0
                    (Pool.map_array pool (fun j -> (10 * i) + j)
                       [| 0; 1; 2 |]))
                (Array.init 8 (fun i -> i))
            in
            check_bool "values correct" true
              (got = Array.init 8 (fun i -> (30 * i) + 3))));
    test_case "create validates jobs" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Pool.create: jobs must be >= 1")
          (fun () -> ignore (Pool.create ~jobs:0)));
    test_case "run shuts the pool down" (fun () ->
        let n = run ~jobs:2 (fun pool ->
            Array.length (Pool.map_array pool succ [| 1; 2; 3 |]))
        in
        check_int "result" 3 n);
  ]

(* Task supervision: transient injected faults are retried up to
   max_attempts deterministically; fatal ones surface unmasked. *)
let supervision_tests =
  let module Fault = Spamlab_fault in
  let with_faults ?seed spec f =
    match Fault.configure ?seed spec with
    | Error e -> Alcotest.fail e
    | Ok () -> Fun.protect ~finally:Fault.disable f
  in
  [
    test_case "transient faults are retried to the same result" (fun () ->
        let input = Array.init 64 (fun i -> i) in
        let expected = Array.map (fun i -> i * i) input in
        with_faults "pool.task:transient@2+7+40" (fun () ->
            with_pool ~jobs:4 (fun pool ->
                check_bool "identical despite faults" true
                  (Pool.map_array pool (fun i -> i * i) input = expected))));
    test_case "jobs-invariant under transient faults" (fun () ->
        let input = Array.init 48 (fun i -> i) in
        let run jobs =
          with_faults "pool.task:transient@3+11" (fun () ->
              with_pool ~jobs (fun pool ->
                  Pool.map_array pool (fun i -> (2 * i) + 1) input))
        in
        check_bool "jobs 1 = jobs 4" true (run 1 = run 4));
    test_case "retries are counted" (fun () ->
        Spamlab_obs.Obs.enable_metrics ();
        Spamlab_obs.Obs.reset ();
        with_faults "pool.task:transient@2" (fun () ->
            with_pool ~jobs:2 (fun pool ->
                ignore
                  (Pool.map_array pool succ (Array.init 16 (fun i -> i)))));
        check_int "one retry recorded" 1
          (Spamlab_obs.Obs.counter_value "fault.retried"));
    test_case "persistent transient fault becomes Task_failed" (fun () ->
        (* ~1 fires on every attempt, so supervision exhausts its
           budget and surfaces a typed failure naming the site. *)
        with_faults "pool.task:transient~1" (fun () ->
            with_pool ~jobs:2 (fun pool ->
                Alcotest.check_raises "typed failure"
                  (Task_failed
                     { site = "pool.task"; attempts = max_attempts })
                  (fun () ->
                    ignore (Pool.map_array pool succ [| 1; 2; 3 |])))));
    test_case "fatal faults are not retried" (fun () ->
        with_faults "pool.task:fatal@1" (fun () ->
            with_pool ~jobs:2 (fun pool ->
                check_bool "Injected surfaces" true
                  (try
                     ignore (Pool.map_array pool succ [| 1; 2; 3 |]);
                     false
                   with
                  | Fault.Injected { kind = Fault.Fatal; _ } -> true
                  | Task_failed _ -> false))));
    test_case "sequential fallback retries too" (fun () ->
        (* Nested maps run on the caller; supervision must behave the
           same there as on workers. *)
        with_faults "pool.task:transient@2" (fun () ->
            with_pool ~jobs:2 (fun pool ->
                let got =
                  Pool.map_array pool
                    (fun i ->
                      Array.fold_left ( + ) 0
                        (Pool.map_array pool succ [| i; i + 1 |]))
                    [| 0; 4 |]
                in
                check_bool "values correct" true (got = [| 3; 11 |]))));
    test_case "pool survives an exhausted retry budget" (fun () ->
        with_faults "pool.task:transient~1" (fun () ->
            with_pool ~jobs:2 (fun pool ->
                (try ignore (Pool.map_array pool succ [| 1 |])
                 with Task_failed _ -> ());
                Fault.disable ();
                check_bool "next map fine" true
                  (Pool.map_array pool succ [| 1; 2 |] = [| 2; 3 |]))));
  ]

(* The one shared jobs-validation path behind --jobs, SPAMLAB_JOBS and
   Lab.create. *)
let jobs_validation_tests =
  let expected_msg got =
    Printf.sprintf "--jobs/SPAMLAB_JOBS must be a positive integer (got %s)"
      got
  in
  [
    test_case "validate_jobs accepts positives" (fun () ->
        check_bool "one" true (validate_jobs 1 = Ok 1);
        check_bool "many" true (validate_jobs 64 = Ok 64));
    test_case "validate_jobs rejects zero and negatives" (fun () ->
        check_bool "zero" true (validate_jobs 0 = Error (expected_msg "0"));
        check_bool "negative" true
          (validate_jobs (-3) = Error (expected_msg "-3")));
    test_case "parse_jobs parses and trims" (fun () ->
        check_bool "plain" true (parse_jobs "4" = Ok 4);
        check_bool "padded" true (parse_jobs " 2 " = Ok 2));
    test_case "parse_jobs rejects non-numbers with the shared message"
      (fun () ->
        check_bool "word" true
          (parse_jobs "lots" = Error (expected_msg "lots"));
        check_bool "zero" true (parse_jobs "0" = Error (expected_msg "0"));
        check_bool "empty" true
          (parse_jobs "" = Error (expected_msg "an empty string")));
    test_case "Lab.create rejects invalid jobs with the shared message"
      (fun () ->
        Alcotest.check_raises "zero jobs"
          (Invalid_argument (expected_msg "0"))
          (fun () -> ignore (Spamlab_eval.Lab.create ~jobs:0 ())));
  ]

(* End-to-end: a small Figure-1 grid must produce structurally equal
   results at jobs=1 and jobs=4 (the determinism contract of the whole
   harness, not just the pool). *)
let determinism_tests =
  [
    test_case "dictionary_exp identical at jobs=1 and jobs=4" (fun () ->
        let open Spamlab_eval in
        let params =
          {
            Params.train_size = 120;
            spam_prevalence = 0.5;
            attack_fractions = [ 0.0; 0.01; 0.05 ];
            folds = 3;
            dictionary_size = 2_000;
            usenet_size = 2_000;
          }
        in
        let run_with jobs =
          let lab = Lab.create ~seed:7 ~scale:0.05 ~jobs () in
          Fun.protect
            ~finally:(fun () -> Lab.shutdown lab)
            (fun () -> Dictionary_exp.run lab params)
        in
        check_bool "structurally equal" true (run_with 1 = run_with 4));
    test_case "Roni.screen identical sequentially and at jobs=1 and jobs=4"
      (fun () ->
        let module Dataset = Spamlab_corpus.Dataset in
        let module Label = Spamlab_spambayes.Label in
        let module Roni = Spamlab_core.Roni in
        let module Rng = Spamlab_stats.Rng in
        (* A small synthetic pool: enough examples for the config's
           train+validation sampling, with both classes present. *)
        let pool =
          Array.init 24 (fun i ->
              let label = if i mod 3 = 0 then Label.Spam else Label.Ham in
              let tokens =
                Array.init 6 (fun j -> Printf.sprintf "w%d-%d" (i mod 7) j)
              in
              Dataset.of_tokens label tokens
                ~raw_token_count:(Array.length tokens))
        in
        let stream =
          Array.init 6 (fun i ->
              Array.init 9 (fun j -> Printf.sprintf "cand%d-%d" i j))
        in
        let config =
          { Roni.default_config with train_size = 6; validation_size = 12;
            trials = 3 }
        in
        let run_with domains =
          Roni.screen ~config ?domains (Rng.create 11) ~pool ~stream
        in
        let sequential = run_with None in
        let parallel_1 = with_pool ~jobs:1 (fun p -> run_with (Some p)) in
        let parallel_4 = with_pool ~jobs:4 (fun p -> run_with (Some p)) in
        check_bool "sequential = jobs=1" true (sequential = parallel_1);
        check_bool "jobs=1 = jobs=4" true (parallel_1 = parallel_4));
  ]

let () =
  Alcotest.run "spamlab_parallel"
    [
      ("pool", pool_tests); ("supervision", supervision_tests);
      ("jobs-validation", jobs_validation_tests);
      ("determinism", determinism_tests);
    ]
