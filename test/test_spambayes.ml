(* Tests for the SpamBayes learner: token database, Robinson scores,
   Fisher classification, filter assembly. *)

open Spamlab_spambayes
module Header = Spamlab_email.Header
module Message = Spamlab_email.Message

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))
let test_case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Label                                                               *)

let label_tests =
  [
    test_case "string conversions" (fun () ->
        check_str "ham" "ham" (Label.gold_to_string Label.Ham);
        check_str "spam" "spam" (Label.gold_to_string Label.Spam);
        check_str "unsure" "unsure" (Label.verdict_to_string Label.Unsure_v);
        check_bool "parse ham" true (Label.gold_of_string "ham" = Ok Label.Ham);
        check_bool "parse bad" true
          (Result.is_error (Label.gold_of_string "nope"));
        check_bool "verdict parse" true
          (Label.verdict_of_verdict_string "unsure" = Ok Label.Unsure_v));
    test_case "verdict_agrees" (fun () ->
        check_bool "ham-ham" true (Label.verdict_agrees Label.Ham Label.Ham_v);
        check_bool "spam-spam" true
          (Label.verdict_agrees Label.Spam Label.Spam_v);
        check_bool "ham-unsure" false
          (Label.verdict_agrees Label.Ham Label.Unsure_v);
        check_bool "spam-ham" false
          (Label.verdict_agrees Label.Spam Label.Ham_v));
  ]

(* ------------------------------------------------------------------ *)
(* Options                                                             *)

let options_tests =
  [
    test_case "defaults match the paper" (fun () ->
        let o = Options.default in
        check_float "x" 0.5 o.Options.unknown_word_prob;
        check_float "s" 0.45 o.Options.unknown_word_strength;
        check_float "theta0" 0.15 o.Options.ham_cutoff;
        check_float "theta1" 0.9 o.Options.spam_cutoff;
        check_int "max disc" 150 o.Options.max_discriminators;
        check_float "band" 0.1 o.Options.minimum_prob_strength);
    test_case "validate accepts defaults" (fun () ->
        check_bool "ok" true (Result.is_ok (Options.validate Options.default)));
    test_case "validate rejects each bad field" (fun () ->
        let bad f = Result.is_error (Options.validate f) in
        let d = Options.default in
        check_bool "x" true (bad { d with Options.unknown_word_prob = 1.5 });
        check_bool "s" true (bad { d with Options.unknown_word_strength = 0.0 });
        check_bool "cutoffs" true
          (bad { d with Options.ham_cutoff = 0.95 });
        check_bool "disc" true (bad { d with Options.max_discriminators = 0 });
        check_bool "band" true
          (bad { d with Options.minimum_prob_strength = 0.6 }));
    test_case "with_cutoffs" (fun () ->
        let o = Options.with_cutoffs Options.default ~ham:0.2 ~spam:0.8 in
        check_float "ham" 0.2 o.Options.ham_cutoff;
        check_float "spam" 0.8 o.Options.spam_cutoff;
        Alcotest.check_raises "bad"
          (Invalid_argument
             "Options.with_cutoffs: cutoffs must satisfy 0 <= ham < spam <= 1")
          (fun () -> ignore (Options.with_cutoffs Options.default ~ham:0.9 ~spam:0.1)));
  ]

(* ------------------------------------------------------------------ *)
(* Token_db                                                            *)

let db_with training =
  let db = Token_db.create () in
  List.iter (fun (label, tokens) -> Token_db.train db label (Array.of_list tokens)) training;
  db

let db_round_trip db =
  let path = Filename.temp_file "spamlab" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Token_db.save oc db;
      close_out oc;
      let ic = open_in path in
      let loaded = Token_db.load ic in
      close_in ic;
      loaded)

let db_load_string content =
  let path = Filename.temp_file "spamlab" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      let ic = open_in path in
      let loaded = Token_db.load ic in
      close_in ic;
      loaded)

let token_db_tests =
  [
    test_case "train updates counts" (fun () ->
        let db =
          db_with
            [ (Label.Spam, [ "cheap"; "pills" ]); (Label.Ham, [ "meeting"; "pills" ]) ]
        in
        check_int "nspam" 1 (Token_db.nspam db);
        check_int "nham" 1 (Token_db.nham db);
        check_int "spam(cheap)" 1 (Token_db.spam_count db "cheap");
        check_int "ham(cheap)" 0 (Token_db.ham_count db "cheap");
        check_int "spam(pills)" 1 (Token_db.spam_count db "pills");
        check_int "ham(pills)" 1 (Token_db.ham_count db "pills");
        check_int "unknown" 0 (Token_db.spam_count db "nothing");
        check_int "distinct" 3 (Token_db.distinct_tokens db));
    test_case "train_many equals repeated train" (fun () ->
        let a = Token_db.create () in
        let b = Token_db.create () in
        let tokens = [| "x"; "y" |] in
        Token_db.train_many a Label.Spam tokens 5;
        for _ = 1 to 5 do
          Token_db.train b Label.Spam tokens
        done;
        check_int "nspam" (Token_db.nspam b) (Token_db.nspam a);
        check_int "x" (Token_db.spam_count b "x") (Token_db.spam_count a "x"));
    test_case "train_many zero is a no-op" (fun () ->
        let db = Token_db.create () in
        Token_db.train_many db Label.Ham [| "z" |] 0;
        check_int "nham" 0 (Token_db.nham db);
        check_int "z" 0 (Token_db.ham_count db "z"));
    test_case "train_many rejects negative" (fun () ->
        let db = Token_db.create () in
        Alcotest.check_raises "neg"
          (Invalid_argument "Token_db.train_many: negative count") (fun () ->
            Token_db.train_many db Label.Ham [| "z" |] (-1)));
    test_case "untrain inverts train" (fun () ->
        let db = db_with [ (Label.Ham, [ "a"; "b" ]) ] in
        Token_db.train db Label.Spam [| "a"; "c" |];
        Token_db.untrain db Label.Spam [| "a"; "c" |];
        check_int "nspam" 0 (Token_db.nspam db);
        check_int "spam a" 0 (Token_db.spam_count db "a");
        check_int "ham a" 1 (Token_db.ham_count db "a");
        check_int "c gone" 0 (Token_db.spam_count db "c");
        check_int "distinct" 2 (Token_db.distinct_tokens db));
    test_case "untrain of untrained message fails atomically" (fun () ->
        let db = db_with [ (Label.Spam, [ "a" ]) ] in
        check_bool "raises" true
          (try
             Token_db.untrain db Label.Spam [| "a"; "never-seen" |];
             false
           with Invalid_argument _ -> true);
        (* The failed untrain must not have decremented anything. *)
        check_int "nspam intact" 1 (Token_db.nspam db);
        check_int "a intact" 1 (Token_db.spam_count db "a"));
    test_case "untrain without messages of that class fails" (fun () ->
        let db = db_with [ (Label.Spam, [ "a" ]) ] in
        check_bool "raises" true
          (try
             Token_db.untrain db Label.Ham [| "a" |];
             false
           with Invalid_argument _ -> true));
    test_case "copy is independent" (fun () ->
        let db = db_with [ (Label.Ham, [ "x" ]) ] in
        let copy = Token_db.copy db in
        Token_db.train copy Label.Spam [| "x" |];
        check_int "original spam" 0 (Token_db.spam_count db "x");
        check_int "copy spam" 1 (Token_db.spam_count copy "x"));
    test_case "save/load round-trip" (fun () ->
        let db =
          db_with
            [ (Label.Spam, [ "alpha"; "beta" ]); (Label.Ham, [ "alpha" ]);
              (Label.Ham, [ "gamma" ]) ]
        in
        let path = Filename.temp_file "spamlab" ".db" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            Token_db.save oc db;
            close_out oc;
            let ic = open_in path in
            let loaded = Token_db.load ic in
            close_in ic;
            match loaded with
            | Error e -> Alcotest.fail e
            | Ok db' ->
                check_int "nspam" (Token_db.nspam db) (Token_db.nspam db');
                check_int "nham" (Token_db.nham db) (Token_db.nham db');
                check_int "alpha spam" 1 (Token_db.spam_count db' "alpha");
                check_int "alpha ham" 1 (Token_db.ham_count db' "alpha");
                check_int "distinct" (Token_db.distinct_tokens db)
                  (Token_db.distinct_tokens db')));
    test_case "load rejects garbage" (fun () ->
        let path = Filename.temp_file "spamlab" ".db" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc "not a db\n";
            close_out oc;
            let ic = open_in path in
            let r = Token_db.load ic in
            close_in ic;
            check_bool "error" true (Result.is_error r)));
    test_case "save/load round-trips delimiter-laden tokens" (fun () ->
        (* Tokens come from attacker-controlled mail, so the persistence
           format must survive its own delimiters.  Version 1 wrote
           these verbatim, silently corrupting the file. *)
        let nasty =
          [ "a\tb"; "line1\nline2"; "back\\slash"; ""; "caf\xc3\xa9"; "\r" ]
        in
        let db = db_with [ (Label.Spam, nasty); (Label.Ham, [ "a\tb" ]) ] in
        match db_round_trip db with
        | Error e -> Alcotest.fail e
        | Ok db' ->
            check_int "distinct" (Token_db.distinct_tokens db)
              (Token_db.distinct_tokens db');
            List.iter
              (fun token ->
                check_int
                  ("spam count of " ^ String.escaped token)
                  (Token_db.spam_count db token)
                  (Token_db.spam_count db' token))
              nasty;
            check_int "tab token ham" 1 (Token_db.ham_count db' "a\tb"));
    test_case "load rejects negative counts" (fun () ->
        let r = db_load_string "spamlab-token-db 2 1 1\ntok\t-1\t0\n" in
        check_bool "error" true (Result.is_error r));
    test_case "load rejects counts exceeding header totals" (fun () ->
        let r = db_load_string "spamlab-token-db 2 1 1\ntok\t2\t0\n" in
        check_bool "error" true (Result.is_error r));
    test_case "load rejects negative header counts" (fun () ->
        let r = db_load_string "spamlab-token-db 2 -1 0\n" in
        check_bool "error" true (Result.is_error r));
    test_case "load rejects duplicate token lines" (fun () ->
        let r =
          db_load_string "spamlab-token-db 2 2 0\ntok\t1\t0\ntok\t2\t0\n"
        in
        check_bool "error" true (Result.is_error r));
    test_case "load rejects bad escape sequences" (fun () ->
        let r = db_load_string "spamlab-token-db 2 1 0\nto\\xk\t1\t0\n" in
        check_bool "bad escape" true (Result.is_error r);
        let r = db_load_string "spamlab-token-db 2 1 0\ntok\\\t1\t0\n" in
        check_bool "dangling backslash" true (Result.is_error r));
    test_case "load accepts legacy v1 files verbatim" (fun () ->
        match db_load_string "spamlab-token-db 1 1 0\nback\\slash\t1\t0\n" with
        | Error e -> Alcotest.fail e
        | Ok db ->
            (* v1 never escaped, so its backslashes are literal. *)
            check_int "verbatim token" 1 (Token_db.spam_count db "back\\slash"));
    test_case "fold visits every token" (fun () ->
        let db = db_with [ (Label.Ham, [ "a"; "b"; "c" ]) ] in
        check_int "count" 3
          (Token_db.fold (fun acc _ ~spam:_ ~ham:_ -> acc + 1) 0 db));
    qtest "train/untrain round-trip is identity on counts"
      QCheck2.Gen.(
        list_size (int_range 1 10)
          (string_size ~gen:(char_range 'a' 'f') (int_range 1 4)))
      (fun words ->
        let tokens = Array.of_list (List.sort_uniq compare words) in
        let db = db_with [ (Label.Ham, [ "base" ]) ] in
        Token_db.train db Label.Spam tokens;
        Token_db.untrain db Label.Spam tokens;
        Token_db.nspam db = 0
        && Array.for_all (fun t -> Token_db.spam_count db t = 0) tokens);
  ]

(* ------------------------------------------------------------------ *)
(* Persistence robustness: the v3 checksummed format, corruption
   detection, salvage, and crash-safe atomic saves.                    *)

let sample_db () =
  db_with
    [
      (Label.Spam, [ "alpha"; "beta"; "cheap" ]);
      (Label.Spam, [ "beta" ]);
      (Label.Ham, [ "alpha"; "meeting" ]);
      (Label.Ham, [ "gamma" ]);
    ]

let persistence_tests =
  [
    test_case "to_string carries a v3 checksum footer" (fun () ->
        let s = Token_db.to_string (sample_db ()) in
        check_bool "v3 header" true
          (String.length s > 18 && String.sub s 0 18 = "spamlab-token-db 3");
        check_bool "footer present" true
          (let sub = "#spamlab-db-footer crc32=" in
           let n = String.length s and m = String.length sub in
           let rec scan i =
             i + m <= n && (String.sub s i m = sub || scan (i + 1))
           in
           scan 0));
    test_case "verify reports a clean v3 save" (fun () ->
        let db = sample_db () in
        match Token_db.verify_string (Token_db.to_string db) with
        | Error e -> Alcotest.fail e
        | Ok r ->
            check_int "version" 3 r.Token_db.version;
            check_int "nspam" 2 r.Token_db.nspam;
            check_int "nham" 2 r.Token_db.nham;
            check_int "entries" (Token_db.distinct_tokens db)
              r.Token_db.entries;
            check_bool "checksum ok" true (r.Token_db.checksum = `Ok));
    test_case "verify accepts pre-v3 saves without a checksum" (fun () ->
        match
          Token_db.verify_string "spamlab-token-db 2 1 1\ntok\t1\t1\n"
        with
        | Error e -> Alcotest.fail e
        | Ok r ->
            check_int "version" 2 r.Token_db.version;
            check_bool "checksum absent" true (r.Token_db.checksum = `Absent));
    test_case "v3 without its footer is rejected" (fun () ->
        let s = Token_db.to_string (sample_db ()) in
        let footer_start =
          let rec find i =
            if String.sub s i 1 = "#" then i else find (i + 1)
          in
          find 0
        in
        let r = Token_db.of_string (String.sub s 0 footer_start) in
        check_bool "error" true (Result.is_error r));
    test_case "footer entry-count mismatch is rejected" (fun () ->
        (* A correct CRC over a wrong count cannot happen by accident;
           build it deliberately to pin the entry-count check. *)
        let s = Token_db.to_string (sample_db ()) in
        match Token_db.verify_string s with
        | Error e -> Alcotest.fail e
        | Ok _ ->
            let broken =
              (* Flip one digit of "entries=N" (final char before \n). *)
              let b = Bytes.of_string s in
              let pos = Bytes.length b - 2 in
              Bytes.set b pos
                (if Bytes.get b pos = '9' then '8' else '9');
              Bytes.to_string b
            in
            check_bool "error" true
              (Result.is_error (Token_db.of_string broken)));
    qtest "load of any truncation never raises" ~count:200
      QCheck2.Gen.(float_range 0.0 1.0)
      (fun fraction ->
        let s = Token_db.to_string (sample_db ()) in
        let len =
          int_of_float (fraction *. float_of_int (String.length s))
        in
        let truncated = String.sub s 0 (min len (String.length s)) in
        match Token_db.of_string truncated with
        | Ok _ | Error _ -> true);
    qtest "any single corrupted byte is detected, never raises" ~count:200
      QCheck2.Gen.(pair (float_range 0.0 1.0) (int_range 1 255))
      (fun (pos_frac, mask) ->
        let s = Token_db.to_string (sample_db ()) in
        let pos =
          min
            (String.length s - 1)
            (int_of_float (pos_frac *. float_of_int (String.length s)))
        in
        let b = Bytes.of_string s in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
        match Token_db.of_string (Bytes.to_string b) with
        | Ok _ -> false (* a corrupt byte must not load silently *)
        | Error _ -> true);
    qtest "load of arbitrary bytes never raises" ~count:200
      QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 64))
      (fun garbage ->
        match Token_db.of_string garbage with Ok _ | Error _ -> true);
    test_case "salvage recovers the intact entries" (fun () ->
        let db = sample_db () in
        let s = Token_db.to_string db in
        (* Mangle one entry line: "beta\t2\t0" -> "beta\tX\t0". *)
        let broken =
          let b = Bytes.of_string s in
          let rec find i =
            if Bytes.get b i = 'b' && Bytes.get b (i + 1) = 'e' then i
            else find (i + 1)
          in
          let beta = find 0 in
          Bytes.set b (beta + 5) 'X';
          Bytes.to_string b
        in
        check_bool "strict load rejects" true
          (Result.is_error (Token_db.of_string broken));
        match Token_db.salvage_string broken with
        | Error e -> Alcotest.fail e
        | Ok s ->
            check_int "version" 3 s.Token_db.version;
            check_int "dropped the mangled line" 1 s.Token_db.dropped;
            check_int "kept the rest"
              (Token_db.distinct_tokens db - 1)
              s.Token_db.kept;
            check_bool "checksum failed" true
              (s.Token_db.checksum_ok = Some false);
            check_int "alpha spam intact" 1
              (Token_db.spam_count s.Token_db.db "alpha");
            check_int "beta lost" 0 (Token_db.spam_count s.Token_db.db "beta"));
    test_case "Filter.save_file is atomic: a failed write leaves nothing"
      (fun () ->
        let module Fault = Spamlab_fault in
        let dir = Filename.temp_file "spamlab" ".d" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        let path = Filename.concat dir "filter.db" in
        Fun.protect
          ~finally:(fun () ->
            Array.iter
              (fun f -> Sys.remove (Filename.concat dir f))
              (Sys.readdir dir);
            Sys.rmdir dir)
          (fun () ->
            let filter = Filter.create () in
            Filter.train filter Label.Spam
              (Message.make
                 ~headers:(Header.of_list [ ("subject", "cheap pills") ])
                 "cheap pills now");
            (match Fault.configure "db.save.write:fatal@1" with
            | Error e -> Alcotest.fail e
            | Ok () -> ());
            Fun.protect ~finally:Fault.disable (fun () ->
                check_bool "save raises the injected fault" true
                  (try
                     Filter.save_file filter path;
                     false
                   with Fault.Injected _ -> true));
            check_bool "no target file" false (Sys.file_exists path);
            check_int "no temp debris" 0 (Array.length (Sys.readdir dir));
            (* And with the fault cleared the same save succeeds and
               verifies. *)
            Filter.save_file filter path;
            let contents =
              In_channel.with_open_bin path In_channel.input_all
            in
            check_bool "verifies" true
              (Result.is_ok (Token_db.verify_string contents))));
  ]

(* ------------------------------------------------------------------ *)
(* Score                                                               *)

let score_tests =
  [
    test_case "raw matches Eq. 1 by hand" (fun () ->
        (* 2 spam messages (1 with w), 4 ham (1 with w):
           PS = (NH*NS(w)) / (NH*NS(w) + NS*NH(w)) = 4 / (4 + 2) = 2/3 *)
        let db =
          db_with
            [ (Label.Spam, [ "w"; "s1" ]); (Label.Spam, [ "s2" ]);
              (Label.Ham, [ "w" ]); (Label.Ham, [ "h1" ]);
              (Label.Ham, [ "h2" ]); (Label.Ham, [ "h3" ]) ]
        in
        match Score.raw db "w" with
        | Some ps -> check_close 1e-12 "ps" (2.0 /. 3.0) ps
        | None -> Alcotest.fail "expected a score");
    test_case "raw is None for unknown tokens" (fun () ->
        let db = db_with [ (Label.Spam, [ "x" ]) ] in
        check_bool "none" true (Score.raw db "y" = None));
    test_case "raw spam-only token is 1, ham-only is 0" (fun () ->
        let db = db_with [ (Label.Spam, [ "s" ]); (Label.Ham, [ "h" ]) ] in
        check_bool "spam-only" true (Score.raw db "s" = Some 1.0);
        check_bool "ham-only" true (Score.raw db "h" = Some 0.0));
    test_case "smoothed matches Eq. 2 by hand" (fun () ->
        (* token in 1 spam of 1, 0 ham of 1: PS=1, N=1
           f = (0.45*0.5 + 1*1)/(0.45+1) = 1.225/1.45 *)
        let db = db_with [ (Label.Spam, [ "w" ]); (Label.Ham, [ "h" ]) ] in
        check_close 1e-12 "f" (1.225 /. 1.45)
          (Score.smoothed Options.default db "w"));
    test_case "unknown token scores the prior" (fun () ->
        let db = db_with [ (Label.Spam, [ "x" ]); (Label.Ham, [ "y" ]) ] in
        check_float "prior" 0.5 (Score.smoothed Options.default db "zzz"));
    test_case "empty database scores the prior" (fun () ->
        let db = Token_db.create () in
        check_float "prior" 0.5 (Score.smoothed Options.default db "any"));
    test_case "more evidence moves f further from prior" (fun () ->
        let weak = db_with [ (Label.Spam, [ "w" ]); (Label.Ham, [ "h" ]) ] in
        let strong =
          db_with
            [ (Label.Spam, [ "w" ]); (Label.Spam, [ "w" ]);
              (Label.Spam, [ "w" ]); (Label.Ham, [ "h" ]);
              (Label.Ham, [ "h2" ]); (Label.Ham, [ "h3" ]) ]
        in
        check_bool "stronger" true
          (Score.smoothed Options.default strong "w"
          > Score.smoothed Options.default weak "w"));
    test_case "strength and significance" (fun () ->
        let db = db_with [ (Label.Spam, [ "s" ]); (Label.Ham, [ "h" ]) ] in
        check_bool "significant spam token" true
          (Score.is_significant Options.default db "s");
        check_bool "unknown not significant" false
          (Score.is_significant Options.default db "unseen");
        check_close 1e-12 "strength of unknown" 0.0
          (Score.strength Options.default db "unseen"));
    qtest "smoothed always in (0,1)"
      QCheck2.Gen.(
        pair (int_range 0 5) (int_range 0 5))
      (fun (s, h) ->
        let db = Token_db.create () in
        for _ = 1 to s do
          Token_db.train db Label.Spam [| "w" |]
        done;
        for _ = 1 to h do
          Token_db.train db Label.Ham [| "w" |]
        done;
        let f = Score.smoothed Options.default db "w" in
        f > 0.0 && f < 1.0);
  ]

(* ------------------------------------------------------------------ *)
(* Classify                                                            *)

let training_db () =
  let db = Token_db.create () in
  (* 10 spam with spammy vocab, 10 ham with hammy vocab, overlap word. *)
  for i = 1 to 10 do
    Token_db.train db Label.Spam
      [| "viagra"; "cheap"; "offer"; "sale" ^ string_of_int i; "common" |];
    Token_db.train db Label.Ham
      [| "meeting"; "report"; "budget"; "note" ^ string_of_int i; "common" |]
  done;
  db

let classify_tests =
  [
    test_case "discriminators exclude the neutral band" (fun () ->
        let db = training_db () in
        let clues =
          Classify.select_discriminators Options.default db
            [| "viagra"; "common"; "meeting" |]
        in
        let tokens = List.map (fun c -> c.Classify.token) clues in
        check_bool "viagra in" true (List.mem "viagra" tokens);
        check_bool "meeting in" true (List.mem "meeting" tokens);
        check_bool "common excluded" false (List.mem "common" tokens));
    test_case "discriminators sorted by strength" (fun () ->
        let db = training_db () in
        Token_db.train db Label.Spam [| "weakish" |];
        Token_db.train db Label.Ham [| "weakish" |];
        Token_db.train db Label.Spam [| "weakish" |];
        let clues =
          Classify.select_discriminators Options.default db
            [| "weakish"; "viagra" |]
        in
        match clues with
        | first :: _ -> check_str "strongest first" "viagra" first.Classify.token
        | [] -> Alcotest.fail "no clues");
    test_case "max_discriminators caps the clue list" (fun () ->
        let db = Token_db.create () in
        let tokens = Array.init 300 (fun i -> "tok" ^ string_of_int i) in
        Token_db.train db Label.Spam tokens;
        Token_db.train db Label.Ham [| "other" |];
        let options = { Options.default with Options.max_discriminators = 7 } in
        let clues = Classify.select_discriminators options db tokens in
        check_int "capped" 7 (List.length clues));
    test_case "no evidence scores 0.5 and lands unsure" (fun () ->
        let r = Classify.score_tokens Options.default (Token_db.create ()) [| "a"; "b" |] in
        check_float "indicator" 0.5 r.Classify.indicator;
        check_bool "unsure" true (r.Classify.verdict = Label.Unsure_v));
    test_case "verdict thresholds at the boundaries" (fun () ->
        (* SpamBayes semantics: a score exactly at a cutoff takes the
           more severe class.  Regression for the former <= comparisons,
           which classified I = spam_cutoff as unsure and I = ham_cutoff
           as ham. *)
        let v = Classify.verdict_of_indicator Options.default in
        check_bool "0 ham" true (v 0.0 = Label.Ham_v);
        check_bool "just below 0.15 ham" true (v 0.1499999 = Label.Ham_v);
        check_bool "0.15 unsure (boundary is unsure)" true
          (v 0.15 = Label.Unsure_v);
        check_bool "just below 0.9 unsure" true (v 0.8999999 = Label.Unsure_v);
        check_bool "0.9 spam (boundary is spam)" true (v 0.9 = Label.Spam_v);
        check_bool "1 spam" true (v 1.0 = Label.Spam_v));
    test_case "boundary semantics hold for custom cutoffs" (fun () ->
        let options =
          Options.with_cutoffs Options.default ~ham:0.25 ~spam:0.75
        in
        let v = Classify.verdict_of_indicator options in
        check_bool "0.25 unsure" true (v 0.25 = Label.Unsure_v);
        check_bool "0.75 spam" true (v 0.75 = Label.Spam_v));
    test_case "spammy tokens classify spam, hammy ham" (fun () ->
        let db = training_db () in
        let spam_result =
          Classify.score_tokens Options.default db [| "viagra"; "cheap"; "offer" |]
        in
        let ham_result =
          Classify.score_tokens Options.default db [| "meeting"; "report"; "budget" |]
        in
        check_bool "spam" true (spam_result.Classify.verdict = Label.Spam_v);
        check_bool "ham" true (ham_result.Classify.verdict = Label.Ham_v);
        check_bool "order" true
          (spam_result.Classify.indicator > ham_result.Classify.indicator));
    test_case "indicator_of_clues empty is 0.5" (fun () ->
        check_float "empty" 0.5 (Classify.indicator_of_clues []));
    qtest "indicator always in [0,1]"
      QCheck2.Gen.(
        list_size (int_range 1 30) (float_range 0.01 0.99))
      (fun scores ->
        let clues =
          List.mapi
            (fun i score -> { Classify.token = "t" ^ string_of_int i; score })
            scores
        in
        let i = Classify.indicator_of_clues clues in
        i >= 0.0 && i <= 1.0);
  ]

(* ------------------------------------------------------------------ *)
(* Filter                                                              *)

let mk_msg subject body =
  Message.make ~headers:(Header.of_list [ ("Subject", subject) ]) body

let filter_tests =
  [
    test_case "end-to-end train and classify" (fun () ->
        let filter = Filter.create () in
        for _ = 1 to 8 do
          Filter.train filter Label.Spam
            (mk_msg "cheap pills" "buy cheap pills online today");
          Filter.train filter Label.Ham
            (mk_msg "budget meeting" "quarterly budget review meeting notes")
        done;
        let spam_score = Filter.score filter (mk_msg "pills" "cheap pills online") in
        let ham_score = Filter.score filter (mk_msg "meeting" "budget meeting notes") in
        check_bool "spam high" true (spam_score > 0.9);
        check_bool "ham low" true (ham_score < 0.15));
    test_case "filter copy is independent" (fun () ->
        let filter = Filter.create () in
        Filter.train filter Label.Ham (mk_msg "a" "alpha beta gamma");
        let copy = Filter.copy filter in
        Filter.train copy Label.Spam (mk_msg "b" "delta epsilon zeta");
        check_int "original nspam" 0 (Token_db.nspam (Filter.db filter));
        check_int "copy nspam" 1 (Token_db.nspam (Filter.db copy)));
    test_case "set_options shares the database" (fun () ->
        let filter = Filter.create () in
        Filter.train filter Label.Ham (mk_msg "a" "alpha beta gamma");
        let strict =
          Filter.set_options filter
            (Options.with_cutoffs (Filter.options filter) ~ham:0.05 ~spam:0.5)
        in
        check_int "same nham" 1 (Token_db.nham (Filter.db strict));
        check_bool "same db" true (Filter.db strict == Filter.db filter));
    test_case "train_corpus trains everything" (fun () ->
        let filter = Filter.create () in
        Filter.train_corpus filter
          [ (Label.Ham, mk_msg "a" "one two three");
            (Label.Spam, mk_msg "b" "four five six") ];
        check_int "nham" 1 (Token_db.nham (Filter.db filter));
        check_int "nspam" 1 (Token_db.nspam (Filter.db filter)));
    test_case "untrain reverses a training mistake" (fun () ->
        let filter = Filter.create () in
        let msg = mk_msg "oops" "mistaken words here" in
        Filter.train filter Label.Spam msg;
        Filter.untrain filter Label.Spam msg;
        check_int "nspam" 0 (Token_db.nspam (Filter.db filter));
        check_int "distinct" 0 (Token_db.distinct_tokens (Filter.db filter)));
    test_case "save/load file round-trip preserves classification" (fun () ->
        let filter = Filter.create () in
        for _ = 1 to 5 do
          Filter.train filter Label.Spam (mk_msg "win" "win money now fast");
          Filter.train filter Label.Ham (mk_msg "log" "server log attached here")
        done;
        let path = Filename.temp_file "spamlab" ".filter" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Filter.save_file filter path;
            match Filter.load_file path with
            | Error e -> Alcotest.fail e
            | Ok loaded ->
                let probe = mk_msg "win" "win money fast" in
                check_close 1e-12 "same score" (Filter.score filter probe)
                  (Filter.score loaded probe)));
    test_case "token_score of unknown is the prior" (fun () ->
        let filter = Filter.create () in
        check_float "prior" 0.5 (Filter.token_score filter "unseen"));
    test_case "features uses the filter's tokenizer" (fun () ->
        let filter =
          Filter.create ~tokenizer:Spamlab_tokenizer.Tokenizer.bogofilter ()
        in
        let feats = Filter.features filter (mk_msg "Topic" "extraordinarily long") in
        check_bool "bogofilter keeps long words" true
          (Array.exists (( = ) "extraordinarily") feats));
  ]

(* ------------------------------------------------------------------ *)
(* Cross-cutting properties                                            *)

let property_tests =
  [
    qtest "verdict is monotone in the indicator" ~count:200
      QCheck2.Gen.(pair (float_range 0.0 1.0) (float_range 0.0 1.0))
      (fun (a, b) ->
        let lo = Float.min a b and hi = Float.max a b in
        let rank v =
          match Classify.verdict_of_indicator Options.default v with
          | Label.Ham_v -> 0
          | Label.Unsure_v -> 1
          | Label.Spam_v -> 2
        in
        rank lo <= rank hi);
    qtest "adding a spammy clue never lowers the indicator" ~count:100
      QCheck2.Gen.(list_size (int_range 1 20) (float_range 0.05 0.95))
      (fun scores ->
        let clues =
          List.mapi
            (fun i score -> { Classify.token = "t" ^ string_of_int i; score })
            scores
        in
        let with_spammy =
          { Classify.token = "spammy"; score = 0.99 } :: clues
        in
        Classify.indicator_of_clues with_spammy
        >= Classify.indicator_of_clues clues -. 1e-9);
    qtest "train_many k equals k trains for random token sets" ~count:50
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 8)
             (string_size ~gen:(char_range 'a' 'f') (int_range 1 4)))
          (int_range 0 7))
      (fun (words, k) ->
        let tokens = Array.of_list (List.sort_uniq compare words) in
        let a = Token_db.create () in
        let b = Token_db.create () in
        Token_db.train_many a Label.Spam tokens k;
        for _ = 1 to k do
          Token_db.train b Label.Spam tokens
        done;
        Token_db.nspam a = Token_db.nspam b
        && Array.for_all
             (fun t -> Token_db.spam_count a t = Token_db.spam_count b t)
             tokens);
    qtest "save/load round-trips random databases" ~count:100
      (* The token alphabet deliberately includes the format's own
         delimiters (tab, newline, carriage return, backslash), raw
         UTF-8 bytes, and — via size 0 — the empty token. *)
      QCheck2.Gen.(
        list_size (int_range 0 20)
          (triple
             (string_size
                ~gen:
                  (oneofl
                     [ 'a'; 'b'; 'c'; '\t'; '\n'; '\r'; '\\'; ' '; '\xc3';
                       '\xa9' ])
                (int_range 0 5))
             bool (int_range 1 3)))
      (fun entries ->
        let db = Token_db.create () in
        List.iter
          (fun (token, is_spam, times) ->
            let label = if is_spam then Label.Spam else Label.Ham in
            Token_db.train_many db label [| token |] times)
          entries;
        let path = Filename.temp_file "spamlab-prop" ".db" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            Token_db.save oc db;
            close_out oc;
            let ic = open_in path in
            let result = Token_db.load ic in
            close_in ic;
            match result with
            | Error _ -> false
            | Ok db' ->
                Token_db.nspam db = Token_db.nspam db'
                && Token_db.nham db = Token_db.nham db'
                && Token_db.distinct_tokens db = Token_db.distinct_tokens db'
                && Token_db.fold
                     (fun acc token ~spam ~ham ->
                       acc
                       && Token_db.spam_count db' token = spam
                       && Token_db.ham_count db' token = ham)
                     true db));
    qtest "score_tokens indicator bounded for random dbs" ~count:100
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 15)
             (triple
                (string_size ~gen:(char_range 'a' 'e') (int_range 1 3))
                bool (int_range 1 4)))
          (list_size (int_range 1 10)
             (string_size ~gen:(char_range 'a' 'e') (int_range 1 3))))
      (fun (training, message) ->
        let db = Token_db.create () in
        List.iter
          (fun (token, is_spam, times) ->
            let label = if is_spam then Label.Spam else Label.Ham in
            Token_db.train_many db label [| token |] times)
          training;
        let tokens =
          Array.of_list (List.sort_uniq compare message)
        in
        let r = Classify.score_tokens Options.default db tokens in
        r.Classify.indicator >= 0.0 && r.Classify.indicator <= 1.0);
  ]

let () =
  Alcotest.run "spambayes"
    [
      ("label", label_tests);
      ("options", options_tests);
      ("token_db", token_db_tests);
      ("persistence", persistence_tests);
      ("score", score_tests);
      ("classify", classify_tests);
      ("filter", filter_tests);
      ("properties", property_tests);
    ]
