(* Quickstart: generate a small synthetic inbox, train a SpamBayes
   filter on it, and classify fresh messages.

     dune exec examples/quickstart.exe *)

open Spamlab_stats
module Generator = Spamlab_corpus.Generator
module Trec = Spamlab_corpus.Trec
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify
module Message = Spamlab_email.Message

let () =
  (* Everything in spamlab is deterministic in a seed. *)
  let config = Generator.default_config ~seed:2026 () in
  let rng = Rng.create 2026 in

  (* 1. A labeled training inbox: 1,000 messages, half spam. *)
  let inbox = Trec.generate config rng ~size:1_000 ~spam_fraction:0.5 in
  Printf.printf "training on %d messages " (Array.length inbox);
  let ham, spam = Trec.counts inbox in
  Printf.printf "(%d ham, %d spam)\n" ham spam;

  (* 2. Train the filter. *)
  let filter = Filter.create () in
  Array.iter (fun (label, msg) -> Filter.train filter label msg) inbox;

  (* 3. Classify held-out messages. *)
  let show kind msg =
    let result = Filter.classify filter msg in
    Printf.printf "%-10s -> %-6s (score %.3f, %d clues)\n" kind
      (Label.verdict_to_string result.Classify.verdict)
      result.Classify.indicator
      (List.length result.Classify.clues)
  in
  print_endline "\nclassifying fresh messages:";
  for _ = 1 to 3 do
    show "fresh ham" (Generator.ham config rng);
    show "fresh spam" (Generator.spam config rng)
  done;

  (* 4. Peek at the strongest evidence for one message. *)
  let probe = Generator.spam config rng in
  let result = Filter.classify filter probe in
  print_endline "\nstrongest clues for one spam message:";
  List.iteri
    (fun i clue ->
      if i < 5 then
        Printf.printf "  %-20s f(w) = %.3f\n" clue.Classify.token
          clue.Classify.score)
    result.Classify.clues;

  (* 5. Persist and reload the trained state. *)
  let path = Filename.temp_file "quickstart" ".db" in
  Filter.save_file filter path;
  (match Filter.load_file path with
  | Ok loaded ->
      Printf.printf "\nfilter saved and reloaded: %d distinct tokens\n"
        (Spamlab_spambayes.Token_db.distinct_tokens (Filter.db loaded))
  | Error e -> Printf.printf "reload failed: %s\n" e);
  Sys.remove path
