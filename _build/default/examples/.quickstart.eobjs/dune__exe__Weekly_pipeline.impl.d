examples/weekly_pipeline.ml: Array Lab List Printf Spamlab_core Spamlab_corpus Spamlab_eval Spamlab_spambayes Spamlab_stats
