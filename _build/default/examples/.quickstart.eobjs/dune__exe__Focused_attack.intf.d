examples/focused_attack.mli:
