examples/dictionary_attack.mli:
