examples/weekly_pipeline.mli:
