examples/threshold_defense.mli:
