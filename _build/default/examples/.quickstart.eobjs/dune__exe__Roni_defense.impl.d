examples/roni_defense.ml: Lab List Printf Spamlab_core Spamlab_corpus Spamlab_eval Spamlab_spambayes
