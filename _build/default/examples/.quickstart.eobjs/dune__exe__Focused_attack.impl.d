examples/focused_attack.ml: Array Float Lab List Poison Printf Spamlab_core Spamlab_corpus Spamlab_email Spamlab_eval Spamlab_spambayes
