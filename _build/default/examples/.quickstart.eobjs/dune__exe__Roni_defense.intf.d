examples/roni_defense.mli:
