examples/quickstart.ml: Array Filename List Printf Rng Spamlab_corpus Spamlab_email Spamlab_spambayes Spamlab_stats Sys
