examples/quickstart.mli:
