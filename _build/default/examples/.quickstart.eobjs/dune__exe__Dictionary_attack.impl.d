examples/dictionary_attack.ml: Array Lab List Poison Printf Spamlab_core Spamlab_eval Spamlab_spambayes
