examples/threshold_defense.ml: Array Confusion Lab List Poison Printf Spamlab_core Spamlab_corpus Spamlab_eval Spamlab_spambayes
