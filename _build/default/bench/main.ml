(* Bench harness: regenerates every table and figure of the paper
   (through Spamlab_eval.Registry) and micro-benchmarks the hot paths
   with bechamel.

   Usage:
     main.exe                     run every experiment at --scale (default 0.2)
     main.exe fig1 fig2           run specific experiments
     main.exe perf                run the bechamel micro-benchmarks
     main.exe all perf            both
     main.exe --scale 1.0 all     paper-scale run
     main.exe --seed 7 fig3       change the world seed *)

open Spamlab_eval

let default_scale = 0.2

let usage () =
  prerr_endline
    ("usage: main.exe [--scale S] [--seed N] [all|perf|"
    ^ String.concat "|" Registry.ids ^ "]...");
  exit 2

type cli = { scale : float; seed : int; targets : string list }

let parse_args () =
  let rec go acc = function
    | [] -> acc
    | "--scale" :: v :: rest -> (
        match float_of_string_opt v with
        | Some scale when scale > 0.0 -> go { acc with scale } rest
        | _ -> usage ())
    | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some seed -> go { acc with seed } rest
        | None -> usage ())
    | target :: rest ->
        if target = "all" || target = "perf" || Registry.find target <> None
        then go { acc with targets = acc.targets @ [ target ] } rest
        else usage ()
  in
  let default = { scale = default_scale; seed = 42; targets = [] } in
  let cli = go default (List.tl (Array.to_list Sys.argv)) in
  if cli.targets = [] then { cli with targets = [ "all"; "perf" ] } else cli

(* ------------------------------------------------------------------ *)
(* Experiment reproduction                                             *)

let hrule = String.make 72 '='

let run_experiment lab (e : Registry.experiment) =
  Printf.printf "%s\n%s\n%s\n" hrule e.Registry.title hrule;
  Printf.printf "paper: %s\n\n" e.Registry.paper_claim;
  let started = Unix.gettimeofday () in
  let report = e.Registry.run lab in
  print_string report;
  Printf.printf "\n[%s finished in %.1fs]\n\n" e.Registry.id
    (Unix.gettimeofday () -. started);
  flush stdout

let run_experiments lab = function
  | "all" -> List.iter (run_experiment lab) Registry.all
  | id -> (
      match Registry.find id with
      | Some e -> run_experiment lab e
      | None -> usage ())

(* ------------------------------------------------------------------ *)
(* bechamel micro-benchmarks                                           *)

let perf_tests () =
  let open Bechamel in
  let lab = Lab.create ~seed:42 ~scale:0.05 () in
  let rng = Lab.rng lab "perf" in
  let config = Lab.config lab in
  let tokenizer = Lab.tokenizer lab in
  let message = Spamlab_corpus.Generator.ham config rng in
  let examples = Lab.corpus lab rng ~size:500 ~spam_fraction:0.5 in
  let filter = Poison.base_filter tokenizer examples in
  let tokens = Spamlab_tokenizer.Tokenizer.unique_tokens tokenizer message in
  let aspell = Lab.aspell lab ~size:20_000 in
  let payload =
    Spamlab_core.Dictionary_attack.(
      payload tokenizer (make ~name:"perf" ~words:aspell))
  in
  [
    Test.make ~name:"tokenize-message"
      (Staged.stage (fun () ->
           Spamlab_tokenizer.Tokenizer.unique_tokens tokenizer message));
    Test.make ~name:"classify-message"
      (Staged.stage (fun () ->
           Spamlab_spambayes.Filter.classify_tokens filter tokens));
    Test.make ~name:"train-untrain-message"
      (Staged.stage (fun () ->
           Spamlab_spambayes.Filter.train_tokens filter
             Spamlab_spambayes.Label.Ham tokens;
           Spamlab_spambayes.Filter.untrain_tokens filter
             Spamlab_spambayes.Label.Ham tokens));
    Test.make ~name:"generate-ham-email"
      (Staged.stage (fun () -> Spamlab_corpus.Generator.ham config rng));
    Test.make ~name:"poison-20k-dictionary-x100"
      (Staged.stage (fun () ->
           let copy = Spamlab_spambayes.Filter.copy filter in
           Spamlab_spambayes.Filter.train_tokens_many copy
             Spamlab_spambayes.Label.Spam payload 100));
    Test.make ~name:"fisher-indicator-150-clues"
      (let fs =
         List.init 150 (fun i -> 0.01 +. (0.98 *. float_of_int i /. 149.0))
       in
       Staged.stage (fun () -> Spamlab_stats.Fisher.indicator fs));
  ]

let run_perf () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  Printf.printf "%s\nbechamel micro-benchmarks\n%s\n" hrule hrule;
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"spamlab" (perf_tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  let print_instance label unit_name =
    match Hashtbl.find_opt merged label with
    | None -> ()
    | Some tbl ->
        Printf.printf "\n%-44s %s\n%s\n" "benchmark" unit_name
          (String.make 60 '-');
        let rows =
          Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        List.iter
          (fun (name, ols) ->
            match Analyze.OLS.estimates ols with
            | Some [ estimate ] ->
                Printf.printf "%-44s %14.1f\n" name estimate
            | Some _ | None -> Printf.printf "%-44s %14s\n" name "n/a")
          rows
  in
  print_instance (Measure.label Instance.monotonic_clock) "ns/run";
  print_instance (Measure.label Instance.minor_allocated) "minor words/run";
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let cli = parse_args () in
  Printf.printf
    "spamlab bench harness | seed %d | scale %.2f of paper Table 1\n\n"
    cli.seed cli.scale;
  let lab = Lab.create ~seed:cli.seed ~scale:cli.scale () in
  List.iter
    (fun target ->
      if target = "perf" then run_perf () else run_experiments lab target)
    cli.targets
