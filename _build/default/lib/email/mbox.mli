(** mboxrd-style mailbox files: messages separated by ["From "] lines,
    with [>From]-quoting of body lines that would otherwise look like
    separators.  Used to persist generated corpora and to feed the CLI. *)

val print : Message.t list -> string
(** Serialize a mailbox.  Each message gets a synthetic
    ["From spamlab@localhost"] separator line; body lines matching
    [>*From ] are quoted with one more ['>']. *)

val parse : string -> (Message.t list, string) result
(** Parse a mailbox, reversing the quoting.  An empty string is the
    empty mailbox. *)

val write_file : string -> Message.t list -> unit
(** @raise Sys_error on I/O failure. *)

val read_file : string -> (Message.t list, string) result
