type t = { headers : Header.t; body : string }

let make ?(headers = Header.empty) body = { headers; body }

let headers t = t.headers
let body t = t.body

let subject t = Header.find t.headers "subject"

let address_of_field t name =
  match Header.find t.headers name with
  | None -> None
  | Some v -> Result.to_option (Address.of_string v)

let from_address t = address_of_field t "from"
let to_address t = address_of_field t "to"

let with_headers t headers = { t with headers }
let with_body t body = { t with body }

let size_bytes t =
  Header.fold
    (fun acc n v -> acc + String.length n + 2 + String.length v + 2)
    (2 + String.length t.body)
    t.headers

let equal a b = Header.equal a.headers b.headers && a.body = b.body
