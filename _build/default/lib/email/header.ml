type t = (string * string) list
(* Stored in field order; names keep their original spelling, lookups
   normalize. *)

let normalize = String.lowercase_ascii

let empty = []

let of_list fields = fields

let to_list t = t

let add t name value = t @ [ (name, value) ]

let find t name =
  let key = normalize name in
  List.find_map
    (fun (n, v) -> if normalize n = key then Some v else None)
    t

let find_all t name =
  let key = normalize name in
  List.filter_map
    (fun (n, v) -> if normalize n = key then Some v else None)
    t

let mem t name = Option.is_some (find t name)

let remove t name =
  let key = normalize name in
  List.filter (fun (n, _) -> normalize n <> key) t

let replace t name value = add (remove t name) name value

let length = List.length

let is_empty t = t = []

let iter f t = List.iter (fun (n, v) -> f n v) t

let fold f init t = List.fold_left (fun acc (n, v) -> f acc n v) init t

let canonical_name name =
  String.concat "-"
    (List.map String.capitalize_ascii
       (String.split_on_char '-' (normalize name)))

let equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> normalize n1 = normalize n2 && v1 = v2)
       a b
