(** Email addresses of the shape [Display Name <local@domain>] or a bare
    [local@domain].  A deliberately small model: enough for header
    generation and tokenization, not a full RFC 5322 grammar. *)

type t = {
  display_name : string option;
  local : string;
  domain : string;
}

val make : ?display_name:string -> local:string -> domain:string -> unit -> t
(** @raise Invalid_argument if [local] or [domain] is empty or contains
    whitespace, ['@'], ['<'] or ['>']. *)

val of_string : string -> (t, string) result
(** Parses ["Name <a@b>"], ["<a@b>"] or ["a@b"]; trims surrounding
    whitespace. *)

val to_string : t -> string
(** Round-trips through {!of_string}. *)

val address_spec : t -> string
(** Just [local@domain]. *)

val equal : t -> t -> bool
(** Case-insensitive on the domain, case-sensitive on the local part
    (conservative per RFC). *)
