type t = {
  display_name : string option;
  local : string;
  domain : string;
}

let forbidden = [ ' '; '\t'; '\n'; '\r'; '@'; '<'; '>' ]

let valid_atom s =
  String.length s > 0
  && String.for_all (fun c -> not (List.mem c forbidden)) s

let make ?display_name ~local ~domain () =
  if not (valid_atom local) then invalid_arg "Address.make: bad local part";
  if not (valid_atom domain) then invalid_arg "Address.make: bad domain";
  { display_name; local; domain }

let split_spec spec =
  match String.index_opt spec '@' with
  | None -> Error (Printf.sprintf "missing '@' in %S" spec)
  | Some i ->
      let local = String.sub spec 0 i in
      let domain = String.sub spec (i + 1) (String.length spec - i - 1) in
      if valid_atom local && valid_atom domain then Ok (local, domain)
      else Error (Printf.sprintf "malformed address spec %S" spec)

let of_string s =
  let s = String.trim s in
  match (String.index_opt s '<', String.rindex_opt s '>') with
  | Some lt, Some gt when lt < gt ->
      let name = String.trim (String.sub s 0 lt) in
      let spec = String.sub s (lt + 1) (gt - lt - 1) in
      Result.map
        (fun (local, domain) ->
          let display_name = if name = "" then None else Some name in
          { display_name; local; domain })
        (split_spec spec)
  | Some _, _ | _, Some _ -> Error (Printf.sprintf "unbalanced angle brackets in %S" s)
  | None, None ->
      Result.map
        (fun (local, domain) -> { display_name = None; local; domain })
        (split_spec s)

let address_spec t = t.local ^ "@" ^ t.domain

let to_string t =
  match t.display_name with
  | None -> address_spec t
  | Some name -> Printf.sprintf "%s <%s>" name (address_spec t)

let equal a b =
  a.display_name = b.display_name
  && a.local = b.local
  && String.lowercase_ascii a.domain = String.lowercase_ascii b.domain
