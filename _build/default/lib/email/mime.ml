type content_type = {
  media_type : string;
  subtype : string;
  parameters : (string * string) list;
}

let text_plain = { media_type = "text"; subtype = "plain"; parameters = [] }

let unquote v =
  let n = String.length v in
  if n >= 2 && v.[0] = '"' && v.[n - 1] = '"' then String.sub v 1 (n - 2)
  else v

let content_type_of_string s =
  match String.split_on_char ';' s with
  | [] -> Error "empty content type"
  | main :: params -> (
      match String.split_on_char '/' (String.trim main) with
      | [ media_type; subtype ] when media_type <> "" && subtype <> "" ->
          let parameters =
            List.filter_map
              (fun p ->
                match String.index_opt p '=' with
                | None -> None
                | Some i ->
                    let name =
                      String.lowercase_ascii (String.trim (String.sub p 0 i))
                    in
                    let value =
                      unquote
                        (String.trim
                           (String.sub p (i + 1) (String.length p - i - 1)))
                    in
                    if name = "" then None else Some (name, value))
              params
          in
          Ok
            {
              media_type = String.lowercase_ascii media_type;
              subtype = String.lowercase_ascii subtype;
              parameters;
            }
      | _ -> Error (Printf.sprintf "malformed content type %S" s))

let content_type_to_string t =
  let params =
    String.concat ""
      (List.map (fun (n, v) -> Printf.sprintf "; %s=%s" n v) t.parameters)
  in
  Printf.sprintf "%s/%s%s" t.media_type t.subtype params

let content_type msg =
  match Header.find (Message.headers msg) "content-type" with
  | None -> text_plain
  | Some v -> (
      match content_type_of_string v with
      | Ok t -> t
      | Error _ -> text_plain)

let parameter t name =
  List.assoc_opt (String.lowercase_ascii name) t.parameters

let decoded_body msg =
  let body = Message.body msg in
  match Header.find (Message.headers msg) "content-transfer-encoding" with
  | None -> body
  | Some encoding -> (
      match String.lowercase_ascii (String.trim encoding) with
      | "base64" -> (
          match Encoding.base64_decode body with
          | Ok decoded -> decoded
          | Error _ -> body)
      | "quoted-printable" -> (
          match Encoding.quoted_printable_decode body with
          | Ok decoded -> decoded
          | Error _ -> body)
      | _ -> body)

(* Multipart splitting: parts are delimited by lines "--boundary", the
   whole thing terminated by "--boundary--".  The preamble (before the
   first delimiter) and epilogue are discarded per RFC 2046. *)
let parts msg =
  let ct = content_type msg in
  if ct.media_type <> "multipart" then None
  else
    match parameter ct "boundary" with
    | None | Some "" -> None
    | Some boundary ->
        let delimiter = "--" ^ boundary in
        let terminator = delimiter ^ "--" in
        let lines = String.split_on_char '\n' (Message.body msg) in
        let flush chunks current =
          match current with
          | None -> chunks
          | Some lines -> List.rev lines :: chunks
        in
        let rec scan chunks current = function
          | [] -> List.rev (flush chunks current)
          | line :: rest ->
              let trimmed = String.trim line in
              if trimmed = terminator then List.rev (flush chunks current)
              else if trimmed = delimiter then
                scan (flush chunks current) (Some []) rest
              else
                let current =
                  Option.map (fun ls -> line :: ls) current
                in
                scan chunks current rest
        in
        let chunks = scan [] None lines in
        let parse_part chunk =
          match Rfc2822.parse (String.concat "\n" chunk) with
          | Ok part -> Some part
          | Error _ -> None
        in
        let parsed = List.filter_map parse_part chunks in
        if parsed = [] then None else Some parsed

type text_kind = Plain | Html

let max_depth = 4

let rec collect_text depth msg =
  if depth > max_depth then []
  else
    let ct = content_type msg in
    match (ct.media_type, parts msg) with
    | "multipart", Some subparts ->
        List.concat_map (collect_text (depth + 1)) subparts
    | "text", _ -> (
        let body = decoded_body msg in
        match ct.subtype with
        | "html" -> [ (Html, body) ]
        | _ -> [ (Plain, body) ])
    | "multipart", None ->
        (* Claimed multipart but unsplittable: degrade to plain text. *)
        [ (Plain, Message.body msg) ]
    | _ -> []

let text_content msg =
  match collect_text 0 msg with
  | [] ->
      (* Non-text leaf at the top level (or empty multipart): the filter
         still tokenizes whatever bytes are there. *)
      [ (Plain, decoded_body msg) ]
  | chunks -> chunks

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)

let make_html ?(headers = Header.empty) body =
  Message.make
    ~headers:(Header.replace headers "Content-Type" "text/html; charset=us-ascii")
    body

let with_base64_transfer msg =
  let headers =
    Header.replace (Message.headers msg) "Content-Transfer-Encoding" "base64"
  in
  Message.make ~headers (Encoding.base64_encode (Message.body msg))

let with_quoted_printable_transfer msg =
  let headers =
    Header.replace (Message.headers msg) "Content-Transfer-Encoding"
      "quoted-printable"
  in
  Message.make ~headers (Encoding.quoted_printable_encode (Message.body msg))

let contains_substring haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec scan i =
    if i + m > n then false
    else if String.sub haystack i m = needle then true
    else scan (i + 1)
  in
  m = 0 || scan 0

let make_multipart ?(headers = Header.empty) ~boundary parts_list =
  if boundary = "" then invalid_arg "Mime.make_multipart: empty boundary";
  let rendered = List.map Rfc2822.print parts_list in
  List.iter
    (fun body ->
      if contains_substring body ("--" ^ boundary) then
        invalid_arg "Mime.make_multipart: boundary occurs in a part")
    rendered;
  let delimiter = "--" ^ boundary in
  let body =
    String.concat "\n"
      (List.concat_map (fun part -> [ delimiter; part ]) rendered
      @ [ delimiter ^ "--"; "" ])
  in
  Message.make
    ~headers:
      (Header.replace headers "Content-Type"
         (Printf.sprintf "multipart/mixed; boundary=\"%s\"" boundary))
    body
