(** MIME content-transfer-encodings: base64 (RFC 4648) and
    quoted-printable (RFC 2045 §6.7).

    Spam campaigns routinely base64- or QP-encode their payloads to dodge
    naive keyword filters; a filter that doesn't decode them tokenizes
    gibberish.  Decoders here are liberal (they skip whitespace and
    tolerate missing padding) because real mail is sloppy; encoders are
    strict and line-wrapped. *)

val base64_encode : string -> string
(** Standard alphabet, [=]-padded, wrapped at 76 columns with LF. *)

val base64_decode : string -> (string, string) result
(** Ignores whitespace; accepts unpadded input; rejects characters
    outside the alphabet. *)

val quoted_printable_encode : string -> string
(** Encodes bytes outside the printable ASCII range (and ['='] itself)
    as [=XX]; soft-wraps at 76 columns; encodes trailing spaces/tabs on
    a line. *)

val quoted_printable_decode : string -> (string, string) result
(** Decodes [=XX] escapes and removes soft line breaks ([=\n] /
    [=\r\n]); leaves stray ['='] followed by non-hex as literal (liberal
    acceptance, as most MUAs do). *)
