(** An email message: headers plus a plain-text body.

    This is the unit the corpus generator produces, the tokenizer
    consumes, and the attacks construct.  The model is single-part
    plain text — the TREC-style evaluation and every attack in the paper
    operate on token streams, so MIME multipart adds nothing here. *)

type t = { headers : Header.t; body : string }

val make : ?headers:Header.t -> string -> t
(** [make body] with optionally supplied headers (default none — the
    paper's non-focused attack emails carry an empty header). *)

val headers : t -> Header.t
val body : t -> string

val subject : t -> string option
val from_address : t -> Address.t option
val to_address : t -> Address.t option

val with_headers : t -> Header.t -> t
val with_body : t -> string -> t

val size_bytes : t -> int
(** Serialized size (headers + separator + body). *)

val equal : t -> t -> bool
