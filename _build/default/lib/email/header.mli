(** Email header fields: an ordered multimap of (name, value) pairs with
    case-insensitive name lookup, as in RFC 2822 §2.2. *)

type t
(** An ordered collection of header fields. *)

val empty : t

val of_list : (string * string) list -> t
(** Field order is preserved.  Names may repeat (e.g. [Received]). *)

val to_list : t -> (string * string) list

val add : t -> string -> string -> t
(** [add t name value] appends a field. *)

val find : t -> string -> string option
(** First field with the given name, case-insensitively. *)

val find_all : t -> string -> string list
(** All fields with the given name, in order. *)

val mem : t -> string -> bool

val remove : t -> string -> t
(** Removes every field with the given name. *)

val replace : t -> string -> string -> t
(** [replace t name value] removes all [name] fields then appends one. *)

val length : t -> int

val is_empty : t -> bool

val iter : (string -> string -> unit) -> t -> unit

val fold : ('a -> string -> string -> 'a) -> 'a -> t -> 'a

val canonical_name : string -> string
(** Canonical display capitalization: ["message-id"] ->
    ["Message-Id"]. *)

val equal : t -> t -> bool
(** Structural equality with case-insensitive names. *)
