(** A small MIME layer: content types, transfer-encoding decoding, and
    multipart traversal — enough to extract the textual content a spam
    filter must tokenize from the mail people actually receive (HTML
    bodies, base64-obfuscated payloads, multipart/alternative).

    The model stays deliberately shallow: no nested message/rfc822
    recursion beyond a fixed depth, no charset conversion (the
    tokenizer is byte-oriented, as SpamBayes' effectively was). *)

type content_type = {
  media_type : string;  (** Lowercased, e.g. ["text"]. *)
  subtype : string;  (** Lowercased, e.g. ["html"]. *)
  parameters : (string * string) list;
      (** Lowercased names; values unquoted. *)
}

val content_type_of_string : string -> (content_type, string) result
(** Parses ["text/html; charset=utf-8; boundary=\"b\""]. *)

val content_type_to_string : content_type -> string

val content_type : Message.t -> content_type
(** The message's Content-Type header, defaulting to text/plain when
    absent or malformed (RFC 2045 §5.2). *)

val parameter : content_type -> string -> string option

val decoded_body : Message.t -> string
(** The body after reversing the Content-Transfer-Encoding (base64 and
    quoted-printable; anything else passes through, as do decode
    errors — garbage in, garbage tokens out, never an exception). *)

val parts : Message.t -> Message.t list option
(** For multipart/* messages with a boundary parameter: the parts, each
    parsed as a message (headers + body).  [None] when the message is
    not multipart or the boundary is missing/unfindable. *)

type text_kind = Plain | Html

val text_content : Message.t -> (text_kind * string) list
(** Every textual leaf of the message, transfer-decoded, in document
    order, recursing through nested multiparts (depth ≤ 4):
    - a non-MIME or text/plain message yields its (decoded) body;
    - text/html yields [Html] chunks (tokenizers strip the tags);
    - non-text leaves are skipped.

    Never empty for a message with a non-empty body: unparseable
    structure degrades to treating the raw body as plain text. *)

(* Builders, used by the corpus generator. *)

val make_html :
  ?headers:Header.t -> string -> Message.t
(** Wrap an HTML body with the proper Content-Type. *)

val with_base64_transfer : Message.t -> Message.t
(** Re-encode the body as base64 and set Content-Transfer-Encoding. *)

val with_quoted_printable_transfer : Message.t -> Message.t

val make_multipart :
  ?headers:Header.t -> boundary:string -> Message.t list -> Message.t
(** Assemble multipart/mixed from parts.  @raise Invalid_argument on an
    empty boundary or a boundary occurring in a part's serialized
    form. *)
