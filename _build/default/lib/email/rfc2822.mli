(** Serialization of {!Message.t} to and from RFC 2822-style wire text:
    header fields, a blank line, then the body.  Handles folded
    (continuation) header lines and both LF and CRLF input. *)

val print : Message.t -> string
(** Wire form with LF line endings.  Header values containing newlines
    are folded with a leading tab. *)

val parse : string -> (Message.t, string) result
(** Inverse of {!print} up to folding: folded header lines are unfolded
    with a single space.  A message with no blank line is all headers if
    every line looks like a field, otherwise an error. *)

val parse_exn : string -> Message.t
(** @raise Failure on malformed input. *)
