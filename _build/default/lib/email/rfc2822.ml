let fold_value v =
  (* Replace embedded newlines with RFC folding: newline + tab. *)
  String.concat "\n\t" (String.split_on_char '\n' v)

let print msg =
  let buffer = Buffer.create 512 in
  Header.iter
    (fun name value ->
      Buffer.add_string buffer (Header.canonical_name name);
      Buffer.add_string buffer ": ";
      Buffer.add_string buffer (fold_value value);
      Buffer.add_char buffer '\n')
    (Message.headers msg);
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer (Message.body msg);
  Buffer.contents buffer

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let is_continuation line =
  String.length line > 0 && (line.[0] = ' ' || line.[0] = '\t')

let parse_field line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "header line without ':': %S" line)
  | Some i ->
      let name = String.sub line 0 i in
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      if name = "" || String.exists (fun c -> c = ' ' || c = '\t') name then
        Error (Printf.sprintf "malformed header name in %S" line)
      else Ok (name, value)

let parse text =
  let lines = String.split_on_char '\n' text in
  (* Accumulate header fields until the first blank line; the remainder
     (joined back with newlines) is the body. *)
  let rec headers acc = function
    | [] -> Ok (List.rev acc, [])
    | "" :: rest -> Ok (List.rev acc, rest)
    | line :: rest ->
        let line = strip_cr line in
        if line = "" then Ok (List.rev acc, rest)
        else if is_continuation line then
          match acc with
          | [] -> Error "continuation line before any header field"
          | (name, value) :: older ->
              headers ((name, value ^ "\n" ^ String.trim line) :: older) rest
        else
          Result.bind (parse_field line) (fun field ->
              headers (field :: acc) rest)
  in
  match headers [] lines with
  | Error e -> Error e
  | Ok (fields, body_lines) ->
      let unfolded =
        List.map
          (fun (n, v) ->
            (n, String.concat " " (String.split_on_char '\n' v)))
          fields
      in
      let body = String.concat "\n" (List.map strip_cr body_lines) in
      Ok (Message.make ~headers:(Header.of_list unfolded) body)

let parse_exn text =
  match parse text with
  | Ok m -> m
  | Error e -> failwith ("Rfc2822.parse: " ^ e)
