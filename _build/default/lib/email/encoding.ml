let base64_alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let base64_line_width = 76

let base64_encode input =
  let n = String.length input in
  let out = Buffer.create ((n * 4 / 3) + (n / 57) + 8) in
  let column = ref 0 in
  let emit c =
    if !column = base64_line_width then begin
      Buffer.add_char out '\n';
      column := 0
    end;
    Buffer.add_char out c;
    incr column
  in
  let byte i = Char.code input.[i] in
  let rec go i =
    if i + 3 <= n then begin
      let b = (byte i lsl 16) lor (byte (i + 1) lsl 8) lor byte (i + 2) in
      emit base64_alphabet.[(b lsr 18) land 63];
      emit base64_alphabet.[(b lsr 12) land 63];
      emit base64_alphabet.[(b lsr 6) land 63];
      emit base64_alphabet.[b land 63];
      go (i + 3)
    end
    else if i + 2 = n then begin
      let b = (byte i lsl 16) lor (byte (i + 1) lsl 8) in
      emit base64_alphabet.[(b lsr 18) land 63];
      emit base64_alphabet.[(b lsr 12) land 63];
      emit base64_alphabet.[(b lsr 6) land 63];
      emit '='
    end
    else if i + 1 = n then begin
      let b = byte i lsl 16 in
      emit base64_alphabet.[(b lsr 18) land 63];
      emit base64_alphabet.[(b lsr 12) land 63];
      emit '=';
      emit '='
    end
  in
  go 0;
  Buffer.contents out

let base64_value = function
  | 'A' .. 'Z' as c -> Some (Char.code c - 65)
  | 'a' .. 'z' as c -> Some (Char.code c - 97 + 26)
  | '0' .. '9' as c -> Some (Char.code c - 48 + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let base64_decode input =
  let out = Buffer.create (String.length input * 3 / 4) in
  let acc = ref 0 in
  let bits = ref 0 in
  let error = ref None in
  String.iter
    (fun c ->
      if !error = None then
        match c with
        | ' ' | '\t' | '\n' | '\r' | '=' -> ()
        | c -> (
            match base64_value c with
            | None ->
                error :=
                  Some (Printf.sprintf "invalid base64 character %C" c)
            | Some v ->
                acc := (!acc lsl 6) lor v;
                bits := !bits + 6;
                if !bits >= 8 then begin
                  bits := !bits - 8;
                  Buffer.add_char out
                    (Char.chr ((!acc lsr !bits) land 0xFF))
                end))
    input;
  match !error with
  | Some e -> Error e
  | None -> Ok (Buffer.contents out)

let hex_digit n =
  if n < 10 then Char.chr (n + Char.code '0')
  else Char.chr (n - 10 + Char.code 'A')

let quoted_printable_encode input =
  let out = Buffer.create (String.length input * 2) in
  let column = ref 0 in
  let soft_break () =
    Buffer.add_string out "=\n";
    column := 0
  in
  let emit_raw c =
    if !column >= 75 then soft_break ();
    Buffer.add_char out c;
    incr column
  in
  let emit_escaped c =
    if !column >= 73 then soft_break ();
    Buffer.add_char out '=';
    Buffer.add_char out (hex_digit (Char.code c lsr 4));
    Buffer.add_char out (hex_digit (Char.code c land 0xF));
    column := !column + 3
  in
  let n = String.length input in
  String.iteri
    (fun i c ->
      match c with
      | '\n' ->
          Buffer.add_char out '\n';
          column := 0
      | ' ' | '\t' ->
          (* Trailing whitespace on a line must be escaped. *)
          if i + 1 >= n || input.[i + 1] = '\n' then emit_escaped c
          else emit_raw c
      | '=' -> emit_escaped c
      | '!' .. '~' -> emit_raw c
      | c -> emit_escaped c)
    input;
  Buffer.contents out

let hex_value = function
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
  | 'A' .. 'F' as c -> Some (Char.code c - Char.code 'A' + 10)
  | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
  | _ -> None

let quoted_printable_decode input =
  let out = Buffer.create (String.length input) in
  let n = String.length input in
  let rec go i =
    if i >= n then Ok (Buffer.contents out)
    else
      match input.[i] with
      | '=' when i + 1 < n && input.[i + 1] = '\n' -> go (i + 2)
      | '=' when i + 2 < n && input.[i + 1] = '\r' && input.[i + 2] = '\n' ->
          go (i + 3)
      | '=' when i + 2 < n -> (
          match (hex_value input.[i + 1], hex_value input.[i + 2]) with
          | Some hi, Some lo ->
              Buffer.add_char out (Char.chr ((hi lsl 4) lor lo));
              go (i + 3)
          | _ ->
              (* Liberal: keep a stray '=' literally. *)
              Buffer.add_char out '=';
              go (i + 1))
      | c ->
          Buffer.add_char out c;
          go (i + 1)
  in
  go 0
