lib/email/address.ml: List Printf Result String
