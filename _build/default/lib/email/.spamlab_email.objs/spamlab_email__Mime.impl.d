lib/email/mime.ml: Encoding Header List Message Option Printf Rfc2822 String
