lib/email/rfc2822.ml: Buffer Header List Message Printf Result String
