lib/email/mime.mli: Header Message
