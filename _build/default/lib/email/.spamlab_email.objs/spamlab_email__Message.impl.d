lib/email/message.ml: Address Header Result String
