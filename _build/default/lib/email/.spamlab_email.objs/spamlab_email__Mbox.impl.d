lib/email/mbox.ml: Buffer Fun In_channel List Message Result Rfc2822 String
