lib/email/rfc2822.mli: Message
