lib/email/header.mli:
