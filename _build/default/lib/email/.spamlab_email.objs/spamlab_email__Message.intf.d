lib/email/message.mli: Address Header
