lib/email/encoding.mli:
