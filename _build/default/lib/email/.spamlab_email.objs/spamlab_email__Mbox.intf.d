lib/email/mbox.mli: Message
