lib/email/address.mli:
