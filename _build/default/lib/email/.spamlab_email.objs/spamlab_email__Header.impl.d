lib/email/header.ml: List Option String
