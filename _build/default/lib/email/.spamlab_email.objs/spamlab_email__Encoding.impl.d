lib/email/encoding.ml: Buffer Char Printf String
