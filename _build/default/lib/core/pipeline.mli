(** A deployed-filter simulation: the paper's operational setting
    (§2.1–2.2) where an organization filters incoming mail with the
    current model and periodically retrains on what arrived.

    Each round ("week"), the pipeline

    + classifies the round's incoming messages with the current filter
      and records the verdict counts a user would experience,
    + admits the round's messages into the training pool — every one of
      them, or only those that pass RONI screening when a defense is
      installed (screening measures impact against the {e previously}
      trusted pool),
    + retrains from scratch on the accumulated pool when the round index
      hits the retrain period.

    Attack emails enter simply as incoming messages whose gold label is
    spam (the contamination assumption). *)

type verdict_counts = {
  ham_as_ham : int;
  ham_as_unsure : int;
  ham_as_spam : int;
  spam_as_ham : int;
  spam_as_unsure : int;
  spam_as_spam : int;
}

val ham_delivery_rate : verdict_counts -> float
(** Fraction of the round's ham that reached the inbox as ham; 1.0 when
    the round carried no ham. *)

type training_policy =
  | Train_everything
      (** Periodic retraining on all received mail (the paper's primary
          setting). *)
  | Train_on_error
      (** Retrain only on messages the current filter got wrong or was
          unsure about — the §2.2 variant.  The paper observes this does
          not stop the attacks: a dictionary email full of unknown words
          scores near 0.5, lands in unsure, and is trained anyway. *)

type config = {
  retrain_period : int;  (** Retrain every N rounds; 1 = weekly. *)
  policy : training_policy;
  roni : Roni.config option;  (** Screening defense, when installed. *)
  initial_training : Spamlab_corpus.Dataset.example array;
      (** The trusted mail the filter starts from. *)
}

type round_report = {
  round_index : int;  (** 1-based. *)
  counts : verdict_counts;
  rejected : int;  (** Messages RONI kept out of training this round. *)
}

type report = {
  rounds : round_report list;
  total_rejected : int;
  final_filter : Spamlab_spambayes.Filter.t;
}

val run :
  config ->
  Spamlab_stats.Rng.t ->
  rounds:Spamlab_corpus.Dataset.example array list ->
  report
(** [run config rng ~rounds] simulates the rounds in order.
    @raise Invalid_argument if [retrain_period <= 0] or the initial
    training pool is too small for the configured RONI screening. *)
