let line_width = 72

let body_of_words words =
  let buffer = Buffer.create 4096 in
  let column = ref 0 in
  List.iter
    (fun w ->
      let len = String.length w in
      if !column = 0 then begin
        Buffer.add_string buffer w;
        column := len
      end
      else if !column + 1 + len > line_width then begin
        Buffer.add_char buffer '\n';
        Buffer.add_string buffer w;
        column := len
      end
      else begin
        Buffer.add_char buffer ' ';
        Buffer.add_string buffer w;
        column := !column + 1 + len
      end)
    words;
  Buffer.contents buffer

let make ~words = Spamlab_email.Message.make (body_of_words words)

let make_with_header ~header ~words =
  Spamlab_email.Message.make ~headers:header (body_of_words words)

let payload_tokens tokenizer msg =
  Spamlab_tokenizer.Tokenizer.unique_tokens tokenizer msg
