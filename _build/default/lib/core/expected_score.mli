(** Monte-Carlo machinery for the optimal-attack analysis (§3.4).

    The attacker's objective is max_a E_{m∼p}[I_a(m)]: the expected
    post-attack score of the victim's next legitimate message.  The
    section's two structural observations — token scores don't interact
    across words, and I is monotonically non-decreasing in each f(w) —
    imply that adding words to the attack never hurts, which the test
    suite verifies empirically through this module. *)

val estimate :
  Spamlab_spambayes.Filter.t ->
  sample:(Spamlab_stats.Rng.t -> Spamlab_email.Message.t) ->
  samples:int ->
  Spamlab_stats.Rng.t ->
  float
(** [estimate filter ~sample ~samples rng] is the mean indicator I(E)
    of [samples] messages drawn from [sample] under the (already
    poisoned or clean) filter.  @raise Invalid_argument if
    [samples <= 0]. *)

val estimate_under_attack :
  baseline:Spamlab_spambayes.Filter.t ->
  attack_words:string array ->
  attack_count:int ->
  sample:(Spamlab_stats.Rng.t -> Spamlab_email.Message.t) ->
  samples:int ->
  Spamlab_stats.Rng.t ->
  float
(** Expected score after poisoning a {e copy} of [baseline] with
    [attack_count] attack emails carrying [attack_words].  The baseline
    filter is not modified. *)
