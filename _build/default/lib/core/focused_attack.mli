(** The focused attack (§3.3): a Targeted Causative Availability attack
    against one specific legitimate email.

    The attacker knows the target's content imperfectly: each word of
    the target is guessed correctly with probability [p].  Attack emails
    contain the guessed words; their headers are copied wholesale from
    randomly chosen spam messages (the §4.1 header restriction).  When
    the victim trains on them as spam, the spam scores of the target's
    tokens rise and the target is filtered on arrival. *)

type plan = {
  guess_probability : float;
  guessed : string list;  (** Target words the attacker guessed. *)
  missed : string list;  (** Target words the attacker failed to guess. *)
  emails : Spamlab_email.Message.t list;
}

val taxonomy : Taxonomy.t

val target_words : Spamlab_email.Message.t -> string list
(** The attacker-visible words of the target: subject and body words as
    plain text (header metadata like addresses is not guessable body
    content), restricted to words that survive SpamBayes tokenization
    (3–12 characters) — shorter or longer words could never be poisoned
    through an attack body.  Deduplicated, in first-occurrence order. *)

val craft :
  Spamlab_stats.Rng.t ->
  target:Spamlab_email.Message.t ->
  p:float ->
  count:int ->
  header_pool:Spamlab_email.Header.t array ->
  plan
(** [craft rng ~target ~p ~count ~header_pool] guesses once (the same
    guessed word set is shared by all [count] attack emails, which is
    what lets Figure 4 speak of "tokens included in the attack"), then
    dresses each email in a header drawn from [header_pool].
    @raise Invalid_argument if [p] is outside [0,1], [count < 0], or the
    header pool is empty while [count > 0]. *)

val train :
  Spamlab_spambayes.Filter.t -> plan -> unit
(** Train every attack email into the filter as spam. *)
