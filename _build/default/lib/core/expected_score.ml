module Filter = Spamlab_spambayes.Filter
module Classify = Spamlab_spambayes.Classify

let estimate filter ~sample ~samples rng =
  if samples <= 0 then invalid_arg "Expected_score.estimate: samples <= 0";
  let total = ref 0.0 in
  for _ = 1 to samples do
    let msg = sample rng in
    total := !total +. (Filter.classify filter msg).Classify.indicator
  done;
  !total /. float_of_int samples

let estimate_under_attack ~baseline ~attack_words ~attack_count ~sample
    ~samples rng =
  let poisoned = Filter.copy baseline in
  let attack =
    Dictionary_attack.make ~name:"expected-score" ~words:attack_words
  in
  Dictionary_attack.train poisoned (Filter.tokenizer poisoned) attack
    ~count:attack_count;
  estimate poisoned ~sample ~samples rng
