open Spamlab_stats
module Dataset = Spamlab_corpus.Dataset
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify

type config = {
  train_size : int;
  validation_size : int;
  trials : int;
  threshold : float;
}

let default_config =
  { train_size = 20; validation_size = 50; trials = 5; threshold = 5.0 }

type assessment = {
  mean_ham_impact : float;
  per_trial : float array;
  rejected : bool;
}

let ham_as_ham filter validation =
  Array.fold_left
    (fun acc (e : Dataset.example) ->
      if e.label = Label.Ham
         && (Dataset.classify filter e).Classify.verdict = Label.Ham_v
      then acc + 1
      else acc)
    0 validation

let assess ?(config = default_config) rng ~pool ~candidate =
  let needed = config.train_size + config.validation_size in
  if Array.length pool < needed then
    invalid_arg "Roni.assess: pool smaller than train + validation sizes";
  if not (Array.exists (fun (e : Dataset.example) -> e.label = Label.Ham) pool)
  then invalid_arg "Roni.assess: pool contains no ham";
  let per_trial =
    Array.init config.trials (fun _ ->
        let sample = Rng.sample_without_replacement rng needed pool in
        let train = Array.sub sample 0 config.train_size in
        let validation =
          Array.sub sample config.train_size config.validation_size
        in
        let baseline = Filter.create () in
        Dataset.train_filter baseline train;
        let with_candidate = Filter.copy baseline in
        Filter.train_tokens with_candidate Label.Spam candidate;
        let before = ham_as_ham baseline validation in
        let after = ham_as_ham with_candidate validation in
        float_of_int (before - after))
  in
  let mean_ham_impact = Summary.mean per_trial in
  {
    mean_ham_impact;
    per_trial;
    rejected = mean_ham_impact > config.threshold;
  }

let screen ?(config = default_config) rng ~pool ~stream =
  Array.map
    (fun candidate -> (candidate, assess ~config rng ~pool ~candidate))
    stream
