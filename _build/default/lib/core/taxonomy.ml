type influence = Causative | Exploratory
type violation = Integrity | Availability
type specificity = Targeted | Indiscriminate

type t = {
  influence : influence;
  violation : violation;
  specificity : specificity;
}

let dictionary_attack =
  { influence = Causative; violation = Availability;
    specificity = Indiscriminate }

let focused_attack =
  { influence = Causative; violation = Availability; specificity = Targeted }

let influence_to_string = function
  | Causative -> "Causative"
  | Exploratory -> "Exploratory"

let violation_to_string = function
  | Integrity -> "Integrity"
  | Availability -> "Availability"

let specificity_to_string = function
  | Targeted -> "Targeted"
  | Indiscriminate -> "Indiscriminate"

let describe t =
  Printf.sprintf "%s %s %s attack"
    (influence_to_string t.influence)
    (violation_to_string t.violation)
    (specificity_to_string t.specificity)

let pp fmt t = Format.pp_print_string fmt (describe t)

let equal (a : t) b = a = b

let all =
  List.concat_map
    (fun influence ->
      List.concat_map
        (fun violation ->
          List.map
            (fun specificity -> { influence; violation; specificity })
            [ Targeted; Indiscriminate ])
        [ Integrity; Availability ])
    [ Causative; Exploratory ]
