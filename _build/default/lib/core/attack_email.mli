(** Attack email construction under the contamination assumption (§2.2):
    the attacker controls message {e bodies} but not headers, and attack
    messages enter training labeled as spam.

    Non-focused attacks carry an empty header (the experimental
    restriction of §4.1); the focused attack copies the entire header of
    a randomly chosen spam message. *)

val body_of_words : string list -> string
(** Lay the payload words out as line-wrapped text whose SpamBayes
    tokenization is exactly the given words (each payload word must
    already be a clean 3–12 character token; longer or shorter words
    would be transformed by the tokenizer). *)

val make : words:string list -> Spamlab_email.Message.t
(** Attack message with an empty header. *)

val make_with_header :
  header:Spamlab_email.Header.t -> words:string list ->
  Spamlab_email.Message.t
(** Attack message wearing a stolen header. *)

val payload_tokens :
  Spamlab_tokenizer.Tokenizer.t ->
  Spamlab_email.Message.t ->
  string array
(** Distinct tokens the filter will extract from an attack message —
    what actually lands in the token database when the victim trains. *)
