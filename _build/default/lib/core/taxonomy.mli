(** The attack taxonomy of Barreno et al. (§3.1): three orthogonal axes
    classifying attacks against learning systems.

    The paper's attacks are all {e Causative Availability} attacks —
    they poison training data to raise false positives — in both
    Indiscriminate (dictionary) and Targeted (focused) forms. *)

type influence =
  | Causative  (** Attacker influences the training data. *)
  | Exploratory  (** Attacker only probes the fixed classifier. *)

type violation =
  | Integrity  (** False negatives: spam slips through. *)
  | Availability  (** False positives: ham is filtered away. *)

type specificity =
  | Targeted  (** Degrade performance on one type of email. *)
  | Indiscriminate  (** Degrade performance broadly. *)

type t = {
  influence : influence;
  violation : violation;
  specificity : specificity;
}

val dictionary_attack : t
(** Causative / Availability / Indiscriminate. *)

val focused_attack : t
(** Causative / Availability / Targeted. *)

val describe : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val all : t list
(** The eight cells of the taxonomy. *)
