(** The stealth variant the paper sketches in §2.2/§4.2: a single
    dictionary email carries ~100k tokens — two orders of magnitude
    above any legitimate message — so trivial size screening would
    flag it.  The attacker's counter-move is to {e split} the word list
    across many normal-sized emails: the same total poison, delivered in
    messages whose sizes blend into the corpus.

    Splitting costs the attacker per-token influence: a word in one of
    k chunks lands in 1/k of the attack emails, so its spam count grows
    k times slower per attack email sent.  At a fixed total token budget
    the poison per word is unchanged — what changes is the number of
    visible messages and each message's size. *)

val chunks : words:string array -> chunk_size:int -> string array array
(** Partition the word list round-robin into ⌈n / chunk_size⌉ chunks of
    nearly equal size.  Round-robin (rather than contiguous slices)
    spreads the high-value head of a frequency-ranked list evenly across
    the chunks, so every attack email carries some head words.
    @raise Invalid_argument if [chunk_size <= 0] or the word list is
    empty. *)

val emails :
  words:string array -> chunk_size:int -> Spamlab_email.Message.t list
(** One empty-header attack email per chunk. *)

val train :
  Spamlab_spambayes.Filter.t ->
  Spamlab_tokenizer.Tokenizer.t ->
  words:string array ->
  chunk_size:int ->
  copies:int ->
  unit
(** Poison a filter with [copies] full passes over the chunked list —
    i.e. [copies × ⌈n/chunk_size⌉] attack emails, each word trained
    [copies] times, matching the token budget of [copies] unsplit
    dictionary emails. *)

val size_percentile : corpus_sizes:int array -> int -> float
(** Where a message of the given raw-token size falls among the corpus
    message sizes (0–100); the naive anomaly statistic a vigilant admin
    might screen with. *)
