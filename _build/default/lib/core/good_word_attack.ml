module Filter = Spamlab_spambayes.Filter
module Token_db = Spamlab_spambayes.Token_db
module Classify = Spamlab_spambayes.Classify
module Label = Spamlab_spambayes.Label
module Message = Spamlab_email.Message

let taxonomy =
  {
    Taxonomy.influence = Taxonomy.Exploratory;
    violation = Taxonomy.Integrity;
    specificity = Taxonomy.Targeted;
  }

(* Tokens the attacker can inject through a body: plain words the
   tokenizer would reproduce.  Prefixed tokens (subject:, from:..., url:,
   skip:, email ...) contain characters a body word never yields. *)
let body_insertable token =
  String.length token >= 3
  && String.length token <= 12
  && String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
       token

let hammiest_tokens filter ~limit =
  let db = Filter.db filter in
  let options = Filter.options filter in
  let scored =
    Token_db.fold
      (fun acc token ~spam:_ ~ham:_ ->
        if body_insertable token then
          (token, Spamlab_spambayes.Score.smoothed options db token) :: acc
        else acc)
      [] db
  in
  let by_score (ta, sa) (tb, sb) =
    match Float.compare sa sb with 0 -> String.compare ta tb | c -> c
  in
  let sorted = List.sort by_score scored in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (t, _) :: rest -> t :: take (n - 1) rest
  in
  take limit sorted

type result = {
  padded : Spamlab_email.Message.t;
  words_added : int;
  verdict : Label.verdict;
  score : float;
}

let evade filter spam ~good_words ~max_words =
  let batch_size = 10 in
  let rec loop added words_left current =
    let classification = Filter.classify filter current in
    let verdict = classification.Classify.verdict in
    if verdict <> Label.Spam_v || added >= max_words || words_left = [] then
      {
        padded = current;
        words_added = added;
        verdict;
        score = classification.Classify.indicator;
      }
    else begin
      let rec split n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | w :: rest -> split (n - 1) (w :: acc) rest
      in
      let batch, rest = split (min batch_size (max_words - added)) [] words_left in
      let padded_body =
        Message.body current ^ "\n" ^ Attack_email.body_of_words batch
      in
      loop (added + List.length batch) rest
        (Message.with_body current padded_body)
    end
  in
  loop 0 good_words spam
