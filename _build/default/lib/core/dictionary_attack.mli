(** The dictionary attack (§3.2) and its variants.

    An Indiscriminate Causative Availability attack: every attack email
    contains an entire word list likely to cover future legitimate mail.
    Trained as spam, the list's tokens acquire spammy scores and future
    ham inherits them.  Variants differ only in the word source:

    - {e aspell}: a full English-style dictionary (no slang);
    - {e usenet}: the top-N frequency-ranked Usenet words (includes the
      colloquialisms real ham contains);
    - {e optimal}: exactly the support of the victim's ham distribution
      (the §3.4 upper bound, infeasible for a real attacker but
      simulable here). *)

type t

val make : name:string -> words:string array -> t
(** @raise Invalid_argument on an empty word list. *)

val name : t -> string
val words : t -> string array
val word_count : t -> int

val taxonomy : Taxonomy.t

val email : t -> Spamlab_email.Message.t
(** One attack message: empty header, the whole word list as body.
    Every attack email of a variant is identical, so one message
    suffices; the victim trains it [k] times. *)

val emails : t -> count:int -> Spamlab_email.Message.t list

val payload : Spamlab_tokenizer.Tokenizer.t -> t -> string array
(** Distinct trained tokens of one attack email (cached per tokenizer
    would be the caller's job; this recomputes). *)

val raw_token_count : Spamlab_tokenizer.Tokenizer.t -> t -> int
(** Stream length (non-deduplicated) of one attack email — the
    token-volume statistic of §4.2. *)

val train :
  Spamlab_spambayes.Filter.t -> Spamlab_tokenizer.Tokenizer.t -> t ->
  count:int -> unit
(** Poison a filter with [count] copies of the attack email, trained as
    spam (O(word list), not O(count × word list)). *)
