open Spamlab_stats

type plan = {
  campaign_words : string list;
  camouflage_words : string list;
  emails : Spamlab_email.Message.t list;
}

let taxonomy =
  {
    Taxonomy.influence = Taxonomy.Causative;
    violation = Taxonomy.Integrity;
    specificity = Taxonomy.Targeted;
  }

let craft rng ~campaign ~camouflage ~camouflage_fraction ~count =
  if Array.length campaign = 0 then
    invalid_arg "Pseudospam_attack.craft: empty campaign vocabulary";
  if camouflage_fraction < 0.0 || camouflage_fraction >= 1.0 then
    invalid_arg "Pseudospam_attack.craft: camouflage_fraction outside [0,1)";
  if count < 0 then invalid_arg "Pseudospam_attack.craft: negative count";
  let campaign_words = Array.to_list campaign in
  let n_campaign = List.length campaign_words in
  (* camouflage / (campaign + camouflage) = fraction *)
  let n_camouflage =
    int_of_float
      (Float.round
         (camouflage_fraction /. (1.0 -. camouflage_fraction)
         *. float_of_int n_campaign))
  in
  let n_camouflage = min n_camouflage (Array.length camouflage) in
  let camouflage_words =
    if n_camouflage = 0 then []
    else
      Array.to_list (Rng.sample_without_replacement rng n_camouflage camouflage)
  in
  let words = campaign_words @ camouflage_words in
  let emails = List.init count (fun _ -> Attack_email.make ~words) in
  { campaign_words; camouflage_words; emails }

let train filter plan =
  List.iter
    (fun email ->
      Spamlab_spambayes.Filter.train filter Spamlab_spambayes.Label.Ham email)
    plan.emails
