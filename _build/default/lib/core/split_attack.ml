let chunks ~words ~chunk_size =
  let n = Array.length words in
  if n = 0 then invalid_arg "Split_attack.chunks: empty word list";
  if chunk_size <= 0 then
    invalid_arg "Split_attack.chunks: chunk_size must be positive";
  let count = (n + chunk_size - 1) / chunk_size in
  let buckets = Array.make count [] in
  Array.iteri (fun i w -> buckets.(i mod count) <- w :: buckets.(i mod count)) words;
  Array.map (fun bucket -> Array.of_list (List.rev bucket)) buckets

let emails ~words ~chunk_size =
  Array.to_list (chunks ~words ~chunk_size)
  |> List.map (fun chunk -> Attack_email.make ~words:(Array.to_list chunk))

let train filter tokenizer ~words ~chunk_size ~copies =
  Array.iter
    (fun chunk ->
      let payload =
        Attack_email.payload_tokens tokenizer
          (Attack_email.make ~words:(Array.to_list chunk))
      in
      Spamlab_spambayes.Filter.train_tokens_many filter
        Spamlab_spambayes.Label.Spam payload copies)
    (chunks ~words ~chunk_size)

let size_percentile ~corpus_sizes size =
  let n = Array.length corpus_sizes in
  if n = 0 then invalid_arg "Split_attack.size_percentile: empty corpus";
  let below =
    Array.fold_left (fun acc s -> if s < size then acc + 1 else acc) 0
      corpus_sizes
  in
  100.0 *. float_of_int below /. float_of_int n
