lib/core/attack_email.mli: Spamlab_email Spamlab_tokenizer
