lib/core/good_word_attack.mli: Spamlab_email Spamlab_spambayes Taxonomy
