lib/core/split_attack.mli: Spamlab_email Spamlab_spambayes Spamlab_tokenizer
