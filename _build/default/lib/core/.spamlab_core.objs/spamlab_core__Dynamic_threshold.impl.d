lib/core/dynamic_threshold.ml: Array Float Fun List Spamlab_corpus Spamlab_spambayes
