lib/core/pseudospam_attack.ml: Array Attack_email Float List Rng Spamlab_email Spamlab_spambayes Spamlab_stats Taxonomy
