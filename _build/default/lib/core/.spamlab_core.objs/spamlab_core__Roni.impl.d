lib/core/roni.ml: Array Rng Spamlab_corpus Spamlab_spambayes Spamlab_stats Summary
