lib/core/informed_attack.ml: Array Dictionary_attack Float Hashtbl List Option Spamlab_corpus Spamlab_tokenizer String
