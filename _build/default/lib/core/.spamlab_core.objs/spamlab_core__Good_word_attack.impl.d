lib/core/good_word_attack.ml: Attack_email Float List Spamlab_email Spamlab_spambayes String Taxonomy
