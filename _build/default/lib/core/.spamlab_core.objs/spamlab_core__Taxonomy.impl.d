lib/core/taxonomy.ml: Format List Printf
