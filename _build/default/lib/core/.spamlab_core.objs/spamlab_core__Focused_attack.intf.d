lib/core/focused_attack.mli: Spamlab_email Spamlab_spambayes Spamlab_stats Taxonomy
