lib/core/expected_score.mli: Spamlab_email Spamlab_spambayes Spamlab_stats
