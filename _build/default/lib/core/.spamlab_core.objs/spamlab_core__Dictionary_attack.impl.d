lib/core/dictionary_attack.ml: Array Attack_email List Spamlab_spambayes Spamlab_tokenizer Taxonomy
