lib/core/expected_score.ml: Dictionary_attack Spamlab_spambayes
