lib/core/split_attack.ml: Array Attack_email List Spamlab_spambayes
