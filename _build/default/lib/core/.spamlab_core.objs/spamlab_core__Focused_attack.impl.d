lib/core/focused_attack.ml: Array Attack_email Hashtbl List Option Rng Spamlab_email Spamlab_spambayes Spamlab_stats Spamlab_tokenizer String Taxonomy
