lib/core/pipeline.mli: Roni Spamlab_corpus Spamlab_spambayes Spamlab_stats
