lib/core/roni.mli: Spamlab_corpus Spamlab_stats
