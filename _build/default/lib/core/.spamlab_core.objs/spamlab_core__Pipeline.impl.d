lib/core/pipeline.ml: Array List Roni Spamlab_corpus Spamlab_spambayes
