lib/core/attack_email.ml: Buffer List Spamlab_email Spamlab_tokenizer String
