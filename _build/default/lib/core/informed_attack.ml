let select word_probs ~budget =
  if budget < 0 then invalid_arg "Informed_attack.select: negative budget";
  let positive =
    Array.of_list
      (List.filter (fun (_, p) -> p > 0.0) (Array.to_list word_probs))
  in
  let by_prob_desc (wa, pa) (wb, pb) =
    match Float.compare pb pa with
    | 0 -> String.compare wa wb
    | c -> c
  in
  Array.sort by_prob_desc positive;
  Array.map fst (Array.sub positive 0 (min budget (Array.length positive)))

let of_language_model model ~budget =
  let support = Spamlab_corpus.Language_model.support model in
  let probs =
    Array.map
      (fun w -> (w, Spamlab_corpus.Language_model.word_prob model w))
      support
  in
  select probs ~budget

let estimate_from_sample rng ~sample ~messages ~tokenizer =
  if messages <= 0 then
    invalid_arg "Informed_attack.estimate_from_sample: messages <= 0";
  let document_frequency = Hashtbl.create 4096 in
  for _ = 1 to messages do
    let msg = sample rng in
    Array.iter
      (fun token ->
        let count =
          Option.value ~default:0 (Hashtbl.find_opt document_frequency token)
        in
        Hashtbl.replace document_frequency token (count + 1))
      (Spamlab_tokenizer.Tokenizer.unique_tokens tokenizer msg)
  done;
  let out =
    Hashtbl.fold
      (fun token count acc ->
        (token, float_of_int count /. float_of_int messages) :: acc)
      document_frequency []
  in
  Array.of_list out

let attack ~name ~words = Dictionary_attack.make ~name ~words
