(** The ham-labeled attack the paper's §2.2 sets aside: "using
    ham-labeled attack emails could enable more powerful attacks that
    place spam in a user's inbox."

    This is a {e Causative Integrity} attack.  The attacker sends
    innocuous-looking messages ("pseudospam") whose bodies mix
    plausible legitimate prose with the vocabulary of a {e future} spam
    campaign.  If the victim's pipeline trains them as ham (they read
    like newsletters and contain no payload, so manual labelers often
    do), the campaign tokens acquire hammy scores and the later real
    campaign slides into the inbox. *)

type plan = {
  campaign_words : string list;
      (** The future campaign's vocabulary being whitewashed. *)
  camouflage_words : string list;
      (** Innocent filler included to make the emails look legitimate. *)
  emails : Spamlab_email.Message.t list;
}

val taxonomy : Taxonomy.t
(** Causative / Integrity / Targeted. *)

val craft :
  Spamlab_stats.Rng.t ->
  campaign:string array ->
  camouflage:string array ->
  camouflage_fraction:float ->
  count:int ->
  plan
(** [craft rng ~campaign ~camouflage ~camouflage_fraction ~count] builds
    [count] identical pseudospam emails whose word set is the whole
    campaign vocabulary plus enough camouflage words that they make up
    [camouflage_fraction] of each email.  @raise Invalid_argument if
    the campaign is empty, the fraction is outside [0,1), or [count < 0]. *)

val train : Spamlab_spambayes.Filter.t -> plan -> unit
(** Train every attack email as {e ham} — the poisoned-label premise. *)
