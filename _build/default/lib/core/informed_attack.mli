(** The §3.4 optimal {e constrained} attack the paper leaves as future
    work.

    The attacker's knowledge is a distribution p over the words of the
    victim's future email.  Because token scores do not interact across
    words and the message score I is monotonically non-decreasing in
    each f(w) (the section's two observations), the expected-score
    objective decomposes per word: under a budget of B words per attack
    email, the optimal attack includes the B words with the largest
    appearance probability — every included word independently raises
    the expected score of any future message containing it, and words
    the victim never uses contribute nothing.

    This module derives that attack from a word distribution and, more
    interestingly, from {e noisy} knowledge of it: a real attacker
    estimates p from a sample of the victim's traffic. *)

val select : (string * float) array -> budget:int -> string array
(** [select word_probs ~budget] is the optimal budget-constrained word
    list: the [budget] words of highest probability (ties broken
    alphabetically for reproducibility).  Words with probability 0 are
    never selected even when the budget allows.  @raise
    Invalid_argument if [budget < 0]. *)

val of_language_model :
  Spamlab_corpus.Language_model.t -> budget:int -> string array
(** Perfect distributional knowledge: select from the model's true
    marginals.  With [budget] ≥ the support size this is exactly the
    paper's optimal attack. *)

val estimate_from_sample :
  Spamlab_stats.Rng.t ->
  sample:(Spamlab_stats.Rng.t -> Spamlab_email.Message.t) ->
  messages:int ->
  tokenizer:Spamlab_tokenizer.Tokenizer.t ->
  (string * float) array
(** Attacker-realistic knowledge: estimate word appearance frequencies
    from [messages] observed victim messages (e.g. scraped mailing-list
    posts).  Returns per-token document frequencies.
    @raise Invalid_argument if [messages <= 0]. *)

val attack :
  name:string -> words:string array -> Dictionary_attack.t
(** Package the selection as a dictionary-style attack (empty header,
    one email repeated). *)
