(** An Exploratory Integrity baseline: the classic "good word" attack of
    Lowd & Meek / Wittel & Wu that the paper contrasts itself against
    (§6).  The attacker does {e not} touch the training set; they pad a
    spam message with words the (fixed) filter considers hammy until it
    slips past.

    Included so the laboratory covers both halves of the taxonomy's
    Influence axis and the two attack families can be compared under
    identical conditions. *)

val taxonomy : Taxonomy.t
(** Exploratory / Integrity / Targeted. *)

val hammiest_tokens : Spamlab_spambayes.Filter.t -> limit:int -> string list
(** The [limit] known tokens with the lowest f(w) — the attacker's "good
    words".  Only plain body-insertable tokens qualify (tokens carrying
    a header prefix like ["subject:"] or ["from:..."] cannot be forged
    through a message body).  Ties break alphabetically. *)

type result = {
  padded : Spamlab_email.Message.t;
  words_added : int;
  verdict : Spamlab_spambayes.Label.verdict;
  score : float;
}

val evade :
  Spamlab_spambayes.Filter.t ->
  Spamlab_email.Message.t ->
  good_words:string list ->
  max_words:int ->
  result
(** [evade filter spam ~good_words ~max_words] appends good words (in
    batches, re-querying the filter) until the message is no longer
    classified spam or the budget runs out.  Models an attacker with
    query access to the victim's filter. *)
