open Spamlab_stats
module Message = Spamlab_email.Message
module Text = Spamlab_tokenizer.Text

let taxonomy = Taxonomy.focused_attack

let target_words target =
  let subject = Option.value ~default:"" (Message.subject target) in
  let raw = Text.words subject @ Text.words (Message.body target) in
  (* Only words that survive tokenization are worth guessing: a too-short
     or too-long word in the attack body would never become the token
     the attacker needs to poison.  First-occurrence order,
     deduplicated. *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun w ->
      let n = String.length w in
      n >= Spamlab_tokenizer.Spambayes_tok.min_word_length
      && n <= Spamlab_tokenizer.Spambayes_tok.max_word_length
      && not (Hashtbl.mem seen w)
      && begin
           Hashtbl.replace seen w ();
           true
         end)
    raw

type plan = {
  guess_probability : float;
  guessed : string list;
  missed : string list;
  emails : Spamlab_email.Message.t list;
}

let craft rng ~target ~p ~count ~header_pool =
  if p < 0.0 || p > 1.0 then
    invalid_arg "Focused_attack.craft: p outside [0,1]";
  if count < 0 then invalid_arg "Focused_attack.craft: negative count";
  if count > 0 && Array.length header_pool = 0 then
    invalid_arg "Focused_attack.craft: empty header pool";
  let all_words = target_words target in
  let guessed, missed =
    List.partition (fun _ -> Rng.bernoulli rng p) all_words
  in
  (* The attacker writes a plain-text body, so structural headers from
     the stolen spam (transfer encoding, multipart content type) must
     go — otherwise the victim's MIME layer would "decode" the payload
     into garbage and the poisoned tokens would never land. *)
  let sanitize header =
    Spamlab_email.Header.remove
      (Spamlab_email.Header.remove header "content-transfer-encoding")
      "content-type"
  in
  let emails =
    List.init count (fun _ ->
        let header = sanitize (Rng.choose rng header_pool) in
        Attack_email.make_with_header ~header ~words:guessed)
  in
  { guess_probability = p; guessed; missed; emails }

let train filter plan =
  List.iter
    (fun email ->
      Spamlab_spambayes.Filter.train filter Spamlab_spambayes.Label.Spam email)
    plan.emails
