module Dataset = Spamlab_corpus.Dataset
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify

type verdict_counts = {
  ham_as_ham : int;
  ham_as_unsure : int;
  ham_as_spam : int;
  spam_as_ham : int;
  spam_as_unsure : int;
  spam_as_spam : int;
}

let empty_counts =
  {
    ham_as_ham = 0;
    ham_as_unsure = 0;
    ham_as_spam = 0;
    spam_as_ham = 0;
    spam_as_unsure = 0;
    spam_as_spam = 0;
  }

let count_verdict counts gold verdict =
  match (gold, verdict) with
  | Label.Ham, Label.Ham_v -> { counts with ham_as_ham = counts.ham_as_ham + 1 }
  | Label.Ham, Label.Unsure_v ->
      { counts with ham_as_unsure = counts.ham_as_unsure + 1 }
  | Label.Ham, Label.Spam_v -> { counts with ham_as_spam = counts.ham_as_spam + 1 }
  | Label.Spam, Label.Ham_v -> { counts with spam_as_ham = counts.spam_as_ham + 1 }
  | Label.Spam, Label.Unsure_v ->
      { counts with spam_as_unsure = counts.spam_as_unsure + 1 }
  | Label.Spam, Label.Spam_v ->
      { counts with spam_as_spam = counts.spam_as_spam + 1 }

let ham_delivery_rate counts =
  let total = counts.ham_as_ham + counts.ham_as_unsure + counts.ham_as_spam in
  if total = 0 then 1.0
  else float_of_int counts.ham_as_ham /. float_of_int total

type training_policy = Train_everything | Train_on_error

type config = {
  retrain_period : int;
  policy : training_policy;
  roni : Roni.config option;
  initial_training : Dataset.example array;
}

type round_report = {
  round_index : int;
  counts : verdict_counts;
  rejected : int;
}

type report = {
  rounds : round_report list;
  total_rejected : int;
  final_filter : Filter.t;
}

let retrain pool =
  let filter = Filter.create () in
  Dataset.train_filter filter (Array.of_list (List.rev pool));
  filter

let run config rng ~rounds =
  if config.retrain_period <= 0 then
    invalid_arg "Pipeline.run: retrain_period must be positive";
  (match config.roni with
  | Some roni_config
    when Array.length config.initial_training
         < roni_config.Roni.train_size + roni_config.Roni.validation_size ->
      invalid_arg "Pipeline.run: initial training pool too small for RONI"
  | Some _ | None -> ());
  (* The pool is kept as a reversed list of examples for cheap appends;
     retraining replays it in arrival order. *)
  let pool = ref (List.rev (Array.to_list config.initial_training)) in
  let trusted = ref config.initial_training in
  let filter = ref (retrain !pool) in
  let total_rejected = ref 0 in
  let reports =
    List.mapi
      (fun i round ->
        let round_index = i + 1 in
        (* 1. The user's experience this round. *)
        let counts =
          Array.fold_left
            (fun acc (e : Dataset.example) ->
              count_verdict acc e.Dataset.label
                (Dataset.classify !filter e).Classify.verdict)
            empty_counts round
        in
        (* 2. Admission into the training pool. *)
        let rejected = ref 0 in
        Array.iter
          (fun (e : Dataset.example) ->
            let wanted =
              match config.policy with
              | Train_everything -> true
              | Train_on_error ->
                  (* Mistake-driven training: only messages the current
                     filter did not classify correctly enter the pool. *)
                  not
                    (Label.verdict_agrees e.Dataset.label
                       (Dataset.classify !filter e).Classify.verdict)
            in
            let admit =
              wanted
              &&
              match config.roni with
              | None -> true
              | Some roni_config ->
                  (* Only spam-labeled mail is screened: the attack
                     model trains attack email as spam, and ham is
                     what the defense protects. *)
                  e.Dataset.label = Label.Ham
                  || not
                       (Roni.assess ~config:roni_config rng ~pool:!trusted
                          ~candidate:e.Dataset.tokens)
                         .Roni.rejected
            in
            if admit then pool := e :: !pool
            else if wanted then incr rejected)
          round;
        total_rejected := !total_rejected + !rejected;
        (* 3. Periodic retraining; the screened pool becomes trusted. *)
        if round_index mod config.retrain_period = 0 then begin
          filter := retrain !pool;
          trusted := Array.of_list (List.rev !pool)
        end;
        { round_index; counts; rejected = !rejected })
      rounds
  in
  { rounds = reports; total_rejected = !total_rejected; final_filter = !filter }
