(* Lanczos approximation, g = 7, n = 9 coefficients (Godfrey).  Relative
   error below 1e-13 over the positive reals. *)
let lanczos_g = 7.0

let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: requires x > 0";
  if x < 0.5 then
    (* Reflection formula keeps the Lanczos argument >= 0.5. *)
    let pi = Float.pi in
    log (pi /. sin (pi *. x)) -. log_gamma_positive (1.0 -. x)
  else log_gamma_positive x

and log_gamma_positive x =
  let x = x -. 1.0 in
  let acc = ref lanczos_coefficients.(0) in
  for i = 1 to Array.length lanczos_coefficients - 1 do
    acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
  done;
  let t = x +. lanczos_g +. 0.5 in
  (0.5 *. log (2.0 *. Float.pi))
  +. ((x +. 0.5) *. log t)
  -. t
  +. log !acc

(* Series representation of P(a,x): converges quickly for x < a + 1. *)
let gamma_p_series a x =
  let max_iterations = 500 in
  let epsilon = 1e-15 in
  let rec loop n term sum =
    if n > max_iterations then sum
    else
      let term = term *. x /. (a +. float_of_int n) in
      let sum = sum +. term in
      if Float.abs term < Float.abs sum *. epsilon then sum
      else loop (n + 1) term sum
  in
  let first = 1.0 /. a in
  let series = loop 1 first first in
  series *. exp ((a *. log x) -. x -. log_gamma a)

(* Modified Lentz continued fraction for Q(a,x): converges quickly for
   x >= a + 1. *)
let gamma_q_continued_fraction a x =
  let max_iterations = 500 in
  let epsilon = 1e-15 in
  let tiny = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  (try
     for i = 1 to max_iterations do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.0;
       d := (an *. !d) +. !b;
       if Float.abs !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1.0 /. !d;
       let delta = !d *. !c in
       h := !h *. delta;
       if Float.abs (delta -. 1.0) < epsilon then raise Exit
     done
   with Exit -> ());
  exp ((a *. log x) -. x -. log_gamma a) *. !h

let gamma_p a x =
  if a <= 0.0 then invalid_arg "Special.gamma_p: requires a > 0";
  if x < 0.0 then invalid_arg "Special.gamma_p: requires x >= 0";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_continued_fraction a x

let gamma_q a x =
  if a <= 0.0 then invalid_arg "Special.gamma_q: requires a > 0";
  if x < 0.0 then invalid_arg "Special.gamma_q: requires x >= 0";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series a x
  else gamma_q_continued_fraction a x

let chi2_cdf ~df x =
  if df <= 0 then invalid_arg "Special.chi2_cdf: requires df > 0";
  if x <= 0.0 then 0.0 else gamma_p (float_of_int df /. 2.0) (x /. 2.0)

let chi2_sf ~df x =
  if df <= 0 then invalid_arg "Special.chi2_sf: requires df > 0";
  if x <= 0.0 then 1.0 else gamma_q (float_of_int df /. 2.0) (x /. 2.0)

(* Abramowitz & Stegun 7.1.26-style rational approximation refined by a
   single computation through the incomplete gamma: erf(x) =
   P(1/2, x^2) for x >= 0, which inherits the gamma accuracy. *)
let erf x =
  if x = 0.0 then 0.0
  else if x > 0.0 then gamma_p 0.5 (x *. x)
  else -.gamma_p 0.5 (x *. x)

let erfc x =
  if x >= 0.0 then gamma_q 0.5 (x *. x) else 1.0 +. gamma_p 0.5 (x *. x)

let ln_beta a b = log_gamma a +. log_gamma b -. log_gamma (a +. b)

let mean_log_factorial n =
  if n < 0 then invalid_arg "Special.mean_log_factorial: negative n";
  if n <= 1 then 0.0 else log_gamma (float_of_int n +. 1.0)
