let require_non_empty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  require_non_empty "Summary.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  require_non_empty "Summary.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else
    let m = mean xs in
    let ss =
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    in
    ss /. float_of_int (n - 1)

let std_dev xs = sqrt (variance xs)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let quantile xs q =
  require_non_empty "Summary.quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.quantile: q outside [0,1]";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else
    let h = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))

let median xs = quantile xs 0.5

let min_max xs =
  require_non_empty "Summary.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let mean_ci95 xs =
  require_non_empty "Summary.mean_ci95" xs;
  let n = Array.length xs in
  let m = mean xs in
  if n < 2 then (m, 0.0)
  else (m, 1.96 *. std_dev xs /. sqrt (float_of_int n))

type online = {
  mutable count : int;
  mutable running_mean : float;
  mutable m2 : float; (* sum of squared deviations *)
}

let online_create () = { count = 0; running_mean = 0.0; m2 = 0.0 }

let online_add o x =
  o.count <- o.count + 1;
  let delta = x -. o.running_mean in
  o.running_mean <- o.running_mean +. (delta /. float_of_int o.count);
  o.m2 <- o.m2 +. (delta *. (x -. o.running_mean))

let online_count o = o.count

let online_mean o =
  if o.count = 0 then invalid_arg "Summary.online_mean: no samples";
  o.running_mean

let online_variance o =
  if o.count = 0 then invalid_arg "Summary.online_variance: no samples";
  if o.count < 2 then 0.0 else o.m2 /. float_of_int (o.count - 1)
