type categorical = {
  probabilities : float array; (* normalized, for introspection *)
  alias_prob : float array; (* alias-method acceptance thresholds *)
  alias_index : int array; (* alias-method redirect table *)
}

(* Walker's alias method, built with the standard two-worklist (small /
   large) construction.  O(n) setup, O(1) per draw. *)
let categorical weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sampler.categorical: empty weights";
  Array.iter
    (fun w ->
      if w < 0.0 || not (Float.is_finite w) then
        invalid_arg "Sampler.categorical: negative or non-finite weight")
    weights;
  let total = Array.fold_left ( +. ) 0.0 weights in
  if not (Float.is_finite total) || total <= 0.0 then
    invalid_arg "Sampler.categorical: weights must sum to a positive finite";
  let probabilities = Array.map (fun w -> w /. total) weights in
  let scaled = Array.map (fun p -> p *. float_of_int n) probabilities in
  let alias_prob = Array.make n 1.0 in
  let alias_index = Array.init n (fun i -> i) in
  let small = Queue.create () in
  let large = Queue.create () in
  Array.iteri
    (fun i s -> if s < 1.0 then Queue.add i small else Queue.add i large)
    scaled;
  while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
    let s = Queue.pop small in
    let l = Queue.pop large in
    alias_prob.(s) <- scaled.(s);
    alias_index.(s) <- l;
    scaled.(l) <- scaled.(l) -. (1.0 -. scaled.(s));
    if scaled.(l) < 1.0 then Queue.add l small else Queue.add l large
  done;
  (* Whatever remains is 1.0 up to rounding. *)
  Queue.iter (fun i -> alias_prob.(i) <- 1.0) small;
  Queue.iter (fun i -> alias_prob.(i) <- 1.0) large;
  { probabilities; alias_prob; alias_index }

let categorical_draw c rng =
  let n = Array.length c.alias_prob in
  let i = Rng.int rng n in
  if Rng.float rng < c.alias_prob.(i) then i else c.alias_index.(i)

let categorical_support c = Array.length c.probabilities

let categorical_prob c i =
  if i < 0 || i >= Array.length c.probabilities then
    invalid_arg "Sampler.categorical_prob: index out of range";
  c.probabilities.(i)

let zipf ?(exponent = 1.1) n =
  if n <= 0 then invalid_arg "Sampler.zipf: n must be positive";
  if exponent <= 0.0 then invalid_arg "Sampler.zipf: exponent must be positive";
  categorical
    (Array.init n (fun k -> (float_of_int (k + 1)) ** -.exponent))

let uniform_int rng n = Rng.int rng n

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Sampler.binomial: negative n";
  if p < 0.0 || p > 1.0 then invalid_arg "Sampler.binomial: p out of [0,1]";
  if p = 0.0 || n = 0 then 0
  else if p = 1.0 then n
  else if n <= 64 then (
    (* Direct simulation: exact and fast enough at this size. *)
    let successes = ref 0 in
    for _ = 1 to n do
      if Rng.bernoulli rng p then incr successes
    done;
    !successes)
  else
    (* Normal approximation with continuity correction, clamped to the
       valid range; adequate for corpus-length draws where n is large
       and only the bulk matters. *)
    let mean = float_of_int n *. p in
    let sd = sqrt (float_of_int n *. p *. (1.0 -. p)) in
    (* Box-Muller *)
    let u1 = Rng.float rng +. 1e-18 in
    let u2 = Rng.float rng in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    let k = int_of_float (Float.round (mean +. (sd *. z))) in
    max 0 (min n k)

let poisson rng lambda =
  if lambda < 0.0 then invalid_arg "Sampler.poisson: negative mean";
  if lambda = 0.0 then 0
  else if lambda < 64.0 then (
    (* Knuth: multiply uniforms until below e^-lambda. *)
    let limit = exp (-.lambda) in
    let rec loop k product =
      let product = product *. Rng.float rng in
      if product <= limit then k else loop (k + 1) product
    in
    loop 0 1.0)
  else
    let sd = sqrt lambda in
    let u1 = Rng.float rng +. 1e-18 in
    let u2 = Rng.float rng in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    max 0 (int_of_float (Float.round (lambda +. (sd *. z))))

let normal rng ~mean ~std =
  if std < 0.0 then invalid_arg "Sampler.normal: negative std";
  let u1 = Rng.float rng +. 1e-18 in
  let u2 = Rng.float rng in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (std *. z)

let log_normal rng ~mu ~sigma = exp (normal rng ~mean:mu ~std:sigma)

let geometric rng p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Sampler.geometric: p out of (0,1]";
  if p = 1.0 then 0
  else
    let u = Rng.float rng +. 1e-18 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let round_stochastic rng x =
  let lo = Float.floor x in
  let frac = x -. lo in
  let lo = int_of_float lo in
  if Rng.float rng < frac then lo + 1 else lo
