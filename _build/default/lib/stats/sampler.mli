(** Random-variate samplers over a {!Rng.t}.

    These drive the synthetic corpus generator: Zipf-distributed token
    draws, categorical choices over vocabularies (via Walker's alias
    method, O(1) per draw), and the small discrete distributions used for
    message lengths and header variation. *)

type categorical
(** A prepared discrete distribution over [0, n). *)

val categorical : float array -> categorical
(** [categorical weights] prepares a distribution proportional to
    [weights] using the alias method.  Weights must be non-negative with
    a positive sum.  @raise Invalid_argument otherwise. *)

val categorical_draw : categorical -> Rng.t -> int
(** O(1) draw of an index distributed as the prepared weights. *)

val categorical_support : categorical -> int
(** Number of categories. *)

val categorical_prob : categorical -> int -> float
(** [categorical_prob c i] is the normalized probability of category [i]
    (for tests and analytical attack planning). *)

val zipf : ?exponent:float -> int -> categorical
(** [zipf n] prepares a Zipf distribution over ranks [0, n):
    P(k) ∝ 1/(k+1)^exponent.  Default [exponent] is 1.1, a standard fit
    for natural-language unigram frequencies.
    @raise Invalid_argument if [n <= 0] or [exponent <= 0]. *)

val uniform_int : Rng.t -> int -> int
(** Convenience re-export of {!Rng.int}. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Number of successes among [n] Bernoulli([p]) trials.  Exact (summed)
    for small [n]; BTPE-free inversion elsewhere — adequate for the
    laboratory's n ≤ 10^6. *)

val poisson : Rng.t -> float -> int
(** Poisson draw; Knuth multiplication for small means, normal
    approximation with continuity correction above mean 64. *)

val normal : Rng.t -> mean:float -> std:float -> float
(** Gaussian draw via Box–Muller.  @raise Invalid_argument if
    [std < 0]. *)

val log_normal : Rng.t -> mu:float -> sigma:float -> float
(** exp of a N(mu, sigma) draw — the laboratory's email-length model
    (heavy right tail, strictly positive). *)

val geometric : Rng.t -> float -> int
(** [geometric rng p] is the number of failures before the first success,
    p in (0,1]. *)

val round_stochastic : Rng.t -> float -> int
(** [round_stochastic rng x] rounds [x] to an adjacent integer with
    probability proportional to proximity; unbiased. *)
