(** Descriptive statistics for experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n−1 denominator); 0 for arrays of length
    1.  @raise Invalid_argument on an empty array. *)

val std_dev : float array -> float

val median : float array -> float
(** Median (average of middle two for even lengths).  Does not modify the
    input.  @raise Invalid_argument on an empty array. *)

val quantile : float array -> float -> float
(** [quantile xs q] for q in [0,1], linear interpolation between order
    statistics (type-7, the R default). *)

val min_max : float array -> float * float

val mean_ci95 : float array -> float * float
(** [mean_ci95 xs] is (mean, half-width of a normal-approximation 95%
    confidence interval).  Half-width is 0 for fewer than 2 samples. *)

type online
(** Welford online accumulator: numerically stable single-pass mean and
    variance. *)

val online_create : unit -> online
val online_add : online -> float -> unit
val online_count : online -> int
val online_mean : online -> float
(** @raise Invalid_argument if no values were added. *)

val online_variance : online -> float
(** Unbiased; 0 with fewer than two values.
    @raise Invalid_argument if no values were added. *)
