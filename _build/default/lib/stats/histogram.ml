type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable total : int;
}

let create ?(bins = 20) ~lo ~hi () =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0; total = 0 }

let bin_of t x =
  let n = Array.length t.counts in
  if x <= t.lo then 0
  else if x >= t.hi then n - 1
  else min (n - 1) (int_of_float ((x -. t.lo) /. t.width))

let add t x =
  t.counts.(bin_of t x) <- t.counts.(bin_of t x) + 1;
  t.total <- t.total + 1

let add_all t xs = Array.iter (add t) xs

let count t = t.total

let bins t = Array.length t.counts

let bin_count t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bin_count: index out of range";
  t.counts.(i)

let bin_edges t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bin_edges: index out of range";
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let counts t = Array.copy t.counts

let render ?(width = 40) t =
  let peak = Array.fold_left max 1 t.counts in
  let buffer = Buffer.create 256 in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_edges t i in
      let bar = c * width / peak in
      Buffer.add_string buffer
        (Printf.sprintf "%6.3f..%6.3f | %-*s %d\n" lo hi width
           (String.make bar '#') c))
    t.counts;
  Buffer.contents buffer
