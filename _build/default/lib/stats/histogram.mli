(** Fixed-bin histograms over a closed interval, used for the Figure 4
    before/after token-score distributions and for defense diagnostics. *)

type t

val create : ?bins:int -> lo:float -> hi:float -> unit -> t
(** [create ~lo ~hi ()] makes an empty histogram of [bins] (default 20)
    equal-width bins spanning [lo, hi].  Values outside the range clamp
    into the edge bins.  @raise Invalid_argument if [bins <= 0] or
    [hi <= lo]. *)

val add : t -> float -> unit
val add_all : t -> float array -> unit
val count : t -> int
(** Total number of values added. *)

val bin_count : t -> int -> int
(** Count in bin [i].  @raise Invalid_argument if out of range. *)

val bins : t -> int
val bin_edges : t -> int -> float * float
(** Inclusive-exclusive edges of bin [i] (last bin is inclusive). *)

val counts : t -> int array
(** Copy of the per-bin counts. *)

val render : ?width:int -> t -> string
(** ASCII rendering, one line per bin: [lo..hi | ####### n]. *)
