lib/stats/rng.mli:
