lib/stats/fisher.ml: Float List Special
