lib/stats/sampler.mli: Rng
