lib/stats/special.mli:
