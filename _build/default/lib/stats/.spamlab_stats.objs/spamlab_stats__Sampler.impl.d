lib/stats/sampler.ml: Array Float Queue Rng
