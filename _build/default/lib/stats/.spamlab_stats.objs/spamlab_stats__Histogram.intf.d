lib/stats/histogram.mli:
