lib/stats/histogram.ml: Array Buffer Printf String
