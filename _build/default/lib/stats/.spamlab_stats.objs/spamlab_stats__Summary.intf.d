lib/stats/summary.mli:
