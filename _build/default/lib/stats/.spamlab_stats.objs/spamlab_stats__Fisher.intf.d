lib/stats/fisher.mli:
