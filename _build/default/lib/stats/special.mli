(** Special functions needed by the SpamBayes scoring machinery.

    OCaml ships no scientific library, so the chi-square distribution
    function used by Fisher's method (paper Eq. 4) is built here from
    first principles: Lanczos log-gamma, the regularized incomplete gamma
    function (series expansion for [x < a+1], Lentz continued fraction
    otherwise), and the error function.

    Accuracy target: at least 10 significant digits over the argument
    ranges the filter exercises, verified against high-precision reference
    values in the test suite. *)

val log_gamma : float -> float
(** [log_gamma x] is ln Γ(x) for [x > 0].
    @raise Invalid_argument if [x <= 0]. *)

val gamma_p : float -> float -> float
(** [gamma_p a x] is the regularized lower incomplete gamma function
    P(a,x) = γ(a,x)/Γ(a), for [a > 0], [x >= 0]. *)

val gamma_q : float -> float -> float
(** [gamma_q a x] = 1 − P(a,x), the regularized upper incomplete gamma
    function, computed directly (not as [1. -. gamma_p]) where that is
    more accurate. *)

val chi2_cdf : df:int -> float -> float
(** [chi2_cdf ~df x] is the chi-square cumulative distribution function
    with [df] degrees of freedom evaluated at [x]; 0 for [x <= 0].
    @raise Invalid_argument if [df <= 0]. *)

val chi2_sf : df:int -> float -> float
(** Survival function 1 − CDF, computed to full relative accuracy in the
    upper tail. *)

val erf : float -> float
val erfc : float -> float

val ln_beta : float -> float -> float
(** [ln_beta a b] = ln B(a,b). *)

val mean_log_factorial : int -> float
(** [mean_log_factorial n] = ln n! (via log-gamma), used by discrete
    samplers. *)
