(** Experimental parameters — the contents of the paper's Table 1, as
    code, with a uniform [scale] knob.

    [scale = 1.0] reproduces the paper's sizes exactly (10,000-message
    inboxes, 10-fold cross-validation, ...).  Smaller scales shrink
    dataset sizes and repetition counts proportionally (never below
    sensible minima) so the full suite can run quickly in CI; the shape
    of every result is preserved. *)

type dictionary = {
  train_size : int;
  spam_prevalence : float;
  attack_fractions : float list;
  folds : int;
  dictionary_size : int;  (** aspell list size. *)
  usenet_size : int;  (** top-N Usenet words. *)
}

type focused = {
  inbox_size : int;
  spam_prevalence : float;
  attack_count : int;  (** Fixed count for the p-sweep (Fig. 2). *)
  guess_probabilities : float list;
  fractions : float list;  (** Attack-volume sweep (Fig. 3). *)
  fixed_probability : float;  (** p for Fig. 3 and 4. *)
  targets : int;
  repetitions : int;
}

type roni = {
  pool_size : int;
  train_size : int;
  validation_size : int;
  trials : int;
  non_attack_queries : int;
  attack_repetitions : int;  (** Per attack variant. *)
}

type threshold = {
  train_size : int;
  spam_prevalence : float;
  attack_fractions : float list;
  folds : int;
  quantiles : float list;  (** 0.05 and 0.10. *)
}

val dictionary : ?scale:float -> unit -> dictionary
val focused : ?scale:float -> unit -> focused
val roni : ?scale:float -> unit -> roni
val threshold : ?scale:float -> unit -> threshold

val table1 : ?scale:float -> unit -> string
(** Rendering of Table 1 at the given scale, with the paper's values in
    a companion column when the scale is not 1. *)
