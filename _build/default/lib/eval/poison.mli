(** Shared plumbing for poisoning experiments. *)

val attack_count : train_size:int -> fraction:float -> int
(** Number of attack emails that makes up [fraction] of the {e final}
    training set: ⌈n·f/(1−f)⌋.  At f = 0.01 and n = 10,000 this is 101,
    matching the paper's "101 attack emails (1% of 10,000)".
    @raise Invalid_argument unless 0 ≤ f < 1. *)

val base_filter :
  Spamlab_tokenizer.Tokenizer.t ->
  Spamlab_corpus.Dataset.example array ->
  Spamlab_spambayes.Filter.t
(** A fresh default-options filter trained on the examples. *)

val poisoned :
  Spamlab_spambayes.Filter.t -> payload:string array -> count:int ->
  Spamlab_spambayes.Filter.t
(** Copy the filter and train [count] identical spam messages with the
    given distinct-token payload. *)

val score_examples :
  Spamlab_spambayes.Filter.t ->
  Spamlab_corpus.Dataset.example array ->
  (float * Spamlab_spambayes.Label.gold) array
(** Indicator scores with gold labels — verdicts can then be derived
    under any thresholds without rescoring. *)

val confusion_of_scores :
  Spamlab_spambayes.Options.t ->
  (float * Spamlab_spambayes.Label.gold) array ->
  Confusion.t
