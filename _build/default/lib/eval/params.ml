type dictionary = {
  train_size : int;
  spam_prevalence : float;
  attack_fractions : float list;
  folds : int;
  dictionary_size : int;
  usenet_size : int;
}

type focused = {
  inbox_size : int;
  spam_prevalence : float;
  attack_count : int;
  guess_probabilities : float list;
  fractions : float list;
  fixed_probability : float;
  targets : int;
  repetitions : int;
}

type roni = {
  pool_size : int;
  train_size : int;
  validation_size : int;
  trials : int;
  non_attack_queries : int;
  attack_repetitions : int;
}

type threshold = {
  train_size : int;
  spam_prevalence : float;
  attack_fractions : float list;
  folds : int;
  quantiles : float list;
}

let scaled scale minimum value =
  max minimum (int_of_float (Float.round (scale *. float_of_int value)))

let dictionary ?(scale = 1.0) () =
  {
    train_size = scaled scale 200 10_000;
    spam_prevalence = 0.50;
    attack_fractions = [ 0.0; 0.001; 0.005; 0.01; 0.02; 0.05; 0.10 ];
    folds = scaled (Float.min 1.0 scale) 3 10;
    dictionary_size = scaled scale 20_000 Spamlab_corpus.Dictionary.aspell_size;
    usenet_size = scaled scale 19_000 Spamlab_corpus.Usenet.default_total;
  }

let focused ?(scale = 1.0) () =
  {
    inbox_size = scaled scale 200 5_000;
    spam_prevalence = 0.50;
    attack_count = scaled scale 20 300;
    guess_probabilities = [ 0.1; 0.3; 0.5; 0.9 ];
    fractions = [ 0.0; 0.01; 0.02; 0.03; 0.04; 0.05; 0.06; 0.08; 0.10 ];
    fixed_probability = 0.5;
    targets = scaled (Float.min 1.0 scale) 5 20;
    repetitions = scaled (Float.min 1.0 scale) 2 5;
  }

let roni ?(scale = 1.0) () =
  {
    pool_size = scaled scale 200 1_000;
    train_size = 20;
    validation_size = 50;
    trials = 5;
    non_attack_queries = scaled (Float.min 1.0 scale) 20 120;
    attack_repetitions = scaled (Float.min 1.0 scale) 3 15;
  }

let threshold ?(scale = 1.0) () =
  {
    train_size = scaled scale 200 10_000;
    spam_prevalence = 0.50;
    attack_fractions = [ 0.0; 0.001; 0.01; 0.05; 0.10 ];
    folds = scaled (Float.min 1.0 scale) 2 5;
    quantiles = [ 0.05; 0.10 ];
  }

let table1 ?(scale = 1.0) () =
  let d = dictionary ~scale () in
  let f = focused ~scale () in
  let r = roni ~scale () in
  let t = threshold ~scale () in
  let fractions fs = String.concat ", " (List.map string_of_float fs) in
  let header =
    [ "Parameter"; "Dictionary"; "Focused"; "RONI"; "Threshold" ]
  in
  let rows =
    [
      [ "Training set size"; string_of_int d.train_size;
        string_of_int f.inbox_size; string_of_int r.train_size;
        string_of_int t.train_size ];
      [ "Validation/test size"; "per fold"; "target email";
        string_of_int r.validation_size; "per fold" ];
      [ "Spam prevalence"; Table.f2 d.spam_prevalence;
        Table.f2 f.spam_prevalence; "0.50"; Table.f2 t.spam_prevalence ];
      [ "Attack fraction"; fractions d.attack_fractions;
        fractions f.fractions; "per-email"; fractions t.attack_fractions ];
      [ "Folds / repetitions"; string_of_int d.folds;
        Printf.sprintf "%d reps x %d targets" f.repetitions f.targets;
        Printf.sprintf "%d trials" r.trials; string_of_int t.folds ];
      [ "Target emails"; "n/a"; string_of_int f.targets; "n/a"; "n/a" ];
    ]
  in
  let note =
    if scale = 1.0 then "(paper scale)\n"
    else Printf.sprintf "(scale %.2f of the paper's Table 1)\n" scale
  in
  note ^ Table.render ~header ~rows
