(** Plain-text table rendering for experiment reports. *)

val render : header:string list -> rows:string list list -> string
(** Column widths fit the widest cell; header is separated by a rule.
    Rows shorter than the header are padded with empty cells.
    @raise Invalid_argument on an empty header. *)

val render_kv : (string * string) list -> string
(** Two-column key/value block. *)

val pct : float -> string
(** Format a [0,1] rate as a percentage with one decimal: [0.363] ->
    ["36.3"]. *)

val f2 : float -> string
(** Two-decimal float. *)
