let render ~header ~rows =
  if header = [] then invalid_arg "Table.render: empty header";
  let columns = List.length header in
  let pad row =
    let len = List.length row in
    if len >= columns then row
    else row @ List.init (columns - len) (fun _ -> "")
  in
  let rows = List.map pad rows in
  let widths = Array.make columns 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < columns then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let buffer = Buffer.create 1024 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buffer "  ";
        Buffer.add_string buffer cell;
        Buffer.add_string buffer
          (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buffer '\n'
  in
  emit header;
  let rule_width =
    Array.fold_left ( + ) 0 widths + (2 * (columns - 1))
  in
  Buffer.add_string buffer (String.make rule_width '-');
  Buffer.add_char buffer '\n';
  List.iter emit rows;
  Buffer.contents buffer

let render_kv pairs =
  let width =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs
  in
  String.concat ""
    (List.map
       (fun (k, v) ->
         Printf.sprintf "%s%s  %s\n" k
           (String.make (width - String.length k) ' ')
           v)
       pairs)

let pct r = Printf.sprintf "%.1f" (100.0 *. r)

let f2 = Printf.sprintf "%.2f"
