lib/eval/timeline_exp.mli: Lab
