lib/eval/roni_exp.mli: Lab Params
