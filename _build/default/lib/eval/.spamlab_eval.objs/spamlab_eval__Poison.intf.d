lib/eval/poison.mli: Confusion Spamlab_corpus Spamlab_spambayes Spamlab_tokenizer
