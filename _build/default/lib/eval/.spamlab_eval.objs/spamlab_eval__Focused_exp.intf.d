lib/eval/focused_exp.mli: Lab Params Spamlab_spambayes
