lib/eval/table.mli:
