lib/eval/registry.mli: Lab
