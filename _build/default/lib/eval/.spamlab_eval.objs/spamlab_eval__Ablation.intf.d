lib/eval/ablation.mli: Lab
