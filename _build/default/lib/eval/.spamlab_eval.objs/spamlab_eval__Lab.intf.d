lib/eval/lab.mli: Spamlab_corpus Spamlab_stats Spamlab_tokenizer
