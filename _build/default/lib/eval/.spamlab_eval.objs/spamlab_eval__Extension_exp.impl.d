lib/eval/extension_exp.ml: Array Confusion Lab List Poison Printf Rng Spamlab_core Spamlab_corpus Spamlab_email Spamlab_spambayes Spamlab_stats Spamlab_tokenizer Summary Table
