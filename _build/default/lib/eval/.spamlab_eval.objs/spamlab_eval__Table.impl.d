lib/eval/table.ml: Array Buffer List Printf String
