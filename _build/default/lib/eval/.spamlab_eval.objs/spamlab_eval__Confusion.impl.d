lib/eval/confusion.ml: Array Format Spamlab_spambayes
