lib/eval/poison.ml: Array Confusion Float Spamlab_corpus Spamlab_spambayes
