lib/eval/params.ml: Float List Printf Spamlab_corpus String Table
