lib/eval/threshold_exp.mli: Lab Params
