lib/eval/dictionary_exp.ml: Array Confusion Hashtbl Lab List Params Plot Poison Printf Spamlab_core Spamlab_corpus Spamlab_spambayes Spamlab_stats Table
