lib/eval/focused_exp.ml: Array Hashtbl Histogram Lab List Params Plot Poison Printf Spamlab_core Spamlab_corpus Spamlab_email Spamlab_spambayes Spamlab_stats String Summary Table
