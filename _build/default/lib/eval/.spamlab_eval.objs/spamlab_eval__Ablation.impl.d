lib/eval/ablation.ml: Array Confusion Lab List Plot Poison Printf Rng Spamlab_core Spamlab_corpus Spamlab_spambayes Spamlab_stats Table
