lib/eval/extension_exp.mli: Lab
