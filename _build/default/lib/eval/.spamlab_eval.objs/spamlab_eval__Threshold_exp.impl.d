lib/eval/threshold_exp.ml: Array Confusion Hashtbl Lab List Params Plot Poison Printf Spamlab_core Spamlab_corpus Spamlab_spambayes Table
