lib/eval/roni_exp.ml: Array Float Lab List Params Printf Spamlab_core Spamlab_corpus Spamlab_stats Spamlab_tokenizer Summary Table
