lib/eval/timeline_exp.ml: Array Lab List Plot Spamlab_core Spamlab_corpus Spamlab_spambayes Spamlab_stats Table
