lib/eval/lab.ml: Rng Spamlab_corpus Spamlab_stats Spamlab_tokenizer
