lib/eval/confusion.mli: Format Spamlab_spambayes
