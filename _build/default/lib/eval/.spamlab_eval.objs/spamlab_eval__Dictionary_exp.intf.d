lib/eval/dictionary_exp.mli: Lab Params
