lib/eval/params.mli:
