lib/eval/plot.mli:
