lib/eval/registry.ml: Ablation Dictionary_exp Extension_exp Focused_exp Lab List Params Roni_exp Spamlab_corpus Threshold_exp Timeline_exp
