(** Figure 5 — the dynamic threshold defense under dictionary attack
    (§5.2).

    For each attack fraction, the (poisoned) training set of every fold
    is split in half; a filter trained on one half scores the other, and
    thresholds are placed at the g-utility quantiles.  The final filter
    is trained on the whole poisoned set and evaluated on held-out test
    mail under (a) the default static thresholds and (b) each dynamic
    threshold variant. *)

type point = {
  fraction : float;
  ham_as_spam : float;  (** Percent. *)
  ham_misclassified : float;
  spam_as_unsure : float;  (** The defense's cost (paper: almost all
                               spam turns unsure). *)
  theta0 : float;  (** Mean derived θ0 over folds. *)
  theta1 : float;
}

type series = { defense : string; points : point list }

val run : Lab.t -> Params.threshold -> series list
(** First series is "no defense", then one per quantile (e.g.
    "threshold-.05", "threshold-.10").  The attack is the Usenet
    dictionary attack, as in the figure. *)

val render : series list -> string
