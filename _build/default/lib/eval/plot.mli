(** ASCII charts: enough to eyeball the shape of every figure in a
    terminal and in the committed bench output. *)

val line_chart :
  ?width:int ->
  ?height:int ->
  ?y_max:float ->
  x_label:string ->
  y_label:string ->
  (string * (float * float) list) list ->
  string
(** Multiple named series on one grid.  Each series is plotted with its
    own glyph (in series order: [*], [o], [+], [x], [#], [@]); the
    legend maps glyphs to names.  X and Y ranges fit the data ([y_max]
    forces the top of the y range, e.g. 100 for percentages). *)

val bar_chart :
  ?width:int ->
  title:string ->
  (string * float) list ->
  string
(** Horizontal bars scaled to the maximum value. *)

val stacked_bars :
  title:string ->
  segments:string list ->
  (string * float list) list ->
  string
(** For Figure 2: each row is a bar of percentage segments (must sum to
    ~100); rendered as a 50-character strip with one letter per segment
    plus a numeric breakdown. *)
