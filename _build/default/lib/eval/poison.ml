module Dataset = Spamlab_corpus.Dataset
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify

let attack_count ~train_size ~fraction =
  if fraction < 0.0 || fraction >= 1.0 then
    invalid_arg "Poison.attack_count: fraction must lie in [0,1)";
  int_of_float
    (Float.round (float_of_int train_size *. fraction /. (1.0 -. fraction)))

let base_filter tokenizer examples =
  let filter = Filter.create ~tokenizer () in
  Dataset.train_filter filter examples;
  filter

let poisoned filter ~payload ~count =
  let copy = Filter.copy filter in
  Filter.train_tokens_many copy Label.Spam payload count;
  copy

let score_examples filter examples =
  Array.map
    (fun (e : Dataset.example) ->
      ((Dataset.classify filter e).Classify.indicator, e.label))
    examples

let confusion_of_scores options scores =
  let confusion = Confusion.create () in
  Array.iter
    (fun (score, gold) ->
      Confusion.add confusion gold
        (Classify.verdict_of_indicator options score))
    scores;
  confusion
