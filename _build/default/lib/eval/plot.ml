let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let line_chart ?(width = 60) ?(height = 20) ?y_max ~x_label ~y_label series =
  let points = List.concat_map snd series in
  if points = [] then "(no data)\n"
  else begin
    let xs = List.map fst points in
    let ys = List.map snd points in
    let x_min = List.fold_left Float.min (List.hd xs) xs in
    let x_max = List.fold_left Float.max (List.hd xs) xs in
    let y_min = Float.min 0.0 (List.fold_left Float.min (List.hd ys) ys) in
    let y_top =
      match y_max with
      | Some m -> m
      | None -> List.fold_left Float.max (List.hd ys) ys
    in
    let y_top = if y_top <= y_min then y_min +. 1.0 else y_top in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let grid = Array.init height (fun _ -> Bytes.make width ' ') in
    let place glyph (x, y) =
      let col =
        int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
      in
      let row =
        int_of_float
          ((y -. y_min) /. (y_top -. y_min) *. float_of_int (height - 1))
      in
      let col = max 0 (min (width - 1) col) in
      let row = max 0 (min (height - 1) row) in
      (* Row 0 is the top of the grid. *)
      Bytes.set grid.(height - 1 - row) col glyph
    in
    List.iteri
      (fun i (_, pts) ->
        let glyph = glyphs.(i mod Array.length glyphs) in
        List.iter (place glyph) pts)
      series;
    let buffer = Buffer.create 2048 in
    Buffer.add_string buffer
      (Printf.sprintf "%s (y: %.1f .. %.1f)\n" y_label y_min y_top);
    Array.iteri
      (fun i row ->
        let edge_value =
          y_top
          -. (float_of_int i /. float_of_int (height - 1) *. (y_top -. y_min))
        in
        Buffer.add_string buffer (Printf.sprintf "%7.1f |%s|\n" edge_value (Bytes.to_string row)))
      grid;
    Buffer.add_string buffer
      (Printf.sprintf "        +%s+\n" (String.make width '-'));
    Buffer.add_string buffer
      (Printf.sprintf "         %s: %.2f .. %.2f\n" x_label x_min x_max);
    List.iteri
      (fun i (name, _) ->
        Buffer.add_string buffer
          (Printf.sprintf "         %c = %s\n"
             glyphs.(i mod Array.length glyphs)
             name))
      series;
    Buffer.contents buffer
  end

let bar_chart ?(width = 50) ~title entries =
  let peak =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-9 entries
  in
  let label_width =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 entries
  in
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (title ^ "\n");
  List.iter
    (fun (k, v) ->
      let bar = int_of_float (v /. peak *. float_of_int width) in
      Buffer.add_string buffer
        (Printf.sprintf "  %-*s |%-*s %.1f\n" label_width k width
           (String.make (max 0 bar) '#')
           v))
    entries;
  Buffer.contents buffer

let stacked_bars ~title ~segments rows =
  let strip_width = 50 in
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (title ^ "\n");
  let letters =
    List.mapi (fun i s -> (String.make 1 s.[0], i)) segments
  in
  List.iter
    (fun (label, values) ->
      let total = List.fold_left ( +. ) 0.0 values in
      let total = if total <= 0.0 then 1.0 else total in
      let cells =
        List.concat
          (List.map2
             (fun (letter, _) v ->
               let n =
                 int_of_float
                   (Float.round (v /. total *. float_of_int strip_width))
               in
               List.init n (fun _ -> letter))
             letters values)
      in
      let strip = String.concat "" cells in
      let strip =
        if String.length strip > strip_width then
          String.sub strip 0 strip_width
        else strip ^ String.make (strip_width - String.length strip) ' '
      in
      let breakdown =
        String.concat " "
          (List.map2
             (fun s v -> Printf.sprintf "%s=%.1f%%" s v)
             segments values)
      in
      Buffer.add_string buffer
        (Printf.sprintf "  %-10s |%s| %s\n" label strip breakdown))
    rows;
  Buffer.contents buffer
