(** Figures 2–4 — the focused attack (§4.3).

    Each repetition samples a fresh clean inbox and a set of target ham
    emails.  For every target, a focused attack is crafted (guessing
    each target word with probability p), trained into a copy of the
    inbox-trained filter, and the target is then classified. *)

type outcome = { ham_pct : float; unsure_pct : float; spam_pct : float }

val probability_sweep : Lab.t -> Params.focused -> (float * outcome) list
(** Figure 2: attack effectiveness vs. guess probability, at the fixed
    attack size [params.attack_count]. *)

val volume_sweep : Lab.t -> Params.focused -> (float * outcome) list
(** Figure 3: effectiveness vs. attack volume (fraction of the training
    set), at fixed p = [params.fixed_probability]. *)

type token_shift = {
  token : string;
  before : float;  (** f(w) prior to the attack. *)
  after : float;
  included : bool;  (** Whether the attacker guessed this token. *)
}

type shift_report = {
  target_verdict_before : Spamlab_spambayes.Label.verdict;
  target_verdict_after : Spamlab_spambayes.Label.verdict;
  indicator_before : float;
  indicator_after : float;
  shifts : token_shift list;
}

val token_shifts : Lab.t -> Params.focused -> shift_report list
(** Figure 4: per-token before/after scores for three representative
    targets — ideally one ending spam, one unsure, one ham (fewer if a
    class never occurs). *)

val render_probability_sweep : (float * outcome) list -> string
val render_volume_sweep : (float * outcome) list -> string
val render_token_shifts : shift_report list -> string
