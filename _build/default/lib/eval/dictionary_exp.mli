(** Figure 1 — dictionary attacks as a function of training-set control
    (§4.2) — plus the §4.2 token-volume statistic.

    Three variants (optimal, Usenet top-N, aspell) are injected at each
    attack fraction into every cross-validation fold; the output series
    report the percentage of test ham classified as spam, and as spam or
    unsure, averaged over folds. *)

type point = {
  fraction : float;
  attack_emails : int;  (** Count injected per fold. *)
  ham_as_spam : float;  (** Percent. *)
  ham_misclassified : float;  (** Ham as spam or unsure, percent. *)
  ham_misclassified_sd : float;
      (** Per-fold standard deviation of that rate — the error bars the
          paper omits "since variation was small" (§4.1). *)
  spam_as_ham : float;
  spam_as_unsure : float;
}

type series = { variant : string; points : point list }

type result = {
  series : series list;
  aspell_usenet_overlap : int;
  aspell_words : int;
  usenet_words : int;
}

val run : Lab.t -> Params.dictionary -> result
(** Deterministic given the lab's seed. *)

val token_volume : Lab.t -> Params.dictionary -> fraction:float -> string
(** The §4.2 accounting: attack-token mass relative to the clean
    corpus at the given attack fraction (the paper quotes ≈6.4× for
    Usenet and ≈7× for aspell at 2%). *)

val render : result -> string
(** Table plus ASCII chart in the shape of Figure 1. *)
