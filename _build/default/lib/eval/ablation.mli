(** Ablations of the design choices DESIGN.md calls out: how the
    learner's own knobs change its vulnerability.

    Each sweep trains on one corpus, injects the Usenet dictionary
    attack at 1% control, and reports clean accuracy next to
    under-attack ham damage for each setting. *)

type row = {
  setting : string;
  clean_ham_misclassified : float;  (** Percent, no attack. *)
  clean_spam_misclassified : float;
  attacked_ham_as_spam : float;  (** Percent, 1% Usenet attack. *)
  attacked_ham_misclassified : float;
}

val discriminator_sweep : Lab.t -> row list
(** |δ(E)| cap ∈ {10, 50, 150, 300}. *)

val band_sweep : Lab.t -> row list
(** Minimum |f−0.5| strength ∈ {0, 0.05, 0.1, 0.2}. *)

val smoothing_sweep : Lab.t -> row list
(** Robinson prior strength s ∈ {0.045, 0.45, 4.5, 45}. *)

val coverage_sweep : Lab.t -> (float * float * float) list
(** The §3.4 constrained-attacker interpolation: the attacker knows a
    random fraction c of the victim's ham vocabulary (filler pads the
    word list to constant size).  Returns (c, ham→spam %, ham
    misclassified %) at 1% control — dictionary → optimal as c → 1. *)

val render_rows : title:string -> row list -> string
val render_coverage : (float * float * float) list -> string
