(** Extension: the attack as a timeline.  The paper's setting retrains
    weekly (§2.1); this experiment simulates eight rounds of incoming
    mail with a dictionary-attack burst in rounds 3–4 and compares an
    undefended train-everything pipeline, a train-on-error pipeline
    (§2.2's mistake-driven retraining - the paper predicts it does not
    help), and a pipeline that RONI-screens everything it trains on. *)

type round_row = {
  round_index : int;
  attack_emails : int;  (** Injected this round. *)
  undefended_delivery : float;  (** Ham delivered as ham, percent. *)
  toe_delivery : float;  (** Under the train-on-error policy (§2.2). *)
  defended_delivery : float;  (** Under inline RONI screening. *)
  rejected : int;  (** Messages RONI kept out of training. *)
}

val run : Lab.t -> round_row list

val render : round_row list -> string
