(** Extensions beyond the paper's evaluation: the attack variants its
    discussion sections raise but do not measure.

    - {!pseudospam}: the ham-labeled Causative Integrity attack of §2.2
      ("using ham-labeled attack emails could enable more powerful
      attacks that place spam in a user's inbox");
    - {!good_word}: the Exploratory Integrity baseline of the related
      work (§6, Lowd–Meek / Wittel–Wu) for contrast with the Causative
      attacks;
    - {!roni_sweep}: the larger RONI parameter study §5.1 announces as
      future work. *)

type pseudospam_point = {
  attack_fraction : float;
  campaign_spam_as_ham : float;  (** Percent of the future campaign
                                     delivered to the inbox. *)
  campaign_spam_missed : float;  (** Ham or unsure, percent. *)
  other_spam_missed : float;  (** Collateral on unrelated spam. *)
  ham_damage : float;  (** Ham misclassified, percent (should stay 0). *)
}

val pseudospam : Lab.t -> pseudospam_point list
val render_pseudospam : pseudospam_point list -> string

type good_word_point = {
  words_budget : int;
  evasion_rate : float;  (** Percent of test spam reaching ham or unsure. *)
  as_ham_rate : float;  (** Percent reaching ham proper. *)
  mean_words_used : float;
}

val good_word : Lab.t -> good_word_point list
val render_good_word : good_word_point list -> string

type tokenizer_point = {
  tokenizer_name : string;
  clean_ham_misclassified : float;  (** Percent. *)
  clean_spam_misclassified : float;
  attacked_ham_as_spam : float;  (** 1% Usenet attack. *)
  attacked_ham_misclassified : float;
}

val tokenizer_comparison : Lab.t -> tokenizer_point list
(** The paper's conclusion (§7) predicts the attacks transfer to
    BogoFilter and SpamAssassin's Bayes component, whose learners match
    SpamBayes and differ only in tokenization (§1 fn. 1).  Same corpus,
    same attack, three tokenizers. *)

val render_tokenizer_comparison : tokenizer_point list -> string

type stealth_point = {
  chunk_size : int;  (** Words per attack email; the full list when equal
                         to the list size. *)
  attack_emails : int;  (** Messages sent (token budget held constant). *)
  email_size_percentile : float;
      (** Where one attack email's token count sits among corpus message
          sizes (100 = bigger than everything). *)
  flagged_by_size_filter : float;
      (** Percent of attack emails a p99-size screen would catch. *)
  roni_detection : float;
      (** Percent of sampled attack emails RONI still rejects. *)
  ham_misclassified : float;  (** Damage at the fixed token budget. *)
}

val stealth : Lab.t -> stealth_point list
(** The §2.2/§4.2 arms race: split the Usenet dictionary attack into
    ever smaller emails at a constant total token budget.  Splitting
    defeats naive size screening; the question is what it does to damage
    and to RONI. *)

val render_stealth : stealth_point list -> string

type budget_point = {
  budget : int;  (** Words per attack email. *)
  source : string;  (** Where the attacker's word list came from. *)
  ham_as_spam : float;  (** Percent, at 1% training-set control. *)
  ham_misclassified : float;
}

val information_value : Lab.t -> budget_point list
(** The §3.4 constrained-attack study: at equal word budgets, compare
    attacks built from perfect distributional knowledge
    ({!Spamlab_core.Informed_attack.of_language_model}), from
    frequencies estimated off 200 observed victim messages, from the
    Usenet ranking, and from the dictionary.  More accurate knowledge
    of p should dominate at every budget. *)

val render_information_value : budget_point list -> string

type roni_cell = {
  validation_size : int;
  threshold : float;
  detection_rate : float;  (** Percent of attack emails rejected. *)
  false_positive_rate : float;  (** Percent of benign spam rejected. *)
}

val roni_sweep : Lab.t -> roni_cell list
val render_roni_sweep : roni_cell list -> string
