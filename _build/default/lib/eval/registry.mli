(** Experiment registry: every table and figure of the paper, addressable
    by id, runnable at any scale.  The bench harness and the CLI both
    dispatch through this. *)

type experiment = {
  id : string;
  title : string;
  paper_claim : string;
      (** The headline number or shape the paper reports for this
          artifact. *)
  run : Lab.t -> string;
      (** Produces the full printed report. *)
}

val all : experiment list
(** In presentation order: table1, fig1, tokens, fig2, fig3, fig4,
    roni, fig5. *)

val find : string -> experiment option

val ids : string list

val run_all : Lab.t -> (string * string) list
(** [(id, report)] for every experiment. *)
