(** §5.1 — the RONI defense experiment.

    Measures the per-email training impact statistic for a population of
    ordinary (non-attack) spam messages and for several dictionary-attack
    variants, then reports the separation between the two populations
    and the detection/false-positive rates of the threshold rule. *)

type group = {
  name : string;
  queries : int;
  min_impact : float;
  mean_impact : float;
  max_impact : float;
  rejected : int;  (** Queries the defense would exclude. *)
}

type result = {
  threshold : float;
  non_attack : group;
  attacks : group list;
  separated : bool;
      (** True when every attack impact exceeds every non-attack
          impact — the paper's "clear region of separability". *)
}

val run : Lab.t -> Params.roni -> result

val render : result -> string
