(** Tunable parameters of the SpamBayes learner, with the defaults used
    by the paper (§2.3): Robinson prior x = 0.5 with strength s = 0.45,
    ham/spam thresholds θ0 = 0.15 and θ1 = 0.9, and Fisher combining over
    at most 150 tokens whose scores lie outside [0.4, 0.6]. *)

type t = {
  unknown_word_prob : float;  (** Robinson's prior x; default 0.5. *)
  unknown_word_strength : float;  (** Robinson's s; default 0.45. *)
  ham_cutoff : float;  (** θ0: scores ≤ this are ham; default 0.15. *)
  spam_cutoff : float;  (** θ1: scores > this are spam; default 0.9. *)
  max_discriminators : int;  (** |δ(E)| cap; default 150. *)
  minimum_prob_strength : float;
      (** Minimum |f(w) − 0.5| for a token to enter δ(E); default 0.1
          (the (0.4, 0.6) exclusion band). *)
}

val default : t

val validate : t -> (t, string) result
(** Checks 0 ≤ x ≤ 1, s > 0, 0 ≤ θ0 < θ1 ≤ 1, positive discriminator
    cap, 0 ≤ min strength ≤ 0.5. *)

val with_cutoffs : t -> ham:float -> spam:float -> t
(** Used by the dynamic-threshold defense to install data-driven
    thresholds.  @raise Invalid_argument if not 0 ≤ ham < spam ≤ 1. *)

val pp : Format.formatter -> t -> unit
