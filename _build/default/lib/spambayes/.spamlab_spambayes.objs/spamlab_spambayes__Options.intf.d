lib/spambayes/options.mli: Format
