lib/spambayes/filter.ml: Classify Fun List Options Result Score Spamlab_tokenizer Token_db
