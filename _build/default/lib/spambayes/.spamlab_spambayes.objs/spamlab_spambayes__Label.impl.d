lib/spambayes/label.ml: Format Printf
