lib/spambayes/filter.mli: Classify Label Options Spamlab_email Spamlab_tokenizer Token_db
