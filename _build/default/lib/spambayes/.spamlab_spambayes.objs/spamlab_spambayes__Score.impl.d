lib/spambayes/score.ml: Float Options Token_db
