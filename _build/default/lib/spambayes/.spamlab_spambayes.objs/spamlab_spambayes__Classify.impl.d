lib/spambayes/classify.ml: Array Fisher Float Label List Options Score Spamlab_stats String
