lib/spambayes/score.mli: Options Token_db
