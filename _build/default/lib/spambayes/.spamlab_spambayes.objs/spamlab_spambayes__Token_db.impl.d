lib/spambayes/token_db.ml: Array Hashtbl In_channel Label List Printf String
