lib/spambayes/token_db.mli: Label
