lib/spambayes/label.mli: Format
