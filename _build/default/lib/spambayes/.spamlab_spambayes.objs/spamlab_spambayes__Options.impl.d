lib/spambayes/options.ml: Format
