lib/spambayes/classify.mli: Label Options Token_db
