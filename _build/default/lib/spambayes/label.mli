(** Ground-truth labels and filter verdicts.

    SpamBayes is a three-way classifier: besides {e ham} and {e spam} it
    emits {e unsure} when the Fisher score falls between the two
    thresholds.  The paper's evaluation treats ham-as-unsure as nearly as
    costly as ham-as-spam (§2.1), so the two must be tracked
    separately. *)

type gold = Ham | Spam
(** Ground truth attached to corpus messages. *)

type verdict = Ham_v | Unsure_v | Spam_v
(** Filter output. *)

val gold_to_string : gold -> string
val verdict_to_string : verdict -> string
val gold_of_string : string -> (gold, string) result
val verdict_of_verdict_string : string -> (verdict, string) result
val equal_gold : gold -> gold -> bool
val equal_verdict : verdict -> verdict -> bool

val verdict_agrees : gold -> verdict -> bool
(** True when the verdict matches the gold label exactly (unsure never
    agrees). *)

val pp_gold : Format.formatter -> gold -> unit
val pp_verdict : Format.formatter -> verdict -> unit
