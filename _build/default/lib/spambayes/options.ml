type t = {
  unknown_word_prob : float;
  unknown_word_strength : float;
  ham_cutoff : float;
  spam_cutoff : float;
  max_discriminators : int;
  minimum_prob_strength : float;
}

let default =
  {
    unknown_word_prob = 0.5;
    unknown_word_strength = 0.45;
    ham_cutoff = 0.15;
    spam_cutoff = 0.9;
    max_discriminators = 150;
    minimum_prob_strength = 0.1;
  }

let validate t =
  if t.unknown_word_prob < 0.0 || t.unknown_word_prob > 1.0 then
    Error "unknown_word_prob must lie in [0,1]"
  else if t.unknown_word_strength <= 0.0 then
    Error "unknown_word_strength must be positive"
  else if not (0.0 <= t.ham_cutoff && t.ham_cutoff < t.spam_cutoff
               && t.spam_cutoff <= 1.0) then
    Error "cutoffs must satisfy 0 <= ham < spam <= 1"
  else if t.max_discriminators <= 0 then
    Error "max_discriminators must be positive"
  else if t.minimum_prob_strength < 0.0 || t.minimum_prob_strength > 0.5 then
    Error "minimum_prob_strength must lie in [0, 0.5]"
  else Ok t

let with_cutoffs t ~ham ~spam =
  match validate { t with ham_cutoff = ham; spam_cutoff = spam } with
  | Ok t -> t
  | Error e -> invalid_arg ("Options.with_cutoffs: " ^ e)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>x=%.3f s=%.3f theta0=%.3f theta1=%.3f max_disc=%d min_strength=%.3f@]"
    t.unknown_word_prob t.unknown_word_strength t.ham_cutoff t.spam_cutoff
    t.max_discriminators t.minimum_prob_strength
