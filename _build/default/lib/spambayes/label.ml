type gold = Ham | Spam
type verdict = Ham_v | Unsure_v | Spam_v

let gold_to_string = function Ham -> "ham" | Spam -> "spam"

let verdict_to_string = function
  | Ham_v -> "ham"
  | Unsure_v -> "unsure"
  | Spam_v -> "spam"

let gold_of_string = function
  | "ham" -> Ok Ham
  | "spam" -> Ok Spam
  | s -> Error (Printf.sprintf "unknown gold label %S" s)

let verdict_of_verdict_string = function
  | "ham" -> Ok Ham_v
  | "unsure" -> Ok Unsure_v
  | "spam" -> Ok Spam_v
  | s -> Error (Printf.sprintf "unknown verdict %S" s)

let equal_gold (a : gold) b = a = b
let equal_verdict (a : verdict) b = a = b

let verdict_agrees gold verdict =
  match (gold, verdict) with
  | Ham, Ham_v | Spam, Spam_v -> true
  | Ham, (Unsure_v | Spam_v) | Spam, (Ham_v | Unsure_v) -> false

let pp_gold fmt g = Format.pp_print_string fmt (gold_to_string g)
let pp_verdict fmt v = Format.pp_print_string fmt (verdict_to_string v)
