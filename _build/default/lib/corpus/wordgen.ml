let consonants = "bcdfghjklmnpqrstvwxyz" (* 21 *)
let vowels = "aeiou" (* 5 *)

(* Words are alternating consonant-vowel strings starting with a
   consonant: "bak", "bakelu", ...  Each length class is a positional
   (mixed-radix) encoding, hence injective; distinct lengths cannot
   collide.  Length classes from 3 to 8 characters. *)

let class_size length =
  (* Characters alternate c v c v ...; count combinations. *)
  let rec go i acc =
    if i >= length then acc
    else go (i + 1) (acc * if i mod 2 = 0 then 21 else 5)
  in
  go 0 1

let lengths = [ 3; 4; 5; 6; 7; 8 ]

let cumulative =
  (* (length, first_index, size) for each class. *)
  let _, table =
    List.fold_left
      (fun (start, acc) len ->
        let size = class_size len in
        (start + size, (len, start, size) :: acc))
      (0, []) lengths
  in
  List.rev table

let max_injective_index =
  List.fold_left (fun acc (_, _, size) -> acc + size) 0 cumulative

let word i =
  if i < 0 then invalid_arg "Wordgen.word: negative index";
  let i = i mod max_injective_index in
  let len, offset =
    let rec find = function
      | [] -> assert false
      | (len, start, size) :: rest ->
          if i < start + size then (len, i - start) else find rest
    in
    find cumulative
  in
  let bytes = Bytes.create len in
  (* Fill from the last position backwards, peeling radix digits. *)
  let rec fill pos remaining =
    if pos < 0 then ()
    else
      let alphabet = if pos mod 2 = 0 then consonants else vowels in
      let base = String.length alphabet in
      Bytes.set bytes pos alphabet.[remaining mod base];
      fill (pos - 1) (remaining / base)
  in
  fill (len - 1) offset;
  Bytes.to_string bytes

let words start count = Array.init count (fun i -> word (start + i))

let misspell rng w =
  let open Spamlab_stats in
  let n = String.length w in
  let double () =
    if n >= 12 then None
    else
      let i = Rng.int rng n in
      Some (String.sub w 0 (i + 1) ^ String.sub w i (n - i))
  in
  let drop () =
    if n <= 3 then None
    else
      let i = Rng.int rng n in
      Some (String.sub w 0 i ^ String.sub w (i + 1) (n - i - 1))
  in
  let transpose () =
    if n < 4 then None
    else
      let i = Rng.int rng (n - 1) in
      if w.[i] = w.[i + 1] then None
      else
        let b = Bytes.of_string w in
        Bytes.set b i w.[i + 1];
        Bytes.set b (i + 1) w.[i];
        Some (Bytes.to_string b)
  in
  let vowel_swap () =
    let positions =
      List.filter
        (fun i -> String.contains vowels w.[i])
        (List.init n (fun i -> i))
    in
    match positions with
    | [] -> None
    | ps ->
        let i = List.nth ps (Rng.int rng (List.length ps)) in
        let replacement =
          let c = vowels.[Rng.int rng (String.length vowels)] in
          if c = w.[i] then vowels.[(String.index vowels c + 1) mod 5] else c
        in
        let b = Bytes.of_string w in
        Bytes.set b i replacement;
        Some (Bytes.to_string b)
  in
  let ops = [| double; drop; transpose; vowel_swap |] in
  Rng.shuffle rng ops;
  let rec try_ops i =
    if i >= Array.length ops then w ^ "x" (* all ops degenerate; suffix *)
    else
      match ops.(i) () with
      | Some w' when w' <> w && String.length w' >= 3 -> w'
      | _ -> try_ops (i + 1)
  in
  try_ops 0
