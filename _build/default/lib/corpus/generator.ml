open Spamlab_stats
open Spamlab_email

type config = {
  vocabulary : Vocabulary.t;
  ham_model : Language_model.t;
  spam_model : Language_model.t;
  ham_people : Persons.person array;
  spam_people : Persons.person array;
  victim : Persons.person;
  spam_domains : string array;
  ham_body_mean : float;
  spam_body_mean : float;
}

let default_config ?sizes ?(ham_body_mean = 220.0) ?(spam_body_mean = 240.0)
    ~seed () =
  let vocabulary = Vocabulary.create ?sizes ~seed () in
  let root = Rng.create seed in
  let people_rng = Rng.split_named root "people" in
  let ham_domains = Persons.domains_for people_rng ~tld:"com" 120 in
  let spam_sender_domains = Persons.domains_for people_rng ~tld:"net" 150 in
  let spam_domains = Persons.domains_for people_rng ~tld:"biz" 40 in
  let ham_people = Persons.pool people_rng ~domains:ham_domains 1200 in
  let spam_people = Persons.pool people_rng ~domains:spam_sender_domains 900 in
  let victim = (Persons.pool people_rng ~domains:ham_domains 1).(0) in
  {
    vocabulary;
    ham_model = Language_model.ham vocabulary;
    spam_model = Language_model.spam vocabulary;
    ham_people;
    spam_people;
    victim;
    spam_domains;
    ham_body_mean;
    spam_body_mean;
  }

let body_of_words rng words =
  let buffer = Buffer.create 1024 in
  let sentence_left = ref (Rng.int_in rng 6 14) in
  let sentences_in_paragraph = ref (Rng.int_in rng 2 5) in
  let at_sentence_start = ref true in
  List.iter
    (fun w ->
      if !at_sentence_start then begin
        Buffer.add_string buffer (String.capitalize_ascii w);
        at_sentence_start := false
      end
      else begin
        Buffer.add_char buffer ' ';
        Buffer.add_string buffer w
      end;
      decr sentence_left;
      if !sentence_left <= 0 then begin
        Buffer.add_char buffer '.';
        at_sentence_start := true;
        sentence_left := Rng.int_in rng 6 14;
        decr sentences_in_paragraph;
        if !sentences_in_paragraph <= 0 then begin
          Buffer.add_string buffer "\n\n";
          sentences_in_paragraph := Rng.int_in rng 2 5
        end
        else Buffer.add_char buffer ' '
      end)
    words;
  (* Close the final sentence if it is dangling. *)
  if not !at_sentence_start then Buffer.add_char buffer '.';
  Buffer.contents buffer

(* Received trace: every inbound message ends at the victim's MX; the
   hops before it are the sender-side story — the sender's own relay
   for ham, a chain of shady relays and bare IPs for spam. *)
let received_line rng ~from_host ~by_host =
  Printf.sprintf "from %s ([%d.%d.%d.%d]) by %s; %s" from_host
    (Rng.int_in rng 1 223) (Rng.int rng 256) (Rng.int rng 256)
    (Rng.int_in rng 1 254) by_host (Persons.header_date rng)

let victim_mx config =
  "mx." ^ config.victim.Persons.address.Spamlab_email.Address.domain

let ham_received config rng ~sender =
  let sender_domain = sender.Persons.address.Spamlab_email.Address.domain in
  [
    ( "Received",
      received_line rng ~from_host:("mail." ^ sender_domain)
        ~by_host:(victim_mx config) );
  ]

let spam_received config rng =
  let hops = Rng.int_in rng 1 3 in
  let relay () =
    if Rng.bernoulli rng 0.5 then
      Printf.sprintf "dsl-%d-%d-%d.%s" (Rng.int rng 256) (Rng.int rng 256)
        (Rng.int rng 256)
        (Rng.choose rng config.spam_domains)
    else if Rng.bernoulli rng 0.5 then
      (* Compromised legitimate mail servers relay campaigns too, so the
         generic "mail." host prefix is not a ham giveaway. *)
      "mail." ^ Rng.choose rng config.spam_domains
    else Rng.choose rng config.spam_domains
  in
  let chain =
    List.init hops (fun i ->
        let by_host = if i = 0 then victim_mx config else relay () in
        ("Received", received_line rng ~from_host:(relay ()) ~by_host))
  in
  chain

let base_headers rng ~received ~sender ~recipient ~subject =
  let open Persons in
  Header.of_list
    (received
    @ [
        ("From", Spamlab_email.Address.to_string sender.address);
        ("To", Spamlab_email.Address.to_string recipient.address);
        ("Subject", subject);
        ("Date", Persons.header_date rng);
        ( "Message-Id",
          Persons.message_id rng
            ~domain:sender.address.Spamlab_email.Address.domain );
      ])

(* Real email lengths are heavy-tailed: many short notes, occasional
   long reports.  A shifted lognormal reproduces that; the spread
   matters — short messages are the ones a focused attack flips all the
   way to spam, long ones carry enough unpoisoned evidence to resist.
   The [mean] parameter positions the lognormal median at roughly
   0.55 × mean with sigma 0.85 (mean of the resulting distribution is
   close to the requested one). *)
let body_length rng ~mean =
  let minimum = 12 in
  let sigma = 0.85 in
  let median = Float.max 4.0 (0.55 *. mean) in
  let draw = Sampler.log_normal rng ~mu:(log median) ~sigma in
  minimum + int_of_float (Float.round draw)

let ham config rng =
  let sender = Rng.choose rng config.ham_people in
  let subject_words =
    Language_model.sample_words config.ham_model rng (Rng.int_in rng 2 6)
  in
  let subject =
    let s = String.concat " " subject_words in
    if Rng.bernoulli rng 0.35 then "Re: " ^ s else s
  in
  let length = body_length rng ~mean:config.ham_body_mean in
  let words = Language_model.sample_words config.ham_model rng length in
  let body =
    let prose = body_of_words rng words in
    let signature =
      if Rng.bernoulli rng 0.6 then
        "\n\n" ^ sender.Persons.display_name ^ "\n"
      else ""
    in
    prose ^ signature
  in
  let headers =
    base_headers rng
      ~received:(ham_received config rng ~sender)
      ~sender ~recipient:config.victim ~subject
  in
  (* A minority of legitimate mail is HTML too (newsletters, rich
     clients); none of it plays transfer-encoding games. *)
  if Rng.bernoulli rng 0.08 then
    Mime.make_html ~headers
      (Printf.sprintf "<html><body><p>%s</p></body></html>" body)
  else Message.make ~headers body

let spam_url config rng =
  let host = Rng.choose rng config.spam_domains in
  let path = Language_model.sample_word config.spam_model rng in
  Printf.sprintf "http://%s/%s" host path

(* Campaign mail is frequently HTML: paragraphs wrapped in markup, the
   payload URL hidden in an anchor, a tracking pixel, shouting fonts. *)
let htmlify config rng ~prose ~url =
  let paragraphs =
    String.split_on_char '\n' prose
    |> List.filter (fun line -> String.trim line <> "")
    |> List.map (fun line -> "<p>" ^ line ^ "</p>")
  in
  let link =
    match url with
    | None -> ""
    | Some u ->
        Printf.sprintf "<p><a href=\"%s\">%s %s</a></p>" u
          (Language_model.sample_word config.spam_model rng)
          (Language_model.sample_word config.spam_model rng)
  in
  let pixel =
    if Rng.bernoulli rng 0.5 then
      Printf.sprintf "<img src=\"%s\" width=\"1\" height=\"1\">"
        (spam_url config rng)
    else ""
  in
  Printf.sprintf "<html><body><font size=\"%d\">%s%s%s</font></body></html>"
    (Rng.int_in rng 1 5)
    (String.concat "\n" paragraphs)
    link pixel

let spam config rng =
  let sender = Rng.choose rng config.spam_people in
  let subject_words =
    Language_model.sample_words config.spam_model rng (Rng.int_in rng 3 8)
  in
  let subject =
    let s = String.concat " " subject_words in
    if Rng.bernoulli rng 0.3 then String.uppercase_ascii s
    else if Rng.bernoulli rng 0.3 then s ^ "!!!"
    else s
  in
  let length = body_length rng ~mean:config.spam_body_mean in
  let words = Language_model.sample_words config.spam_model rng length in
  let prose = body_of_words rng words in
  let url =
    if Rng.bernoulli rng 0.8 then Some (spam_url config rng) else None
  in
  let headers =
    base_headers rng
      ~received:(spam_received config rng)
      ~sender ~recipient:config.victim ~subject
  in
  let message =
    if Rng.bernoulli rng 0.35 then
      Mime.make_html ~headers (htmlify config rng ~prose ~url)
    else
      let body =
        match url with None -> prose | Some u -> prose ^ "\n\n" ^ u ^ "\n"
      in
      Message.make ~headers body
  in
  (* Classic obfuscation: some campaigns ship base64- or QP-encoded. *)
  if Rng.bernoulli rng 0.10 then Mime.with_base64_transfer message
  else if Rng.bernoulli rng 0.05 then
    Mime.with_quoted_printable_transfer message
  else message
