open Spamlab_stats

type sizes = {
  shared : int;
  ham_specific : int;
  spam_specific : int;
  colloquial : int;
  rare_standard : int;
  rare_nonstandard : int;
}

let default_sizes =
  {
    shared = 8000;
    ham_specific = 6000;
    spam_specific = 4000;
    colloquial = 3000;
    rare_standard = 60_000;
    rare_nonstandard = 180_000;
  }

type t = {
  shared : string array;
  ham_specific : string array;
  spam_specific : string array;
  colloquial : string array;
  rare_standard : string array;
  rare_nonstandard : string array;
  filler_start : int;
}

let create ?(sizes = default_sizes) ~seed () =
  if sizes.shared <= 0 then
    invalid_arg "Vocabulary.create: shared size must be positive";
  if
    sizes.ham_specific < 0 || sizes.spam_specific < 0 || sizes.colloquial < 0
    || sizes.rare_standard < 0 || sizes.rare_nonstandard < 0
  then invalid_arg "Vocabulary.create: negative category size";
  let shared = Wordgen.words 0 sizes.shared in
  let ham_specific = Wordgen.words sizes.shared sizes.ham_specific in
  let spam_specific =
    Wordgen.words (sizes.shared + sizes.ham_specific) sizes.spam_specific
  in
  let standard_end = sizes.shared + sizes.ham_specific + sizes.spam_specific in
  let rare_standard = Wordgen.words standard_end sizes.rare_standard in
  let rare_nonstandard =
    Wordgen.words (standard_end + sizes.rare_standard) sizes.rare_nonstandard
  in
  (* Colloquial: half fresh slang words (from their own index range, so
     they are never dictionary words), half misspellings of common shared
     words.  Membership is deduplicated against everything above. *)
  let slang_count = sizes.colloquial / 2 in
  let slang_start = standard_end + sizes.rare_standard + sizes.rare_nonstandard in
  let slang = Wordgen.words slang_start slang_count in
  let filler_start = slang_start + slang_count in
  let rng = Rng.split_named (Rng.create seed) "vocabulary-misspellings" in
  let seen = Hashtbl.create (4 * (sizes.colloquial + 1)) in
  Array.iter (fun w -> Hashtbl.replace seen w ()) shared;
  Array.iter (fun w -> Hashtbl.replace seen w ()) ham_specific;
  Array.iter (fun w -> Hashtbl.replace seen w ()) spam_specific;
  Array.iter (fun w -> Hashtbl.replace seen w ()) rare_standard;
  Array.iter (fun w -> Hashtbl.replace seen w ()) rare_nonstandard;
  Array.iter (fun w -> Hashtbl.replace seen w ()) slang;
  let misspellings = ref [] in
  let needed = sizes.colloquial - slang_count in
  let count = ref 0 in
  while !count < needed do
    (* Misspell frequent (low-rank) shared words: those are the ones a
       Usenet corpus actually contains corrupted forms of. *)
    let source = shared.(Rng.int rng (min 2000 (Array.length shared))) in
    let candidate = Wordgen.misspell rng source in
    if not (Hashtbl.mem seen candidate) then begin
      Hashtbl.replace seen candidate ();
      misspellings := candidate :: !misspellings;
      incr count
    end
  done;
  let colloquial =
    Array.append slang (Array.of_list (List.rev !misspellings))
  in
  {
    shared;
    ham_specific;
    spam_specific;
    colloquial;
    rare_standard;
    rare_nonstandard;
    filler_start;
  }

let standard_words t =
  Array.concat [ t.shared; t.ham_specific; t.spam_specific ]

let all_words t =
  Array.concat
    [
      t.shared; t.ham_specific; t.spam_specific; t.colloquial;
      t.rare_standard; t.rare_nonstandard;
    ]

let mem_of arrays =
  let table = Hashtbl.create 1024 in
  List.iter (Array.iter (fun w -> Hashtbl.replace table w ())) arrays;
  table

let mem_standard t =
  let table =
    mem_of [ t.shared; t.ham_specific; t.spam_specific; t.rare_standard ]
  in
  fun w -> Hashtbl.mem table w

let mem_colloquial t =
  let table = mem_of [ t.colloquial ] in
  fun w -> Hashtbl.mem table w

let total t =
  Array.length t.shared + Array.length t.ham_specific
  + Array.length t.spam_specific + Array.length t.colloquial
  + Array.length t.rare_standard + Array.length t.rare_nonstandard
