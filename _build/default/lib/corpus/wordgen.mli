(** Deterministic synthetic word generator.

    The laboratory cannot ship the aspell dictionary or the Enron
    vocabulary, so it builds its own: pronounceable English-like words
    indexed by a single integer.  [word i] is a pure function — word
    lists (dictionary, Usenet ranking, class vocabularies) are defined as
    index ranges and never need to be stored or shipped.

    Words are built from onset–vowel–coda syllables in a mixed-radix
    encoding, 2–3 syllables long, and always land inside the SpamBayes
    token length band (3–12 characters), so every generated word survives
    tokenization unchanged. *)

val word : int -> string
(** [word i] for [i >= 0]; injective over at least [0, 10^8).
    @raise Invalid_argument on negative input. *)

val words : int -> int -> string array
(** [words start count] = [| word start; ...; word (start+count-1) |]. *)

val misspell : Spamlab_stats.Rng.t -> string -> string
(** A plausible corruption — doubled letter, dropped letter, adjacent
    transposition, or vowel swap — of a word.  Never returns the input
    itself; always length ≥ 3. *)

val max_injective_index : int
(** Indices below this are guaranteed distinct. *)
