(** The Usenet word source (§3.2, §4.2): a frequency-ranked word list
    whose distribution is closer to the victim's email than a dictionary
    is — it contains the colloquialisms and misspellings an aspell-style
    dictionary misses, while sharing roughly 61,000 words with it (the
    overlap the paper reports).

    Rank order models simulated Usenet frequency: shared vocabulary
    first, then colloquial, then ham- and spam-specific vocabulary, then
    the {e head} of the standard rare tail (half) followed by the head
    of the nonstandard tail (a ninth) — a frequency-ranked corpus
    only partially covers long tails — then dictionary filler, then
    Usenet-only junk present in neither the dictionary nor any email. *)

val default_total : int
(** 90,000 — the paper's "top ranked words from the Usenet corpus". *)

val default_dictionary_overlap : int
(** 61,000 — the approximate aspell/Usenet overlap reported in §4.2. *)

val ranked :
  ?total:int -> ?dictionary_overlap:int -> Vocabulary.t -> string array
(** The full ranked list, truncated to [total] if the components exceed
    it.  @raise Invalid_argument if [total <= 0]. *)

val top : string array -> int -> string array
(** [top ranked n] is the [n] highest-ranked words (clamped to the list
    length). *)
