let default_total = 90_000
let default_dictionary_overlap = 61_000

(* Junk words come from an index range far above any dictionary filler
   so they are guaranteed absent from the aspell list. *)
let junk_offset = 2_000_000

let half arr = Array.sub arr 0 (Array.length arr / 2)
let ninth arr = Array.sub arr 0 (Array.length arr / 9)

let ranked ?(total = default_total)
    ?(dictionary_overlap = default_dictionary_overlap) (v : Vocabulary.t) =
  if total <= 0 then invalid_arg "Usenet.ranked: total must be positive";
  let covered_rare_standard = half v.Vocabulary.rare_standard in
  let vocab_part =
    Array.concat
      [
        v.Vocabulary.shared;
        v.Vocabulary.colloquial;
        v.Vocabulary.ham_specific;
        v.Vocabulary.spam_specific;
        covered_rare_standard;
        ninth v.Vocabulary.rare_nonstandard;
      ]
  in
  if total <= Array.length vocab_part then Array.sub vocab_part 0 total
  else begin
    let remaining = total - Array.length vocab_part in
    (* Words shared with the dictionary beyond the email vocabulary:
       aspell filler, counted toward the overlap target. *)
    let in_dictionary_already =
      Array.length (Vocabulary.standard_words v)
      + Array.length covered_rare_standard
    in
    let dictionary_filler =
      min remaining (max 0 (dictionary_overlap - in_dictionary_already))
    in
    let junk = remaining - dictionary_filler in
    Array.concat
      [
        vocab_part;
        Wordgen.words v.Vocabulary.filler_start dictionary_filler;
        Wordgen.words (v.Vocabulary.filler_start + junk_offset) junk;
      ]
  end

let top ranked n = Array.sub ranked 0 (min n (Array.length ranked))
