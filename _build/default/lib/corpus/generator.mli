(** Email generators: the TREC-2005 stand-in.

    Ham messages imitate the Enron side of the corpus — business email
    between a fixed pool of correspondents, drawn from the ham language
    model.  Spam messages imitate campaign mail: spam-model prose,
    shouting subjects, and cracked-URL payloads.  Both carry full
    headers (From/To/Subject/Date/Message-Id) so header tokens behave as
    in the real filter. *)

type config = {
  vocabulary : Vocabulary.t;
  ham_model : Language_model.t;
  spam_model : Language_model.t;
  ham_people : Persons.person array;
  spam_people : Persons.person array;
  victim : Persons.person;  (** Recipient of everything. *)
  spam_domains : string array;  (** URL hosts for spam payloads. *)
  ham_body_mean : float;  (** Mean body length in words (geometric, heavy-tailed). *)
  spam_body_mean : float;
}

val default_config :
  ?sizes:Vocabulary.sizes ->
  ?ham_body_mean:float ->
  ?spam_body_mean:float ->
  seed:int ->
  unit ->
  config
(** Deterministic in [seed]: vocabulary, models, 1200 ham correspondents,
    900 spam senders, 40 spam domains.  Defaults: ham mean 220 words,
    spam mean 240. *)

val ham : config -> Spamlab_stats.Rng.t -> Spamlab_email.Message.t
val spam : config -> Spamlab_stats.Rng.t -> Spamlab_email.Message.t

val body_of_words :
  Spamlab_stats.Rng.t -> string list -> string
(** Lay words out as sentences and paragraphs (used by attack-email
    construction too, so attack bodies are superficially unremarkable
    prose). *)
