lib/corpus/trec.mli: Generator Spamlab_email Spamlab_spambayes Spamlab_stats
