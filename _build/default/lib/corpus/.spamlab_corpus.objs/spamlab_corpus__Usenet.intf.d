lib/corpus/usenet.mli: Vocabulary
