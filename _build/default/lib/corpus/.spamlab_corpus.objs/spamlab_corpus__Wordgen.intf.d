lib/corpus/wordgen.mli: Spamlab_stats
