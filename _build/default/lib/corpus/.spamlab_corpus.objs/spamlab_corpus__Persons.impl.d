lib/corpus/persons.ml: Array Hashtbl Printf Rng Spamlab_email Spamlab_stats String Wordgen
