lib/corpus/corpus_stats.ml: Array Buffer Hashtbl List Printf Spamlab_spambayes Spamlab_stats Spamlab_tokenizer
