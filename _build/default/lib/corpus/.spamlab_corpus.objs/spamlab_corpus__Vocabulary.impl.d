lib/corpus/vocabulary.ml: Array Hashtbl List Rng Spamlab_stats Wordgen
