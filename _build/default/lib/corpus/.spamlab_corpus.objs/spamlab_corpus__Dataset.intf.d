lib/corpus/dataset.mli: Spamlab_email Spamlab_spambayes Spamlab_stats Spamlab_tokenizer Trec
