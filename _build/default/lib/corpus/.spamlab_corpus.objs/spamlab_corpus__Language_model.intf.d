lib/corpus/language_model.mli: Spamlab_stats Vocabulary
