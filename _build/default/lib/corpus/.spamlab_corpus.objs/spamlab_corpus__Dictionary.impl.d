lib/corpus/dictionary.ml: Array Hashtbl Vocabulary Wordgen
