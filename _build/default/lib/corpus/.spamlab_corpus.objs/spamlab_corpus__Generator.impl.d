lib/corpus/generator.ml: Array Buffer Float Header Language_model List Message Mime Persons Printf Rng Sampler Spamlab_email Spamlab_stats String Vocabulary
