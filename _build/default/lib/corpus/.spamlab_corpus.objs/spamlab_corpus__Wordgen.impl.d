lib/corpus/wordgen.ml: Array Bytes List Rng Spamlab_stats String
