lib/corpus/corpus_stats.mli: Spamlab_tokenizer Trec
