lib/corpus/usenet.ml: Array Vocabulary Wordgen
