lib/corpus/dictionary.mli: Vocabulary
