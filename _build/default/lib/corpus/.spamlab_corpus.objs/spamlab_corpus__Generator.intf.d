lib/corpus/generator.mli: Language_model Persons Spamlab_email Spamlab_stats Vocabulary
