lib/corpus/persons.mli: Spamlab_email Spamlab_stats
