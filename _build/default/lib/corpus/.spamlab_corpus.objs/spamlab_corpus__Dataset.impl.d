lib/corpus/dataset.ml: Array List Spamlab_spambayes Spamlab_stats Spamlab_tokenizer
