lib/corpus/language_model.ml: Array Hashtbl List Option Sampler Spamlab_stats String Vocabulary
