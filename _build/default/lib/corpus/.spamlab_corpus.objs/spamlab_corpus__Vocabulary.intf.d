lib/corpus/vocabulary.mli:
