lib/corpus/trec.ml: Array Float Generator List Rng Spamlab_email Spamlab_spambayes Spamlab_stats
