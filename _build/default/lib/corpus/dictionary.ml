let aspell_size = 98_568

(* The dictionary lists common standard words first, then the standard
   rare tail, then filler mass the victim never uses.  Sizes below the
   full standard vocabulary produce a truncated "pocket dictionary"
   (used by scaled-down experiments and by the RONI attack variants). *)
let aspell ?(size = aspell_size) (v : Vocabulary.t) =
  if size <= 0 then invalid_arg "Dictionary.aspell: size must be positive";
  let standard =
    Array.append (Vocabulary.standard_words v) v.Vocabulary.rare_standard
  in
  let n_standard = Array.length standard in
  if size <= n_standard then Array.sub standard 0 size
  else
    Array.append standard
      (Wordgen.words v.Vocabulary.filler_start (size - n_standard))

let contains words =
  let table = Hashtbl.create (2 * Array.length words) in
  Array.iter (fun w -> Hashtbl.replace table w ()) words;
  fun w -> Hashtbl.mem table w

let overlap_count a b =
  let mem = contains a in
  Array.fold_left (fun acc w -> if mem w then acc + 1 else acc) 0 b
