(** Attacker word sources (§3.2).

    [aspell] models the GNU aspell English dictionary used by the basic
    dictionary attack: it contains every {e standard} vocabulary word —
    so it covers most of what the victim's ham contains — plus a large
    mass of filler words the victim never uses, and it {e misses} the
    colloquial words (slang, misspellings) that real email contains.

    The paper's dictionary has 98,568 words; that is the default
    size. *)

val aspell_size : int
(** 98,568. *)

val aspell : ?size:int -> Vocabulary.t -> string array
(** Common standard vocabulary, then the standard rare tail, then
    deterministic filler — truncated or extended to [size] words.  The
    colloquial and nonstandard-rare categories are never included (a
    dictionary doesn't know slang or the victim's project jargon).
    @raise Invalid_argument if [size <= 0]. *)

val contains : string array -> string -> bool
(** Membership test; builds a hash set on first partial application:
    [let mem = contains words in ... mem w]. *)

val overlap_count : string array -> string array -> int
(** Number of words the two lists share (for the Usenet/aspell overlap
    statistic reported in §4.2). *)
