open Spamlab_stats

type person = { display_name : string; address : Spamlab_email.Address.t }

(* Name words come from a dedicated index range far above vocabulary and
   filler ranges so names never collide with content words. *)
let name_word rng =
  String.capitalize_ascii (Wordgen.word (80_000_000 + Rng.int rng 1_000_000))

let domains_for rng ~tld n =
  Array.init n (fun _ ->
      Wordgen.word (90_000_000 + Rng.int rng 1_000_000) ^ "." ^ tld)

let pool rng ~domains n =
  if n < 0 then invalid_arg "Persons.pool: negative size";
  if Array.length domains = 0 then invalid_arg "Persons.pool: no domains";
  let seen = Hashtbl.create (2 * n) in
  let fresh_local first last =
    let base = String.lowercase_ascii first ^ "." ^ String.lowercase_ascii last in
    if Hashtbl.mem seen base then
      base ^ string_of_int (Rng.int rng 1000)
    else base
  in
  Array.init n (fun _ ->
      let first = name_word rng in
      let last = name_word rng in
      let local = fresh_local first last in
      Hashtbl.replace seen local ();
      let domain = Rng.choose rng domains in
      {
        display_name = first ^ " " ^ last;
        address =
          Spamlab_email.Address.make
            ~display_name:(first ^ " " ^ last)
            ~local ~domain ();
      })

let months =
  [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun"; "Jul"; "Aug"; "Sep"; "Oct";
     "Nov"; "Dec" |]

let days = [| "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat"; "Sun" |]

let header_date rng =
  Printf.sprintf "%s, %d %s 2005 %02d:%02d:%02d -0%d00"
    (Rng.choose rng days)
    (Rng.int_in rng 1 28)
    (Rng.choose rng months)
    (Rng.int rng 24) (Rng.int rng 60) (Rng.int rng 60)
    (Rng.int_in rng 4 8)

let message_id rng ~domain =
  Printf.sprintf "<%d.%s@%s>" (Rng.int rng 1_000_000_000)
    (Wordgen.word (Rng.int rng 100_000))
    domain
