open Spamlab_stats
module Label = Spamlab_spambayes.Label

type labeled = Label.gold * Spamlab_email.Message.t

let generate config rng ~size ~spam_fraction =
  if size < 0 then invalid_arg "Trec.generate: negative size";
  if spam_fraction < 0.0 || spam_fraction > 1.0 then
    invalid_arg "Trec.generate: spam_fraction outside [0,1]";
  let nspam =
    int_of_float (Float.round (float_of_int size *. spam_fraction))
  in
  let messages =
    Array.init size (fun i ->
        if i < nspam then (Label.Spam, Generator.spam config rng)
        else (Label.Ham, Generator.ham config rng))
  in
  Rng.shuffle rng messages;
  messages

let ham_only corpus =
  Array.of_list
    (List.filter_map
       (fun (label, msg) -> if label = Label.Ham then Some msg else None)
       (Array.to_list corpus))

let spam_only corpus =
  Array.of_list
    (List.filter_map
       (fun (label, msg) -> if label = Label.Spam then Some msg else None)
       (Array.to_list corpus))

let counts corpus =
  Array.fold_left
    (fun (ham, spam) (label, _) ->
      match label with
      | Label.Ham -> (ham + 1, spam)
      | Label.Spam -> (ham, spam + 1))
    (0, 0) corpus

let to_mbox_files ~ham_path ~spam_path corpus =
  Spamlab_email.Mbox.write_file ham_path
    (Array.to_list (ham_only corpus));
  Spamlab_email.Mbox.write_file spam_path
    (Array.to_list (spam_only corpus))

let of_mbox_files ~ham_path ~spam_path =
  match
    ( Spamlab_email.Mbox.read_file ham_path,
      Spamlab_email.Mbox.read_file spam_path )
  with
  | Ok hams, Ok spams ->
      Ok
        (Array.append
           (Array.of_list (List.map (fun m -> (Label.Ham, m)) hams))
           (Array.of_list (List.map (fun m -> (Label.Spam, m)) spams)))
  | Error e, _ -> Error ("ham mbox: " ^ e)
  | _, Error e -> Error ("spam mbox: " ^ e)
