(** Per-class unigram language models: a mixture of Zipf-distributed
    draws over vocabulary categories.

    Natural-language unigram frequencies are approximately Zipfian; what
    the attacks exploit is the resulting long tail — every real message
    contains rare tokens, and rare tokens are exactly the strong
    discriminators a poisoned training set flips.  Head categories
    (shared, class-specific, colloquial) use a steep exponent (1.1, the
    classic natural-language fit); the rare tail uses a flat one (0.45)
    so its mass spreads over many seldom-seen words. *)

type t

type component = {
  words : string array;  (** Frequency-ranked: index 0 most frequent. *)
  weight : float;  (** Mixture weight (normalized internally). *)
  zipf_exponent : float;  (** Within-component rank decay. *)
}

val make : component list -> t
(** @raise Invalid_argument on an empty list, an empty component, or a
    non-positive weight/exponent. *)

val ham : Vocabulary.t -> t
(** shared 40% + ham-specific 10% + colloquial 7% + rare tail 43%. *)

val spam : Vocabulary.t -> t
(** shared 40% + spam-specific 22% + colloquial 2% + rare tail 38%.
    Colloquial is strongly ham-skewed: people type slang and typos,
    campaign templates mostly don't — the property that lets the Usenet
    attack beat the dictionary attack (§4.2). *)

val sample_word : t -> Spamlab_stats.Rng.t -> string

val sample_words : t -> Spamlab_stats.Rng.t -> int -> string list

val support : t -> string array
(** Distinct words the model can emit, deduplicated and sorted.  The
    support of the ham model is precisely the paper's "optimal attack"
    word source (§3.4: include every word the victim's future mail may
    contain). *)

val word_prob : t -> string -> float
(** Marginal probability of emitting the word on one draw; 0.0 if
    outside the support.  O(1) after the first call. *)
