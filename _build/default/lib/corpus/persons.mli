(** Synthetic correspondents: display names and addresses for generated
    mail.  A fixed pool per corpus means sender tokens recur across
    messages — exactly like a real inbox, where sender features are
    informative and survive body-level poisoning. *)

type person = { display_name : string; address : Spamlab_email.Address.t }

val pool :
  Spamlab_stats.Rng.t -> domains:string array -> int -> person array
(** [pool rng ~domains n] makes [n] distinct people across the given
    domains.  @raise Invalid_argument if [n < 0] or [domains] is
    empty. *)

val domains_for : Spamlab_stats.Rng.t -> tld:string -> int -> string array
(** [domains_for rng ~tld n] makes [n] synthetic domains like
    ["kanube.com"]. *)

val header_date : Spamlab_stats.Rng.t -> string
(** A plausible RFC 2822 date string in 2005 (the TREC vintage). *)

val message_id : Spamlab_stats.Rng.t -> domain:string -> string
