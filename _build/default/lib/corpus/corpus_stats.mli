(** Descriptive statistics of a generated corpus — the evidence that the
    TREC-2005 stand-in has the distributional properties the paper's
    attacks exploit.

    The quantities reported are exactly the ones DESIGN.md claims the
    generator preserves:

    - heavy-tailed message lengths (median well below mean);
    - sub-linear vocabulary growth (Heaps' law): distinct tokens keep
      appearing throughout the corpus, so every message carries rare
      tokens;
    - a long singleton tail in the token frequency spectrum — the
      strong discriminators that poisoning flips;
    - partial ham/spam vocabulary overlap — the reason a one-class word
      source (a dictionary) can reach the other class's mail. *)

type t = {
  messages : int;
  ham : int;
  spam : int;
  raw_tokens : int;  (** Total token instances. *)
  distinct_tokens : int;
  mean_tokens_per_message : float;
  median_tokens_per_message : float;
  p95_tokens_per_message : float;
  singleton_fraction : float;
      (** Fraction of distinct tokens appearing in exactly one
          message. *)
  rare_fraction : float;  (** Appearing in at most three messages. *)
  ham_vocabulary : int;
  spam_vocabulary : int;
  shared_vocabulary : int;  (** Distinct tokens seen in both classes. *)
  heaps_curve : (int * int) list;
      (** (messages processed, distinct tokens so far) at ten
          checkpoints. *)
}

val measure :
  Spamlab_tokenizer.Tokenizer.t -> Trec.labeled array -> t
(** Single pass over the corpus.  @raise Invalid_argument on an empty
    corpus. *)

val render : t -> string
