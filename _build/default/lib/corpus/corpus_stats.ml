module Label = Spamlab_spambayes.Label
module Tokenizer = Spamlab_tokenizer.Tokenizer

type t = {
  messages : int;
  ham : int;
  spam : int;
  raw_tokens : int;
  distinct_tokens : int;
  mean_tokens_per_message : float;
  median_tokens_per_message : float;
  p95_tokens_per_message : float;
  singleton_fraction : float;
  rare_fraction : float;
  ham_vocabulary : int;
  spam_vocabulary : int;
  shared_vocabulary : int;
  heaps_curve : (int * int) list;
}

type token_info = {
  mutable documents : int;
  mutable in_ham : bool;
  mutable in_spam : bool;
}

let measure tokenizer corpus =
  let n = Array.length corpus in
  if n = 0 then invalid_arg "Corpus_stats.measure: empty corpus";
  let table : (string, token_info) Hashtbl.t = Hashtbl.create 65536 in
  let raw_tokens = ref 0 in
  let ham = ref 0 in
  let spam = ref 0 in
  let lengths = Array.make n 0.0 in
  let checkpoint_every = max 1 (n / 10) in
  let heaps = ref [] in
  Array.iteri
    (fun i (label, msg) ->
      (match label with
      | Label.Ham -> incr ham
      | Label.Spam -> incr spam);
      let stream = Tokenizer.tokenize tokenizer msg in
      raw_tokens := !raw_tokens + List.length stream;
      let uniques = Tokenizer.unique_of_list stream in
      lengths.(i) <- float_of_int (List.length stream);
      Array.iter
        (fun token ->
          let info =
            match Hashtbl.find_opt table token with
            | Some info -> info
            | None ->
                let info = { documents = 0; in_ham = false; in_spam = false } in
                Hashtbl.replace table token info;
                info
          in
          info.documents <- info.documents + 1;
          match label with
          | Label.Ham -> info.in_ham <- true
          | Label.Spam -> info.in_spam <- true)
        uniques;
      if (i + 1) mod checkpoint_every = 0 || i + 1 = n then
        heaps := (i + 1, Hashtbl.length table) :: !heaps)
    corpus;
  let distinct = Hashtbl.length table in
  let singletons = ref 0 in
  let rare = ref 0 in
  let ham_vocab = ref 0 in
  let spam_vocab = ref 0 in
  let shared = ref 0 in
  Hashtbl.iter
    (fun _ info ->
      if info.documents = 1 then incr singletons;
      if info.documents <= 3 then incr rare;
      if info.in_ham then incr ham_vocab;
      if info.in_spam then incr spam_vocab;
      if info.in_ham && info.in_spam then incr shared)
    table;
  {
    messages = n;
    ham = !ham;
    spam = !spam;
    raw_tokens = !raw_tokens;
    distinct_tokens = distinct;
    mean_tokens_per_message = Spamlab_stats.Summary.mean lengths;
    median_tokens_per_message = Spamlab_stats.Summary.median lengths;
    p95_tokens_per_message = Spamlab_stats.Summary.quantile lengths 0.95;
    singleton_fraction = float_of_int !singletons /. float_of_int distinct;
    rare_fraction = float_of_int !rare /. float_of_int distinct;
    ham_vocabulary = !ham_vocab;
    spam_vocabulary = !spam_vocab;
    shared_vocabulary = !shared;
    heaps_curve = List.rev !heaps;
  }

let render t =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "Corpus characterization\n\n";
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  line "messages                 %d (%d ham, %d spam)" t.messages t.ham t.spam;
  line "token instances          %d" t.raw_tokens;
  line "distinct tokens          %d" t.distinct_tokens;
  line "tokens per message       mean %.1f, median %.1f, p95 %.1f"
    t.mean_tokens_per_message t.median_tokens_per_message
    t.p95_tokens_per_message;
  line "singleton tokens          %.1f%% of vocabulary (rare <=3 docs: %.1f%%)"
    (100.0 *. t.singleton_fraction)
    (100.0 *. t.rare_fraction);
  line "ham vocabulary            %d distinct tokens" t.ham_vocabulary;
  line "spam vocabulary           %d distinct tokens" t.spam_vocabulary;
  line "seen in both classes      %d (%.1f%% of vocabulary)"
    t.shared_vocabulary
    (100.0 *. float_of_int t.shared_vocabulary
    /. float_of_int t.distinct_tokens);
  line "";
  line "vocabulary growth (Heaps' law - sub-linear growth means fresh";
  line "rare tokens keep arriving, the fuel of the poisoning attacks):";
  List.iter
    (fun (msgs, vocab) -> line "  after %6d messages: %8d distinct tokens" msgs vocab)
    t.heaps_curve;
  Buffer.contents buffer
