(** The laboratory's token universe, partitioned the way the attacks care
    about:

    - {e shared}: common words used by both ham and spam (function words,
      everyday vocabulary);
    - {e ham-specific}: business/professional vocabulary (the Enron
      flavour of the TREC corpus);
    - {e spam-specific}: campaign vocabulary (pharma, finance, adult);
    - {e colloquial}: slang and misspellings that occur in real email and
      in Usenet postings but {e not} in an aspell-style dictionary — the
      paper's explanation of why the Usenet attack beats the Aspell
      attack (§4.2);
    - {e rare_standard}: the long tail of legitimate English — words any
      dictionary lists but a frequency-ranked corpus only partially
      covers;
    - {e rare_nonstandard}: the long tail of email-specific tokens
      (names, codes, project jargon) found in {e no} public word source
      — only the simulated optimal attack covers these.

    All categories are disjoint.  Standard categories are fixed index
    ranges of {!Wordgen.word}; colloquial words are misspellings of
    shared words plus fresh slang, derived deterministically from the
    seed.

    Coverage by attacker word source (the laboratory's central knob):

    {v
                      shared ham spam colloq rare_std rare_non
      aspell            x     x    x     -      all      -
      usenet (full)     x     x    x     x      half   quarter
      optimal (ham)     x     x    -     x      all      all
    v} *)

type sizes = {
  shared : int;
  ham_specific : int;
  spam_specific : int;
  colloquial : int;
  rare_standard : int;
  rare_nonstandard : int;
}

val default_sizes : sizes
(** 8000 / 6000 / 4000 / 3000 / 60000 / 180000. *)

type t = private {
  shared : string array;
  ham_specific : string array;
  spam_specific : string array;
  colloquial : string array;
  rare_standard : string array;
  rare_nonstandard : string array;
  filler_start : int;
      (** First {!Wordgen.word} index not used by any category; filler
          words for the dictionary and Usenet lists start here. *)
}

val create : ?sizes:sizes -> seed:int -> unit -> t
(** Deterministic in [seed].  @raise Invalid_argument if any size is
    negative or [shared] is zero (misspellings need a source). *)

val standard_words : t -> string array
(** shared ∪ ham-specific ∪ spam-specific (concatenated) — the common
    part of an aspell-style dictionary. *)

val all_words : t -> string array
(** Every category concatenated. *)

val mem_standard : t -> string -> bool
(** Membership in shared/ham/spam/rare_standard.  Builds its hash set on
    first partial application: [let mem = mem_standard v in ...]. *)

val mem_colloquial : t -> string -> bool

val total : t -> int
