lib/tokenizer/text.mli:
