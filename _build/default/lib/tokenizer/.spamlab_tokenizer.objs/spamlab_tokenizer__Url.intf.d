lib/tokenizer/url.mli:
