lib/tokenizer/tokenizer.ml: Array Bogofilter_tok List Spamassassin_tok Spambayes_tok Spamlab_email String
