lib/tokenizer/spamassassin_tok.ml: Header List Message Spamlab_email String Text Url
