lib/tokenizer/bogofilter_tok.ml: Header List Message Spamlab_email String Text
