lib/tokenizer/text.ml: Char List String
