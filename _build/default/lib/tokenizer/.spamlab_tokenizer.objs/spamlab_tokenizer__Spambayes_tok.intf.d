lib/tokenizer/spambayes_tok.mli: Spamlab_email
