lib/tokenizer/html.ml: Buffer Char List String Text
