lib/tokenizer/html.mli:
