lib/tokenizer/tokenizer.mli: Spamlab_email
