lib/tokenizer/spambayes_tok.ml: Char Header Html List Message Mime Printf Spamlab_email String Text Url
