lib/tokenizer/spamassassin_tok.mli: Spamlab_email
