lib/tokenizer/bogofilter_tok.mli: Spamlab_email
