lib/tokenizer/url.ml: List Option String
