(** Low-level text splitting shared by every tokenizer variant. *)

val split_whitespace : string -> string list
(** Split on runs of spaces, tabs, newlines and carriage returns;
    never returns empty strings. *)

val strip_punctuation : string -> string
(** Remove leading and trailing characters outside [A-Za-z0-9'$-]
    (apostrophes, dollar signs and hyphens are meaningful inside spam
    tokens: ["don't"], ["$99"], ["v-i-a-g-r-a"]). *)

val words : string -> string list
(** [split_whitespace] then [strip_punctuation] then drop empties;
    lowercases everything. *)

val is_ascii_alpha : char -> bool
val is_digit : char -> bool

val has_high_bit : string -> bool
(** True if any byte is >= 0x80 (8-bit character heuristic used by
    SpamBayes to flag likely non-English/binary content). *)

val count_occurrences : char -> string -> int
