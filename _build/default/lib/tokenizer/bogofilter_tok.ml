let name = "bogofilter"

let min_word_length = 3
let max_word_length = 30

let keep w =
  let n = String.length w in
  n >= min_word_length && n <= max_word_length

let tokenize msg =
  let open Spamlab_email in
  let header_tokens =
    Header.fold
      (fun acc name value ->
        let prefix = String.lowercase_ascii name ^ ":" in
        let toks =
          Text.words value |> List.filter keep
          |> List.map (fun w -> prefix ^ w)
        in
        acc @ toks)
      []
      (Message.headers msg)
  in
  header_tokens @ (Text.words (Message.body msg) |> List.filter keep)
