module type S = sig
  val name : string
  val tokenize : Spamlab_email.Message.t -> string list
end

type t = (module S)

let tokenize (module T : S) msg = T.tokenize msg

let unique_of_list tokens =
  let sorted = List.sort_uniq String.compare tokens in
  Array.of_list sorted

let unique_tokens t msg = unique_of_list (tokenize t msg)

let spambayes : t = (module Spambayes_tok)
let bogofilter : t = (module Bogofilter_tok)
let spamassassin : t = (module Spamassassin_tok)

let all =
  [ (Spambayes_tok.name, spambayes);
    (Bogofilter_tok.name, bogofilter);
    (Spamassassin_tok.name, spamassassin) ]

let find name = List.assoc_opt name all
