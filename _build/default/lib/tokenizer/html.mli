(** HTML handling for tokenization, after SpamBayes' approach: strip
    markup so prose words tokenize normally, but keep the markup's
    {e signal} — spam HTML is full of tells (tiny fonts, tracking
    images, links whose text hides their target).

    [deconstruct] returns the visible text plus meta tokens:
    - ["html:<tag>"] for each element of a small suspicious-tag set
      (a, img, font, table, iframe, script, style, form, input);
    - the [href]/[src] URL values, for the URL cracker;
    - comments, scripts and style blocks contribute no text. *)

type t = {
  visible_text : string;
  meta_tokens : string list;
  urls : string list;
}

val deconstruct : string -> t

val strip_tags : string -> string
(** Just the visible text ([deconstruct]'s first component). *)

val decode_entities : string -> string
(** The named entities that matter for tokenization ([&amp;] [&lt;]
    [&gt;] [&quot;] [&apos;] [&nbsp;]) plus decimal [&#NN;] escapes;
    unknown entities pass through verbatim. *)
