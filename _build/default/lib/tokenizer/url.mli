(** URL cracking, after SpamBayes' [crack_urls]: a URL in a message body
    is replaced by structured tokens ([proto:http], [url:host-component],
    [url:path-word]) so that campaign infrastructure shows up as
    high-signal features regardless of the surrounding prose. *)

val looks_like_url : string -> bool
(** True for [scheme://...] and for bare [www.]-prefixed hosts. *)

val crack : string -> string list
(** [crack w] is the token list for a URL-like word; [w] itself
    (lowercased) is not included.  Returns [[]] if [w] is not URL-like. *)
