let name = "spambayes"

let min_word_length = 3
let max_word_length = 12

let skip_token w =
  let n = String.length w / 10 * 10 in
  Printf.sprintf "skip:%c %d" w.[0] n

let email_tokens w =
  match String.index_opt w '@' with
  | Some i when i > 0 && i < String.length w - 1 ->
      let local = String.sub w 0 i in
      let domain = String.sub w (i + 1) (String.length w - i - 1) in
      Some
        (("email name:" ^ local)
         :: List.map
              (fun part -> "email addr:" ^ part)
              (String.split_on_char '.' domain))
  | _ -> None

let word_tokens w =
  if Url.looks_like_url w then Url.crack w
  else
    match email_tokens w with
    | Some tokens -> tokens
    | None ->
        let len = String.length w in
        if len < min_word_length then []
        else if len > max_word_length then [ skip_token w ]
        else [ w ]

let tokenize_body_text text =
  List.concat_map word_tokens (Text.words text)

let tokenize_text_with_prefix prefix text =
  List.concat_map
    (fun w ->
      let len = String.length w in
      if len < min_word_length || len > max_word_length then []
      else [ prefix ^ w ])
    (Text.words text)

let address_tokens prefix value =
  match Spamlab_email.Address.of_string value with
  | Error _ -> tokenize_text_with_prefix (prefix ^ ":") value
  | Ok addr ->
      let open Spamlab_email.Address in
      let name_tokens =
        match addr.display_name with
        | None -> []
        | Some n -> tokenize_text_with_prefix (prefix ^ ":name:") n
      in
      (prefix ^ ":addr:" ^ String.lowercase_ascii addr.domain)
      :: (prefix ^ ":name:" ^ String.lowercase_ascii addr.local)
      :: name_tokens

let eight_bit_token body =
  if body = "" then []
  else
    let bytes = String.length body in
    let high =
      String.fold_left
        (fun acc c -> if Char.code c >= 0x80 then acc + 1 else acc)
        0 body
    in
    if high = 0 then []
    else
      (* Percentage bucketed to multiples of 5, as SpamBayes does. *)
      let pct = 100 * high / bytes / 5 * 5 in
      [ Printf.sprintf "8bit%%:%d" pct ]

(* Textual chunks arrive transfer-decoded from the MIME layer.  HTML
   chunks are deconstructed: their prose tokenizes normally, markup
   yields html: meta tokens, and link targets go through the URL
   cracker (spam hides its infrastructure in href attributes). *)
let tokenize_chunk (kind, text) =
  match kind with
  | Spamlab_email.Mime.Plain -> tokenize_body_text text
  | Spamlab_email.Mime.Html ->
      let html = Html.deconstruct text in
      html.Html.meta_tokens
      @ List.concat_map Url.crack html.Html.urls
      @ tokenize_body_text html.Html.visible_text

let structure_tokens headers =
  let open Spamlab_email in
  let of_field field =
    match Header.find headers field with
    | None -> []
    | Some v -> (
        [ field ^ ":" ^ String.lowercase_ascii (String.trim v) ]
        |> List.filter (fun t -> String.length t <= 60))
  in
  of_field "content-transfer-encoding"
  @
  match Header.find headers "content-type" with
  | None -> []
  | Some v -> (
      match Mime.content_type_of_string v with
      | Error _ -> []
      | Ok ct ->
          [ Printf.sprintf "content-type:%s/%s" ct.Mime.media_type
              ct.Mime.subtype ])

(* Received lines carry the relay story: hostnames and IPs.  Hostname
   components become received: tokens; IPs contribute their /16 prefix
   (spam sources cluster in address space, exact hosts churn). *)
let received_tokens headers =
  let all_digits s = s <> "" && String.for_all Text.is_digit s in
  let line_tokens value =
    List.concat_map
      (fun word ->
        if not (String.contains word '.') then []
        else
          let parts = String.split_on_char '.' word in
          if List.for_all all_digits parts then
            match parts with
            | a :: b :: _ -> [ Printf.sprintf "received:ip:%s.%s" a b ]
            | _ -> []
          else
            List.filter_map
              (fun part ->
                if
                  String.length part >= min_word_length
                  && String.length part <= max_word_length
                  && not (all_digits part)
                then Some ("received:" ^ part)
                else None)
              parts)
      (Text.words value)
  in
  List.concat_map line_tokens
    (Spamlab_email.Header.find_all headers "received")

let tokenize msg =
  let open Spamlab_email in
  let headers = Message.headers msg in
  let subject_tokens =
    match Header.find headers "subject" with
    | None -> []
    | Some s ->
        (* SpamBayes emits subject words both prefixed and bare. *)
        tokenize_text_with_prefix "subject:" s @ tokenize_body_text s
  in
  let addr_field prefix field =
    match Header.find headers field with
    | None -> []
    | Some v -> address_tokens prefix v
  in
  let chunks = Mime.text_content msg in
  let decoded_text = String.concat "\n" (List.map snd chunks) in
  subject_tokens
  @ addr_field "from" "from"
  @ addr_field "to" "to"
  @ addr_field "reply-to" "reply-to"
  @ received_tokens headers
  @ structure_tokens headers
  @ eight_bit_token decoded_text
  @ List.concat_map tokenize_chunk chunks
