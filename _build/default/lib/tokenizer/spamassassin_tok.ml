let name = "spamassassin"

let max_word_length = 15

let scanned_headers = [ "subject"; "from"; "to"; "reply-to" ]

let stem w =
  if String.length w <= max_word_length then w
  else "sk:" ^ String.sub w 0 5

let body_word w =
  if Url.looks_like_url w then
    (* Keep only the hostname as a single token. *)
    match Url.crack w with
    | _proto :: host :: _ -> [ host ]
    | tokens -> tokens
  else if String.length w < 3 then []
  else [ stem w ]

let tokenize msg =
  let open Spamlab_email in
  let header_tokens =
    List.concat_map
      (fun field ->
        match Header.find (Message.headers msg) field with
        | None -> []
        | Some value ->
            let prefix = "h" ^ field ^ ":" in
            Text.words value
            |> List.filter (fun w -> String.length w >= 3)
            |> List.map (fun w -> prefix ^ stem w))
      scanned_headers
  in
  header_tokens
  @ List.concat_map body_word (Text.words (Message.body msg))
