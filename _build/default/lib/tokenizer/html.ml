type t = {
  visible_text : string;
  meta_tokens : string list;
  urls : string list;
}

let tracked_tags =
  [ "a"; "img"; "font"; "table"; "iframe"; "script"; "style"; "form";
    "input" ]

let decode_entities s =
  let out = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Buffer.contents out
    else if s.[i] = '&' then (
      match String.index_from_opt s i ';' with
      | Some semi when semi - i <= 8 -> (
          let entity = String.sub s (i + 1) (semi - i - 1) in
          let replacement =
            match String.lowercase_ascii entity with
            | "amp" -> Some "&"
            | "lt" -> Some "<"
            | "gt" -> Some ">"
            | "quot" -> Some "\""
            | "apos" -> Some "'"
            | "nbsp" -> Some " "
            | e
              when String.length e > 1
                   && e.[0] = '#'
                   && String.for_all
                        (fun c -> c >= '0' && c <= '9')
                        (String.sub e 1 (String.length e - 1)) -> (
                match int_of_string_opt (String.sub e 1 (String.length e - 1)) with
                | Some code when code > 0 && code < 256 ->
                    Some (String.make 1 (Char.chr code))
                | _ -> None)
            | _ -> None
          in
          match replacement with
          | Some r ->
              Buffer.add_string out r;
              go (semi + 1)
          | None ->
              Buffer.add_char out '&';
              go (i + 1))
      | _ ->
          Buffer.add_char out '&';
          go (i + 1))
    else begin
      Buffer.add_char out s.[i];
      go (i + 1)
    end
  in
  go 0

(* A one-pass scanner: outside tags, bytes accumulate as visible text;
   inside a tag, the name and href/src attributes are captured; script
   and style element *contents* are skipped entirely. *)
let deconstruct input =
  let input = decode_entities input in
  let n = String.length input in
  let text = Buffer.create n in
  let meta = ref [] in
  let urls = ref [] in
  let lowercase_at i len = String.lowercase_ascii (String.sub input i len) in
  let tag_name i =
    (* i points after '<' (and after an optional '/'). *)
    let closing = i < n && input.[i] = '/' in
    let start = if closing then i + 1 else i in
    let rec stop j =
      if
        j < n
        && (Text.is_ascii_alpha input.[j] || Text.is_digit input.[j])
      then stop (j + 1)
      else j
    in
    let j = stop start in
    (lowercase_at start (j - start), closing)
  in
  let find_attr_urls tag_start tag_stop =
    (* Scan href= / src= inside the tag text. *)
    let tag_text = lowercase_at tag_start (tag_stop - tag_start) in
    List.iter
      (fun attr ->
        let alen = String.length attr in
        let rec search from =
          if from + alen >= String.length tag_text then ()
          else if String.sub tag_text from alen = attr then begin
            (* Value starts after optional quote. *)
            let vstart = from + alen in
            let vstart, quote =
              if
                vstart < String.length tag_text
                && (tag_text.[vstart] = '"' || tag_text.[vstart] = '\'')
              then (vstart + 1, Some tag_text.[vstart])
              else (vstart, None)
            in
            let rec vstop j =
              if j >= String.length tag_text then j
              else
                match quote with
                | Some q -> if tag_text.[j] = q then j else vstop (j + 1)
                | None ->
                    if tag_text.[j] = ' ' || tag_text.[j] = '>' then j
                    else vstop (j + 1)
            in
            let j = vstop vstart in
            if j > vstart then
              urls := String.sub tag_text vstart (j - vstart) :: !urls;
            search j
          end
          else search (from + 1)
        in
        search 0)
      [ "href="; "src=" ]
  in
  let rec skip_element_content close i =
    (* Skip until </close>. *)
    match String.index_from_opt input i '<' with
    | None -> n
    | Some lt ->
        let name, closing = tag_name (lt + 1) in
        if closing && name = close then
          match String.index_from_opt input lt '>' with
          | Some gt -> gt + 1
          | None -> n
        else skip_element_content close (lt + 1)
  in
  let rec go i =
    if i >= n then ()
    else if input.[i] = '<' then
      if i + 3 < n && String.sub input i 4 = "<!--" then (
        (* Comment: skip to -->. *)
        let rec find_end j =
          if j + 2 >= n then n
          else if String.sub input j 3 = "-->" then j + 3
          else find_end (j + 1)
        in
        go (find_end (i + 4)))
      else begin
        let name, closing = tag_name (i + 1) in
        let tag_end =
          match String.index_from_opt input i '>' with
          | Some gt -> gt
          | None -> n
        in
        if name <> "" && not closing && List.mem name tracked_tags then
          meta := ("html:" ^ name) :: !meta;
        find_attr_urls i (min n tag_end);
        (* Tags act as word separators. *)
        Buffer.add_char text ' ';
        let next = min n (tag_end + 1) in
        if (not closing) && (name = "script" || name = "style") then
          go (skip_element_content name next)
        else go next
      end
    else begin
      Buffer.add_char text input.[i];
      go (i + 1)
    end
  in
  go 0;
  {
    visible_text = Buffer.contents text;
    meta_tokens = List.rev !meta;
    urls = List.rev !urls;
  }

let strip_tags input = (deconstruct input).visible_text
