let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let split_whitespace s =
  let n = String.length s in
  let rec scan i start acc =
    if i >= n then
      if i > start then String.sub s start (i - start) :: acc else acc
    else if is_space s.[i] then
      let acc =
        if i > start then String.sub s start (i - start) :: acc else acc
      in
      scan (i + 1) (i + 1) acc
    else scan (i + 1) start acc
  in
  List.rev (scan 0 0 [])

let is_ascii_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'

let is_word_char c =
  is_ascii_alpha c || is_digit c || c = '\'' || c = '$' || c = '-'

let strip_punctuation s =
  let n = String.length s in
  let rec first i = if i < n && not (is_word_char s.[i]) then first (i + 1) else i in
  let rec last i = if i >= 0 && not (is_word_char s.[i]) then last (i - 1) else i in
  let lo = first 0 in
  let hi = last (n - 1) in
  if hi < lo then "" else String.sub s lo (hi - lo + 1)

let words s =
  split_whitespace s
  |> List.filter_map (fun w ->
         let w = strip_punctuation (String.lowercase_ascii w) in
         if w = "" then None else Some w)

let has_high_bit s = String.exists (fun c -> Char.code c >= 0x80) s

let count_occurrences c s =
  String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 s
