test/test_cli.ml: Alcotest Filename In_channel List Out_channel Spamlab_email Spamlab_spambayes String Sys
