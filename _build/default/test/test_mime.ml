(* Tests for the MIME layer (encodings, content types, multipart) and
   HTML deconstruction, plus their integration with tokenization. *)

open Spamlab_email
module Html = Spamlab_tokenizer.Html
module Tokenizer = Spamlab_tokenizer.Tokenizer

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let test_case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Base64                                                              *)

let base64_tests =
  [
    test_case "RFC 4648 vectors" (fun () ->
        List.iter
          (fun (plain, encoded) ->
            check_str plain encoded (Encoding.base64_encode plain);
            match Encoding.base64_decode encoded with
            | Ok decoded -> check_str encoded plain decoded
            | Error e -> Alcotest.fail e)
          [
            ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v");
            ("foob", "Zm9vYg=="); ("fooba", "Zm9vYmE=");
            ("foobar", "Zm9vYmFy");
          ]);
    test_case "long input wraps at 76 columns" (fun () ->
        let encoded = Encoding.base64_encode (String.make 200 'x') in
        List.iter
          (fun line -> check_bool "width" true (String.length line <= 76))
          (String.split_on_char '\n' encoded));
    test_case "decode ignores whitespace and padding" (fun () ->
        match Encoding.base64_decode "Zm9v\n  YmFy " with
        | Ok s -> check_str "foobar" "foobar" s
        | Error e -> Alcotest.fail e);
    test_case "decode accepts unpadded input" (fun () ->
        match Encoding.base64_decode "Zm9vYg" with
        | Ok s -> check_str "foob" "foob" s
        | Error e -> Alcotest.fail e);
    test_case "decode rejects invalid characters" (fun () ->
        check_bool "error" true
          (Result.is_error (Encoding.base64_decode "Zm9v*mFy")));
    qtest "round-trips arbitrary bytes"
      QCheck2.Gen.(string_size (int_range 0 300))
      (fun s ->
        match Encoding.base64_decode (Encoding.base64_encode s) with
        | Ok s' -> s' = s
        | Error _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Quoted-printable                                                    *)

let qp_tests =
  [
    test_case "plain ASCII passes through" (fun () ->
        check_str "plain" "hello world"
          (Encoding.quoted_printable_encode "hello world"));
    test_case "escapes = and 8-bit bytes" (fun () ->
        let encoded = Encoding.quoted_printable_encode "a=b\xE9c" in
        check_str "escaped" "a=3Db=E9c" encoded);
    test_case "escapes trailing whitespace" (fun () ->
        let encoded = Encoding.quoted_printable_encode "line \nnext" in
        check_bool "trailing space escaped" true
          (String.length encoded >= 8 && String.sub encoded 4 3 = "=20"));
    test_case "decode removes soft breaks" (fun () ->
        match Encoding.quoted_printable_decode "long=\nword" with
        | Ok s -> check_str "joined" "longword" s
        | Error e -> Alcotest.fail e);
    test_case "decode is liberal about stray =" (fun () ->
        match Encoding.quoted_printable_decode "a=zb" with
        | Ok s -> check_str "literal" "a=zb" s
        | Error e -> Alcotest.fail e);
    qtest "round-trips arbitrary bytes"
      QCheck2.Gen.(string_size (int_range 0 200))
      (fun s ->
        match
          Encoding.quoted_printable_decode (Encoding.quoted_printable_encode s)
        with
        | Ok s' -> s' = s
        | Error _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Content types and decoding                                          *)

let content_type_tests =
  [
    test_case "parses type, subtype and parameters" (fun () ->
        match
          Mime.content_type_of_string
            "Text/HTML; charset=\"utf-8\"; boundary=abc"
        with
        | Ok ct ->
            check_str "type" "text" ct.Mime.media_type;
            check_str "subtype" "html" ct.Mime.subtype;
            check_bool "charset" true
              (Mime.parameter ct "charset" = Some "utf-8");
            check_bool "boundary" true
              (Mime.parameter ct "BOUNDARY" = Some "abc")
        | Error e -> Alcotest.fail e);
    test_case "rejects malformed types" (fun () ->
        check_bool "no slash" true
          (Result.is_error (Mime.content_type_of_string "texthtml"));
        check_bool "empty subtype" true
          (Result.is_error (Mime.content_type_of_string "text/")));
    test_case "message default is text/plain" (fun () ->
        let ct = Mime.content_type (Message.make "body") in
        check_str "type" "text" ct.Mime.media_type;
        check_str "subtype" "plain" ct.Mime.subtype);
    test_case "malformed header degrades to text/plain" (fun () ->
        let msg =
          Message.make
            ~headers:(Header.of_list [ ("Content-Type", "garbage") ])
            "body"
        in
        check_str "subtype" "plain" (Mime.content_type msg).Mime.subtype);
    test_case "to_string round-trips" (fun () ->
        match Mime.content_type_of_string "text/html; charset=us-ascii" with
        | Ok ct -> (
            match Mime.content_type_of_string (Mime.content_type_to_string ct) with
            | Ok ct' -> check_bool "equal" true (ct = ct')
            | Error e -> Alcotest.fail e)
        | Error e -> Alcotest.fail e);
    test_case "decoded_body reverses base64" (fun () ->
        let msg = Mime.with_base64_transfer (Message.make "secret payload") in
        check_bool "body is encoded" true
          (Message.body msg <> "secret payload");
        check_str "decodes" "secret payload" (Mime.decoded_body msg));
    test_case "decoded_body reverses quoted-printable" (fun () ->
        let msg =
          Mime.with_quoted_printable_transfer (Message.make "caf=e9 style")
        in
        check_str "decodes" "caf=e9 style" (Mime.decoded_body msg));
    test_case "unknown transfer encoding passes through" (fun () ->
        let msg =
          Message.make
            ~headers:(Header.of_list [ ("Content-Transfer-Encoding", "x-zip") ])
            "raw"
        in
        check_str "raw" "raw" (Mime.decoded_body msg));
  ]

(* ------------------------------------------------------------------ *)
(* Multipart                                                           *)

let multipart_tests =
  [
    test_case "make_multipart then parts round-trips" (fun () ->
        let part1 = Message.make "first part body" in
        let part2 =
          Message.make
            ~headers:(Header.of_list [ ("Content-Type", "text/html") ])
            "<p>second</p>"
        in
        let msg = Mime.make_multipart ~boundary:"XYZ" [ part1; part2 ] in
        match Mime.parts msg with
        | Some [ p1; p2 ] ->
            check_str "part1" "first part body" (Message.body p1);
            check_str "part2" "<p>second</p>" (Message.body p2);
            check_str "part2 type" "html" (Mime.content_type p2).Mime.subtype
        | Some _ -> Alcotest.fail "wrong part count"
        | None -> Alcotest.fail "no parts");
    test_case "parts of a non-multipart is None" (fun () ->
        check_bool "none" true (Mime.parts (Message.make "plain") = None));
    test_case "multipart without boundary is None" (fun () ->
        let msg =
          Message.make
            ~headers:(Header.of_list [ ("Content-Type", "multipart/mixed") ])
            "body"
        in
        check_bool "none" true (Mime.parts msg = None));
    test_case "make_multipart validates the boundary" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Mime.make_multipart: empty boundary") (fun () ->
            ignore (Mime.make_multipart ~boundary:"" []));
        Alcotest.check_raises "collision"
          (Invalid_argument "Mime.make_multipart: boundary occurs in a part")
          (fun () ->
            ignore
              (Mime.make_multipart ~boundary:"BB"
                 [ Message.make "text --BB text" ])));
    test_case "text_content traverses nested multiparts" (fun () ->
        let inner =
          Mime.make_multipart ~boundary:"IN"
            [ Message.make "deep plain"; Mime.make_html "<b>deep html</b>" ]
        in
        let outer = Mime.make_multipart ~boundary:"OUT" [ inner; Message.make "top" ] in
        let chunks = Mime.text_content outer in
        check_int "three chunks" 3 (List.length chunks);
        check_bool "kinds" true
          (List.map fst chunks = [ Mime.Plain; Mime.Html; Mime.Plain ]));
    test_case "text_content of base64 html decodes" (fun () ->
        let msg = Mime.with_base64_transfer (Mime.make_html "<i>hidden words</i>") in
        match Mime.text_content msg with
        | [ (Mime.Html, body) ] ->
            check_str "decoded" "<i>hidden words</i>" body
        | _ -> Alcotest.fail "unexpected structure");
    test_case "text_content never loses a plain body" (fun () ->
        match Mime.text_content (Message.make "just text") with
        | [ (Mime.Plain, body) ] -> check_str "body" "just text" body
        | _ -> Alcotest.fail "unexpected structure");
  ]

(* ------------------------------------------------------------------ *)
(* HTML                                                                *)

let html_tests =
  [
    test_case "strip_tags keeps the prose" (fun () ->
        let text = Html.strip_tags "<p>hello <b>bold</b> world</p>" in
        let words = Spamlab_tokenizer.Text.words text in
        check_bool "hello" true (List.mem "hello" words);
        check_bool "bold" true (List.mem "bold" words);
        check_bool "world" true (List.mem "world" words);
        check_bool "no tags" false (List.mem "p" words));
    test_case "deconstruct reports tracked tags" (fun () ->
        let h =
          Html.deconstruct
            "<table><a href=\"http://x.biz/go\">click</a><img src=\"http://y.biz/p.gif\"></table>"
        in
        check_bool "table" true (List.mem "html:table" h.Html.meta_tokens);
        check_bool "a" true (List.mem "html:a" h.Html.meta_tokens);
        check_bool "img" true (List.mem "html:img" h.Html.meta_tokens);
        check_int "urls" 2 (List.length h.Html.urls);
        check_bool "href" true (List.mem "http://x.biz/go" h.Html.urls));
    test_case "script and style contents are dropped" (fun () ->
        let h =
          Html.deconstruct
            "before<script>var evil = 1;</script><style>p { }</style>after"
        in
        let words = Spamlab_tokenizer.Text.words h.Html.visible_text in
        check_bool "before" true (List.mem "before" words);
        check_bool "after" true (List.mem "after" words);
        check_bool "no js" false (List.mem "var" words);
        check_bool "no evil" false (List.mem "evil" words));
    test_case "comments are dropped" (fun () ->
        let words =
          Spamlab_tokenizer.Text.words
            (Html.strip_tags "a<!-- hidden words -->b")
        in
        check_bool "no hidden" false (List.mem "hidden" words));
    test_case "entities decode" (fun () ->
        check_str "amp" "a&b" (Html.decode_entities "a&amp;b");
        check_str "lt-gt" "<x>" (Html.decode_entities "&lt;x&gt;");
        check_str "nbsp" "a b" (Html.decode_entities "a&nbsp;b");
        check_str "numeric" "A" (Html.decode_entities "&#65;");
        check_str "unknown" "&zzz;" (Html.decode_entities "&zzz;");
        check_str "bare" "a&b" (Html.decode_entities "a&b"));
    test_case "tags separate words" (fun () ->
        let words =
          Spamlab_tokenizer.Text.words (Html.strip_tags "one<br>two")
        in
        check_bool "split" true
          (List.mem "one" words && List.mem "two" words));
  ]

(* ------------------------------------------------------------------ *)
(* Tokenizer integration                                               *)

let integration_tests =
  [
    test_case "html message tokenizes prose, meta and urls" (fun () ->
        let msg =
          Mime.make_html
            "<html><body><p>cheap offer</p><a href=\"http://pills.biz/buy\">here</a></body></html>"
        in
        let tokens = Tokenizer.tokenize Tokenizer.spambayes msg in
        check_bool "prose" true (List.mem "cheap" tokens);
        check_bool "meta" true (List.mem "html:a" tokens);
        check_bool "url host" true (List.mem "url:pills" tokens);
        check_bool "structure token" true
          (List.mem "content-type:text/html" tokens));
    test_case "base64 spam decodes before tokenization" (fun () ->
        let msg =
          Mime.with_base64_transfer
            (Message.make "hidden payload words visible after decoding")
        in
        let tokens = Tokenizer.tokenize Tokenizer.spambayes msg in
        check_bool "payload" true (List.mem "payload" tokens);
        check_bool "encoding tell" true
          (List.mem "content-transfer-encoding:base64" tokens));
    test_case "quoted-printable decodes before tokenization" (fun () ->
        let msg =
          Mime.with_quoted_printable_transfer
            (Message.make "acqu\xE9rir cheap pills now")
        in
        let tokens = Tokenizer.tokenize Tokenizer.spambayes msg in
        check_bool "words" true (List.mem "cheap" tokens));
    test_case "multipart alternative tokenizes all parts" (fun () ->
        let msg =
          Mime.make_multipart ~boundary:"B42"
            [ Message.make "plain version words";
              Mime.make_html "<p>html version words</p>" ]
        in
        let tokens = Tokenizer.tokenize Tokenizer.spambayes msg in
        check_bool "plain" true (List.mem "plain" tokens);
        check_bool "html" true (List.mem "version" tokens));
    test_case "plain messages tokenize exactly as before" (fun () ->
        let msg = Message.make "alpha beta gamma" in
        Alcotest.(check (list string))
          "tokens" [ "alpha"; "beta"; "gamma" ]
          (Tokenizer.tokenize Tokenizer.spambayes msg));
  ]

(* ------------------------------------------------------------------ *)
(* Robustness: arbitrary bytes must never raise                        *)

let no_exn f = try ignore (f ()); true with _ -> false

let fuzz_tests =
  [
    qtest "base64_decode total on arbitrary bytes" ~count:500
      QCheck2.Gen.(string_size (int_range 0 200))
      (fun s -> no_exn (fun () -> Encoding.base64_decode s));
    qtest "quoted_printable_decode total on arbitrary bytes" ~count:500
      QCheck2.Gen.(string_size (int_range 0 200))
      (fun s -> no_exn (fun () -> Encoding.quoted_printable_decode s));
    qtest "content_type_of_string total" ~count:500
      QCheck2.Gen.(string_size (int_range 0 80))
      (fun s -> no_exn (fun () -> Mime.content_type_of_string s));
    qtest "html deconstruct total on arbitrary bytes" ~count:500
      QCheck2.Gen.(string_size (int_range 0 300))
      (fun s -> no_exn (fun () -> Html.deconstruct s));
    qtest "html deconstruct total on tag soup" ~count:300
      QCheck2.Gen.(
        list_size (int_range 0 30)
          (oneofl
             [ "<a href="; "<script>"; "</script"; "<!--"; "-->"; "<img ";
               "text"; "\"quoted\""; "<b>"; "&amp;"; "&#300;"; "<>"; "<";
               ">"; "='x'" ]))
      (fun pieces -> no_exn (fun () -> Html.deconstruct (String.concat "" pieces)));
    qtest "text_content total on arbitrary messages" ~count:300
      QCheck2.Gen.(
        pair
          (small_list
             (pair
                (oneofl
                   [ "Content-Type"; "Content-Transfer-Encoding"; "Subject" ])
                (string_size (int_range 0 40))))
          (string_size (int_range 0 300)))
      (fun (headers, body) ->
        let headers =
          List.filter
            (fun (_, v) -> not (String.contains v '\n'))
            headers
        in
        let msg =
          Spamlab_email.Message.make
            ~headers:(Header.of_list headers) body
        in
        no_exn (fun () -> Mime.text_content msg));
    qtest "spambayes tokenizer total on arbitrary messages" ~count:300
      QCheck2.Gen.(string_size (int_range 0 400))
      (fun body ->
        no_exn (fun () ->
            Tokenizer.tokenize Tokenizer.spambayes
              (Spamlab_email.Message.make body)));
    qtest "rfc2822 parse total on arbitrary bytes" ~count:500
      QCheck2.Gen.(string_size (int_range 0 300))
      (fun s -> no_exn (fun () -> Rfc2822.parse s));
    qtest "mbox parse total on arbitrary bytes" ~count:300
      QCheck2.Gen.(string_size (int_range 0 400))
      (fun s -> no_exn (fun () -> Mbox.parse s));
  ]

let () =
  Alcotest.run "mime"
    [
      ("base64", base64_tests);
      ("quoted_printable", qp_tests);
      ("content_type", content_type_tests);
      ("multipart", multipart_tests);
      ("html", html_tests);
      ("tokenizer_integration", integration_tests);
      ("fuzz", fuzz_tests);
    ]
