test/test_mime.ml: Alcotest Encoding Header List Mbox Message Mime QCheck2 QCheck_alcotest Result Rfc2822 Spamlab_email Spamlab_tokenizer String
