test/test_spambayes.ml: Alcotest Array Classify Filename Filter Float Fun Label List Options QCheck2 QCheck_alcotest Result Score Spamlab_email Spamlab_spambayes Spamlab_tokenizer Sys Token_db
