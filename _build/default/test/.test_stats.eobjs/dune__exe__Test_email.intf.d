test/test_email.mli:
