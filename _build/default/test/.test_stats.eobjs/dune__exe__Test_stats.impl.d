test/test_stats.ml: Alcotest Array Fisher Float Histogram List QCheck2 QCheck_alcotest Rng Sampler Spamlab_stats Special String Summary
