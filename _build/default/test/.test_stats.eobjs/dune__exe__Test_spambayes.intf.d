test/test_spambayes.mli:
