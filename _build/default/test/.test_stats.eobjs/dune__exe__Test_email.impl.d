test/test_email.ml: Address Alcotest Filename Fun Header List Mbox Message Option QCheck2 QCheck_alcotest Result Rfc2822 Spamlab_email String Sys
