test/test_eval.ml: Ablation Alcotest Array Confusion Extension_exp Format Lab List Option Params Plot Poison Registry Spamlab_corpus Spamlab_eval Spamlab_spambayes Spamlab_tokenizer String Table
