test/test_integration.ml: Alcotest Array Confusion Filename Fun Lab List Poison Spamlab_core Spamlab_corpus Spamlab_email Spamlab_eval Spamlab_spambayes Spamlab_stats Spamlab_tokenizer Summary Sys
