test/test_tokenizer.ml: Alcotest Array List QCheck2 QCheck_alcotest Spambayes_tok Spamlab_email Spamlab_tokenizer String Text Tokenizer Url
