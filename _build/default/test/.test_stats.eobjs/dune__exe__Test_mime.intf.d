test/test_mime.mli:
