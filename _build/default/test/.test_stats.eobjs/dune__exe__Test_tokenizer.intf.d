test/test_tokenizer.mli:
