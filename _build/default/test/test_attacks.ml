(* Tests for the attack implementations: taxonomy, attack-email
   construction, dictionary and focused attacks, expected-score
   machinery. *)

open Spamlab_core
open Spamlab_stats
module Label = Spamlab_spambayes.Label
module Filter = Spamlab_spambayes.Filter
module Token_db = Spamlab_spambayes.Token_db
module Classify = Spamlab_spambayes.Classify
module Message = Spamlab_email.Message
module Header = Spamlab_email.Header
module Tokenizer = Spamlab_tokenizer.Tokenizer

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let test_case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Taxonomy                                                            *)

let taxonomy_tests =
  [
    test_case "paper attacks sit in the right cells" (fun () ->
        let d = Taxonomy.dictionary_attack in
        check_bool "causative" true (d.Taxonomy.influence = Taxonomy.Causative);
        check_bool "availability" true
          (d.Taxonomy.violation = Taxonomy.Availability);
        check_bool "indiscriminate" true
          (d.Taxonomy.specificity = Taxonomy.Indiscriminate);
        let f = Taxonomy.focused_attack in
        check_bool "targeted" true (f.Taxonomy.specificity = Taxonomy.Targeted));
    test_case "describe" (fun () ->
        check_str "dictionary" "Causative Availability Indiscriminate attack"
          (Taxonomy.describe Taxonomy.dictionary_attack);
        check_str "focused" "Causative Availability Targeted attack"
          (Taxonomy.describe Taxonomy.focused_attack));
    test_case "all eight cells, all distinct" (fun () ->
        check_int "count" 8 (List.length Taxonomy.all);
        let distinct = List.sort_uniq compare Taxonomy.all in
        check_int "distinct" 8 (List.length distinct));
    test_case "equal" (fun () ->
        check_bool "refl" true
          (Taxonomy.equal Taxonomy.focused_attack Taxonomy.focused_attack);
        check_bool "diff" false
          (Taxonomy.equal Taxonomy.focused_attack Taxonomy.dictionary_attack));
  ]

(* ------------------------------------------------------------------ *)
(* Attack_email                                                        *)

let attack_email_tests =
  [
    test_case "body tokenizes back to exactly the payload words" (fun () ->
        let words = [ "alpha"; "beta"; "gamma"; "longishword" ] in
        let msg = Attack_email.make ~words in
        let tokens = Attack_email.payload_tokens Tokenizer.spambayes msg in
        Alcotest.(check (array string))
          "tokens"
          (Array.of_list (List.sort_uniq compare words))
          tokens);
    test_case "empty header on plain attack emails" (fun () ->
        let msg = Attack_email.make ~words:[ "abc" ] in
        check_int "no headers" 0 (Header.length (Message.headers msg)));
    test_case "lines wrap at the configured width" (fun () ->
        let words = List.init 200 (fun i -> "word" ^ string_of_int i) in
        let body = Attack_email.body_of_words words in
        List.iter
          (fun line ->
            check_bool "width" true (String.length line <= 72))
          (String.split_on_char '\n' body));
    test_case "make_with_header wears the stolen header" (fun () ->
        let header = Header.of_list [ ("Subject", "stolen") ] in
        let msg = Attack_email.make_with_header ~header ~words:[ "abc" ] in
        check_bool "subject" true (Message.subject msg = Some "stolen"));
    qtest "arbitrary clean word lists round-trip through tokenization"
      QCheck2.Gen.(
        list_size (int_range 1 60) (int_range 0 100_000))
      (fun indices ->
        let words = List.map Spamlab_corpus.Wordgen.word indices in
        let msg = Attack_email.make ~words in
        let tokens = Attack_email.payload_tokens Tokenizer.spambayes msg in
        Array.to_list tokens = List.sort_uniq compare words);
  ]

(* ------------------------------------------------------------------ *)
(* Dictionary attack                                                   *)

let dictionary_tests =
  [
    test_case "make rejects empty word lists" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Dictionary_attack.make: empty word list")
          (fun () -> ignore (Dictionary_attack.make ~name:"x" ~words:[||])));
    test_case "accessors" (fun () ->
        let a =
          Dictionary_attack.make ~name:"test" ~words:[| "aaa"; "bbb" |]
        in
        check_str "name" "test" (Dictionary_attack.name a);
        check_int "count" 2 (Dictionary_attack.word_count a);
        check_bool "taxonomy" true
          (Taxonomy.equal Dictionary_attack.taxonomy Taxonomy.dictionary_attack));
    test_case "payload covers the whole word list" (fun () ->
        let words = Spamlab_corpus.Wordgen.words 0 500 in
        let a = Dictionary_attack.make ~name:"t" ~words in
        let payload = Dictionary_attack.payload Tokenizer.spambayes a in
        check_int "all words" 500 (Array.length payload));
    test_case "emails are identical and carry no headers" (fun () ->
        let a = Dictionary_attack.make ~name:"t" ~words:[| "abc"; "def" |] in
        match Dictionary_attack.emails a ~count:3 with
        | [ m1; m2; m3 ] ->
            check_bool "equal" true (Message.equal m1 m2 && Message.equal m2 m3);
            check_int "no headers" 0 (Header.length (Message.headers m1))
        | _ -> Alcotest.fail "wrong count");
    test_case "train adds count spam messages in one pass" (fun () ->
        let filter = Filter.create () in
        Filter.train_tokens filter Label.Ham [| "abc" |];
        let a = Dictionary_attack.make ~name:"t" ~words:[| "abc"; "def" |] in
        Dictionary_attack.train filter Tokenizer.spambayes a ~count:25;
        let db = Filter.db filter in
        check_int "nspam" 25 (Token_db.nspam db);
        check_int "abc spam count" 25 (Token_db.spam_count db "abc");
        check_int "abc ham count" 1 (Token_db.ham_count db "abc"));
    test_case "poisoning raises scores of covered words" (fun () ->
        let filter = Filter.create () in
        for _ = 1 to 10 do
          Filter.train_tokens filter Label.Ham [| "meeting"; "budget" |];
          Filter.train_tokens filter Label.Spam [| "pills"; "cheap" |]
        done;
        let before = Filter.token_score filter "meeting" in
        let a =
          Dictionary_attack.make ~name:"t" ~words:[| "meeting"; "budget" |]
        in
        Dictionary_attack.train filter Tokenizer.spambayes a ~count:10;
        let after = Filter.token_score filter "meeting" in
        check_bool "score rose" true (after > before));
    test_case "raw_token_count counts the stream" (fun () ->
        let a = Dictionary_attack.make ~name:"t" ~words:[| "abc"; "def"; "ghi" |] in
        check_int "three" 3
          (Dictionary_attack.raw_token_count Tokenizer.spambayes a));
  ]

(* ------------------------------------------------------------------ *)
(* Focused attack                                                      *)

let target =
  Message.make
    ~headers:
      (Header.of_list
         [ ("Subject", "contract bid deadline");
           ("From", "partner@corp.example") ])
    "our final bid for the acquisition contract is ready for review"

let spam_header = Header.of_list [ ("Subject", "CHEAP PILLS"); ("From", "spam@evil.biz") ]

let focused_tests =
  [
    test_case "target_words deduplicates in order" (fun () ->
        let words = Focused_attack.target_words target in
        check_bool "subject first" true (List.hd words = "contract");
        check_int "distinct occurrences of contract" 1
          (List.length (List.filter (( = ) "contract") words));
        check_bool "body words present" true (List.mem "acquisition" words));
    test_case "p=1 guesses everything, p=0 nothing" (fun () ->
        let rng = Rng.create 1 in
        let all =
          Focused_attack.craft rng ~target ~p:1.0 ~count:2
            ~header_pool:[| spam_header |]
        in
        check_int "missed none" 0 (List.length all.Focused_attack.missed);
        let none =
          Focused_attack.craft rng ~target ~p:0.0 ~count:2
            ~header_pool:[| spam_header |]
        in
        check_int "guessed none" 0 (List.length none.Focused_attack.guessed));
    test_case "guessed and missed partition the target words" (fun () ->
        let rng = Rng.create 2 in
        let plan =
          Focused_attack.craft rng ~target ~p:0.5 ~count:1
            ~header_pool:[| spam_header |]
        in
        let together =
          List.sort compare
            (plan.Focused_attack.guessed @ plan.Focused_attack.missed)
        in
        check_bool "partition" true
          (together = List.sort compare (Focused_attack.target_words target)));
    test_case "emails wear headers from the pool" (fun () ->
        let rng = Rng.create 3 in
        let plan =
          Focused_attack.craft rng ~target ~p:0.5 ~count:5
            ~header_pool:[| spam_header |]
        in
        check_int "count" 5 (List.length plan.Focused_attack.emails);
        List.iter
          (fun m ->
            check_bool "stolen subject" true
              (Message.subject m = Some "CHEAP PILLS"))
          plan.Focused_attack.emails);
    test_case "craft validates arguments" (fun () ->
        let rng = Rng.create 4 in
        Alcotest.check_raises "bad p"
          (Invalid_argument "Focused_attack.craft: p outside [0,1]") (fun () ->
            ignore
              (Focused_attack.craft rng ~target ~p:1.5 ~count:1
                 ~header_pool:[| spam_header |]));
        Alcotest.check_raises "no headers"
          (Invalid_argument "Focused_attack.craft: empty header pool")
          (fun () ->
            ignore
              (Focused_attack.craft rng ~target ~p:0.5 ~count:1
                 ~header_pool:[||])));
    test_case "training raises guessed-token scores, not missed ones"
      (fun () ->
        let filter = Filter.create () in
        (* Background inbox so the filter has mass. *)
        for i = 1 to 20 do
          Filter.train_tokens filter Label.Ham
            [| "meeting"; "budget"; "note" ^ string_of_int i |];
          Filter.train_tokens filter Label.Spam
            [| "pills"; "cheap"; "junk" ^ string_of_int i |]
        done;
        let rng = Rng.create 5 in
        let plan =
          Focused_attack.craft rng ~target ~p:0.5 ~count:50
            ~header_pool:[| spam_header |]
        in
        let before w = Filter.token_score filter w in
        let scores_before =
          List.map (fun w -> (w, before w)) (Focused_attack.target_words target)
        in
        Focused_attack.train filter plan;
        List.iter
          (fun (w, b) ->
            let a = Filter.token_score filter w in
            if List.mem w plan.Focused_attack.guessed then
              check_bool ("guessed " ^ w) true (a > b)
            else
              check_bool ("missed " ^ w) true (a <= b +. 1e-12))
          scores_before);
    test_case "enough attack emails flip the target" (fun () ->
        let filter = Filter.create () in
        for i = 1 to 50 do
          Filter.train_tokens filter Label.Ham
            [| "meeting"; "budget"; "review"; "note" ^ string_of_int i |];
          Filter.train_tokens filter Label.Spam
            [| "pills"; "cheap"; "junk" ^ string_of_int i |]
        done;
        let before = (Filter.classify filter target).Classify.verdict in
        let rng = Rng.create 6 in
        let plan =
          Focused_attack.craft rng ~target ~p:1.0 ~count:200
            ~header_pool:[| spam_header |]
        in
        Focused_attack.train filter plan;
        let after = (Filter.classify filter target).Classify.verdict in
        check_bool "was not spam" true (before <> Label.Spam_v);
        check_bool "now spam" true (after = Label.Spam_v));
    qtest "guess rate tracks p"
      QCheck2.Gen.(float_range 0.1 0.9)
      ~count:30
      (fun p ->
        let rng = Rng.create 7 in
        (* A big synthetic target gives the law of large numbers room. *)
        let words =
          String.concat " " (Array.to_list (Spamlab_corpus.Wordgen.words 0 400))
        in
        let big_target = Message.make words in
        let plan =
          Focused_attack.craft rng ~target:big_target ~p ~count:0
            ~header_pool:[||]
        in
        let guessed = float_of_int (List.length plan.Focused_attack.guessed) in
        Float.abs ((guessed /. 400.0) -. p) < 0.15);
  ]

(* ------------------------------------------------------------------ *)
(* Informed (budget-constrained) attack                                *)

let informed_tests =
  [
    test_case "select keeps the highest-probability words" (fun () ->
        let probs =
          [| ("low", 0.1); ("high", 0.5); ("mid", 0.3); ("zero", 0.0) |]
        in
        Alcotest.(check (array string))
          "top two" [| "high"; "mid" |]
          (Informed_attack.select probs ~budget:2));
    test_case "select never includes zero-probability words" (fun () ->
        let probs = [| ("a", 0.2); ("never", 0.0); ("b", 0.1) |] in
        let selected = Informed_attack.select probs ~budget:10 in
        check_int "only positive" 2 (Array.length selected);
        check_bool "no zero" false (Array.mem "never" selected));
    test_case "select breaks probability ties alphabetically" (fun () ->
        let probs = [| ("bbb", 0.2); ("aaa", 0.2); ("ccc", 0.2) |] in
        Alcotest.(check (array string))
          "sorted ties" [| "aaa"; "bbb" |]
          (Informed_attack.select probs ~budget:2));
    test_case "select validates the budget" (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Informed_attack.select: negative budget")
          (fun () ->
            ignore (Informed_attack.select [| ("a", 0.1) |] ~budget:(-1))));
    test_case "of_language_model takes the distribution head" (fun () ->
        let vocab =
          Spamlab_corpus.Vocabulary.create
            ~sizes:
              {
                Spamlab_corpus.Vocabulary.shared = 100;
                ham_specific = 50;
                spam_specific = 50;
                colloquial = 20;
                rare_standard = 100;
                rare_nonstandard = 100;
              }
            ~seed:3 ()
        in
        let model = Spamlab_corpus.Language_model.ham vocab in
        let selected = Informed_attack.of_language_model model ~budget:30 in
        check_int "budget honored" 30 (Array.length selected);
        (* Every selected word must outweigh every unselected one. *)
        let support = Spamlab_corpus.Language_model.support model in
        let selected_set = Array.to_list selected in
        let min_selected =
          List.fold_left
            (fun acc w ->
              Float.min acc (Spamlab_corpus.Language_model.word_prob model w))
            infinity selected_set
        in
        Array.iter
          (fun w ->
            if not (List.mem w selected_set) then
              check_bool ("dominates " ^ w) true
                (Spamlab_corpus.Language_model.word_prob model w
                <= min_selected +. 1e-12))
          support);
    test_case "estimate_from_sample measures document frequencies" (fun () ->
        let rng = Rng.create 9 in
        let sample _rng =
          Spamlab_email.Message.make "always sometimes"
        in
        (* "always" and "sometimes" appear in every sampled message. *)
        let freqs =
          Informed_attack.estimate_from_sample rng ~sample ~messages:10
            ~tokenizer:Tokenizer.spambayes
        in
        let get w =
          match Array.to_list freqs |> List.assoc_opt w with
          | Some f -> f
          | None -> Alcotest.fail ("missing " ^ w)
        in
        Alcotest.(check (float 1e-9)) "always" 1.0 (get "always");
        Alcotest.(check (float 1e-9)) "sometimes" 1.0 (get "sometimes"));
    test_case "estimate_from_sample validates message count" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Informed_attack.estimate_from_sample: messages <= 0")
          (fun () ->
            ignore
              (Informed_attack.estimate_from_sample (Rng.create 1)
                 ~sample:(fun _ -> Spamlab_email.Message.make "x")
                 ~messages:0 ~tokenizer:Tokenizer.spambayes)));
    test_case "attack packages a dictionary attack" (fun () ->
        let a = Informed_attack.attack ~name:"informed" ~words:[| "abc" |] in
        check_int "words" 1 (Dictionary_attack.word_count a));
  ]

(* ------------------------------------------------------------------ *)
(* Split (stealth) attack                                              *)

let split_tests =
  [
    test_case "chunks partition the word list" (fun () ->
        let words = Spamlab_corpus.Wordgen.words 0 103 in
        let chunks = Split_attack.chunks ~words ~chunk_size:25 in
        check_int "chunk count" 5 (Array.length chunks);
        let total = Array.fold_left (fun acc c -> acc + Array.length c) 0 chunks in
        check_int "covers all words" 103 total;
        let merged =
          Array.to_list chunks |> List.concat_map Array.to_list
          |> List.sort_uniq compare
        in
        check_int "no duplicates" 103 (List.length merged));
    test_case "round-robin spreads the head" (fun () ->
        let words = Spamlab_corpus.Wordgen.words 0 100 in
        let chunks = Split_attack.chunks ~words ~chunk_size:25 in
        (* The first four ranked words land in four distinct chunks. *)
        Array.iteri
          (fun i chunk -> check_bool "head word" true (chunk.(0) = words.(i)))
          chunks);
    test_case "chunks validates input" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Split_attack.chunks: empty word list") (fun () ->
            ignore (Split_attack.chunks ~words:[||] ~chunk_size:5));
        Alcotest.check_raises "bad size"
          (Invalid_argument "Split_attack.chunks: chunk_size must be positive")
          (fun () ->
            ignore
              (Split_attack.chunks ~words:[| "abc" |] ~chunk_size:0)));
    test_case "train matches the unsplit token budget" (fun () ->
        let words = Spamlab_corpus.Wordgen.words 0 60 in
        let split_filter = Filter.create () in
        Split_attack.train split_filter Tokenizer.spambayes ~words
          ~chunk_size:20 ~copies:4;
        let unsplit_filter = Filter.create () in
        Dictionary_attack.train unsplit_filter Tokenizer.spambayes
          (Dictionary_attack.make ~name:"u" ~words)
          ~count:4;
        (* Every word trained the same number of times; only the message
           count differs (12 chunks vs 4 full emails). *)
        Array.iter
          (fun w ->
            check_int w
              (Token_db.spam_count (Filter.db unsplit_filter) w)
              (Token_db.spam_count (Filter.db split_filter) w))
          words;
        check_int "split messages" 12 (Token_db.nspam (Filter.db split_filter));
        check_int "unsplit messages" 4
          (Token_db.nspam (Filter.db unsplit_filter)));
    test_case "size_percentile ranks against the corpus" (fun () ->
        let corpus_sizes = [| 10; 20; 30; 40 |] in
        Alcotest.(check (float 1e-9))
          "median-ish" 50.0
          (Split_attack.size_percentile ~corpus_sizes 25);
        Alcotest.(check (float 1e-9))
          "top" 100.0
          (Split_attack.size_percentile ~corpus_sizes 1000));
  ]

(* ------------------------------------------------------------------ *)
(* Expected score                                                      *)

let expected_score_tests =
  [
    test_case "estimate is bounded and deterministic per rng" (fun () ->
        let filter = Filter.create () in
        for _ = 1 to 5 do
          Filter.train_tokens filter Label.Ham [| "alpha"; "beta" |];
          Filter.train_tokens filter Label.Spam [| "gamma"; "delta" |]
        done;
        let sample rng =
          let words = if Rng.bool rng then "alpha beta" else "gamma delta" in
          Message.make words
        in
        let e1 = Expected_score.estimate filter ~sample ~samples:50 (Rng.create 1) in
        let e2 = Expected_score.estimate filter ~sample ~samples:50 (Rng.create 1) in
        check_bool "bounded" true (e1 >= 0.0 && e1 <= 1.0);
        Alcotest.(check (float 1e-12)) "deterministic" e1 e2);
    test_case "estimate rejects zero samples" (fun () ->
        let filter = Filter.create () in
        Alcotest.check_raises "zero"
          (Invalid_argument "Expected_score.estimate: samples <= 0") (fun () ->
            ignore
              (Expected_score.estimate filter
                 ~sample:(fun _ -> Message.make "x")
                 ~samples:0 (Rng.create 1))));
    test_case "attack raises the expected score (Section 3.4)" (fun () ->
        let filter = Filter.create () in
        for i = 1 to 30 do
          Filter.train_tokens filter Label.Ham
            [| "meeting"; "budget"; "plan" ^ string_of_int i |];
          Filter.train_tokens filter Label.Spam [| "pills"; "cheap" |]
        done;
        let sample _rng = Message.make "meeting budget agenda" in
        let clean =
          Expected_score.estimate filter ~sample ~samples:20 (Rng.create 2)
        in
        let attacked =
          Expected_score.estimate_under_attack ~baseline:filter
            ~attack_words:[| "meeting"; "budget"; "agenda" |] ~attack_count:30
            ~sample ~samples:20 (Rng.create 2)
        in
        check_bool "raised" true (attacked > clean);
        (* And the baseline filter must be untouched. *)
        Alcotest.(check (float 1e-12))
          "baseline intact" clean
          (Expected_score.estimate filter ~sample ~samples:20 (Rng.create 2)));
    test_case "more attack words never hurt (monotonicity)" (fun () ->
        let filter = Filter.create () in
        for i = 1 to 30 do
          Filter.train_tokens filter Label.Ham
            [| "meeting"; "budget"; "agenda"; "plan" ^ string_of_int i |];
          Filter.train_tokens filter Label.Spam [| "pills" |]
        done;
        let sample _rng = Message.make "meeting budget agenda" in
        let small =
          Expected_score.estimate_under_attack ~baseline:filter
            ~attack_words:[| "meeting" |] ~attack_count:30 ~sample ~samples:20
            (Rng.create 3)
        in
        let large =
          Expected_score.estimate_under_attack ~baseline:filter
            ~attack_words:[| "meeting"; "budget"; "agenda" |] ~attack_count:30
            ~sample ~samples:20 (Rng.create 3)
        in
        check_bool "superset at least as strong" true (large >= small -. 1e-12));
  ]

(* ------------------------------------------------------------------ *)
(* Pseudospam (ham-labeled) attack                                     *)

let pseudospam_tests =
  let campaign = Spamlab_corpus.Wordgen.words 1000 50 in
  let camouflage = Spamlab_corpus.Wordgen.words 5000 500 in
  [
    test_case "taxonomy is Causative Integrity" (fun () ->
        let t = Pseudospam_attack.taxonomy in
        check_bool "causative" true (t.Taxonomy.influence = Taxonomy.Causative);
        check_bool "integrity" true (t.Taxonomy.violation = Taxonomy.Integrity));
    test_case "craft validates" (fun () ->
        let rng = Rng.create 1 in
        Alcotest.check_raises "empty campaign"
          (Invalid_argument "Pseudospam_attack.craft: empty campaign vocabulary")
          (fun () ->
            ignore
              (Pseudospam_attack.craft rng ~campaign:[||] ~camouflage
                 ~camouflage_fraction:0.5 ~count:1));
        Alcotest.check_raises "bad fraction"
          (Invalid_argument
             "Pseudospam_attack.craft: camouflage_fraction outside [0,1)")
          (fun () ->
            ignore
              (Pseudospam_attack.craft rng ~campaign ~camouflage
                 ~camouflage_fraction:1.0 ~count:1)));
    test_case "camouflage fraction controls the mix" (fun () ->
        let rng = Rng.create 2 in
        let plan =
          Pseudospam_attack.craft rng ~campaign ~camouflage
            ~camouflage_fraction:0.5 ~count:3
        in
        check_int "campaign kept whole" 50
          (List.length plan.Pseudospam_attack.campaign_words);
        check_int "half camouflage" 50
          (List.length plan.Pseudospam_attack.camouflage_words);
        check_int "emails" 3 (List.length plan.Pseudospam_attack.emails);
        let none =
          Pseudospam_attack.craft rng ~campaign ~camouflage
            ~camouflage_fraction:0.0 ~count:1
        in
        check_int "no camouflage" 0
          (List.length none.Pseudospam_attack.camouflage_words));
    test_case "training as ham whitewashes campaign tokens" (fun () ->
        let filter = Filter.create () in
        for i = 1 to 20 do
          Filter.train_tokens filter Label.Ham
            [| "meeting"; "note" ^ string_of_int i |];
          Filter.train_tokens filter Label.Spam
            (Array.append [| "junk" ^ string_of_int i |] (Array.sub campaign 0 10))
        done;
        let probe = campaign.(0) in
        let before = Filter.token_score filter probe in
        check_bool "spammy before" true (before > 0.7);
        let rng = Rng.create 3 in
        let plan =
          Pseudospam_attack.craft rng ~campaign ~camouflage
            ~camouflage_fraction:0.3 ~count:30
        in
        Pseudospam_attack.train filter plan;
        let after = Filter.token_score filter probe in
        check_bool "hammy after" true (after < before);
        check_int "nham grew" 50 (Token_db.nham (Filter.db filter)));
  ]

(* ------------------------------------------------------------------ *)
(* Good-word (exploratory) attack                                      *)

let good_word_tests =
  let trained_filter () =
    let filter = Filter.create () in
    for i = 1 to 20 do
      Filter.train_tokens filter Label.Ham
        [| "meeting"; "budget"; "review"; "note" ^ string_of_int i |];
      Filter.train_tokens filter Label.Spam
        [| "pills"; "cheap"; "offer"; "junk" ^ string_of_int i |]
    done;
    filter
  in
  [
    test_case "taxonomy is Exploratory Integrity" (fun () ->
        let t = Good_word_attack.taxonomy in
        check_bool "exploratory" true
          (t.Taxonomy.influence = Taxonomy.Exploratory);
        check_bool "integrity" true (t.Taxonomy.violation = Taxonomy.Integrity));
    test_case "hammiest tokens are the recurring ham words" (fun () ->
        let filter = trained_filter () in
        let good = Good_word_attack.hammiest_tokens filter ~limit:3 in
        check_int "limit" 3 (List.length good);
        List.iter
          (fun w ->
            check_bool w true (List.mem w [ "meeting"; "budget"; "review" ]))
          good);
    test_case "hammiest tokens excludes unforgeable prefixed tokens" (fun () ->
        let filter = trained_filter () in
        Filter.train_tokens filter Label.Ham
          [| "subject:hello"; "from:addr:corp.example" |];
        Filter.train_tokens filter Label.Ham
          [| "subject:hello"; "from:addr:corp.example" |];
        let good = Good_word_attack.hammiest_tokens filter ~limit:10 in
        List.iter
          (fun w -> check_bool w false (String.contains w ':'))
          good);
    test_case "padding with good words evades the filter" (fun () ->
        let filter = trained_filter () in
        let spam =
          Spamlab_email.Message.make "pills cheap offer pills cheap offer"
        in
        check_bool "caught unpadded" true
          ((Filter.classify filter spam).Classify.verdict = Label.Spam_v);
        let good = Good_word_attack.hammiest_tokens filter ~limit:50 in
        let result =
          Good_word_attack.evade filter spam ~good_words:good ~max_words:50
        in
        check_bool "evaded" true (result.Good_word_attack.verdict <> Label.Spam_v);
        check_bool "used words" true (result.Good_word_attack.words_added > 0);
        (* The padded message still contains the original payload. *)
        let body = Spamlab_email.Message.body result.Good_word_attack.padded in
        check_bool "payload intact" true
          (String.length body > String.length "pills cheap offer"));
    test_case "zero budget leaves the message alone" (fun () ->
        let filter = trained_filter () in
        let spam = Spamlab_email.Message.make "pills cheap offer" in
        let result =
          Good_word_attack.evade filter spam ~good_words:[ "meeting" ]
            ~max_words:0
        in
        check_int "no words" 0 result.Good_word_attack.words_added;
        check_bool "still spam" true
          (result.Good_word_attack.verdict = Label.Spam_v));
    test_case "non-spam input returns immediately" (fun () ->
        let filter = trained_filter () in
        let ham = Spamlab_email.Message.make "meeting budget review" in
        let result =
          Good_word_attack.evade filter ham ~good_words:[ "meeting" ]
            ~max_words:100
        in
        check_int "no words" 0 result.Good_word_attack.words_added;
        check_bool "ham verdict" true
          (result.Good_word_attack.verdict = Label.Ham_v));
  ]

let () =
  Alcotest.run "attacks"
    [
      ("taxonomy", taxonomy_tests);
      ("attack_email", attack_email_tests);
      ("dictionary", dictionary_tests);
      ("focused", focused_tests);
      ("pseudospam", pseudospam_tests);
      ("good_word", good_word_tests);
      ("informed", informed_tests);
      ("split", split_tests);
      ("expected_score", expected_score_tests);
    ]
