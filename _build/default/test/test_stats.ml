(* Unit and property tests for the statistics substrate. *)

open Spamlab_stats

let check_float = Alcotest.(check (float 1e-9))
let check_close tolerance = Alcotest.(check (float tolerance))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let rng_tests =
  [
    test_case "same seed, same stream" (fun () ->
        let a = Rng.create 7 and b = Rng.create 7 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "bits" (Rng.bits64 a) (Rng.bits64 b)
        done);
    test_case "different seeds differ" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        check_bool "streams differ" true (Rng.bits64 a <> Rng.bits64 b));
    test_case "copy replays the stream" (fun () ->
        let a = Rng.create 99 in
        ignore (Rng.bits64 a);
        let b = Rng.copy a in
        Alcotest.(check int64) "next value equal" (Rng.bits64 a) (Rng.bits64 b));
    test_case "split diverges from parent" (fun () ->
        let a = Rng.create 5 in
        let child = Rng.split a in
        check_bool "child differs" true (Rng.bits64 child <> Rng.bits64 a));
    test_case "split_named ignores consumption position" (fun () ->
        let a = Rng.create 11 in
        let b = Rng.create 11 in
        ignore (Rng.bits64 b);
        ignore (Rng.bits64 b);
        let from_a = Rng.split_named a "x" in
        let from_b = Rng.split_named b "x" in
        Alcotest.(check int64) "same derived stream" (Rng.bits64 from_a)
          (Rng.bits64 from_b));
    test_case "split_named distinct names distinct streams" (fun () ->
        let r = Rng.create 3 in
        let a = Rng.split_named r "alpha" in
        let b = Rng.split_named r "beta" in
        check_bool "streams differ" true (Rng.bits64 a <> Rng.bits64 b));
    test_case "int rejects non-positive bound" (fun () ->
        let r = Rng.create 0 in
        Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
          (fun () -> ignore (Rng.int r 0)));
    test_case "int_in covers inclusive range" (fun () ->
        let r = Rng.create 17 in
        let seen = Array.make 5 false in
        for _ = 1 to 500 do
          seen.(Rng.int_in r 0 4) <- true
        done;
        Array.iteri (fun i s -> check_bool (string_of_int i) true s) seen);
    test_case "bernoulli extremes" (fun () ->
        let r = Rng.create 23 in
        for _ = 1 to 50 do
          check_bool "p=0" false (Rng.bernoulli r 0.0);
          check_bool "p=1" true (Rng.bernoulli r 1.0)
        done);
    test_case "sample_without_replacement distinct" (fun () ->
        let r = Rng.create 31 in
        let arr = Array.init 20 (fun i -> i) in
        let s = Rng.sample_without_replacement r 10 arr in
        check_int "length" 10 (Array.length s);
        let sorted = Array.copy s in
        Array.sort compare sorted;
        for i = 1 to 9 do
          check_bool "distinct" true (sorted.(i) <> sorted.(i - 1))
        done);
    test_case "sample_without_replacement rejects oversize" (fun () ->
        let r = Rng.create 1 in
        Alcotest.check_raises "k too big"
          (Invalid_argument "Rng.sample_without_replacement: k out of range")
          (fun () -> ignore (Rng.sample_without_replacement r 3 [| 1; 2 |])));
    test_case "choose rejects empty" (fun () ->
        let r = Rng.create 1 in
        Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
          (fun () -> ignore (Rng.choose r ([||] : int array))));
    test_case "seed_of" (fun () ->
        check_int "seed" 42 (Rng.seed_of (Rng.create 42)));
    qtest "float in [0,1)" QCheck2.Gen.int (fun seed ->
        let r = Rng.create seed in
        let x = Rng.float r in
        x >= 0.0 && x < 1.0);
    qtest "int within bound"
      QCheck2.Gen.(pair int (int_range 1 1000))
      (fun (seed, bound) ->
        let r = Rng.create seed in
        let x = Rng.int r bound in
        x >= 0 && x < bound);
    qtest "shuffle preserves multiset"
      QCheck2.Gen.(pair int (list_size (int_range 0 50) small_int))
      (fun (seed, xs) ->
        let r = Rng.create seed in
        let arr = Array.of_list xs in
        Rng.shuffle r arr;
        List.sort compare (Array.to_list arr) = List.sort compare xs);
  ]

(* ------------------------------------------------------------------ *)
(* Special functions                                                   *)

let special_tests =
  [
    test_case "log_gamma at integers" (fun () ->
        check_close 1e-10 "ln G(1)" 0.0 (Special.log_gamma 1.0);
        check_close 1e-10 "ln G(2)" 0.0 (Special.log_gamma 2.0);
        check_close 1e-9 "ln G(5)" (log 24.0) (Special.log_gamma 5.0);
        check_close 1e-9 "ln G(11)" (log 3628800.0) (Special.log_gamma 11.0));
    test_case "log_gamma at half-integers" (fun () ->
        check_close 1e-10 "ln G(0.5)" (0.5 *. log Float.pi)
          (Special.log_gamma 0.5);
        check_close 1e-9 "ln G(1.5)" (log (0.5 *. sqrt Float.pi))
          (Special.log_gamma 1.5));
    test_case "log_gamma rejects non-positive" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Special.log_gamma: requires x > 0") (fun () ->
            ignore (Special.log_gamma 0.0)));
    test_case "gamma_p + gamma_q = 1" (fun () ->
        List.iter
          (fun (a, x) ->
            check_close 1e-10 "sum" 1.0
              (Special.gamma_p a x +. Special.gamma_q a x))
          [ (0.5, 0.3); (1.0, 1.0); (2.5, 4.0); (10.0, 3.0); (75.0, 80.0) ]);
    test_case "gamma_p boundary values" (fun () ->
        check_float "P(a,0)=0" 0.0 (Special.gamma_p 2.0 0.0);
        check_float "Q(a,0)=1" 1.0 (Special.gamma_q 2.0 0.0);
        check_close 1e-9 "P(1,x)=1-e^-x" (1.0 -. exp (-2.0))
          (Special.gamma_p 1.0 2.0));
    test_case "chi2 df=2 matches closed form" (fun () ->
        List.iter
          (fun x ->
            check_close 1e-10 "cdf" (1.0 -. exp (-.x /. 2.0))
              (Special.chi2_cdf ~df:2 x);
            check_close 1e-10 "sf" (exp (-.x /. 2.0))
              (Special.chi2_sf ~df:2 x))
          [ 0.1; 1.0; 3.0; 10.0; 40.0 ]);
    test_case "chi2 df=4 closed form" (fun () ->
        (* CDF_4(x) = 1 - e^{-x/2}(1 + x/2) *)
        List.iter
          (fun x ->
            check_close 1e-10 "cdf"
              (1.0 -. (exp (-.x /. 2.0) *. (1.0 +. (x /. 2.0))))
              (Special.chi2_cdf ~df:4 x))
          [ 0.5; 2.0; 8.0 ]);
    test_case "chi2 median near df" (fun () ->
        (* median of chi2_k is about k(1 - 2/(9k))^3 *)
        let df = 10 in
        let median =
          float_of_int df
          *. ((1.0 -. (2.0 /. (9.0 *. float_of_int df))) ** 3.0)
        in
        check_close 1e-3 "cdf at median" 0.5 (Special.chi2_cdf ~df median));
    test_case "chi2 negative x" (fun () ->
        check_float "cdf" 0.0 (Special.chi2_cdf ~df:3 (-1.0));
        check_float "sf" 1.0 (Special.chi2_sf ~df:3 (-1.0)));
    test_case "chi2 rejects df<=0" (fun () ->
        Alcotest.check_raises "df 0"
          (Invalid_argument "Special.chi2_cdf: requires df > 0") (fun () ->
            ignore (Special.chi2_cdf ~df:0 1.0)));
    test_case "chi2 monotone in x" (fun () ->
        let prev = ref (-1.0) in
        for i = 0 to 50 do
          let x = float_of_int i *. 0.7 in
          let c = Special.chi2_cdf ~df:7 x in
          check_bool "non-decreasing" true (c >= !prev);
          prev := c
        done);
    test_case "erf values" (fun () ->
        check_float "erf 0" 0.0 (Special.erf 0.0);
        check_close 1e-9 "erf 1" 0.8427007929497149 (Special.erf 1.0);
        check_close 1e-9 "erf -1" (-0.8427007929497149) (Special.erf (-1.0));
        check_close 1e-9 "erfc 1" (1.0 -. 0.8427007929497149)
          (Special.erfc 1.0);
        check_close 1e-10 "erf 5 ~ 1" 1.0 (Special.erf 5.0));
    test_case "ln_beta symmetric and known" (fun () ->
        check_close 1e-10 "B(1,1)=1" 0.0 (Special.ln_beta 1.0 1.0);
        check_close 1e-9 "B(2,3)=1/12" (log (1.0 /. 12.0))
          (Special.ln_beta 2.0 3.0);
        check_close 1e-10 "symmetry" (Special.ln_beta 2.5 4.5)
          (Special.ln_beta 4.5 2.5));
    test_case "mean_log_factorial" (fun () ->
        check_float "0!" 0.0 (Special.mean_log_factorial 0);
        check_float "1!" 0.0 (Special.mean_log_factorial 1);
        check_close 1e-9 "6!" (log 720.0) (Special.mean_log_factorial 6));
    qtest "gamma_p in [0,1]"
      QCheck2.Gen.(pair (float_range 0.01 50.0) (float_range 0.0 100.0))
      (fun (a, x) ->
        let p = Special.gamma_p a x in
        p >= 0.0 && p <= 1.0);
  ]

(* ------------------------------------------------------------------ *)
(* Fisher                                                              *)

let fisher_tests =
  [
    test_case "statistic of all-ones is ~0" (fun () ->
        check_close 1e-6 "stat" 0.0 (Fisher.statistic [ 1.0; 1.0; 1.0 ]));
    test_case "statistic rejects empty" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Fisher.statistic: empty p-value list") (fun () ->
            ignore (Fisher.statistic [])));
    test_case "statistic rejects out-of-range" (fun () ->
        Alcotest.check_raises "p>1"
          (Invalid_argument "Fisher.statistic: p-value outside [0,1]")
          (fun () -> ignore (Fisher.statistic [ 1.5 ])));
    test_case "statistic finite at p=0 (clamped)" (fun () ->
        check_bool "finite" true (Float.is_finite (Fisher.statistic [ 0.0 ])));
    test_case "combine of strong evidence is small" (fun () ->
        check_bool "small" true (Fisher.combine [ 1e-6; 1e-6; 1e-6 ] < 1e-6));
    test_case "combine of weak evidence is large" (fun () ->
        check_bool "large" true (Fisher.combine [ 0.9; 0.8; 0.95 ] > 0.5));
    test_case "single p-value roundtrips through chi2" (fun () ->
        (* combine [p] = SF(-2 ln p, 2) = exp(ln p) = p *)
        List.iter
          (fun p -> check_close 1e-9 "identity" p (Fisher.combine [ p ]))
          [ 0.05; 0.2; 0.5; 0.9 ]);
    test_case "empty H and S are 1" (fun () ->
        check_float "H" 1.0 (Fisher.spambayes_h []);
        check_float "S" 1.0 (Fisher.spambayes_s []));
    test_case "indicator extremes" (fun () ->
        check_bool "spammy" true
          (Fisher.indicator [ 0.99; 0.99; 0.99; 0.99 ] > 0.95);
        check_bool "hammy" true
          (Fisher.indicator [ 0.01; 0.01; 0.01; 0.01 ] < 0.05));
    test_case "indicator of neutral scores is 0.5" (fun () ->
        check_close 1e-9 "neutral" 0.5 (Fisher.indicator [ 0.5; 0.5; 0.5 ]));
    qtest "indicator in [0,1]"
      QCheck2.Gen.(list_size (int_range 1 40) (float_range 0.001 0.999))
      (fun fs ->
        let i = Fisher.indicator fs in
        i >= 0.0 && i <= 1.0);
    qtest "indicator symmetric under complement"
      QCheck2.Gen.(list_size (int_range 1 20) (float_range 0.01 0.99))
      (fun fs ->
        let i = Fisher.indicator fs in
        let i' = Fisher.indicator (List.map (fun f -> 1.0 -. f) fs) in
        Float.abs (i +. i' -. 1.0) < 1e-9);
    qtest "indicator monotone in each score"
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 15) (float_range 0.05 0.9))
          (float_range 0.0 0.09))
      (fun (fs, bump) ->
        (* Raising the first token score never lowers I (the Section 3.4
           monotonicity observation). *)
        match fs with
        | [] -> true
        | f :: rest ->
            Fisher.indicator ((f +. bump) :: rest)
            >= Fisher.indicator (f :: rest) -. 1e-12);
  ]

(* ------------------------------------------------------------------ *)
(* Sampler                                                             *)

let sampler_tests =
  [
    test_case "categorical rejects bad weights" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Sampler.categorical: empty weights") (fun () ->
            ignore (Sampler.categorical [||]));
        Alcotest.check_raises "negative"
          (Invalid_argument "Sampler.categorical: negative or non-finite weight")
          (fun () -> ignore (Sampler.categorical [| 1.0; -1.0 |]));
        Alcotest.check_raises "zero sum"
          (Invalid_argument
             "Sampler.categorical: weights must sum to a positive finite")
          (fun () -> ignore (Sampler.categorical [| 0.0; 0.0 |])));
    test_case "categorical_prob normalizes" (fun () ->
        let c = Sampler.categorical [| 2.0; 6.0 |] in
        check_close 1e-12 "p0" 0.25 (Sampler.categorical_prob c 0);
        check_close 1e-12 "p1" 0.75 (Sampler.categorical_prob c 1);
        check_int "support" 2 (Sampler.categorical_support c));
    test_case "categorical draw matches weights" (fun () ->
        let c = Sampler.categorical [| 1.0; 3.0 |] in
        let rng = Rng.create 123 in
        let n = 20_000 in
        let ones = ref 0 in
        for _ = 1 to n do
          if Sampler.categorical_draw c rng = 1 then incr ones
        done;
        let freq = float_of_int !ones /. float_of_int n in
        check_bool "within 2%" true (Float.abs (freq -. 0.75) < 0.02));
    test_case "categorical draw over degenerate distribution" (fun () ->
        let c = Sampler.categorical [| 0.0; 1.0; 0.0 |] in
        let rng = Rng.create 5 in
        for _ = 1 to 100 do
          check_int "always 1" 1 (Sampler.categorical_draw c rng)
        done);
    test_case "zipf rank 0 is most frequent" (fun () ->
        let z = Sampler.zipf 100 in
        check_bool "p0 > p1" true
          (Sampler.categorical_prob z 0 > Sampler.categorical_prob z 1);
        check_bool "p1 > p50" true
          (Sampler.categorical_prob z 1 > Sampler.categorical_prob z 50));
    test_case "zipf rejects bad arguments" (fun () ->
        Alcotest.check_raises "n=0"
          (Invalid_argument "Sampler.zipf: n must be positive") (fun () ->
            ignore (Sampler.zipf 0)));
    test_case "binomial bounds and extremes" (fun () ->
        let rng = Rng.create 9 in
        check_int "p=0" 0 (Sampler.binomial rng ~n:10 ~p:0.0);
        check_int "p=1" 10 (Sampler.binomial rng ~n:10 ~p:1.0);
        for _ = 1 to 200 do
          let k = Sampler.binomial rng ~n:20 ~p:0.3 in
          check_bool "in range" true (k >= 0 && k <= 20)
        done);
    test_case "binomial mean approximately np" (fun () ->
        let rng = Rng.create 77 in
        let total = ref 0 in
        let reps = 5_000 in
        for _ = 1 to reps do
          total := !total + Sampler.binomial rng ~n:40 ~p:0.25
        done;
        let mean = float_of_int !total /. float_of_int reps in
        check_bool "near 10" true (Float.abs (mean -. 10.0) < 0.3));
    test_case "poisson small and large means" (fun () ->
        let rng = Rng.create 13 in
        check_int "lambda 0" 0 (Sampler.poisson rng 0.0);
        let total = ref 0 in
        for _ = 1 to 3000 do
          total := !total + Sampler.poisson rng 4.0
        done;
        let mean = float_of_int !total /. 3000.0 in
        check_bool "near 4" true (Float.abs (mean -. 4.0) < 0.3);
        let big = Sampler.poisson rng 500.0 in
        check_bool "large sane" true (big > 300 && big < 700));
    test_case "geometric p=1 is 0" (fun () ->
        let rng = Rng.create 2 in
        for _ = 1 to 20 do
          check_int "zero" 0 (Sampler.geometric rng 1.0)
        done);
    test_case "geometric mean near (1-p)/p" (fun () ->
        let rng = Rng.create 3 in
        let total = ref 0 in
        for _ = 1 to 5000 do
          total := !total + Sampler.geometric rng 0.25
        done;
        let mean = float_of_int !total /. 5000.0 in
        check_bool "near 3" true (Float.abs (mean -. 3.0) < 0.3));
    test_case "round_stochastic on integers" (fun () ->
        let rng = Rng.create 4 in
        for _ = 1 to 20 do
          check_int "exact" 7 (Sampler.round_stochastic rng 7.0)
        done);
    test_case "round_stochastic unbiased" (fun () ->
        let rng = Rng.create 6 in
        let total = ref 0 in
        for _ = 1 to 10_000 do
          total := !total + Sampler.round_stochastic rng 2.3
        done;
        let mean = float_of_int !total /. 10_000.0 in
        check_bool "near 2.3" true (Float.abs (mean -. 2.3) < 0.05));
  ]

(* ------------------------------------------------------------------ *)
(* Summary + Histogram                                                 *)

let summary_tests =
  [
    test_case "mean and variance" (fun () ->
        let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
        check_float "mean" 2.5 (Summary.mean xs);
        check_close 1e-12 "variance" (5.0 /. 3.0) (Summary.variance xs);
        check_float "single variance" 0.0 (Summary.variance [| 5.0 |]));
    test_case "empty arrays rejected" (fun () ->
        Alcotest.check_raises "mean"
          (Invalid_argument "Summary.mean: empty array") (fun () ->
            ignore (Summary.mean [||])));
    test_case "median odd and even" (fun () ->
        check_float "odd" 3.0 (Summary.median [| 5.0; 1.0; 3.0 |]);
        check_float "even" 2.5 (Summary.median [| 4.0; 1.0; 2.0; 3.0 |]));
    test_case "quantile endpoints" (fun () ->
        let xs = [| 9.0; 1.0; 5.0 |] in
        check_float "q0" 1.0 (Summary.quantile xs 0.0);
        check_float "q1" 9.0 (Summary.quantile xs 1.0);
        check_float "q0.5" 5.0 (Summary.quantile xs 0.5));
    test_case "quantile interpolates" (fun () ->
        check_float "q0.25" 1.5 (Summary.quantile [| 1.0; 2.0; 3.0 |] 0.25));
    test_case "min_max" (fun () ->
        let lo, hi = Summary.min_max [| 3.0; -1.0; 7.0 |] in
        check_float "lo" (-1.0) lo;
        check_float "hi" 7.0 hi);
    test_case "mean_ci95 of constant data" (fun () ->
        let m, hw = Summary.mean_ci95 [| 2.0; 2.0; 2.0 |] in
        check_float "mean" 2.0 m;
        check_float "halfwidth" 0.0 hw);
    qtest "online matches batch"
      QCheck2.Gen.(list_size (int_range 1 60) (float_range (-100.) 100.))
      (fun xs ->
        let arr = Array.of_list xs in
        let o = Summary.online_create () in
        Array.iter (Summary.online_add o) arr;
        Float.abs (Summary.online_mean o -. Summary.mean arr) < 1e-9
        && Float.abs (Summary.online_variance o -. Summary.variance arr)
           < 1e-7);
    qtest "quantile between min and max"
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 40) (float_range (-50.) 50.))
          (float_range 0.0 1.0))
      (fun (xs, q) ->
        let arr = Array.of_list xs in
        let lo, hi = Summary.min_max arr in
        let v = Summary.quantile arr q in
        v >= lo -. 1e-9 && v <= hi +. 1e-9);
  ]

let histogram_tests =
  [
    test_case "counts land in bins" (fun () ->
        let h = Histogram.create ~bins:4 ~lo:0.0 ~hi:4.0 () in
        Histogram.add_all h [| 0.5; 1.5; 1.6; 3.9 |];
        check_int "total" 4 (Histogram.count h);
        check_int "bin0" 1 (Histogram.bin_count h 0);
        check_int "bin1" 2 (Histogram.bin_count h 1);
        check_int "bin3" 1 (Histogram.bin_count h 3));
    test_case "out-of-range clamps to edges" (fun () ->
        let h = Histogram.create ~bins:2 ~lo:0.0 ~hi:1.0 () in
        Histogram.add h (-5.0);
        Histogram.add h 5.0;
        check_int "low edge" 1 (Histogram.bin_count h 0);
        check_int "high edge" 1 (Histogram.bin_count h 1));
    test_case "edges" (fun () ->
        let h = Histogram.create ~bins:2 ~lo:0.0 ~hi:1.0 () in
        let lo, hi = Histogram.bin_edges h 1 in
        check_float "lo" 0.5 lo;
        check_float "hi" 1.0 hi);
    test_case "invalid construction" (fun () ->
        Alcotest.check_raises "bins 0"
          (Invalid_argument "Histogram.create: bins must be positive")
          (fun () -> ignore (Histogram.create ~bins:0 ~lo:0.0 ~hi:1.0 ()));
        Alcotest.check_raises "hi<=lo"
          (Invalid_argument "Histogram.create: hi must exceed lo") (fun () ->
            ignore (Histogram.create ~lo:1.0 ~hi:1.0 ())));
    test_case "render has one line per bin" (fun () ->
        let h = Histogram.create ~bins:5 ~lo:0.0 ~hi:1.0 () in
        Histogram.add h 0.3;
        let lines =
          String.split_on_char '\n' (Histogram.render h)
          |> List.filter (fun l -> l <> "")
        in
        check_int "lines" 5 (List.length lines));
    test_case "counts returns a copy" (fun () ->
        let h = Histogram.create ~bins:2 ~lo:0.0 ~hi:1.0 () in
        Histogram.add h 0.1;
        let c = Histogram.counts h in
        c.(0) <- 99;
        check_int "original intact" 1 (Histogram.bin_count h 0));
  ]

let () =
  Alcotest.run "stats"
    [
      ("rng", rng_tests);
      ("special", special_tests);
      ("fisher", fisher_tests);
      ("sampler", sampler_tests);
      ("summary", summary_tests);
      ("histogram", histogram_tests);
    ]
