(* Unit and property tests for the email substrate. *)

open Spamlab_email

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_opt_str = Alcotest.(check (option string))
let test_case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Header                                                              *)

let header_tests =
  [
    test_case "find is case-insensitive" (fun () ->
        let h = Header.of_list [ ("Subject", "hello") ] in
        check_opt_str "lower" (Some "hello") (Header.find h "subject");
        check_opt_str "upper" (Some "hello") (Header.find h "SUBJECT");
        check_opt_str "missing" None (Header.find h "from"));
    test_case "find returns first of repeated fields" (fun () ->
        let h = Header.of_list [ ("Received", "a"); ("Received", "b") ] in
        check_opt_str "first" (Some "a") (Header.find h "received");
        Alcotest.(check (list string))
          "all" [ "a"; "b" ]
          (Header.find_all h "received"));
    test_case "add preserves order" (fun () ->
        let h = Header.add (Header.add Header.empty "A" "1") "B" "2" in
        Alcotest.(check (list (pair string string)))
          "order"
          [ ("A", "1"); ("B", "2") ]
          (Header.to_list h));
    test_case "remove deletes all occurrences" (fun () ->
        let h = Header.of_list [ ("X", "1"); ("Y", "2"); ("x", "3") ] in
        let h = Header.remove h "x" in
        check_int "length" 1 (Header.length h);
        check_bool "y remains" true (Header.mem h "y"));
    test_case "replace keeps a single field" (fun () ->
        let h = Header.of_list [ ("X", "1"); ("X", "2") ] in
        let h = Header.replace h "X" "3" in
        Alcotest.(check (list string)) "one" [ "3" ] (Header.find_all h "x"));
    test_case "canonical_name" (fun () ->
        check_str "message-id" "Message-Id" (Header.canonical_name "message-id");
        check_str "SUBJECT" "Subject" (Header.canonical_name "SUBJECT");
        check_str "x-mailer" "X-Mailer" (Header.canonical_name "X-MAILER"));
    test_case "equal ignores name case" (fun () ->
        check_bool "equal" true
          (Header.equal
             (Header.of_list [ ("subject", "x") ])
             (Header.of_list [ ("Subject", "x") ]));
        check_bool "value case matters" false
          (Header.equal
             (Header.of_list [ ("subject", "x") ])
             (Header.of_list [ ("subject", "X") ])));
    test_case "fold accumulates in order" (fun () ->
        let h = Header.of_list [ ("A", "1"); ("B", "2") ] in
        check_str "concat" "A=1;B=2;"
          (Header.fold (fun acc n v -> acc ^ n ^ "=" ^ v ^ ";") "" h));
    test_case "is_empty" (fun () ->
        check_bool "empty" true (Header.is_empty Header.empty);
        check_bool "non-empty" false
          (Header.is_empty (Header.of_list [ ("a", "b") ])));
  ]

(* ------------------------------------------------------------------ *)
(* Address                                                             *)

let address_tests =
  [
    test_case "parse bare spec" (fun () ->
        match Address.of_string "alice@example.com" with
        | Ok a ->
            check_str "local" "alice" a.Address.local;
            check_str "domain" "example.com" a.Address.domain;
            check_bool "no name" true (a.Address.display_name = None)
        | Error e -> Alcotest.fail e);
    test_case "parse with display name" (fun () ->
        match Address.of_string "Alice Smith <alice@example.com>" with
        | Ok a ->
            check_opt_str "name" (Some "Alice Smith") a.Address.display_name;
            check_str "spec" "alice@example.com" (Address.address_spec a)
        | Error e -> Alcotest.fail e);
    test_case "parse angle without name" (fun () ->
        match Address.of_string "<bob@host.net>" with
        | Ok a -> check_str "local" "bob" a.Address.local
        | Error e -> Alcotest.fail e);
    test_case "reject malformed" (fun () ->
        List.iter
          (fun s -> check_bool s true (Result.is_error (Address.of_string s)))
          [ "no-at-sign"; "a@"; "@b"; "a@b@c <"; "Alice <alice>"; "" ]);
    test_case "round trip" (fun () ->
        List.iter
          (fun s ->
            match Address.of_string s with
            | Ok a -> check_str s s (Address.to_string a)
            | Error e -> Alcotest.fail e)
          [ "x@y.z"; "Bob <b@c.d>" ]);
    test_case "make validates" (fun () ->
        Alcotest.check_raises "space in local"
          (Invalid_argument "Address.make: bad local part") (fun () ->
            ignore (Address.make ~local:"a b" ~domain:"c" ())));
    test_case "equal: domain case-insensitive, local sensitive" (fun () ->
        let a = Address.make ~local:"x" ~domain:"EXAMPLE.com" () in
        let b = Address.make ~local:"x" ~domain:"example.COM" () in
        let c = Address.make ~local:"X" ~domain:"example.com" () in
        check_bool "domains fold" true (Address.equal a b);
        check_bool "locals don't" false (Address.equal a c));
  ]

(* ------------------------------------------------------------------ *)
(* Message                                                             *)

let message_tests =
  [
    test_case "accessors" (fun () ->
        let msg =
          Message.make
            ~headers:
              (Header.of_list
                 [ ("Subject", "greetings"); ("From", "Bob <b@c.d>") ])
            "body text"
        in
        check_opt_str "subject" (Some "greetings") (Message.subject msg);
        (match Message.from_address msg with
        | Some a -> check_str "from" "b@c.d" (Address.address_spec a)
        | None -> Alcotest.fail "expected from");
        check_bool "no to" true (Message.to_address msg = None);
        check_str "body" "body text" (Message.body msg));
    test_case "with_body and with_headers" (fun () ->
        let msg = Message.make "a" in
        let msg' = Message.with_body msg "bb" in
        check_str "new body" "bb" (Message.body msg');
        check_str "old intact" "a" (Message.body msg));
    test_case "size_bytes counts headers and body" (fun () ->
        let msg = Message.make ~headers:(Header.of_list [ ("A", "b") ]) "xyz" in
        check_int "size" (1 + 2 + 1 + 2 + 2 + 3) (Message.size_bytes msg));
  ]

(* ------------------------------------------------------------------ *)
(* Rfc2822                                                             *)

let rfc2822_tests =
  [
    test_case "print then parse round-trips" (fun () ->
        let msg =
          Message.make
            ~headers:
              (Header.of_list [ ("From", "a@b.c"); ("Subject", "hi there") ])
            "line one\nline two\n"
        in
        match Rfc2822.parse (Rfc2822.print msg) with
        | Ok msg' -> check_bool "equal" true (Message.equal msg msg')
        | Error e -> Alcotest.fail e);
    test_case "parses folded headers" (fun () ->
        let wire = "Subject: a long\n\tfolded value\n\nbody" in
        match Rfc2822.parse wire with
        | Ok msg ->
            check_opt_str "unfolded" (Some "a long folded value")
              (Message.subject msg);
            check_str "body" "body" (Message.body msg)
        | Error e -> Alcotest.fail e);
    test_case "parses CRLF line endings" (fun () ->
        let wire = "Subject: x\r\n\r\nbody\r\n" in
        match Rfc2822.parse wire with
        | Ok msg ->
            check_opt_str "subject" (Some "x") (Message.subject msg);
            check_str "body" "body\n" (Message.body msg)
        | Error e -> Alcotest.fail e);
    test_case "empty body" (fun () ->
        match Rfc2822.parse "A: b\n\n" with
        | Ok msg -> check_str "body" "" (Message.body msg)
        | Error e -> Alcotest.fail e);
    test_case "no headers at all" (fun () ->
        match Rfc2822.parse "\njust a body" with
        | Ok msg ->
            check_int "no headers" 0 (Header.length (Message.headers msg));
            check_str "body" "just a body" (Message.body msg)
        | Error e -> Alcotest.fail e);
    test_case "rejects header line without colon" (fun () ->
        check_bool "error" true
          (Result.is_error (Rfc2822.parse "not a header\n\nbody")));
    test_case "rejects leading continuation" (fun () ->
        check_bool "error" true
          (Result.is_error (Rfc2822.parse " continuation\n\nbody")));
    test_case "parse_exn raises on bad input" (fun () ->
        check_bool "raises" true
          (try
             ignore (Rfc2822.parse_exn "bad line\n\n");
             false
           with Failure _ -> true));
    test_case "embedded newline in value is folded on print" (fun () ->
        let msg = Message.make ~headers:(Header.of_list [ ("X", "one\ntwo") ]) "" in
        let wire = Rfc2822.print msg in
        check_bool "folded" true (Option.is_some (String.index_opt wire '\t')));
    qtest "round-trip arbitrary safe messages"
      QCheck2.Gen.(
        pair
          (small_list
             (pair
                (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
                (string_size ~gen:(char_range 'a' 'z') (int_range 0 20))))
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 100)))
      (fun (headers, body) ->
        let msg = Message.make ~headers:(Header.of_list headers) body in
        match Rfc2822.parse (Rfc2822.print msg) with
        | Ok msg' -> Message.equal msg msg'
        | Error _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Mbox                                                                *)

let sample_messages =
  [
    Message.make ~headers:(Header.of_list [ ("Subject", "one") ]) "first body";
    Message.make
      ~headers:(Header.of_list [ ("Subject", "two"); ("From", "x@y.z") ])
      "second body\nwith two lines";
    Message.make "headerless body";
  ]

let mbox_tests =
  [
    test_case "round-trips a mailbox" (fun () ->
        match Mbox.parse (Mbox.print sample_messages) with
        | Ok msgs ->
            check_int "count" 3 (List.length msgs);
            List.iter2
              (fun a b -> check_bool "equal" true (Message.equal a b))
              sample_messages msgs
        | Error e -> Alcotest.fail e);
    test_case "quotes From lines in bodies" (fun () ->
        let tricky = Message.make "From here on\n>From quoted\nnormal line" in
        match Mbox.parse (Mbox.print [ tricky ]) with
        | Ok [ msg ] ->
            check_str "body preserved" "From here on\n>From quoted\nnormal line"
              (Message.body msg)
        | Ok _ -> Alcotest.fail "wrong count"
        | Error e -> Alcotest.fail e);
    test_case "empty mailbox" (fun () ->
        (match Mbox.parse "" with
        | Ok [] -> ()
        | Ok _ -> Alcotest.fail "expected empty"
        | Error e -> Alcotest.fail e);
        check_str "print empty" "" (Mbox.print []));
    test_case "file round-trip" (fun () ->
        let path = Filename.temp_file "spamlab" ".mbox" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Mbox.write_file path sample_messages;
            match Mbox.read_file path with
            | Ok msgs -> check_int "count" 3 (List.length msgs)
            | Error e -> Alcotest.fail e));
    test_case "garbage is an error" (fun () ->
        check_bool "error" true
          (Result.is_error (Mbox.parse "no separator here")));
  ]

let () =
  Alcotest.run "email"
    [
      ("header", header_tests);
      ("address", address_tests);
      ("message", message_tests);
      ("rfc2822", rfc2822_tests);
      ("mbox", mbox_tests);
    ]
