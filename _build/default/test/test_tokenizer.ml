(* Tests for the tokenizer substrate: the SpamBayes tokenization rules
   and the BogoFilter / SpamAssassin variants. *)

open Spamlab_tokenizer
module Header = Spamlab_email.Header
module Message = Spamlab_email.Message

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list string))
let test_case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let contains token tokens = List.mem token tokens

(* ------------------------------------------------------------------ *)
(* Text                                                                *)

let text_tests =
  [
    test_case "split_whitespace" (fun () ->
        check_list "split" [ "a"; "bb"; "c" ]
          (Text.split_whitespace "  a\tbb\n c\r\n");
        check_list "empty" [] (Text.split_whitespace " \t\n"));
    test_case "strip_punctuation keeps word chars" (fun () ->
        check_str "parens" "word" (Text.strip_punctuation "(word)");
        check_str "inner apostrophe" "don't" (Text.strip_punctuation "don't!");
        check_str "dollar" "$99" (Text.strip_punctuation "$99,");
        check_str "hyphen" "v-i-a-g-r-a" (Text.strip_punctuation "v-i-a-g-r-a.");
        check_str "all punct" "" (Text.strip_punctuation "..!?"));
    test_case "words lowercases and cleans" (fun () ->
        check_list "words" [ "hello"; "world" ] (Text.words "Hello, WORLD!"));
    test_case "has_high_bit" (fun () ->
        check_bool "ascii" false (Text.has_high_bit "plain ascii");
        check_bool "8bit" true (Text.has_high_bit "caf\xc3\xa9"));
    test_case "count_occurrences" (fun () ->
        check_int "count" 3 (Text.count_occurrences 'a' "banana"));
  ]

(* ------------------------------------------------------------------ *)
(* Url                                                                 *)

let url_tests =
  [
    test_case "looks_like_url" (fun () ->
        check_bool "http" true (Url.looks_like_url "http://example.com");
        check_bool "https" true (Url.looks_like_url "https://a.b/c");
        check_bool "www" true (Url.looks_like_url "www.example.com");
        check_bool "plain word" false (Url.looks_like_url "hello");
        check_bool "colon no scheme" false (Url.looks_like_url "a:b"));
    test_case "crack extracts proto and host parts" (fun () ->
        let tokens = Url.crack "http://shop.example.com/buy/cheap-pills" in
        check_bool "proto" true (contains "proto:http" tokens);
        check_bool "host head" true (contains "url:shop" tokens);
        check_bool "host mid" true (contains "url:example" tokens);
        check_bool "tld" true (contains "url:com" tokens);
        check_bool "path word" true (contains "url:buy" tokens);
        check_bool "path hyphen split" true (contains "url:cheap" tokens));
    test_case "crack strips port and userinfo" (fun () ->
        let tokens = Url.crack "http://user@host.net:8080/x" in
        check_bool "host" true (contains "url:host" tokens);
        check_bool "no user" false (contains "url:user@host" tokens);
        check_bool "no port" false (contains "url:8080" tokens));
    test_case "crack www without scheme defaults to http" (fun () ->
        let tokens = Url.crack "www.example.org" in
        check_bool "proto" true (contains "proto:http" tokens);
        check_bool "www part" true (contains "url:www" tokens));
    test_case "crack non-url is empty" (fun () ->
        check_list "empty" [] (Url.crack "not-a-url"));
    test_case "crack drops short path fragments" (fun () ->
        let tokens = Url.crack "http://a.b/x" in
        check_bool "no 1-char path token" false (contains "url:x" tokens));
  ]

(* ------------------------------------------------------------------ *)
(* SpamBayes tokenizer                                                 *)

let msg ?(headers = []) body =
  Message.make ~headers:(Header.of_list headers) body

let sb_tests =
  [
    test_case "keeps words of length 3..12" (fun () ->
        let tokens = Spambayes_tok.tokenize_body_text "ab abc twelveletter abcdefghijkl" in
        check_bool "2 dropped" false (contains "ab" tokens);
        check_bool "3 kept" true (contains "abc" tokens);
        check_bool "12 kept" true (contains "abcdefghijkl" tokens);
        check_bool "13 not kept raw" false (contains "twelveletters" tokens));
    test_case "long words become skip tokens" (fun () ->
        let tokens = Spambayes_tok.tokenize_body_text "supercalifragilistic" in
        check_list "skip" [ "skip:s 20" ] tokens);
    test_case "email addresses crack into parts" (fun () ->
        let tokens = Spambayes_tok.tokenize_body_text "mail bob@corp.example.com now" in
        check_bool "name" true (contains "email name:bob" tokens);
        check_bool "domain part" true (contains "email addr:corp" tokens);
        check_bool "tld" true (contains "email addr:com" tokens));
    test_case "urls crack in bodies" (fun () ->
        let tokens = Spambayes_tok.tokenize_body_text "visit http://spam.biz/offer today" in
        check_bool "proto" true (contains "proto:http" tokens);
        check_bool "host" true (contains "url:spam" tokens));
    test_case "subject words emitted prefixed and bare" (fun () ->
        let tokens =
          Tokenizer.tokenize Tokenizer.spambayes
            (msg ~headers:[ ("Subject", "urgent offer") ] "body words here")
        in
        check_bool "prefixed" true (contains "subject:urgent" tokens);
        check_bool "bare" true (contains "urgent" tokens));
    test_case "from address tokens" (fun () ->
        let tokens =
          Tokenizer.tokenize Tokenizer.spambayes
            (msg ~headers:[ ("From", "Eve Attacker <eve@evil.example>") ] "x y z")
        in
        check_bool "addr" true (contains "from:addr:evil.example" tokens);
        check_bool "local" true (contains "from:name:eve" tokens);
        check_bool "display name" true (contains "from:name:eve" tokens));
    test_case "8-bit body yields meta token" (fun () ->
        let tokens =
          Spambayes_tok.tokenize (msg "caf\xc3\xa9 caf\xc3\xa9 caf\xc3\xa9")
        in
        check_bool "has 8bit token" true
          (List.exists
             (fun t -> String.length t > 5 && String.sub t 0 5 = "8bit%")
             tokens));
    test_case "ascii body has no 8bit token" (fun () ->
        let tokens = Spambayes_tok.tokenize (msg "plain words only") in
        check_bool "none" false
          (List.exists
             (fun t -> String.length t > 5 && String.sub t 0 5 = "8bit%")
             tokens));
    test_case "empty-header message tokenizes body only" (fun () ->
        let tokens = Tokenizer.tokenize Tokenizer.spambayes (msg "alpha beta gamma") in
        check_list "body" [ "alpha"; "beta"; "gamma" ] tokens);
    test_case "constants" (fun () ->
        check_int "min" 3 Spambayes_tok.min_word_length;
        check_int "max" 12 Spambayes_tok.max_word_length);
  ]

(* ------------------------------------------------------------------ *)
(* Variants                                                            *)

let variant_tests =
  [
    test_case "bogofilter keeps longer tokens" (fun () ->
        let tokens =
          Tokenizer.tokenize Tokenizer.bogofilter (msg "extraordinarily long")
        in
        check_bool "long token kept" true (contains "extraordinarily" tokens));
    test_case "bogofilter prefixes every header" (fun () ->
        let tokens =
          Tokenizer.tokenize Tokenizer.bogofilter
            (msg ~headers:[ ("X-Mailer", "bulkblast pro") ] "body")
        in
        check_bool "prefixed" true (contains "x-mailer:bulkblast" tokens));
    test_case "spamassassin stems long words" (fun () ->
        let tokens =
          Tokenizer.tokenize Tokenizer.spamassassin
            (msg "extraordinarilylongword short")
        in
        check_bool "stem" true (contains "sk:extra" tokens);
        check_bool "short kept" true (contains "short" tokens));
    test_case "spamassassin keeps URL hostname only" (fun () ->
        let tokens =
          Tokenizer.tokenize Tokenizer.spamassassin (msg "http://spam.biz/offer")
        in
        check_bool "host token" true (contains "url:spam" tokens);
        check_bool "no path" false (contains "url:offer" tokens));
    test_case "registry finds all variants" (fun () ->
        check_int "three" 3 (List.length Tokenizer.all);
        check_bool "spambayes" true (Tokenizer.find "spambayes" <> None);
        check_bool "bogofilter" true (Tokenizer.find "bogofilter" <> None);
        check_bool "spamassassin" true (Tokenizer.find "spamassassin" <> None);
        check_bool "unknown" true (Tokenizer.find "nope" = None));
    test_case "variants differ on the same message" (fun () ->
        let m =
          msg ~headers:[ ("Subject", "offer") ] "extraordinarilylongword here"
        in
        let sb = Tokenizer.tokenize Tokenizer.spambayes m in
        let bf = Tokenizer.tokenize Tokenizer.bogofilter m in
        check_bool "differ" true (sb <> bf));
  ]

(* ------------------------------------------------------------------ *)
(* unique_tokens                                                       *)

let unique_tests =
  [
    test_case "unique_tokens deduplicates and sorts" (fun () ->
        let u = Tokenizer.unique_tokens Tokenizer.spambayes (msg "bbb aaa bbb aaa ccc") in
        Alcotest.(check (array string)) "sorted" [| "aaa"; "bbb"; "ccc" |] u);
    qtest "unique_of_list is sorted and distinct"
      QCheck2.Gen.(
        list_size (int_range 0 50)
          (string_size ~gen:(char_range 'a' 'e') (int_range 1 3)))
      (fun tokens ->
        let u = Tokenizer.unique_of_list tokens in
        let ok_sorted = ref true in
        Array.iteri
          (fun i t -> if i > 0 && String.compare u.(i - 1) t >= 0 then ok_sorted := false)
          u;
        !ok_sorted
        && List.sort_uniq String.compare tokens = Array.to_list u);
    qtest "tokenize then unique never exceeds stream length"
      QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 80))
      (fun body ->
        let m = msg body in
        Array.length (Tokenizer.unique_tokens Tokenizer.spambayes m)
        <= List.length (Tokenizer.tokenize Tokenizer.spambayes m));
  ]

let () =
  Alcotest.run "tokenizer"
    [
      ("text", text_tests);
      ("url", url_tests);
      ("spambayes", sb_tests);
      ("variants", variant_tests);
      ("unique", unique_tests);
    ]
