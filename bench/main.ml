(* Bench harness: regenerates every table and figure of the paper
   (through Spamlab_eval.Registry) and micro-benchmarks the hot paths
   with bechamel.

   Usage:
     main.exe                     run every experiment at --scale (default 0.2)
     main.exe fig1 fig2           run specific experiments
     main.exe perf                run the bechamel micro-benchmarks
     main.exe all perf            both
     main.exe --scale 1.0 all     paper-scale run
     main.exe --seed 7 fig3       change the world seed
     main.exe --jobs 8 fig1       fan experiment cells over 8 domains
                                  (default: SPAMLAB_JOBS if set, else the
                                  recommended domain count; results are
                                  identical at every jobs value)
     main.exe --trace t.jsonl fig1   write a JSONL execution trace
     main.exe --metrics fig1         dump counters/span timings to stderr
     main.exe --timings t.json all   machine-readable per-experiment
                                     wall-clock times *)

open Spamlab_eval
module Obs = Spamlab_obs.Obs

let default_scale = 0.2

let usage () =
  prerr_endline
    ("usage: main.exe [--scale S] [--seed N] [--jobs N] [--trace FILE] \
      [--metrics] [--timings FILE] \
      [all|perf|ingest|serve|store|classify|trajectory|"
    ^ String.concat "|" Registry.ids ^ "]...");
  exit 2

type cli = {
  scale : float;
  seed : int;
  jobs : int;
  trace : string option;
  metrics : bool;
  timings : string option;
  targets : string list;
}

let parse_args () =
  let rec go acc = function
    | [] -> acc
    | "--scale" :: v :: rest -> (
        match float_of_string_opt v with
        | Some scale when scale > 0.0 -> go { acc with scale } rest
        | _ -> usage ())
    | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some seed -> go { acc with seed } rest
        | None -> usage ())
    | "--jobs" :: v :: rest -> (
        (* Shared validation: same message as the spamlab CLI and the
           SPAMLAB_JOBS environment path. *)
        match Spamlab_parallel.parse_jobs v with
        | Ok jobs -> go { acc with jobs } rest
        | Error msg ->
            prerr_endline msg;
            exit 2)
    | "--trace" :: path :: rest -> go { acc with trace = Some path } rest
    | "--metrics" :: rest -> go { acc with metrics = true } rest
    | "--timings" :: path :: rest -> go { acc with timings = Some path } rest
    | target :: rest ->
        if
          target = "all" || target = "perf" || target = "ingest"
          || target = "serve" || target = "store" || target = "classify"
          || target = "trajectory"
          || Registry.find target <> None
        then go { acc with targets = acc.targets @ [ target ] } rest
        else usage ()
  in
  let default =
    {
      scale = default_scale;
      seed = 42;
      jobs = Spamlab_parallel.default_jobs ();
      trace = None;
      metrics = false;
      timings = None;
      targets = [];
    }
  in
  let cli = go default (List.tl (Array.to_list Sys.argv)) in
  if cli.targets = [] then { cli with targets = [ "all"; "perf" ] } else cli

(* ------------------------------------------------------------------ *)
(* Experiment reproduction                                             *)

let hrule = String.make 72 '='

let run_experiment lab (e : Registry.experiment) =
  Printf.printf "%s\n%s\n%s\n" hrule e.Registry.title hrule;
  Printf.printf "paper: %s\n\n" e.Registry.paper_claim;
  let started = Unix.gettimeofday () in
  let report = e.Registry.run lab in
  let seconds = Unix.gettimeofday () -. started in
  print_string report;
  Printf.printf "\n[%s finished in %.1fs]\n\n" e.Registry.id seconds;
  flush stdout;
  (e.Registry.id, seconds)

let run_experiments lab = function
  | "all" -> List.map (run_experiment lab) Registry.all
  | id -> (
      match Registry.find id with
      | Some e -> [ run_experiment lab e ]
      | None -> usage ())

(* Machine-readable per-experiment wall-clock times, one object per run:
   {"seed":42,"scale":0.2,"jobs":4,"experiments":[{"id":"fig1",...}]} *)
let write_timings path ~seed ~scale ~jobs timings =
  let oc = open_out path in
  Printf.fprintf oc "{\"seed\":%d,\"scale\":%.6g,\"jobs\":%d,\"experiments\":["
    seed scale jobs;
  List.iteri
    (fun i (id, seconds) ->
      if i > 0 then output_char oc ',';
      Printf.fprintf oc "{\"id\":\"%s\",\"seconds\":%.6f}"
        (Spamlab_obs.Json.escape_string id)
        seconds)
    timings;
  output_string oc "]}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Sustained ingest throughput: full raw mbox -> ids -> verdict, the
   spamd-shaped workload.  Three variants per tokenizer: the legacy
   string pipeline (parse to messages, tokenize to strings, intern,
   score), the zero-copy span path (chunks by offsets, slices hashed
   straight into the intern table), and the span path fanned over the
   domain pool.  Reported as messages/sec; the --timings entries carry
   seconds per full mbox pass under ids "ingest-<tokenizer>-<path>". *)

let run_ingest lab ~jobs =
  let module Tok = Spamlab_tokenizer.Tokenizer in
  let module SB = Spamlab_spambayes in
  Printf.printf "%s\ningest throughput (sustained, full raw mbox)\n%s\n" hrule
    hrule;
  let size = max 200 (int_of_float (4_000.0 *. Lab.scale lab)) in
  let labeled =
    Lab.corpus_messages lab ~name:"ingest-bench" ~size ~spam_fraction:0.5
  in
  let text =
    Spamlab_email.Mbox.print (Array.to_list (Array.map snd labeled))
  in
  let pool = Lab.pool lab in
  Printf.printf "%d messages, %d KiB raw mbox, pool jobs %d\n\n" size
    (String.length text / 1024)
    jobs;
  let timings = ref [] in
  List.iter
    (fun (tname, tokenizer) ->
      let filter = SB.Filter.create ~tokenizer () in
      Array.iter (fun (label, m) -> SB.Filter.train filter label m) labeled;
      SB.Intern.freeze ();
      let options = SB.Filter.options filter in
      let db = SB.Filter.db filter in
      let chunks = SB.Ingest.raw_message_chunks text in
      let legacy () =
        let msgs, _ = Spamlab_email.Mbox.parse_lenient text in
        List.iter
          (fun m ->
            let tokens, _ = Tok.unique_counted_tokens tokenizer m in
            ignore
              (SB.Classify.score_ids options db (SB.Intern.intern_array tokens)))
          msgs
      in
      let zerocopy () =
        Array.iter
          (fun (off, len) ->
            ignore (SB.Ingest.classify_raw options db tokenizer text ~off ~len))
          chunks
      in
      let fanned () =
        ignore
          (Spamlab_parallel.Pool.map_array pool
             (fun (off, len) ->
               SB.Ingest.classify_raw options db tokenizer text ~off ~len)
             chunks)
      in
      (* ids-only variants isolate the ingest cost itself: scoring is the
         same work on both paths, so the end-to-end ratio understates the
         tokenize+intern gain for token-heavy tokenizers. *)
      let legacy_ids () =
        let msgs, _ = Spamlab_email.Mbox.parse_lenient text in
        List.iter
          (fun m ->
            let tokens, _ = Tok.unique_counted_tokens tokenizer m in
            ignore (SB.Intern.intern_array tokens))
          msgs
      in
      let zerocopy_ids () =
        Array.iter
          (fun (off, len) ->
            ignore (SB.Ingest.unique_ids_raw tokenizer text ~off ~len))
          chunks
      in
      let measure name f =
        f ();
        let t0 = Unix.gettimeofday () in
        let iters = ref 0 in
        while Unix.gettimeofday () -. t0 < 0.4 do
          f ();
          incr iters
        done;
        let elapsed = Unix.gettimeofday () -. t0 in
        let per_pass = elapsed /. float_of_int !iters in
        let mps = float_of_int size /. per_pass in
        Printf.printf "  %-42s %12.0f msgs/sec\n" name mps;
        timings := !timings @ [ (name, per_pass) ];
        mps
      in
      Printf.printf "%s\n" tname;
      let base = measure (Printf.sprintf "ingest-%s-legacy" tname) legacy in
      let zc = measure (Printf.sprintf "ingest-%s-zerocopy" tname) zerocopy in
      ignore (measure (Printf.sprintf "ingest-%s-pool" tname) fanned);
      let base_ids =
        measure (Printf.sprintf "ingest-%s-ids-legacy" tname) legacy_ids
      in
      let zc_ids =
        measure (Printf.sprintf "ingest-%s-ids-zerocopy" tname) zerocopy_ids
      in
      Printf.printf "  %-42s %12.2fx\n" "zerocopy speedup vs legacy (classify)"
        (zc /. base);
      Printf.printf "  %-42s %12.2fx\n\n" "zerocopy speedup vs legacy (ids only)"
        (zc_ids /. base_ids))
    Tok.all;
  flush stdout;
  !timings

(* ------------------------------------------------------------------ *)
(* Daemon round-trip throughput: a live spamlab serve on a unix socket
   in a temp dir, driven over a persistent connection.  Reported as
   messages/sec with per-request p50/p99 round-trip latency; the
   --timings entries carry seconds per message under ids
   "serve-ping" / "serve-train-b16" / "serve-classify-b16". *)

let run_serve lab ~jobs =
  let module Serve = Spamlab_serve in
  let module Label = Spamlab_spambayes.Label in
  Printf.printf "%s\nserve round-trip throughput (unix socket)\n%s\n" hrule
    hrule;
  let size = max 200 (int_of_float (2_000.0 *. Lab.scale lab)) in
  let labeled =
    Lab.corpus_messages lab ~name:"serve-bench" ~size ~spam_fraction:0.5
  in
  let dir = Filename.temp_file "spamlab_bench" ".serve" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let addr = Serve.Daemon.Unix_sock (Filename.concat dir "bench.sock") in
  let config =
    {
      (Serve.Daemon.default_config ~addr
         ~db_path:(Filename.concat dir "db.bin") ())
      with
      Serve.Daemon.publish_every = 0;
      jobs;
    }
  in
  match Serve.Daemon.create config with
  | Error e -> failwith e
  | Ok t ->
      let stop = Atomic.make false in
      let up = Atomic.make false in
      let daemon =
        Domain.spawn (fun () ->
            Serve.Daemon.run
              ~ready:(fun _ -> Atomic.set up true)
              ~stop:(fun () -> Atomic.get stop)
              t)
      in
      while not (Atomic.get up) do
        Domain.cpu_relax ()
      done;
      let finish () =
        Atomic.set stop true;
        (match Domain.join daemon with
        | Ok () -> ()
        | Error e -> prerr_endline ("serve bench: " ^ e));
        Serve.Daemon.shutdown t;
        Array.iter
          (fun f ->
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      in
      Fun.protect ~finally:finish @@ fun () ->
      let conn =
        match Serve.Client.connect addr with
        | Ok c -> c
        | Error e -> failwith (Serve.Client.error_message e)
      in
      Fun.protect ~finally:(fun () -> Serve.Client.close conn) @@ fun () ->
      (* One request over the persistent connection; round-trip µs. *)
      let request req =
        let t0 = Unix.gettimeofday () in
        (match Serve.Client.request conn req with
        | Ok (Serve.Protocol.Ok _) -> ()
        | Ok (Serve.Protocol.Err e) -> failwith ("daemon error: " ^ e)
        | Ok Serve.Protocol.Busy -> failwith "daemon busy: unexpected in bench"
        | Error e ->
            failwith ("serve bench transport: " ^ Serve.Client.error_message e));
        (Unix.gettimeofday () -. t0) *. 1e6
      in
      let timings = ref [] in
      let report name ~messages lats =
        let lats = Array.of_list lats in
        let total_us = Array.fold_left ( +. ) 0.0 lats in
        let mps = float_of_int messages /. (total_us /. 1e6) in
        Printf.printf
          "  %-24s %10.0f msgs/sec   p50 %7.0f us   p99 %7.0f us   (%d reqs)\n"
          name mps
          (Spamlab_stats.Summary.quantile lats 0.5)
          (Spamlab_stats.Summary.quantile lats 0.99)
          (Array.length lats);
        timings :=
          !timings @ [ (name, total_us /. 1e6 /. float_of_int messages) ]
      in
      let batch = 16 in
      let mbox_batches msgs =
        let n = Array.length msgs in
        List.init
          ((n + batch - 1) / batch)
          (fun i ->
            Spamlab_email.Mbox.print
              (Array.to_list (Array.sub msgs (i * batch) (min batch (n - (i * batch))))))
      in
      Printf.printf "%d messages, batches of %d, daemon jobs %d\n\n" size batch
        jobs;
      let pings =
        List.init 200 (fun _ ->
            request { Serve.Protocol.verb = Ping; body = ""; user = None })
      in
      report "serve-ping" ~messages:200 pings;
      let train_lats =
        List.concat_map
          (fun wanted ->
            let msgs =
              Array.of_list
                (List.filter_map
                   (fun (l, m) -> if l = wanted then Some m else None)
                   (Array.to_list labeled))
            in
            List.map
              (fun body ->
                request { Serve.Protocol.verb = Train wanted; body; user = None })
              (mbox_batches msgs))
          [ Label.Ham; Label.Spam ]
      in
      report "serve-train-b16" ~messages:size train_lats;
      ignore (request { Serve.Protocol.verb = Publish; body = ""; user = None });
      let classify_lats =
        List.map
          (fun body -> request { Serve.Protocol.verb = Classify; body; user = None })
          (mbox_batches (Array.map snd labeled))
      in
      report "serve-classify-b16" ~messages:size classify_lats;
      print_newline ();
      flush stdout;
      !timings

(* ------------------------------------------------------------------ *)
(* Tenant-store throughput: per-user train / classify (hot and cold) /
   eviction-pressure ops/sec with p50/p99 per-op latency, at tenant
   counts scaled from the nominal {1e3, 1e4, 1e5} tiers by
   scale/0.2 — the --timings ids stay scale-independent
   ("store-t1k-train", "store-t100k-classify-cold", ...).  A
   single-tenant baseline anchors the hot-path acceptance bound
   (hot-tenant classify within 1.25x of it). *)

let run_store lab ~jobs =
  let module Store = Spamlab_store.Store in
  let module Classify = Spamlab_spambayes.Classify in
  let module Options = Spamlab_spambayes.Options in
  let module Dataset = Spamlab_corpus.Dataset in
  Printf.printf "%s\ntenant store ops/sec (sharded backend)\n%s\n" hrule hrule;
  let scale = Lab.scale lab in
  let tier nominal = max 200 (int_of_float (float_of_int nominal *. scale /. 0.2)) in
  let examples =
    Lab.corpus lab ~name:"store-bench"
      ~size:(max 128 (int_of_float (512.0 *. scale /. 0.2)))
      ~spam_fraction:0.5
  in
  let nex = Array.length examples in
  let options = Options.default in
  let pool = Lab.pool lab in
  let timings = ref [] in
  let report name ~ops ~wall_s lats =
    let ops_s = float_of_int ops /. wall_s in
    Printf.printf
      "  %-26s %10.0f ops/sec   p50 %7.1f us   p99 %7.1f us   (%d ops)\n" name
      ops_s
      (Spamlab_stats.Summary.quantile lats 0.5)
      (Spamlab_stats.Summary.quantile lats 0.99)
      ops;
    timings := !timings @ [ (name, wall_s /. float_of_int ops) ];
    ops_s
  in
  let chunks n size =
    Array.init ((n + size - 1) / size) (fun k ->
        (k * size, min size (n - (k * size))))
  in
  (* Run [f i] for every user index, fanned over the pool; returns
     (wall seconds, per-op latencies in us, flattened in index order). *)
  let fan n f =
    let t0 = Unix.gettimeofday () in
    let per_chunk =
      Spamlab_parallel.Pool.map_array pool
        (fun (start, len) ->
          Array.init len (fun j ->
              let t = Unix.gettimeofday () in
              f (start + j);
              (Unix.gettimeofday () -. t) *. 1e6))
        (chunks n 256)
    in
    let wall = Unix.gettimeofday () -. t0 in
    (wall, Array.concat (Array.to_list per_chunk))
  in
  let user i = Printf.sprintf "user-%06d" i in
  let train_user st i =
    for k = 0 to 1 do
      let ex = examples.(((2 * i) + k) mod nex) in
      Store.train st ~user:(user i) ex.Dataset.label ex.Dataset.tokens
    done
  in
  let classify_user st i =
    let ex = examples.(i mod nex) in
    Store.with_user st (user i) (fun db ->
        ignore (Classify.score_ids options db ex.Dataset.ids))
  in
  let with_store ~dir ?(cache = Store.default_config.cache) f =
    match
      Store.open_store
        { Store.default_config with Store.backend = `Sharded dir; cache }
    with
    | Error e -> failwith ("store bench: " ^ e)
    | Ok st -> Fun.protect ~finally:(fun () -> Store.close st) @@ fun () -> f st
  in
  let tmp = Filename.temp_file "spamlab_bench" ".store" in
  Sys.remove tmp;
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  Fun.protect ~finally:(fun () -> rm_rf tmp) @@ fun () ->
  (* Single-tenant baseline: one hot user classified repeatedly. *)
  let single_ops_s =
    with_store ~dir:tmp @@ fun st ->
    train_user st 0;
    ignore (classify_user st 0);
    let rounds = 2000 in
    let wall, lats = fan rounds (fun _ -> classify_user st 0) in
    report "store-single-classify" ~ops:rounds ~wall_s:wall lats
  in
  let tiers = [ ("t1k", 1_000); ("t10k", 10_000); ("t100k", 100_000) ] in
  List.iter
    (fun (tag, nominal) ->
      let n = tier nominal in
      rm_rf tmp;
      Printf.printf "\n%s: %d tenants, daemon-style 2 trains/user, jobs %d\n"
        tag n jobs;
      let id phase = Printf.sprintf "store-%s-%s" tag phase in
      with_store ~dir:tmp (fun st ->
          let wall, lats = fan n (train_user st) in
          ignore (report (id "train") ~ops:(2 * n) ~wall_s:wall lats);
          Store.commit st;
          (* Hot: a cache-resident working set, classified repeatedly. *)
          let h = min n 1000 in
          let rounds = max 1 (2000 / h) in
          ignore (fan h (classify_user st));
          let wall, lats =
            fan (h * rounds) (fun i -> classify_user st (i mod h))
          in
          let hot_ops_s = report (id "classify-hot") ~ops:(h * rounds) ~wall_s:wall lats in
          if hot_ops_s < single_ops_s /. 1.25 then
            Printf.printf
              "  WARNING: hot classify %.0f ops/sec is more than 1.25x below \
               single-tenant %.0f\n"
              hot_ops_s single_ops_s;
          (* Cold: every access re-materializes from shard files. *)
          Store.evict_all st;
          let s = min n 1000 in
          let stride = max 1 (n / s) in
          let wall, lats = fan s (fun i -> classify_user st (i * stride)) in
          ignore (report (id "classify-cold") ~ops:s ~wall_s:wall lats));
      (* Eviction pressure: reopen with a small cache and touch more
         users than it holds — every miss past capacity evicts. *)
      with_store ~dir:tmp ~cache:512 (fun st ->
          let t = min n 4096 in
          let wall, lats = fan t (fun i -> classify_user st (i mod n)) in
          ignore (report (id "evict") ~ops:t ~wall_s:wall lats);
          let s = Store.stats st in
          Printf.printf "  (evictions %d, misses %d, hits %d)\n"
            s.Store.evictions s.Store.misses s.Store.hits))
    tiers;
  print_newline ();
  flush stdout;
  !timings

(* ------------------------------------------------------------------ *)
(* Classify scoring throughput: pre-interned id arrays -> verdicts,
   isolating the probability-lookup hot path the generation-stamped
   cache (PR 9) changed.  Paths: the immutable published snapshot
   scored through a shared Prob_cache vs the uncached reference
   (fanned over the pool at --jobs), the private per-filter cache warm
   vs cold (generation bumped before every pass, forcing a full lazy
   refill), and the tenant-overlay engines (a never-trained tenant is
   pure shared-cache hits; a trained tenant's shifted totals force the
   uncached fallback).  All variants produce bit-identical results —
   the differential suite holds them equal; this target measures them.
   --timings ids: "classify-<path>" seconds per message. *)

let run_classify lab ~jobs =
  let module SB = Spamlab_spambayes in
  let module Classify = SB.Classify in
  let module Token_db = SB.Token_db in
  let module Prob_cache = SB.Prob_cache in
  let module Dataset = Spamlab_corpus.Dataset in
  let module Store = Spamlab_store.Store in
  Printf.printf "%s\nclassify scoring ops/sec (probability cache)\n%s\n" hrule
    hrule;
  let scale = Lab.scale lab in
  let train_size = max 400 (int_of_float (4_000.0 *. scale)) in
  let eval_size = max 200 (int_of_float (2_000.0 *. scale)) in
  let train =
    Lab.corpus lab ~name:"classify-bench/train" ~size:train_size
      ~spam_fraction:0.5
  in
  let eval_set =
    Lab.corpus lab ~name:"classify-bench/eval" ~size:eval_size
      ~spam_fraction:0.5
  in
  let filter = Poison.base_filter (Lab.tokenizer lab) train in
  SB.Intern.freeze ();
  let options = SB.Filter.options filter in
  let snapshot = Token_db.copy (SB.Filter.db filter) in
  let pool = Lab.pool lab in
  let n = Array.length eval_set in
  Printf.printf
    "%d train msgs, %d eval msgs (pre-interned ids), pool jobs %d%s\n\n"
    train_size n jobs
    (if Prob_cache.disabled then "  [SPAMLAB_NO_PROB_CACHE=1]" else "");
  let timings = ref [] in
  let report name ~ops ~wall_s lats =
    let ops_s = float_of_int ops /. wall_s in
    Printf.printf
      "  %-28s %10.0f ops/sec   p50 %7.2f us   p99 %7.2f us   (%d ops)\n" name
      ops_s
      (Spamlab_stats.Summary.quantile lats 0.5)
      (Spamlab_stats.Summary.quantile lats 0.99)
      ops;
    timings := !timings @ [ (name, wall_s /. float_of_int ops) ];
    ops_s
  in
  let chunks =
    Array.init ((n + 63) / 64) (fun k -> (k * 64, min 64 (n - (k * 64))))
  in
  (* One timed pass over the eval set: [score i] classifies message i;
     returns per-message latencies (us).  [fanned] spreads chunks over
     the pool (engines passed here must be domain-safe). *)
  let pass ~fanned score =
    let one (start, len) =
      Array.init len (fun j ->
          let t = Unix.gettimeofday () in
          score (start + j);
          (Unix.gettimeofday () -. t) *. 1e6)
    in
    if fanned then
      Array.concat
        (Array.to_list (Spamlab_parallel.Pool.map_array pool one chunks))
    else Array.concat (Array.to_list (Array.map one chunks))
  in
  (* Warm once, then repeat whole passes for >= 0.4 s.  [prep] runs
     before each timed pass, outside the clock (the cold-refill path
     uses it to invalidate the cache). *)
  let measure name ~fanned ?(prep = fun () -> ()) score =
    prep ();
    ignore (pass ~fanned score);
    let lats = ref [] in
    let passes = ref 0 in
    let t0 = Unix.gettimeofday () in
    let wall = ref 0.0 in
    while !wall < 0.4 do
      prep ();
      let t1 = Unix.gettimeofday () in
      lats := pass ~fanned score :: !lats;
      let t2 = Unix.gettimeofday () in
      wall := !wall +. (t2 -. t1);
      incr passes;
      ignore t0
    done;
    report name ~ops:(n * !passes) ~wall_s:!wall
      (Array.concat (List.rev !lats))
  in
  (* Hot published snapshot: one shared single-generation cache across
     the pool fan-out (the daemon CLASSIFY shape), the uncached engine
     (same scratch-array selection, probabilities recomputed — the
     kill-switch/fault-fallback path), and the verbatim pre-cache
     scoring code ([score_ids_reference]) as the baseline.  The
     headline speedup is cached vs baseline: what this PR buys over
     the previous binary on the same workload. *)
  let shared_cache = Prob_cache.create ~shared:true options snapshot in
  let cached_engine = Classify.engine_cached shared_cache in
  let uncached_engine = Classify.engine options snapshot in
  let hot =
    measure "classify-hot-cached" ~fanned:true (fun i ->
        ignore (Classify.score_engine cached_engine eval_set.(i).Dataset.ids))
  in
  let uncached =
    measure "classify-hot-uncached" ~fanned:true (fun i ->
        ignore (Classify.score_engine uncached_engine eval_set.(i).Dataset.ids))
  in
  let base =
    measure "classify-hot-baseline" ~fanned:true (fun i ->
        ignore
          (Classify.score_ids_reference options snapshot
             eval_set.(i).Dataset.ids))
  in
  Printf.printf "  %-28s %10.2fx\n" "cached speedup vs baseline" (hot /. base);
  Printf.printf "  %-28s %10.2fx\n" "cached speedup vs uncached"
    (hot /. uncached);
  (* Private per-filter cache: warm steady state, then cold refill —
     train+untrain before every pass leaves the counts identical but
     bumps the generation twice, so each pass re-fills every slot it
     touches.  Single-domain, like the cache. *)
  ignore
    (measure "classify-warm-private" ~fanned:false (fun i ->
         ignore (SB.Filter.classify_ids filter eval_set.(i).Dataset.ids)));
  let bump_ids = train.(0).Dataset.ids in
  ignore
    (measure "classify-cold-refill" ~fanned:false
       ~prep:(fun () ->
         SB.Filter.train_ids filter SB.Label.Ham bump_ids;
         SB.Filter.untrain_ids filter SB.Label.Ham bump_ids)
       (fun i -> ignore (SB.Filter.classify_ids filter eval_set.(i).Dataset.ids)));
  (* Tenant overlays over a sharded store whose prior is the snapshot:
     a never-trained tenant reads entirely through the store's shared
     prior cache; a trained tenant's message totals have shifted, so
     its engine recomputes from the overlay (the byte-identity
     contract).  Sequential — per-op engine + lock costs, not shard
     parallelism (bench store covers that). *)
  let dir = Filename.temp_file "spamlab_bench" ".classify" in
  Sys.remove dir;
  let rm_rf d =
    if Sys.file_exists d then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
        (Sys.readdir d);
      try Unix.rmdir d with Unix.Unix_error _ -> ()
    end
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (match
     Store.open_store ~options ~prior:snapshot
       { Store.default_config with Store.backend = `Sharded dir }
   with
  | Error e -> failwith ("classify bench: " ^ e)
  | Ok st ->
      Fun.protect ~finally:(fun () -> Store.close st) @@ fun () ->
      Store.train st ~user:"tenant-trained" train.(0).Dataset.label
        train.(0).Dataset.tokens;
      Store.train st ~user:"tenant-trained" train.(1).Dataset.label
        train.(1).Dataset.tokens;
      let tenant name user =
        ignore
          (measure name ~fanned:false (fun i ->
               Store.with_user_engine st user (fun e ->
                   ignore
                     (Classify.score_engine e eval_set.(i).Dataset.ids))))
      in
      tenant "classify-tenant-fresh" "tenant-fresh";
      tenant "classify-tenant-trained" "tenant-trained");
  print_newline ();
  flush stdout;
  !timings

(* ------------------------------------------------------------------ *)
(* Bench trajectory: aggregate every checked-in BENCH_PR*.json into one
   markdown table of headline throughput numbers per PR.  The files
   are heterogeneous (each PR recorded what it changed), so parsing is
   line-tolerant: "speedup" objects are flattened to dotted keys, and
   "results" arrays contribute their hot-path classify rows at the
   highest recorded jobs value.  Output is a pure function of the
   checked-in files — the README perf section embeds it. *)

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

(* Parse the number starting at the first digit/sign at or after [i]. *)
let number_after s i =
  let n = String.length s in
  let rec start i =
    if i >= n then None
    else
      match s.[i] with
      | '0' .. '9' | '-' -> Some i
      | ' ' | ':' | '\t' -> start (i + 1)
      | _ -> None
  in
  match start i with
  | None -> None
  | Some b ->
      let rec stop j =
        if j >= n then j
        else
          match s.[j] with
          | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> stop (j + 1)
          | _ -> j
      in
      float_of_string_opt (String.sub s b (stop b - b))

let string_after s i =
  match find_sub s "\"" i with
  | None -> None
  | Some b -> (
      match String.index_from_opt s (b + 1) '"' with
      | None -> None
      | Some e -> Some (String.sub s (b + 1) (e - b - 1)))

(* All ("id", jobs, ops_per_sec) triples of a results-array file. *)
let scan_results data =
  let rec go acc from =
    match find_sub data "\"id\"" from with
    | None -> List.rev acc
    | Some i -> (
        let stop =
          match String.index_from_opt data i '}' with
          | Some j -> j
          | None -> String.length data
        in
        let field key =
          match find_sub data key (i + 4) with
          | Some k when k < stop -> number_after data (k + String.length key)
          | _ -> None
        in
        match (string_after data (i + 4), field "\"ops_per_sec\"") with
        | Some id, Some ops ->
            let jobs =
              match field "\"jobs\"" with Some j -> int_of_float j | None -> 1
            in
            go ((id, jobs, ops) :: acc) (stop + 1)
        | _ -> go acc (stop + 1))
  in
  go [] 0

(* Flatten the "speedup" object (scalar and one-level-nested pairs)
   into dotted keys. *)
let scan_speedup data =
  match find_sub data "\"speedup\"" 0 with
  | None -> []
  | Some i -> (
      match String.index_from_opt data i '{' with
      | None -> []
      | Some start ->
          let n = String.length data in
          let acc = ref [] in
          let prefix = ref "" in
          let rec go i depth =
            if i >= n || (depth = 0 && i > start) then ()
            else
              match data.[i] with
              | '{' -> go (i + 1) (depth + 1)
              | '}' ->
                  if depth = 2 then prefix := "";
                  go (i + 1) (depth - 1)
              | '"' -> (
                  match string_after data i with
                  | None -> go (i + 1) depth
                  | Some key ->
                      let after = i + String.length key + 2 in
                      let rec skip j =
                        if j < n && (data.[j] = ' ' || data.[j] = ':') then
                          skip (j + 1)
                        else j
                      in
                      let v = skip after in
                      if v < n && data.[v] = '{' then begin
                        prefix := key ^ ".";
                        go v depth
                      end
                      else begin
                        (match number_after data after with
                        | Some f -> acc := (!prefix ^ key, f) :: !acc
                        | None -> ());
                        go after depth
                      end)
              | _ -> go (i + 1) depth
          in
          go start 0;
          List.rev !acc)

let run_trajectory () =
  let files =
    Sys.readdir "." |> Array.to_list
    |> List.filter_map (fun f ->
           if
             String.length f > 13
             && String.sub f 0 8 = "BENCH_PR"
             && Filename.check_suffix f ".json"
           then
             Option.map
               (fun pr -> (pr, f))
               (int_of_string_opt (String.sub f 8 (String.length f - 13)))
           else None)
    |> List.sort compare
  in
  if files = [] then prerr_endline "trajectory: no BENCH_PR*.json here"
  else begin
    Printf.printf "| PR | metric | value |\n|---:|--------|------:|\n";
    List.iter
      (fun (pr, file) ->
        let data =
          In_channel.with_open_bin file In_channel.input_all
        in
        List.iter
          (fun (key, v) ->
            Printf.printf "| %d | %s speedup | %.2fx |\n" pr key v)
          (scan_speedup data);
        let results = scan_results data in
        let maxj =
          List.fold_left (fun m (_, j, _) -> max m j) 1 results
        in
        List.iter
          (fun (id, jobs, ops) ->
            if jobs = maxj && find_sub id "hot" 0 <> None then
              Printf.printf "| %d | %s (jobs %d) | %.0f ops/sec |\n" pr id jobs
                ops)
          results;
        (* The cached-vs-baseline headline, when both sides are present
           (baseline = the verbatim pre-cache scoring code; fall back
           to the uncached engine for files that lack it). *)
        let at id' =
          List.find_map
            (fun (id, j, ops) -> if id = id' && j = maxj then Some ops else None)
            results
        in
        let denom =
          match at "classify-hot-baseline" with
          | Some _ as b -> b
          | None -> at "classify-hot-uncached"
        in
        match (at "classify-hot-cached", denom) with
        | Some c, Some b when b > 0.0 ->
            Printf.printf
              "| %d | hot-snapshot cached/baseline (jobs %d) | %.2fx |\n" pr
              maxj (c /. b)
        | _ -> ())
      files;
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* bechamel micro-benchmarks                                           *)

let perf_tests () =
  let open Bechamel in
  let lab = Lab.create ~seed:42 ~scale:0.05 () in
  let rng = Lab.rng lab "perf" in
  let config = Lab.config lab in
  let tokenizer = Lab.tokenizer lab in
  let message = Spamlab_corpus.Generator.ham config rng in
  let examples =
    Lab.corpus lab ~name:"perf/corpus" ~size:500 ~spam_fraction:0.5
  in
  let filter = Poison.base_filter tokenizer examples in
  let tokens = Spamlab_tokenizer.Tokenizer.unique_tokens tokenizer message in
  let aspell = Lab.aspell lab ~size:20_000 in
  let payload =
    Spamlab_core.Dictionary_attack.(
      payload tokenizer (make ~name:"perf" ~words:aspell))
  in
  let ids = Spamlab_spambayes.Intern.intern_array tokens in
  [
    Test.make ~name:"tokenize-message"
      (Staged.stage (fun () ->
           Spamlab_tokenizer.Tokenizer.unique_tokens tokenizer message));
    Test.make ~name:"classify-message"
      (Staged.stage (fun () ->
           Spamlab_spambayes.Filter.classify_tokens filter tokens));
    (* The same classification on pre-interned ids: the steady state of
       every experiment (Dataset.example carries ids), isolating what
       string hashing used to cost per message. *)
    Test.make ~name:"classify-preinterned-ids"
      (Staged.stage (fun () ->
           Spamlab_spambayes.Filter.classify_ids filter ids));
    (* All-hit interning of a dictionary-sized payload — the lock-free
       snapshot path that parallel workers take after [Intern.freeze]. *)
    Test.make ~name:"intern-lookup-20k-payload"
      (Staged.stage (fun () ->
           Spamlab_spambayes.Intern.intern_array payload));
    (* O(|delta|) copy-on-write snapshot; this was an O(|DB|) rebuild of
       the whole count table before the CoW representation. *)
    Test.make ~name:"filter-copy-cow"
      (Staged.stage (fun () -> Spamlab_spambayes.Filter.copy filter));
    Test.make ~name:"train-untrain-message"
      (Staged.stage (fun () ->
           Spamlab_spambayes.Filter.train_tokens filter
             Spamlab_spambayes.Label.Ham tokens;
           Spamlab_spambayes.Filter.untrain_tokens filter
             Spamlab_spambayes.Label.Ham tokens));
    Test.make ~name:"generate-ham-email"
      (Staged.stage (fun () -> Spamlab_corpus.Generator.ham config rng));
    Test.make ~name:"poison-20k-dictionary-x100"
      (Staged.stage (fun () ->
           let copy = Spamlab_spambayes.Filter.copy filter in
           Spamlab_spambayes.Filter.train_tokens_many copy
             Spamlab_spambayes.Label.Spam payload 100));
    Test.make ~name:"fisher-indicator-150-clues"
      (let fs =
         List.init 150 (fun i -> 0.01 +. (0.98 *. float_of_int i /. 149.0))
       in
       Staged.stage (fun () -> Spamlab_stats.Fisher.indicator fs));
    (* The fused message->ids ingest against the pre-PR 4 reference
       pipeline (token list, then sort_uniq-style dedup, then intern). *)
    Test.make_grouped ~name:"tokenize-to-ids"
      [
        Test.make ~name:"fused"
          (Staged.stage (fun () ->
               Spamlab_corpus.Dataset.tokenize_ids tokenizer message));
        Test.make ~name:"list-reference"
          (Staged.stage (fun () ->
               let tokens, _ =
                 Spamlab_tokenizer.Tokenizer.unique_counted
                   (Spamlab_tokenizer.Tokenizer.tokenize tokenizer message)
               in
               Spamlab_spambayes.Intern.intern_array tokens));
      ];
  ]

(* The two perf claims of the multicore harness, measured rather than
   asserted: the domain pool against its own sequential path on a
   fold-shaped workload, and the incremental poisoning sweep against the
   naive copy-per-grid-point loop it replaced. *)
let harness_tests ~jobs () =
  let open Bechamel in
  let lab = Lab.create ~seed:42 ~scale:0.05 ~jobs:1 () in
  let tokenizer = Lab.tokenizer lab in
  let examples =
    Lab.corpus lab ~name:"perf-harness/corpus" ~size:300 ~spam_fraction:0.5
  in
  let folds = Spamlab_corpus.Dataset.kfold ~k:4 examples in
  let score_fold (train, test) =
    let base = Poison.base_filter tokenizer train in
    Array.length (Poison.score_examples base test)
  in
  let payload =
    Spamlab_core.Dictionary_attack.(
      payload tokenizer
        (make ~name:"perf" ~words:(Lab.aspell lab ~size:20_000)))
  in
  let fractions = [ 0.0; 0.001; 0.005; 0.01; 0.02; 0.05; 0.10 ] in
  let counts =
    List.map
      (fun fraction -> Poison.attack_count ~train_size:300 ~fraction)
      fractions
  in
  let base = Poison.base_filter tokenizer examples in
  let test = Array.sub examples 0 60 in
  let pool = Spamlab_parallel.Pool.create ~jobs in
  [
    Test.make_grouped ~name:"parallel-map-folds"
      [
        Test.make ~name:"sequential"
          (Staged.stage (fun () -> Array.map score_fold folds));
        Test.make
          ~name:(Printf.sprintf "pool-jobs-%d" jobs)
          (Staged.stage (fun () ->
               Spamlab_parallel.Pool.map_array pool score_fold folds));
      ];
    Test.make_grouped ~name:"poison-sweep-incremental-vs-copy"
      [
        Test.make ~name:"copy-per-point"
          (Staged.stage (fun () ->
               List.map
                 (fun count ->
                   Poison.score_examples
                     (Poison.poisoned base ~payload ~count)
                     test)
                 counts));
        Test.make ~name:"incremental"
          (Staged.stage (fun () -> Poison.sweep base ~payload ~counts test));
      ];
    (* Jobs-invariant parallel generation against the sequential path:
       both produce byte-identical corpora (per-index rng children). *)
    Test.make_grouped ~name:"corpus-generate-500"
      [
        Test.make ~name:"sequential"
          (Staged.stage (fun () ->
               Spamlab_corpus.Trec.generate (Lab.config lab)
                 (Lab.rng lab "bench-corpus") ~size:500 ~spam_fraction:0.5));
        Test.make
          ~name:(Printf.sprintf "pool-jobs-%d" jobs)
          (Staged.stage (fun () ->
               Spamlab_corpus.Trec.generate ~pool (Lab.config lab)
                 (Lab.rng lab "bench-corpus") ~size:500 ~spam_fraction:0.5));
      ];
  ]

let run_perf ~jobs () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  Printf.printf "%s\nbechamel micro-benchmarks\n%s\n" hrule hrule;
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"spamlab"
         (perf_tests () @ harness_tests ~jobs ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  let print_instance label unit_name =
    match Hashtbl.find_opt merged label with
    | None -> ()
    | Some tbl ->
        Printf.printf "\n%-44s %s\n%s\n" "benchmark" unit_name
          (String.make 60 '-');
        let rows =
          Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        List.iter
          (fun (name, ols) ->
            match Analyze.OLS.estimates ols with
            | Some [ estimate ] ->
                Printf.printf "%-44s %14.1f\n" name estimate
            | Some _ | None -> Printf.printf "%-44s %14s\n" name "n/a")
          rows
  in
  print_instance (Measure.label Instance.monotonic_clock) "ns/run";
  print_instance (Measure.label Instance.minor_allocated) "minor words/run";
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let cli = parse_args () in
  (match cli.trace with Some path -> Obs.start_trace ~path | None -> ());
  if cli.metrics then Obs.enable_metrics ();
  Obs.configure_from_env ();
  Printf.printf
    "spamlab bench harness | seed %d | scale %.2f of paper Table 1 | jobs %d\n\n"
    cli.seed cli.scale cli.jobs;
  let lab = Lab.create ~seed:cli.seed ~scale:cli.scale ~jobs:cli.jobs () in
  let timings = ref [] in
  List.iter
    (fun target ->
      if target = "perf" then run_perf ~jobs:cli.jobs ()
      else if target = "ingest" then
        timings := !timings @ run_ingest lab ~jobs:cli.jobs
      else if target = "serve" then
        timings := !timings @ run_serve lab ~jobs:cli.jobs
      else if target = "store" then
        timings := !timings @ run_store lab ~jobs:cli.jobs
      else if target = "classify" then
        timings := !timings @ run_classify lab ~jobs:cli.jobs
      else if target = "trajectory" then run_trajectory ()
      else timings := !timings @ run_experiments lab target)
    cli.targets;
  Lab.shutdown lab;
  Obs.stop ();
  if cli.metrics then Obs.dump_metrics stderr;
  match cli.timings with
  | Some path ->
      write_timings path ~seed:cli.seed ~scale:cli.scale ~jobs:cli.jobs
        !timings
  | None -> ()
