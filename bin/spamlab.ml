(* spamlab — command-line laboratory for training-set poisoning attacks
   on statistical spam filters.

   Subcommands:
     corpus      generate a synthetic TREC-like corpus as mbox files
     train       train a SpamBayes filter from ham/spam mboxes
     classify    classify an RFC 2822 message with a trained filter
     tokenize    show the token stream a tokenizer extracts
     stats       characterize a corpus (lengths, vocabulary, overlap)
     attack      craft dictionary, focused or pseudospam attack emails
     evade       good-word evasion against a trained filter
     roni        RONI-screen a candidate training message
     thresholds  derive dynamic thresholds from a training corpus
     experiment  reproduce a table/figure from the paper
     db          inspect and verify trained filter databases
     serve       run the classification daemon on a unix/TCP socket
     client      talk to a running daemon (ping/stats/classify/...) *)

open Cmdliner
module Corpus = Spamlab_corpus
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify
module Options = Spamlab_spambayes.Options
module Tokenizer = Spamlab_tokenizer.Tokenizer
module Message = Spamlab_email.Message
module Mbox = Spamlab_email.Mbox
module Rng = Spamlab_stats.Rng
module Eval = Spamlab_eval
module Obs = Spamlab_obs.Obs
module Fault = Spamlab_fault
module Token_db = Spamlab_spambayes.Token_db
module Serve = Spamlab_serve

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info)

(* --------------------------------------------------------------- *)
(* Common arguments                                                 *)

let seed_arg =
  let doc = "World seed: every spamlab run is deterministic in this." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let tokenizer_arg =
  let doc = "Tokenizer variant: spambayes, bogofilter or spamassassin." in
  let parse s =
    match Tokenizer.find s with
    | Some t -> Ok t
    | None -> Error (`Msg (Printf.sprintf "unknown tokenizer %S" s))
  in
  let print fmt t =
    let (module T : Tokenizer.S) = t in
    Format.pp_print_string fmt T.name
  in
  Arg.(
    value
    & opt (conv (parse, print)) Tokenizer.spambayes
    & info [ "tokenizer" ] ~docv:"NAME" ~doc)

let ham_mbox_arg =
  let doc = "Path of the ham mbox." in
  Arg.(required & opt (some string) None & info [ "ham" ] ~docv:"FILE" ~doc)

let spam_mbox_arg =
  let doc = "Path of the spam mbox." in
  Arg.(required & opt (some string) None & info [ "spam" ] ~docv:"FILE" ~doc)

let db_arg =
  let doc = "Path of the trained filter database." in
  Arg.(required & opt (some string) None & info [ "db" ] ~docv:"FILE" ~doc)

let fail fmt = Printf.ksprintf (fun s -> `Error (false, s)) fmt

(* Graceful degradation: a missing file, an unwritable path, a dead
   socket or an injected fatal fault becomes one error line and a
   nonzero exit, never an exception backtrace. *)
let guard f =
  try f () with
  | Sys_error e -> fail "%s" e
  | Unix.Unix_error (e, fn, arg) ->
      fail "%s%s: %s" fn
        (if arg = "" then "" else " " ^ arg)
        (Unix.error_message e)
  | Fault.Injected _ as exn -> fail "%s" (Printexc.to_string exn)

(* Every leaf command is built through [guarded]: its term evaluates to
   a thunk and the guard is the only thing that runs it, so a new
   subcommand structurally cannot skip the degradation path. *)
let guarded info term = Cmd.v info Term.(ret (const guard $ term))

let jobs_arg =
  let doc =
    "Worker domains (default: SPAMLAB_JOBS if set, else the recommended \
     domain count). Results are identical at every jobs value."
  in
  let jobs_conv =
    Arg.conv
      ( (fun s ->
          match Spamlab_parallel.parse_jobs s with
          | Ok n -> Ok n
          | Error msg -> Error (`Msg msg)),
        Format.pp_print_int )
  in
  Arg.(value & opt (some jobs_conv) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let read_message_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Spamlab_email.Rfc2822.parse (In_channel.input_all ic))

let load_labeled ~ham ~spam =
  Corpus.Trec.of_mbox_files ~ham_path:ham ~spam_path:spam

(* --------------------------------------------------------------- *)
(* corpus                                                           *)

let corpus_cmd =
  let size =
    Arg.(value & opt int 2_000 & info [ "size" ] ~docv:"N" ~doc:"Messages to generate.")
  in
  let spam_fraction =
    Arg.(value & opt float 0.5 & info [ "spam-fraction" ] ~docv:"F" ~doc:"Spam prevalence.")
  in
  let run seed size spam_fraction ham spam () =
    setup_logs ();
    if spam_fraction < 0.0 || spam_fraction > 1.0 then
      fail "spam-fraction must lie in [0,1]"
    else begin
      let config = Corpus.Generator.default_config ~seed () in
      let corpus =
        Corpus.Trec.generate config (Rng.create seed) ~size
          ~spam_fraction
      in
      Corpus.Trec.to_mbox_files ~ham_path:ham ~spam_path:spam corpus;
      let nham, nspam = Corpus.Trec.counts corpus in
      Logs.info (fun m -> m "wrote %d ham to %s, %d spam to %s" nham ham nspam spam);
      `Ok ()
    end
  in
  guarded
    (Cmd.info "corpus" ~doc:"Generate a synthetic TREC-like corpus as two mbox files.")
    Term.(const run $ seed_arg $ size $ spam_fraction $ ham_mbox_arg $ spam_mbox_arg)

(* --------------------------------------------------------------- *)
(* train                                                            *)

let train_cmd =
  let quarantined_counter = Obs.counter "train.quarantined" in
  let run ham spam db tokenizer () =
    setup_logs ();
    match Corpus.Trec.of_mbox_files_lenient ~ham_path:ham ~spam_path:spam with
    | Error e -> fail "%s" e
    | Ok (corpus, quarantined) ->
        if quarantined > 0 then begin
          Obs.add quarantined_counter quarantined;
          Logs.warn (fun m ->
              m "quarantined %d unparseable message(s); training on the rest"
                quarantined)
        end;
        let filter = Filter.create ~tokenizer () in
        Array.iter (fun (label, msg) -> Filter.train filter label msg) corpus;
        Filter.save_file filter db;
        let dbv = Filter.db filter in
        Logs.info (fun m ->
            m "trained on %d ham + %d spam; %d distinct tokens -> %s"
              (Spamlab_spambayes.Token_db.nham dbv)
              (Spamlab_spambayes.Token_db.nspam dbv)
              (Spamlab_spambayes.Token_db.distinct_tokens dbv)
              db);
        `Ok ()
  in
  guarded
    (Cmd.info "train" ~doc:"Train a SpamBayes filter from ham/spam mbox files.")
    Term.(const run $ ham_mbox_arg $ spam_mbox_arg $ db_arg $ tokenizer_arg)

(* --------------------------------------------------------------- *)
(* classify                                                         *)

let classify_cmd =
  let message_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MESSAGE" ~doc:"RFC 2822 message file.")
  in
  let verbose =
    Arg.(value & flag & info [ "clues" ] ~doc:"Print the discriminator tokens.")
  in
  let run db message verbose tokenizer () =
    match Filter.load_file ~tokenizer db with
    | Error e -> fail "cannot load %s: %s" db e
    | Ok filter -> (
        match read_message_file message with
        | Error e -> fail "cannot parse %s: %s" message e
        | Ok msg ->
            let result = Filter.classify filter msg in
            Printf.printf "%s %.6f\n"
              (Label.verdict_to_string result.Classify.verdict)
              result.Classify.indicator;
            if verbose then
              List.iter
                (fun c ->
                  Printf.printf "  %-24s %.4f\n" c.Classify.token
                    c.Classify.score)
                result.Classify.clues;
            `Ok ())
  in
  guarded
    (Cmd.info "classify" ~doc:"Classify a message with a trained filter.")
    Term.(const run $ db_arg $ message_arg $ verbose $ tokenizer_arg)

(* --------------------------------------------------------------- *)
(* classify-mbox                                                    *)

let classify_mbox_cmd =
  let mbox_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MBOX" ~doc:"Raw mbox file of messages to classify.")
  in
  let run db mbox tokenizer () =
    setup_logs ();
    match Filter.load_file ~tokenizer db with
    | Error e -> fail "cannot load %s: %s" db e
    | Ok filter -> (
        match open_in mbox with
        | exception Sys_error e -> fail "%s" e
        | ic ->
            let text =
              Fun.protect
                ~finally:(fun () -> close_in ic)
                (fun () -> In_channel.input_all ic)
            in
            let results = Filter.classify_mbox filter text in
            let malformed = ref 0 in
            Array.iteri
              (fun i result ->
                match result with
                | Some r ->
                    Printf.printf "%d %s %.6f\n" i
                      (Label.verdict_to_string r.Classify.verdict)
                      r.Classify.indicator
                | None ->
                    incr malformed;
                    Printf.printf "%d malformed\n" i)
              results;
            if !malformed > 0 then
              Logs.warn (fun m ->
                  m "%d malformed message(s) could not be classified" !malformed);
            `Ok ())
  in
  guarded
    (Cmd.info "classify-mbox"
       ~doc:
         "Batch-classify every message of a raw mbox through the zero-copy \
          ingest path.")
    Term.(const run $ db_arg $ mbox_arg $ tokenizer_arg)

(* --------------------------------------------------------------- *)
(* tokenize                                                         *)

let tokenize_cmd =
  let message_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MESSAGE" ~doc:"RFC 2822 message file.")
  in
  let run message tokenizer () =
    match read_message_file message with
    | Error e -> fail "cannot parse %s: %s" message e
    | Ok msg ->
        Array.iter print_endline (Tokenizer.unique_tokens tokenizer msg);
        `Ok ()
  in
  guarded
    (Cmd.info "tokenize" ~doc:"Print the distinct tokens of a message.")
    Term.(const run $ message_arg $ tokenizer_arg)

(* --------------------------------------------------------------- *)
(* attack                                                           *)

let scale_arg =
  let doc = "Scale of the simulated world relative to the paper's Table 1." in
  Arg.(value & opt float 0.2 & info [ "scale" ] ~docv:"S" ~doc)

let attack_dictionary_cmd =
  let variant =
    Arg.(
      value
      & opt (enum [ ("aspell", `Aspell); ("usenet", `Usenet); ("optimal", `Optimal) ]) `Usenet
      & info [ "variant" ] ~docv:"V" ~doc:"Word source: aspell, usenet or optimal.")
  in
  let words =
    Arg.(value & opt int 25_000 & info [ "words" ] ~docv:"N" ~doc:"Word list size (aspell/usenet).")
  in
  let count =
    Arg.(value & opt int 10 & info [ "count" ] ~docv:"N" ~doc:"Attack emails to emit.")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Output mbox.")
  in
  let run seed scale variant words count out () =
    setup_logs ();
    let lab = Eval.Lab.create ~seed ~scale () in
    let word_list =
      match variant with
      | `Aspell -> Eval.Lab.aspell lab ~size:words
      | `Usenet -> Eval.Lab.usenet_top lab ~size:words
      | `Optimal -> Eval.Lab.optimal_words lab
    in
    let name =
      match variant with
      | `Aspell -> "aspell"
      | `Usenet -> "usenet"
      | `Optimal -> "optimal"
    in
    let attack = Spamlab_core.Dictionary_attack.make ~name ~words:word_list in
    Mbox.write_file out (Spamlab_core.Dictionary_attack.emails attack ~count);
    Logs.info (fun m ->
        m "wrote %d %s attack emails (%d words each) to %s" count name
          (Spamlab_core.Dictionary_attack.word_count attack)
          out);
    `Ok ()
  in
  guarded
    (Cmd.info "dictionary"
       ~doc:"Craft dictionary-attack emails (Causative Availability Indiscriminate).")
    Term.(const run $ seed_arg $ scale_arg $ variant $ words $ count $ out)

let attack_focused_cmd =
  let target_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "target" ] ~docv:"FILE" ~doc:"The email the attacker wants blocked.")
  in
  let p_arg =
    Arg.(
      value & opt float 0.5
      & info [ "guess-p"; "p" ] ~docv:"P" ~doc:"Per-token guess probability.")
  in
  let count =
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"Attack emails to emit.")
  in
  let headers_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "headers" ] ~docv:"MBOX" ~doc:"Spam mbox whose headers the attack emails wear.")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Output mbox.")
  in
  let run seed target p count headers out () =
    setup_logs ();
    match (read_message_file target, Mbox.read_file headers) with
    | Error e, _ -> fail "cannot parse target: %s" e
    | _, Error e -> fail "cannot read header mbox: %s" e
    | Ok target_msg, Ok header_messages ->
        if header_messages = [] then fail "header mbox is empty"
        else begin
          let header_pool =
            Array.of_list (List.map Message.headers header_messages)
          in
          let plan =
            Spamlab_core.Focused_attack.craft (Rng.create seed)
              ~target:target_msg ~p ~count ~header_pool
          in
          Mbox.write_file out plan.Spamlab_core.Focused_attack.emails;
          Logs.info (fun m ->
              m "guessed %d/%d target words; wrote %d attack emails to %s"
                (List.length plan.Spamlab_core.Focused_attack.guessed)
                (List.length
                   (Spamlab_core.Focused_attack.target_words target_msg))
                count out);
          `Ok ()
        end
  in
  guarded
    (Cmd.info "focused"
       ~doc:"Craft a focused attack against a specific email (Causative Availability Targeted).")
    Term.(const run $ seed_arg $ target_arg $ p_arg $ count $ headers_arg $ out)

let attack_pseudospam_cmd =
  let campaign_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "campaign" ] ~docv:"FILE"
          ~doc:"A sample of the future spam campaign (RFC 2822); its body \
                words are the vocabulary to whitewash.")
  in
  let camouflage_fraction_arg =
    Arg.(
      value & opt float 0.5
      & info [ "camouflage-fraction" ] ~docv:"F"
          ~doc:"Fraction of each attack email that is innocent filler.")
  in
  let count =
    Arg.(value & opt int 20 & info [ "count" ] ~docv:"N" ~doc:"Attack emails to emit.")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Output mbox.")
  in
  let run seed scale campaign camouflage_fraction count out () =
    setup_logs ();
    match read_message_file campaign with
    | Error e -> fail "cannot parse campaign sample: %s" e
    | Ok sample ->
        let campaign_words =
          Array.of_list
            (Spamlab_core.Focused_attack.target_words sample)
        in
        if Array.length campaign_words = 0 then
          fail "campaign sample has no usable words"
        else begin
          let lab = Eval.Lab.create ~seed ~scale () in
          let camouflage =
            (Eval.Lab.config lab).Corpus.Generator.vocabulary
              .Corpus.Vocabulary.shared
          in
          let plan =
            Spamlab_core.Pseudospam_attack.craft (Rng.create seed)
              ~campaign:campaign_words ~camouflage
              ~camouflage_fraction ~count
          in
          Mbox.write_file out plan.Spamlab_core.Pseudospam_attack.emails;
          Logs.info (fun m ->
              m "whitewashing %d campaign words with %d camouflage words; \
                 wrote %d emails to %s (train them as HAM to attack)"
                (List.length plan.Spamlab_core.Pseudospam_attack.campaign_words)
                (List.length plan.Spamlab_core.Pseudospam_attack.camouflage_words)
                count out);
          `Ok ()
        end
  in
  guarded
    (Cmd.info "pseudospam"
       ~doc:"Craft ham-labeled pseudospam emails that whitewash a future \
             campaign (Causative Integrity).")
    Term.(
      const run $ seed_arg $ scale_arg $ campaign_arg $ camouflage_fraction_arg
      $ count $ out)

let attack_cmd =
  Cmd.group
    (Cmd.info "attack" ~doc:"Craft poisoning attack emails.")
    [ attack_dictionary_cmd; attack_focused_cmd; attack_pseudospam_cmd ]

(* --------------------------------------------------------------- *)
(* evade                                                            *)

let evade_cmd =
  let message_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MESSAGE" ~doc:"Spam message to smuggle through (RFC 2822).")
  in
  let max_words_arg =
    Arg.(value & opt int 100 & info [ "max-words" ] ~docv:"N" ~doc:"Good-word budget.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the padded message here.")
  in
  let run db message max_words out tokenizer () =
    match Filter.load_file ~tokenizer db with
    | Error e -> fail "cannot load %s: %s" db e
    | Ok filter -> (
        match read_message_file message with
        | Error e -> fail "cannot parse %s: %s" message e
        | Ok msg ->
            let good_words =
              Spamlab_core.Good_word_attack.hammiest_tokens filter ~limit:500
            in
            let result =
              Spamlab_core.Good_word_attack.evade filter msg ~good_words
                ~max_words
            in
            Printf.printf "%s %.6f (added %d good words)\n"
              (Label.verdict_to_string result.Spamlab_core.Good_word_attack.verdict)
              result.Spamlab_core.Good_word_attack.score
              result.Spamlab_core.Good_word_attack.words_added;
            (match out with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                output_string oc
                  (Spamlab_email.Rfc2822.print
                     result.Spamlab_core.Good_word_attack.padded);
                close_out oc);
            `Ok ())
  in
  guarded
    (Cmd.info "evade"
       ~doc:"Good-word evasion: pad a spam message with the filter's \
             hammiest tokens (Exploratory Integrity baseline).")
    Term.(const run $ db_arg $ message_arg $ max_words_arg $ out_arg $ tokenizer_arg)

(* --------------------------------------------------------------- *)
(* roni                                                             *)

let roni_cmd =
  let candidate_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MESSAGE" ~doc:"Candidate training message (RFC 2822).")
  in
  let threshold_arg =
    Arg.(
      value
      & opt float Spamlab_core.Roni.default_config.Spamlab_core.Roni.threshold
      & info [ "threshold" ] ~docv:"T" ~doc:"Rejection threshold on mean ham impact.")
  in
  let run seed ham spam candidate threshold tokenizer () =
    setup_logs ();
    match (load_labeled ~ham ~spam, read_message_file candidate) with
    | Error e, _ -> fail "%s" e
    | _, Error e -> fail "cannot parse candidate: %s" e
    | Ok corpus, Ok msg ->
        let pool = Corpus.Dataset.of_labeled tokenizer corpus in
        let tokens = Tokenizer.unique_tokens tokenizer msg in
        let config =
          { Spamlab_core.Roni.default_config with Spamlab_core.Roni.threshold }
        in
        let a =
          Spamlab_core.Roni.assess ~config (Rng.create seed) ~pool
            ~candidate:tokens
        in
        Printf.printf "mean ham impact: %.2f (threshold %.2f)\n"
          a.Spamlab_core.Roni.mean_ham_impact threshold;
        Printf.printf "verdict: %s\n"
          (if a.Spamlab_core.Roni.rejected then "REJECT (do not train)"
           else "admit");
        `Ok ()
  in
  guarded
    (Cmd.info "roni"
       ~doc:"Reject-On-Negative-Impact screening of a candidate training message.")
    Term.(
      const run $ seed_arg $ ham_mbox_arg $ spam_mbox_arg $ candidate_arg
      $ threshold_arg $ tokenizer_arg)

(* --------------------------------------------------------------- *)
(* thresholds                                                       *)

let thresholds_cmd =
  let quantile_arg =
    Arg.(value & opt float 0.05 & info [ "quantile" ] ~docv:"Q" ~doc:"Utility quantile (0.05 or 0.10).")
  in
  let run seed ham spam quantile tokenizer () =
    setup_logs ();
    match load_labeled ~ham ~spam with
    | Error e -> fail "%s" e
    | Ok corpus ->
        let examples = Corpus.Dataset.of_labeled tokenizer corpus in
        let theta0, theta1 =
          Spamlab_core.Dynamic_threshold.thresholds
            ~config:{ Spamlab_core.Dynamic_threshold.quantile }
            (Rng.create seed) examples
        in
        Printf.printf "theta0 %.6f\ntheta1 %.6f\n" theta0 theta1;
        `Ok ()
  in
  guarded
    (Cmd.info "thresholds"
       ~doc:"Derive dynamic ham/spam cutoffs from a training corpus.")
    Term.(
      const run $ seed_arg $ ham_mbox_arg $ spam_mbox_arg $ quantile_arg
      $ tokenizer_arg)

(* --------------------------------------------------------------- *)
(* stats                                                            *)

let stats_cmd =
  let run ham spam tokenizer () =
    setup_logs ();
    match load_labeled ~ham ~spam with
    | Error e -> fail "%s" e
    | Ok corpus ->
        print_string
          (Corpus.Corpus_stats.render
             (Corpus.Corpus_stats.measure tokenizer corpus));
        `Ok ()
  in
  guarded
    (Cmd.info "stats"
       ~doc:"Characterize a corpus: lengths, vocabulary growth, singleton \
             tail, class overlap.")
    Term.(const run $ ham_mbox_arg $ spam_mbox_arg $ tokenizer_arg)

(* --------------------------------------------------------------- *)
(* experiment                                                       *)

let experiment_cmd =
  let id_arg =
    let ids = String.concat ", " Eval.Registry.ids in
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:("Experiment id: " ^ ids ^ ", or 'all'."))
  in
  let trace_arg =
    let doc =
      "Write a JSONL execution trace (spans and counters) to $(docv). \
       Experiment output on stdout is unchanged."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc =
      "Print aggregate counters and span timings to stderr after the run."
    in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let fault_spec_arg =
    let doc =
      "Deterministic fault injection spec (also read from SPAMLAB_FAULTS): \
       comma-separated $(i,site:kind@occ+occ...) or \
       $(i,site:kind~prob) clauses, e.g. 'pool.task:transient\\@3+97'. \
       Kinds: transient, fatal, crash."
    in
    Arg.(value & opt (some string) None & info [ "fault-spec" ] ~docv:"SPEC" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Record completed grid points to $(docv) (JSONL, appended and \
       flushed as the sweep progresses) so an interrupted run can be \
       resumed with $(b,--resume)."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Restore completed grid points from the $(b,--checkpoint) file \
       instead of recomputing them.  Output is byte-identical to an \
       uninterrupted run."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let run seed scale jobs trace metrics fault_spec checkpoint resume id () =
    setup_logs ();
    let fault_configured =
      match fault_spec with
      | Some spec -> Fault.configure ~seed spec
      | None -> Fault.configure_env ~seed ()
    in
    let checkpoint_opened =
      match (checkpoint, resume) with
      | None, true -> Error "--resume requires --checkpoint FILE"
      | None, false -> Ok None
      | Some path, resume ->
          Result.map Option.some
            (Eval.Checkpoint.open_ ~path
               ~params:(Printf.sprintf "seed=%d scale=%h" seed scale)
               ~resume)
    in
    match (fault_configured, checkpoint_opened) with
    | Error e, _ -> fail "%s" e
    | _, Error e -> fail "%s" e
    | Ok (), Ok ck ->
        (match trace with Some path -> Obs.start_trace ~path | None -> ());
        if metrics then Obs.enable_metrics ();
        Obs.configure_from_env ();
        let lab = Eval.Lab.create ~seed ~scale ?jobs ?checkpoint:ck () in
        let finish result =
          Eval.Lab.shutdown lab;
          Option.iter Eval.Checkpoint.close ck;
          Obs.stop ();
          if metrics then Obs.dump_metrics stderr;
          result
        in
        (match
           match id with
           | "all" ->
               List.iter
                 (fun (id, report) ->
                   Printf.printf "==== %s ====\n%s\n" id report)
                 (Eval.Registry.run_all lab);
               `Ok ()
           | id -> (
               match Eval.Registry.find id with
               | None -> fail "unknown experiment %S" id
               | Some e ->
                   print_string (e.Eval.Registry.run lab);
                   `Ok ())
         with
        | result -> finish result
        | exception exn -> ignore (finish (`Ok ())); raise exn)
  in
  guarded
    (Cmd.info "experiment"
       ~doc:"Reproduce a table or figure from the paper's evaluation.")
    Term.(
      const run $ seed_arg $ scale_arg $ jobs_arg $ trace_arg $ metrics_arg
      $ fault_spec_arg $ checkpoint_arg $ resume_arg $ id_arg)

(* --------------------------------------------------------------- *)
(* tenants                                                          *)

let tenants_cmd =
  let users_arg =
    let doc =
      "Comma-separated tenant counts to sweep (each point runs on a fresh \
       store)."
    in
    Arg.(value & opt string "1000" & info [ "users" ] ~docv:"N,N,..." ~doc)
  in
  let communities_arg =
    Arg.(
      value & opt int 8
      & info [ "communities" ] ~docv:"K"
          ~doc:"Distinct community corpora tenants are drawn from.")
  in
  let poison_arg =
    Arg.(
      value & opt float 0.1
      & info [ "poison" ] ~docv:"F" ~doc:"Fraction of tenants attacked.")
  in
  let attack_count_arg =
    Arg.(
      value & opt int 4
      & info [ "attack-count" ] ~docv:"N"
          ~doc:"Attack emails trained into each poisoned tenant.")
  in
  let store_dir_arg =
    let doc =
      "Run tenants on the sharded on-disk store rooted here (one \
       users-N subdirectory per sweep point); default is the in-memory \
       backend."
    in
    Arg.(value & opt (some string) None & info [ "store-dir" ] ~docv:"DIR" ~doc)
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Record completed user chunks for --resume.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Restore completed user chunks from the --checkpoint file.")
  in
  let fault_spec_arg =
    let doc =
      "Deterministic fault injection spec (also read from SPAMLAB_FAULTS); \
       tenants-relevant sites: checkpoint.record, pool.task, \
       store.journal.append, store.compact, store.evict. Kinds: transient, \
       fatal, crash."
    in
    Arg.(value & opt (some string) None & info [ "fault-spec" ] ~docv:"SPEC" ~doc)
  in
  let run seed scale jobs users communities poison attack_count store_dir
      fault_spec checkpoint resume () =
    setup_logs ();
    let fault_configured =
      match fault_spec with
      | Some spec -> Fault.configure ~seed spec
      | None -> Fault.configure_env ~seed ()
    in
    let users =
      String.split_on_char ',' users
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map int_of_string_opt
    in
    match
      Result.bind fault_configured @@ fun () ->
      if List.exists Option.is_none users || users = [] then
        Error "bad --users (want comma-separated positive counts)"
      else
        let users = List.map Option.get users in
        if List.exists (fun u -> u <= 0) users then
          Error "bad --users (want comma-separated positive counts)"
        else Ok users
    with
    | Error e -> fail "%s" e
    | Ok users -> (
        let checkpoint_opened =
          match (checkpoint, resume) with
          | None, true -> Error "--resume requires --checkpoint FILE"
          | None, false -> Ok None
          | Some path, resume ->
              Result.map Option.some
                (Eval.Checkpoint.open_ ~path
                   ~params:(Printf.sprintf "seed=%d scale=%h" seed scale)
                   ~resume)
        in
        match checkpoint_opened with
        | Error e -> fail "%s" e
        | Ok ck -> (
            Obs.configure_from_env ();
            let lab = Eval.Lab.create ~seed ~scale ?jobs ?checkpoint:ck () in
            let cfg =
              {
                Eval.Tenants_exp.default_config with
                Eval.Tenants_exp.users;
                communities;
                poison_fraction = poison;
                attack_count;
                store_dir;
              }
            in
            let result = Eval.Tenants_exp.run lab cfg in
            Eval.Lab.shutdown lab;
            Option.iter Eval.Checkpoint.close ck;
            match result with
            | Error e -> fail "%s" e
            | Ok (report, detail) ->
                print_string report;
                prerr_string detail;
                `Ok ()))
  in
  guarded
    (Cmd.info "tenants"
       ~doc:
         "Multi-tenant poisoning at provider scale: per-user Bayes state \
          for N mailboxes over a shared prior, a poisoned subset, and \
          per-user attack/defense outcomes.")
    Term.(
      const run $ seed_arg $ scale_arg $ jobs_arg $ users_arg
      $ communities_arg $ poison_arg $ attack_count_arg $ store_dir_arg
      $ fault_spec_arg $ checkpoint_arg $ resume_arg)

(* --------------------------------------------------------------- *)
(* db                                                               *)

let db_verify_cmd =
  let db_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trained filter database to verify.")
  in
  let verify_store dir =
    match Spamlab_store.Store.verify_dir dir with
    | Error e -> fail "%s: %s" dir e
    | Ok r ->
        let open Spamlab_store.Store in
        Printf.printf "%s: sharded tenant store, %d shards\n" dir r.dir_shards;
        Printf.printf
          "  prior:    %s\n"
          (match r.prior_ok with
          | Ok p ->
              Printf.sprintf "ok (v%d, %d tokens, %d spam + %d ham)"
                p.Token_db.version p.Token_db.entries p.Token_db.nspam
                p.Token_db.nham
          | Error e -> "CORRUPT: " ^ e);
        Printf.printf "  segments: %d users, %d rows\n" r.dir_users r.dir_rows;
        Printf.printf "  journals: %d committed ops\n" r.dir_ops;
        let bad = ref (match r.prior_ok with Ok _ -> 0 | Error _ -> 1) in
        List.iter
          (fun s ->
            let seg =
              match s.segment with
              | `Ok -> Printf.sprintf "seg ok (%d users)" s.seg_users
              | `Missing -> "seg missing (empty)"
              | `Corrupt e ->
                  incr bad;
                  Printf.sprintf "seg CORRUPT: %s" e
            in
            let jrn =
              match s.journal with
              | `Ok n -> Printf.sprintf "journal ok (%d ops)" n
              | `Torn (n, salvage) ->
                  Printf.sprintf
                    "journal torn tail (%d committed ops, %d salvageable \
                     uncommitted)"
                    n salvage
              | `Stale -> "journal stale (compaction crash; will be discarded)"
              | `Missing -> "journal missing (fresh on next open)"
              | `Corrupt e ->
                  incr bad;
                  Printf.sprintf "journal CORRUPT: %s" e
            in
            Printf.printf "  shard %04d: %s; %s\n" s.shard seg jrn)
          r.shard_reports;
        if !bad > 0 then fail "%s: %d corrupt shard component(s)" dir !bad
        else `Ok ()
  in
  let run path () =
    setup_logs ();
    if Sys.file_exists path && Sys.is_directory path then
      if Spamlab_store.Store.is_store_dir path then verify_store path
      else fail "%s: directory is not a spamlab store" path
    else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error e -> fail "%s" e
    | contents -> (
        match Token_db.verify_string contents with
        | Ok r ->
            Printf.printf
              "%s: ok\n\
              \  format version: %d\n\
              \  checksum:       %s\n\
              \  counts:         %d spam + %d ham messages\n\
              \  entries:        %d tokens\n"
              path r.Token_db.version
              (match r.Token_db.checksum with
              | `Ok -> "ok (crc32)"
              | `Absent -> "absent (pre-v3 format)")
              r.Token_db.nspam r.Token_db.nham r.Token_db.entries;
            `Ok ()
        | Error e ->
            let salvage =
              match Token_db.salvage_string contents with
              | Ok s ->
                  Printf.sprintf " (salvageable: %d entries kept, %d lost)"
                    s.Token_db.kept s.Token_db.dropped
              | Error _ -> ""
            in
            fail "%s: corrupt token database: %s%s" path e salvage)
  in
  guarded
    (Cmd.info "verify"
       ~doc:"Check a database's format version, checksum and count \
             invariants — or, given a sharded tenant-store directory, \
             every shard's segment CRC/invariants and journal tail; \
             nonzero exit on corruption.")
    Term.(const run $ db_pos)

let db_cmd =
  Cmd.group
    (Cmd.info "db" ~doc:"Inspect and verify trained filter databases.")
    [ db_verify_cmd ]

(* --------------------------------------------------------------- *)
(* serve / client                                                   *)

let socket_arg =
  let doc = "Unix socket path of the daemon." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc = "TCP address of the daemon." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let parse_tcp spec =
  match String.rindex_opt spec ':' with
  | None -> Error (Printf.sprintf "bad address %S (want HOST:PORT)" spec)
  | Some i -> (
      let host = String.sub spec 0 i in
      match int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
      | Some port when port >= 0 && port < 65536 ->
          Ok (Serve.Daemon.Tcp (host, port))
      | _ -> Error (Printf.sprintf "bad port in %S" spec))

let daemon_addr ?default socket tcp =
  match (socket, tcp, default) with
  | Some _, Some _, _ -> Error "choose one of --socket and --tcp"
  | Some p, None, _ -> Ok (Serve.Daemon.Unix_sock p)
  | None, Some spec, _ -> parse_tcp spec
  | None, None, Some d -> Ok d
  | None, None, None -> Error "need --socket PATH or --tcp HOST:PORT"

let string_of_sockaddr = function
  | Unix.ADDR_UNIX p -> p
  | Unix.ADDR_INET (ip, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port

let serve_cmd =
  let publish_every_arg =
    let doc =
      "Trained messages between automatic snapshot publishes (0 disables; \
       PUBLISH always works)."
    in
    Arg.(value & opt int 32 & info [ "publish-every" ] ~docv:"N" ~doc)
  in
  let max_body_arg =
    let doc = "Largest accepted Content-Length in bytes." in
    Arg.(
      value
      & opt int Serve.Protocol.default_max_body
      & info [ "max-body" ] ~docv:"BYTES" ~doc)
  in
  let fault_spec_arg =
    let doc =
      "Deterministic fault injection spec (also read from SPAMLAB_FAULTS); \
       daemon sites: serve.accept, serve.read, serve.publish, db.save.write, \
       db.save.rename, store.journal.append, store.compact, store.evict."
    in
    Arg.(value & opt (some string) None & info [ "fault-spec" ] ~docv:"SPEC" ~doc)
  in
  let store_dir_arg =
    let doc =
      "Directory of the multi-tenant sharded token store; enables User-header \
       routing to per-tenant Bayes state (created on first start with the \
       shared filter as global prior)."
    in
    Arg.(value & opt (some string) None & info [ "store-dir" ] ~docv:"DIR" ~doc)
  in
  let store_shards_arg =
    let doc = "Shards of a newly created tenant store." in
    Arg.(
      value
      & opt int Spamlab_store.Store.default_config.shards
      & info [ "store-shards" ] ~docv:"N" ~doc)
  in
  let store_cache_arg =
    let doc = "Max cached tenant overlays across all shards." in
    Arg.(
      value
      & opt int Spamlab_store.Store.default_config.cache
      & info [ "store-cache" ] ~docv:"N" ~doc)
  in
  let store_compact_arg =
    let doc =
      "Compact a shard when its journal exceeds this ratio of its segment."
    in
    Arg.(
      value
      & opt float Spamlab_store.Store.default_config.compact_ratio
      & info [ "store-compact-ratio" ] ~docv:"R" ~doc)
  in
  let timeout_read_arg =
    let doc =
      "Absolute budget in seconds for reading one request frame; a peer \
       trickling bytes past it is answered ERR and dropped (0 = no limit)."
    in
    Arg.(value & opt float 0.0 & info [ "timeout-read" ] ~docv:"SECONDS" ~doc)
  in
  let timeout_write_arg =
    let doc =
      "Absolute budget in seconds for writing one response (0 = no limit)."
    in
    Arg.(value & opt float 0.0 & info [ "timeout-write" ] ~docv:"SECONDS" ~doc)
  in
  let timeout_idle_arg =
    let doc =
      "Drop connections that complete no request for this many seconds \
       (0 = never)."
    in
    Arg.(value & opt float 0.0 & info [ "timeout-idle" ] ~docv:"SECONDS" ~doc)
  in
  let max_conns_arg =
    let doc =
      "Admission cap: connections over it are answered BUSY and closed \
       (0 = unlimited)."
    in
    Arg.(value & opt int 0 & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let max_inflight_arg =
    let doc =
      "Per-round request execution quota: requests over it are answered \
       BUSY without executing (0 = unlimited)."
    in
    Arg.(value & opt int 0 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let drain_arg =
    let doc =
      "Grace period in seconds between SIGTERM/SIGINT and abandoning \
       still-active connections."
    in
    Arg.(
      value
      & opt float Serve.Daemon.default_limits.drain_s
      & info [ "drain" ] ~docv:"SECONDS" ~doc)
  in
  let degraded_after_arg =
    let doc =
      "Consecutive publish failures before entering degraded mode \
       (TRAIN/UNTRAIN refused, CLASSIFY keeps serving the last snapshot; \
       0 = never)."
    in
    Arg.(value & opt int 0 & info [ "degraded-after" ] ~docv:"N" ~doc)
  in
  let run seed db socket tcp publish_every max_body jobs tokenizer fault_spec
      store_dir store_shards store_cache store_compact timeout_read
      timeout_write timeout_idle max_conns max_inflight drain degraded_after ()
      =
    setup_logs ();
    let fault_configured =
      match fault_spec with
      | Some spec -> Fault.configure ~seed spec
      | None -> Fault.configure_env ~seed ()
    in
    match fault_configured with
    | Error e -> fail "%s" e
    | Ok () -> (
        Obs.configure_from_env ();
        let default =
          Serve.Daemon.Unix_sock
            (Filename.concat (Filename.dirname db) "spamlab.sock")
        in
        match daemon_addr ~default socket tcp with
        | Error e -> fail "%s" e
        | Ok addr -> (
            let store =
              Option.map
                (fun dir ->
                  {
                    Spamlab_store.Store.backend = `Sharded dir;
                    shards = store_shards;
                    cache = store_cache;
                    compact_ratio = store_compact;
                  })
                store_dir
            in
            let config =
              {
                Serve.Daemon.addr;
                db_path = db;
                tokenizer;
                options = Options.default;
                publish_every;
                max_body;
                jobs =
                  (match jobs with
                  | Some j -> j
                  | None -> Spamlab_parallel.default_jobs ());
                store;
                limits =
                  {
                    Serve.Daemon.read_timeout_s = timeout_read;
                    write_timeout_s = timeout_write;
                    idle_timeout_s = timeout_idle;
                    max_conns;
                    max_inflight;
                    drain_s = drain;
                    degraded_after;
                  };
              }
            in
            match Serve.Daemon.create config with
            | Error e -> fail "%s" e
            | Ok daemon ->
                let stop_flag = Atomic.make false in
                List.iter
                  (fun s ->
                    try
                      Sys.set_signal s
                        (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true))
                    with Invalid_argument _ | Sys_error _ -> ())
                  [ Sys.sigterm; Sys.sigint ];
                let ready sa =
                  Logs.info (fun m -> m "listening on %s" (string_of_sockaddr sa))
                in
                let result =
                  Serve.Daemon.run ~ready
                    ~stop:(fun () -> Atomic.get stop_flag)
                    daemon
                in
                Serve.Daemon.shutdown daemon;
                (match result with Error e -> fail "%s" e | Ok () -> `Ok ())))
  in
  guarded
    (Cmd.info "serve"
       ~doc:
         "Run the classification daemon: a spamd-style service answering \
          PING/STATS/PUBLISH/CLASSIFY/TRAIN/UNTRAIN over a unix or TCP \
          socket.")
    Term.(
      const run $ seed_arg $ db_arg $ socket_arg $ tcp_arg $ publish_every_arg
      $ max_body_arg $ jobs_arg $ tokenizer_arg $ fault_spec_arg
      $ store_dir_arg $ store_shards_arg $ store_cache_arg $ store_compact_arg
      $ timeout_read_arg $ timeout_write_arg $ timeout_idle_arg $ max_conns_arg
      $ max_inflight_arg $ drain_arg $ degraded_after_arg)

let oneshot addr (req : Serve.Protocol.request) =
  match Serve.Client.roundtrip addr req with
  | Error e -> fail "%s" (Serve.Client.error_message e)
  | Ok (Serve.Protocol.Err e) -> fail "daemon error: %s" e
  | Ok Serve.Protocol.Busy ->
      fail "daemon busy: request shed under load, retry after a backoff"
  | Ok (Serve.Protocol.Ok payload) ->
      print_string payload;
      `Ok ()

let client_simple_cmd name ~doc verb =
  let run socket tcp () =
    match daemon_addr socket tcp with
    | Error e -> fail "%s" e
    | Ok addr -> oneshot addr { Serve.Protocol.verb; body = ""; user = None }
  in
  guarded (Cmd.info name ~doc) Term.(const run $ socket_arg $ tcp_arg)

let user_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "user" ] ~docv:"USER"
        ~doc:
          "Address the request to this tenant's per-user state (requires a \
           daemon started with --store-dir).")

let mbox_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"MBOX" ~doc:"Raw mbox file to send as the request body.")

let class_arg =
  let doc = "Message class: ham or spam." in
  Arg.(
    required
    & opt (some (enum [ ("ham", Label.Ham); ("spam", Label.Spam) ])) None
    & info [ "class" ] ~docv:"CLASS" ~doc)

let client_body_cmd name ~doc mk_verb =
  let run socket tcp user verb mbox () =
    match daemon_addr socket tcp with
    | Error e -> fail "%s" e
    | Ok addr ->
        let body = In_channel.with_open_bin mbox In_channel.input_all in
        oneshot addr { Serve.Protocol.verb; body; user }
  in
  guarded (Cmd.info name ~doc)
    Term.(const run $ socket_arg $ tcp_arg $ user_arg $ mk_verb $ mbox_pos)

let client_classify_cmd =
  client_body_cmd "classify"
    ~doc:
      "Classify every message of an mbox against the daemon's published \
       snapshot; prints one 'index verdict indicator' line per message."
    Term.(const Serve.Protocol.Classify)

let client_train_cmd =
  client_body_cmd "train"
    ~doc:"Train the daemon's delta on an mbox of one class."
    Term.(const (fun c -> Serve.Protocol.Train c) $ class_arg)

let client_untrain_cmd =
  client_body_cmd "untrain"
    ~doc:"Remove an mbox of one class from the daemon's delta."
    Term.(const (fun c -> Serve.Protocol.Untrain c) $ class_arg)

let client_stall_cmd =
  let send_arg =
    let doc =
      "Bytes to send before going silent (default: half a CLASSIFY header \
       — the classic slow-loris shape)."
    in
    Arg.(
      value
      & opt string "CLASSIFY SPAMLAB/1.0\r\nContent-Le"
      & info [ "send" ] ~docv:"BYTES" ~doc)
  in
  let hold_arg =
    let doc = "Seconds to hold the half-open connection before giving up." in
    Arg.(value & opt float 5.0 & info [ "hold" ] ~docv:"SECONDS" ~doc)
  in
  let run socket tcp bytes hold () =
    match daemon_addr socket tcp with
    | Error e -> fail "%s" e
    | Ok addr -> (
        match Serve.Client.stall ~addr ~bytes ~hold_s:hold with
        | Error e -> fail "%s" (Serve.Client.error_message e)
        | Ok outcome ->
            (* "reaped": the daemon dropped us first (its deadline or
               idle reaping worked); "held": we outlived the hold. *)
            print_endline outcome;
            `Ok ())
  in
  guarded
    (Cmd.info "stall"
       ~doc:
         "Adversarial slow-loris probe: connect, send a partial request, \
          then go silent; prints 'reaped' if the daemon closed the \
          connection first and 'held' if it survived the whole hold.")
    Term.(const run $ socket_arg $ tcp_arg $ send_arg $ hold_arg)

let client_load_cmd =
  let clients_arg =
    Arg.(value & opt int 2 & info [ "clients" ] ~docv:"N" ~doc:"Logical clients.")
  in
  let train_size_arg =
    Arg.(value & opt int 96 & info [ "train-size" ] ~docv:"N" ~doc:"Messages to train.")
  in
  let eval_size_arg =
    Arg.(value & opt int 48 & info [ "eval-size" ] ~docv:"N" ~doc:"Messages to classify.")
  in
  let batch_arg =
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"N" ~doc:"Messages per request.")
  in
  let users_arg =
    Arg.(
      value & opt int 0
      & info [ "users" ] ~docv:"N"
          ~doc:
            "Deal the schedule round-robin across N tenants via User headers \
             (0 = single-filter mode; requires --store-dir on the daemon).")
  in
  let user_prefix_arg =
    Arg.(
      value & opt string ""
      & info [ "user-prefix" ] ~docv:"PREFIX"
          ~doc:
            "Prepend this to every tenant name, so concurrent load runs \
             against one daemon can address disjoint tenant sets (default: \
             none — the historical names).")
  in
  let run seed socket tcp clients train_size eval_size batch users user_prefix
      () =
    setup_logs ();
    match daemon_addr socket tcp with
    | Error e -> fail "%s" e
    | Ok addr -> (
        let cfg =
          {
            (Serve.Client.default_load ~addr ~seed) with
            Serve.Client.clients;
            train_size;
            eval_size;
            train_batch = batch;
            classify_batch = batch;
            users;
            user_prefix;
          }
        in
        match Serve.Client.load cfg with
        | Error e -> fail "%s" e
        | Ok report ->
            (* Summary on stdout is deterministic (jobs- and
               crash/replay-invariant); timing detail goes to stderr. *)
            print_string report.Serve.Client.summary;
            prerr_string report.Serve.Client.detail;
            `Ok ())
  in
  guarded
    (Cmd.info "load"
       ~doc:
         "Deterministic load generator: train a generated corpus in \
          batches, publish, classify a held-out corpus, print a \
          deterministic summary.")
    Term.(
      const run $ seed_arg $ socket_arg $ tcp_arg $ clients_arg
      $ train_size_arg $ eval_size_arg $ batch_arg $ users_arg
      $ user_prefix_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running spamlab daemon.")
    [
      client_simple_cmd "ping" ~doc:"Liveness check." Serve.Protocol.Ping;
      client_simple_cmd "stats"
        ~doc:
          "Print the daemon's request counters and latency histograms \
           (latency.* lines are wall-clock and not deterministic)."
        Serve.Protocol.Stats;
      client_simple_cmd "health"
        ~doc:
          "Print the daemon's overload state: \
           state=READY|DEGRADED|DRAINING plus transition counters."
        Serve.Protocol.Health;
      client_simple_cmd "publish"
        ~doc:"Force a snapshot publish of the daemon's training delta."
        Serve.Protocol.Publish;
      client_classify_cmd; client_train_cmd; client_untrain_cmd;
      client_stall_cmd; client_load_cmd;
    ]

(* --------------------------------------------------------------- *)
(* fault / chaos                                                    *)

let fault_sites_cmd =
  let run () =
    List.iter
      (fun (name, desc) -> Printf.printf "%-22s %s\n" name desc)
      Fault.known_sites;
    `Ok ()
  in
  guarded
    (Cmd.info "sites"
       ~doc:
         "List every compiled-in fault-injection site with its placement, \
          the site names --fault-spec and SPAMLAB_FAULTS accept.")
    Term.(const run)

let fault_cmd =
  Cmd.group
    (Cmd.info "fault" ~doc:"Deterministic fault-injection utilities.")
    [ fault_sites_cmd ]

let chaos_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Scratch directory for daemons, stores and captured client \
             output (created if missing; stale state is removed).")
  in
  let clients_arg =
    Arg.(
      value & opt int 3
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent load-client processes.")
  in
  let users_arg =
    Arg.(
      value & opt int 2
      & info [ "users" ] ~docv:"N"
          ~doc:
            "Tenants per client (>= 1: concurrent clients need disjoint \
             tenant state for deterministic verdicts).")
  in
  let train_size_arg =
    Arg.(
      value & opt int 48
      & info [ "train-size" ] ~docv:"N" ~doc:"Messages each client trains.")
  in
  let eval_size_arg =
    Arg.(
      value & opt int 24
      & info [ "eval-size" ] ~docv:"N" ~doc:"Messages each client classifies.")
  in
  let batch_arg =
    Arg.(value & opt int 6 & info [ "batch" ] ~docv:"N" ~doc:"Messages per request.")
  in
  let kills_arg =
    Arg.(
      value & opt int 2
      & info [ "kills" ] ~docv:"N"
          ~doc:"Planned crash-kill/restart cycles (at replay-safe sites).")
  in
  let fault_p_arg =
    Arg.(
      value & opt float 0.02
      & info [ "fault-p" ] ~docv:"P"
          ~doc:"Per-occurrence transient fault probability.")
  in
  let publish_fault_p_arg =
    Arg.(
      value & opt float 0.2
      & info [ "publish-fault-p" ] ~docv:"P"
          ~doc:
            "Transient probability for serve.publish (higher, so degraded \
             mode actually engages).")
  in
  let jobs_chaos_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains per daemon.")
  in
  let wall_arg =
    Arg.(
      value & opt float 120.0
      & info [ "wall-budget" ] ~docv:"SECONDS"
          ~doc:"Hard wall-clock cap for the whole soak.")
  in
  let run seed dir clients users train_size eval_size batch kills fault_p
      publish_fault_p jobs wall () =
    setup_logs ();
    let cfg =
      {
        (Serve.Chaos.default ~exe:Sys.executable_name ~dir ~seed) with
        Serve.Chaos.clients;
        users;
        train_size;
        eval_size;
        batch;
        kills;
        fault_p;
        publish_fault_p;
        jobs;
        wall_budget_s = wall;
      }
    in
    match Serve.Chaos.run cfg with
    | Ok report ->
        print_string report;
        `Ok ()
    | Error e -> fail "%s" e
  in
  guarded
    (Cmd.info "chaos"
       ~doc:
         "Deterministic chaos soak: a daemon under a seed-derived fault \
          schedule with crash-kills and restarts, concurrent load clients, \
          and end-state invariants (byte-identical client output vs an \
          uninterrupted baseline, verified database, READY recovery).")
    Term.(
      const run $ seed_arg $ dir_arg $ clients_arg $ users_arg
      $ train_size_arg $ eval_size_arg $ batch_arg $ kills_arg $ fault_p_arg
      $ publish_fault_p_arg $ jobs_chaos_arg $ wall_arg)

(* --------------------------------------------------------------- *)

let main_cmd =
  let doc =
    "laboratory for training-set poisoning attacks on statistical spam \
     filters (Nelson et al., 2008)"
  in
  Cmd.group
    (Cmd.info "spamlab" ~version:"1.0.0" ~doc)
    [
      corpus_cmd; train_cmd; classify_cmd; classify_mbox_cmd; tokenize_cmd;
      stats_cmd;
      attack_cmd; evade_cmd; roni_cmd; thresholds_cmd; experiment_cmd;
      tenants_cmd; db_cmd; serve_cmd; client_cmd; fault_cmd; chaos_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
