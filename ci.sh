#!/bin/sh
# CI entry point: build, test, (optionally) check formatting, then run
# one tiny traced experiment and validate the emitted JSONL trace.
# Everything here must pass before a change lands.
set -eu

say() { printf '\n== %s ==\n' "$1"; }

say "dune build"
dune build

say "dune runtest"
dune runtest

say "format check"
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  echo "ocamlformat not installed; skipping (formatting is advisory)"
fi

say "traced smoke experiment"
trace=$(mktemp /tmp/spamlab-ci-trace.XXXXXX.jsonl)
trap 'rm -f "$trace"' EXIT
./_build/default/bin/spamlab.exe experiment fig1 \
  --scale 0.02 --jobs 2 --trace "$trace" > /dev/null

say "trace validation"
test -s "$trace" || { echo "FAIL: trace is empty"; exit 1; }
head -n 1 "$trace" | grep -q '"ev":"meta".*"format":"spamlab-trace"' \
  || { echo "FAIL: missing meta header"; exit 1; }
if grep -nv '^{.*}$' "$trace"; then
  echo "FAIL: non-JSON-object trace lines (above)"; exit 1
fi
opens=$(grep -c '"ev":"span_open"' "$trace")
closes=$(grep -c '"ev":"span_close"' "$trace")
test "$opens" -eq "$closes" \
  || { echo "FAIL: $opens span_open vs $closes span_close"; exit 1; }
test "$opens" -gt 0 || { echo "FAIL: no spans recorded"; exit 1; }
grep -q '"ev":"counter".*"name":"eval.messages_classified"' "$trace" \
  || { echo "FAIL: missing eval.messages_classified counter"; exit 1; }
echo "trace OK: $opens spans, balanced"

say "bench --timings smoke"
timings=$(mktemp /tmp/spamlab-ci-timings.XXXXXX.json)
trap 'rm -f "$trace" "$timings"' EXIT
./_build/default/bench/main.exe fig2 ingest \
  --scale 0.02 --jobs 2 --timings "$timings" > /dev/null

say "timings validation"
test -s "$timings" || { echo "FAIL: timings file is empty"; exit 1; }
grep -q '"seed":' "$timings" || { echo "FAIL: missing seed key"; exit 1; }
grep -q '"scale":' "$timings" || { echo "FAIL: missing scale key"; exit 1; }
grep -q '"jobs":' "$timings" || { echo "FAIL: missing jobs key"; exit 1; }
grep -q '"experiments":\[' "$timings" \
  || { echo "FAIL: missing experiments array"; exit 1; }
grep -q '"id":"fig2"' "$timings" \
  || { echo "FAIL: missing fig2 experiment entry"; exit 1; }
# The ingest throughput bench must record all three paths per tokenizer.
for tok in spambayes bogofilter spamassassin; do
  for path in legacy zerocopy pool; do
    grep -q "\"id\":\"ingest-$tok-$path\"" "$timings" \
      || { echo "FAIL: missing ingest-$tok-$path bench entry"; exit 1; }
  done
done
# Every recorded wall time must be positive (a 0.000000 would mean the
# experiment never actually ran).
if grep -q '"seconds":0\.000000' "$timings" \
  || grep -q '"seconds":-' "$timings"; then
  echo "FAIL: non-positive experiment wall time"; exit 1
fi
echo "timings OK: $(cat "$timings")"

say "cross-jobs determinism"
# Experiment stdout must be byte-identical at every --jobs value: the
# corpus substrate splits one rng child per message index, so the
# domain count can never leak into results.  fig1 exercises the
# dictionary-attack path through the zero-copy ingest pipeline, fig2
# the focused-attack path, roni the defense path.
j1=$(mktemp /tmp/spamlab-ci-jobs1.XXXXXX.txt)
j4=$(mktemp /tmp/spamlab-ci-jobs4.XXXXXX.txt)
trap 'rm -f "$trace" "$timings" "$j1" "$j4"' EXIT
for exp in fig1 fig2 roni; do
  ./_build/default/bin/spamlab.exe experiment "$exp" \
    --scale 0.05 --jobs 1 > "$j1"
  ./_build/default/bin/spamlab.exe experiment "$exp" \
    --scale 0.05 --jobs 4 > "$j4"
  diff -u "$j1" "$j4" \
    || { echo "FAIL: $exp output differs between --jobs 1 and --jobs 4"; exit 1; }
  echo "$exp: jobs 1 == jobs 4"
done

say "fault-injected determinism"
# Transient faults are retried to success by the pool's supervision,
# so a faulted run must be byte-identical to the fault-free one.  The
# occurrences are spaced widely so no element eats all three of its
# retry attempts.
faulted=$(mktemp /tmp/spamlab-ci-faulted.XXXXXX.txt)
trap 'rm -f "$trace" "$timings" "$j1" "$j4" "$faulted"' EXIT
./_build/default/bin/spamlab.exe experiment fig2 \
  --scale 0.05 > "$j1"
./_build/default/bin/spamlab.exe experiment fig2 \
  --scale 0.05 --fault-spec 'pool.task:transient@3+97+401' > "$faulted"
diff -u "$j1" "$faulted" \
  || { echo "FAIL: fig2 output differs under transient faults"; exit 1; }
echo "fig2: fault-free == transient-faulted"
# The intern table grows inside pool-supervised tokenize tasks; a
# transient fault at the grow site (fired before any mutation) must be
# retried to the same bytes.
./_build/default/bin/spamlab.exe experiment fig2 \
  --scale 0.05 --fault-spec 'intern.grow:transient@2+5+11' > "$faulted"
diff -u "$j1" "$faulted" \
  || { echo "FAIL: fig2 output differs under intern.grow faults"; exit 1; }
echo "fig2: fault-free == intern.grow-faulted"
# The probability-cache fill path carries its own fault site; a
# transient there falls through to the uncached compute for that token
# without touching the slot, so output must not move by a byte.
./_build/default/bin/spamlab.exe experiment fig2 \
  --scale 0.05 --fault-spec 'score.cache.fill:transient@2+33+501' > "$faulted"
diff -u "$j1" "$faulted" \
  || { echo "FAIL: fig2 output differs under score.cache.fill faults"; exit 1; }
echo "fig2: fault-free == cache-fill-faulted"

say "probability cache: cached vs uncached byte identity"
# SPAMLAB_NO_PROB_CACHE=1 makes every probability read compute uncached
# (the kill switch).  A cached parallel run must produce byte-identical
# experiment output to an uncached serial run — one diff covering both
# the cache and the jobs axis.
pc_cached=$(mktemp /tmp/spamlab-ci-pc-cached.XXXXXX.txt)
pc_uncached=$(mktemp /tmp/spamlab-ci-pc-uncached.XXXXXX.txt)
for exp in fig1 fig2 roni; do
  ./_build/default/bin/spamlab.exe experiment "$exp" \
    --scale 0.05 --jobs 4 > "$pc_cached"
  SPAMLAB_NO_PROB_CACHE=1 ./_build/default/bin/spamlab.exe experiment "$exp" \
    --scale 0.05 --jobs 1 > "$pc_uncached"
  diff -u "$pc_uncached" "$pc_cached" \
    || { echo "FAIL: $exp cached (jobs 4) differs from uncached (jobs 1)"; exit 1; }
  echo "$exp: uncached jobs 1 == cached jobs 4"
done
rm -f "$pc_cached" "$pc_uncached"

say "kill and resume"
# An injected crash kills the run mid-sweep (exit 70); resuming from
# the checkpoint must reproduce the uninterrupted output exactly.
ckpt=$(mktemp /tmp/spamlab-ci-ckpt.XXXXXX.jsonl)
resumed=$(mktemp /tmp/spamlab-ci-resumed.XXXXXX.txt)
trap 'rm -f "$trace" "$timings" "$j1" "$j4" "$faulted" "$ckpt" "$resumed"' EXIT
status=0
./_build/default/bin/spamlab.exe experiment fig2 \
  --scale 0.05 --checkpoint "$ckpt" \
  --fault-spec 'checkpoint.record:crash@3' > /dev/null 2>&1 || status=$?
test "$status" -eq 70 \
  || { echo "FAIL: injected crash should exit 70, got $status"; exit 1; }
test -s "$ckpt" || { echo "FAIL: checkpoint is empty after the kill"; exit 1; }
./_build/default/bin/spamlab.exe experiment fig2 \
  --scale 0.05 --checkpoint "$ckpt" --resume > "$resumed"
diff -u "$j1" "$resumed" \
  || { echo "FAIL: resumed fig2 output differs from the baseline"; exit 1; }
echo "fig2: killed at record 3, resumed, byte-identical"

say "serve soak: cross-jobs determinism"
# The daemon's CLASSIFY fan-out over the domain pool must never leak
# the worker count: a fixed client-load seed must produce byte-identical
# client stdout, STATS (minus the latency.* lines, which are wall-clock)
# and published token database at every --jobs value.
sdir=$(mktemp -d /tmp/spamlab-ci-serve.XXXXXX)
trap 'rm -f "$trace" "$timings" "$j1" "$j4" "$faulted" "$ckpt" "$resumed"; rm -rf "$sdir"' EXIT
spamlab=./_build/default/bin/spamlab.exe
daemon_pid=

# Readiness means the protocol answers, not that the socket file exists
# (the file appears at bind, a beat before the accept loop runs — and a
# daemon that died at startup leaves the stale file of its predecessor).
# Probe with PING under bounded backoff; fail loudly with the server log.
# Exactly one PING succeeds per call (failed connects never reach the
# daemon), so the probe shifts STATS identically in every compared leg.
wait_ready() { # tag
  for delay in 0 0.02 0.04 0.08 0.15 0.3 0.5 0.5 1 1 1 1 1 1; do
    sleep "$delay"
    if "$spamlab" client ping --socket "$sdir/$1.sock" > /dev/null 2>&1; then
      return 0
    fi
    kill -0 "$daemon_pid" 2> /dev/null \
      || { echo "FAIL: $1 daemon died before answering PING"; \
           cat "$sdir/$1.serve.log"; exit 1; }
  done
  echo "FAIL: $1 daemon never answered PING on $sdir/$1.sock"
  cat "$sdir/$1.serve.log"
  exit 1
}

start_daemon() { # tag jobs [extra serve args...]
  tag=$1; dj=$2; shift 2
  "$spamlab" serve --db "$sdir/$tag.db" --socket "$sdir/$tag.sock" \
    --jobs "$dj" "$@" 2>> "$sdir/$tag.serve.log" &
  daemon_pid=$!
  wait_ready "$tag"
}

run_leg() { # tag jobs
  start_daemon "$1" "$2"
  "$spamlab" client load --socket "$sdir/$1.sock" --seed 7 \
    > "$sdir/$1.client.txt" 2> "$sdir/$1.client.log" \
    || { echo "FAIL: $1 client load failed"; cat "$sdir/$1.client.log"; exit 1; }
  "$spamlab" client stats --socket "$sdir/$1.sock" \
    | grep -v '^latency\.' > "$sdir/$1.stats.txt"
  kill -TERM "$daemon_pid"
  wait "$daemon_pid" \
    || { echo "FAIL: $1 daemon exited nonzero on SIGTERM"; exit 1; }
}

run_leg sj1 1
run_leg sj4 4
# A third leg with the probability cache killed: the daemon's shared
# snapshot cache must never influence a verdict, a clue, or the
# published database.
export SPAMLAB_NO_PROB_CACHE=1
run_leg snc 4
unset SPAMLAB_NO_PROB_CACHE
cmp -s "$sdir/sj1.client.txt" "$sdir/snc.client.txt" \
  || { echo "FAIL: client stdout differs with the prob cache disabled"; \
       diff -u "$sdir/sj1.client.txt" "$sdir/snc.client.txt" | head -20; exit 1; }
cmp -s "$sdir/sj1.db" "$sdir/snc.db" \
  || { echo "FAIL: published db differs with the prob cache disabled"; exit 1; }
echo "serve: cached == uncached (client stdout, db)"
cmp -s "$sdir/sj1.client.txt" "$sdir/sj4.client.txt" \
  || { echo "FAIL: client stdout differs between daemon --jobs 1 and 4"; \
       diff -u "$sdir/sj1.client.txt" "$sdir/sj4.client.txt" | head -20; exit 1; }
cmp -s "$sdir/sj1.stats.txt" "$sdir/sj4.stats.txt" \
  || { echo "FAIL: STATS differ between daemon --jobs 1 and 4"; \
       diff -u "$sdir/sj1.stats.txt" "$sdir/sj4.stats.txt"; exit 1; }
cmp -s "$sdir/sj1.db" "$sdir/sj4.db" \
  || { echo "FAIL: published db differs between daemon --jobs 1 and 4"; exit 1; }
echo "serve: daemon jobs 1 == jobs 4 (client stdout, STATS, db)"

say "serve soak: crash mid-TRAIN, restart, replay"
# The second publish crashes the daemon (exit 70) partway through the
# TRAIN schedule.  The client reconnect-retries, replaying its
# unpublished buffer against the restarted daemon; the final stdout and
# the published database must match the uninterrupted sj1 leg exactly.
start_daemon crash 1 --fault-spec 'serve.publish:crash@2'
"$spamlab" client load --socket "$sdir/crash.sock" --seed 7 \
  > "$sdir/crash.client.txt" 2> "$sdir/crash.client.log" &
client_pid=$!
status=0
wait "$daemon_pid" || status=$?
[ "$status" -eq 70 ] \
  || { echo "FAIL: injected publish crash should exit 70, got $status"; exit 1; }
start_daemon crash 1
wait "$client_pid" \
  || { echo "FAIL: client did not survive the daemon crash"; \
       cat "$sdir/crash.client.log"; exit 1; }
kill -TERM "$daemon_pid"
wait "$daemon_pid" \
  || { echo "FAIL: restarted daemon exited nonzero on SIGTERM"; exit 1; }
cmp -s "$sdir/sj1.client.txt" "$sdir/crash.client.txt" \
  || { echo "FAIL: crash-and-replay client stdout differs from uninterrupted"; \
       diff -u "$sdir/sj1.client.txt" "$sdir/crash.client.txt" | head -20; exit 1; }
cmp -s "$sdir/sj1.db" "$sdir/crash.db" \
  || { echo "FAIL: crash-and-replay db differs from uninterrupted"; exit 1; }
grep -q 'reconnects=' "$sdir/crash.client.log" \
  || { echo "FAIL: client log records no reconnect"; exit 1; }
echo "serve: crashed at publish 2, restarted, replayed, byte-identical"

say "tenants: cross-jobs determinism (sharded store)"
# The tenants experiment fans user chunks over the domain pool while
# every op lands in the sharded store; stdout (classification outcomes
# only — store traffic counters go to stderr) must be byte-identical
# at every --jobs value, and the store it leaves behind must verify.
tdir=$(mktemp -d /tmp/spamlab-ci-tenants.XXXXXX)
trap 'rm -f "$trace" "$timings" "$j1" "$j4" "$faulted" "$ckpt" "$resumed"; rm -rf "$sdir" "$tdir"' EXIT
"$spamlab" tenants --users 300 --scale 0.05 --jobs 1 \
  --store-dir "$tdir/tj1" > "$tdir/tj1.txt" 2> /dev/null
"$spamlab" tenants --users 300 --scale 0.05 --jobs 4 \
  --store-dir "$tdir/tj4" > "$tdir/tj4.txt" 2> /dev/null
cmp -s "$tdir/tj1.txt" "$tdir/tj4.txt" \
  || { echo "FAIL: tenants output differs between --jobs 1 and --jobs 4"; \
       diff -u "$tdir/tj1.txt" "$tdir/tj4.txt" | head -20; exit 1; }
"$spamlab" db verify "$tdir/tj4/users-300" > /dev/null \
  || { echo "FAIL: tenants store does not verify"; exit 1; }
echo "tenants: jobs 1 == jobs 4; store verifies"
# Tenant scoring routes through the store's shared prior cache +
# per-overlay dirty set; killing the cache must not move a byte.
SPAMLAB_NO_PROB_CACHE=1 "$spamlab" tenants --users 300 --scale 0.05 --jobs 1 \
  --store-dir "$tdir/tnc" > "$tdir/tnc.txt" 2> /dev/null
cmp -s "$tdir/tnc.txt" "$tdir/tj4.txt" \
  || { echo "FAIL: tenants output differs with the prob cache disabled"; \
       diff -u "$tdir/tnc.txt" "$tdir/tj4.txt" | head -20; exit 1; }
echo "tenants: uncached jobs 1 == cached jobs 4"

say "store soak: crash mid-append, restart, replay"
# A crash injected at the journal-append fault site kills the daemon
# (exit 70) partway through a tenant-routed TRAIN schedule: the op was
# never buffered, never acked, and the journal's uncommitted suffix is
# discarded on reopen.  The client reconnect-replays its unpublished
# buffer against the restarted daemon; after the explicit publish
# (which compacts every shard to canonical bytes) the store must be
# byte-for-byte identical to an uninterrupted leg's.
run_store_leg() { # tag [extra serve args...]
  tag=$1; shift
  start_daemon "$tag" 1 --store-dir "$sdir/$tag.store" "$@"
  "$spamlab" client load --socket "$sdir/$tag.sock" --seed 7 --users 3 \
    > "$sdir/$tag.client.txt" 2> "$sdir/$tag.client.log" &
  client_pid=$!
}
run_store_leg tbase
wait "$client_pid" \
  || { echo "FAIL: tbase client load failed"; cat "$sdir/tbase.client.log"; exit 1; }
"$spamlab" client publish --socket "$sdir/tbase.sock" > /dev/null
kill -TERM "$daemon_pid"
wait "$daemon_pid" \
  || { echo "FAIL: tbase daemon exited nonzero on SIGTERM"; exit 1; }
run_store_leg tcrash --fault-spec 'store.journal.append:crash@25'
status=0
wait "$daemon_pid" || status=$?
[ "$status" -eq 70 ] \
  || { echo "FAIL: injected append crash should exit 70, got $status"; exit 1; }
start_daemon tcrash 1 --store-dir "$sdir/tcrash.store"
wait "$client_pid" \
  || { echo "FAIL: client did not survive the store crash"; \
       cat "$sdir/tcrash.client.log"; exit 1; }
"$spamlab" client publish --socket "$sdir/tcrash.sock" > /dev/null
kill -TERM "$daemon_pid"
wait "$daemon_pid" \
  || { echo "FAIL: restarted store daemon exited nonzero on SIGTERM"; exit 1; }
cmp -s "$sdir/tbase.client.txt" "$sdir/tcrash.client.txt" \
  || { echo "FAIL: store crash-and-replay client stdout differs"; \
       diff -u "$sdir/tbase.client.txt" "$sdir/tcrash.client.txt" | head -20; exit 1; }
for f in "$sdir"/tbase.store/*; do
  cmp -s "$f" "$sdir/tcrash.store/$(basename "$f")" \
    || { echo "FAIL: store file $(basename "$f") differs after crash-and-replay"; exit 1; }
done
"$spamlab" db verify "$sdir/tcrash.store" > /dev/null \
  || { echo "FAIL: crash-and-replay store does not verify"; exit 1; }
echo "store: crashed at append 25, restarted, replayed, byte-identical"

say "fault sites listing"
"$spamlab" fault sites > "$sdir/sites.txt"
# Every site the gates below (and the suites above) arm must be in the
# operator-facing listing; a check call site missing from the catalogue
# is undocumented chaos surface.
for site in serve.deadline serve.publish serve.read serve.accept \
  store.journal.append intern.grow pool.task score.cache.fill \
  checkpoint.record; do
  grep -q "^$site " "$sdir/sites.txt" \
    || { echo "FAIL: fault sites listing is missing $site"; exit 1; }
done
echo "fault sites OK: $(wc -l < "$sdir/sites.txt") sites listed"

say "serve overload: stalled client reaped, service unharmed"
# A slow-loris parasite sends half a CLASSIFY header and goes silent.
# With --timeout-read armed the daemon must reap it at the deadline —
# the parasite sees the close ('reaped') long before its 30 s hold —
# while a concurrent well-behaved load run completes with stdout
# byte-identical to the uncontended sj1 leg.  No timeout(1) wrapper:
# the bounded waits ARE the property under test.
start_daemon ovl 1 --timeout-read 1 --timeout-idle 5
"$spamlab" client stall --socket "$sdir/ovl.sock" --hold 30 \
  > "$sdir/ovl.stall.txt" &
stall_pid=$!
"$spamlab" client load --socket "$sdir/ovl.sock" --seed 7 \
  > "$sdir/ovl.client.txt" 2> "$sdir/ovl.client.log" \
  || { echo "FAIL: load failed beside a stalled parasite"; \
       cat "$sdir/ovl.client.log"; exit 1; }
wait "$stall_pid" || { echo "FAIL: stall probe errored"; exit 1; }
grep -qx 'reaped' "$sdir/ovl.stall.txt" \
  || { echo "FAIL: parasite not reaped: $(cat "$sdir/ovl.stall.txt")"; exit 1; }
cmp -s "$sdir/sj1.client.txt" "$sdir/ovl.client.txt" \
  || { echo "FAIL: client stdout differs beside a stalled parasite"; \
       diff -u "$sdir/sj1.client.txt" "$sdir/ovl.client.txt" | head -20; exit 1; }
kill -TERM "$daemon_pid"
wait "$daemon_pid" \
  || { echo "FAIL: ovl daemon exited nonzero on SIGTERM"; exit 1; }
echo "serve: parasite reaped at the deadline; load byte-identical"

say "serve overload: admission cap sheds, client absorbs"
# --max-conns 1: a silent parasite occupies (or races for) the single
# admission slot, so the load client is answered BUSY until idle
# reaping frees the slot.  Every shed must be absorbed by the client's
# backoff — stdout byte-identical to the uncontended leg — and the
# daemon must account at least one shed connection.
start_daemon cap 1 --max-conns 1 --timeout-read 2 --timeout-idle 1
"$spamlab" client stall --socket "$sdir/cap.sock" --send '' --hold 30 \
  > "$sdir/cap.stall.txt" &
stall_pid=$!
"$spamlab" client load --socket "$sdir/cap.sock" --seed 7 \
  > "$sdir/cap.client.txt" 2> "$sdir/cap.client.log" \
  || { echo "FAIL: load failed against --max-conns 1"; \
       cat "$sdir/cap.client.log"; exit 1; }
wait "$stall_pid" || { echo "FAIL: cap stall probe errored"; exit 1; }
cmp -s "$sdir/sj1.client.txt" "$sdir/cap.client.txt" \
  || { echo "FAIL: client stdout differs under admission shedding"; \
       diff -u "$sdir/sj1.client.txt" "$sdir/cap.client.txt" | head -20; exit 1; }
sheds=0
for _ in 1 2 3 4 5; do
  if "$spamlab" client stats --socket "$sdir/cap.sock" \
       > "$sdir/cap.stats.txt" 2> /dev/null; then
    sheds=$(grep '^shed.connections ' "$sdir/cap.stats.txt" | cut -d' ' -f2)
    break
  fi
  sleep 0.2 # a lingering shed answer can bounce the stats probe once
done
[ "${sheds:-0}" -ge 1 ] \
  || { echo "FAIL: no shed connection accounted (shed.connections=$sheds)"; exit 1; }
kill -TERM "$daemon_pid"
wait "$daemon_pid" \
  || { echo "FAIL: cap daemon exited nonzero on SIGTERM"; exit 1; }
echo "serve: $sheds conns shed with BUSY; load byte-identical"

say "chaos soak"
# The full deterministic chaos harness: baseline run, then the same
# schedule under seed-derived transient faults, overload limits and two
# crash-kill/restart cycles; asserts byte-identical client stdout, a
# verifying database and READY recovery.  See DESIGN.md §15.
"$spamlab" chaos --dir "$sdir/chaos" --seed 11 --clients 3 --users 2 \
  --train-size 48 --eval-size 24 --batch 6 --kills 2 > "$sdir/chaos.txt" \
  || { echo "FAIL: chaos soak failed"; cat "$sdir/chaos.txt"; exit 1; }
grep -qx 'chaos ok' "$sdir/chaos.txt" \
  || { echo "FAIL: chaos report lacks the 'chaos ok' verdict"; \
       cat "$sdir/chaos.txt"; exit 1; }
sed 's/^/  /' "$sdir/chaos.txt"

say "bench store smoke"
./_build/default/bench/main.exe store \
  --scale 0.02 --jobs 2 --timings "$timings" > /dev/null
grep -q '"id":"store-single-classify"' "$timings" \
  || { echo "FAIL: missing store-single-classify bench entry"; exit 1; }
for tier in t1k t10k t100k; do
  for phase in train classify-hot classify-cold evict; do
    grep -q "\"id\":\"store-$tier-$phase\"" "$timings" \
      || { echo "FAIL: missing store-$tier-$phase bench entry"; exit 1; }
  done
done
if grep -q '"seconds":0\.000000' "$timings" \
  || grep -q '"seconds":-' "$timings"; then
  echo "FAIL: non-positive store bench wall time"; exit 1
fi
echo "bench store OK"

say "bench classify smoke"
./_build/default/bench/main.exe classify \
  --scale 0.02 --jobs 2 --timings "$timings" > /dev/null
for id in classify-hot-cached classify-hot-uncached classify-hot-baseline \
  classify-warm-private classify-cold-refill \
  classify-tenant-fresh classify-tenant-trained; do
  grep -q "\"id\":\"$id\"" "$timings" \
    || { echo "FAIL: missing $id bench entry"; exit 1; }
done
if grep -q '"seconds":0\.000000' "$timings" \
  || grep -q '"seconds":-' "$timings"; then
  echo "FAIL: non-positive classify bench wall time"; exit 1
fi
echo "bench classify OK"

say "ci.sh: all checks passed"
