let known_schemes = [ "http"; "https"; "ftp"; "mailto" ]

let scheme_of w =
  match String.index_opt w ':' with
  | Some i
    when i + 2 < String.length w
         && w.[i + 1] = '/'
         && w.[i + 2] = '/'
         && List.mem (String.sub w 0 i) known_schemes ->
      Some (String.sub w 0 i, String.sub w (i + 3) (String.length w - i - 3))
  | _ -> None

let looks_like_url w =
  let w = String.lowercase_ascii w in
  Option.is_some (scheme_of w)
  || (String.length w > 4 && String.sub w 0 4 = "www.")

(* Slice form of [looks_like_url] for the zero-copy span path.  The
   span word iterator only hands out canonical (already lowercased)
   slices, so no case folding is needed here. *)
let eq_at s off lit =
  let n = String.length lit in
  let rec go i = i >= n || (s.[off + i] = lit.[i] && go (i + 1)) in
  go 0

let looks_like_url_sub s off len =
  let scheme_ok =
    (* Mirror [scheme_of]: first ':' followed by "//" and a known
       scheme before it. *)
    let rec colon i =
      if i >= len then -1 else if s.[off + i] = ':' then i else colon (i + 1)
    in
    match colon 0 with
    | i
      when i >= 0
           && i + 2 < len
           && s.[off + i + 1] = '/'
           && s.[off + i + 2] = '/' ->
        List.exists
          (fun sch -> String.length sch = i && eq_at s off sch)
          known_schemes
    | _ -> false
  in
  scheme_ok || (len > 4 && eq_at s off "www.")

let split_on_chars chars s =
  let is_sep c = List.mem c chars in
  let n = String.length s in
  let rec scan i start acc =
    if i >= n then
      if i > start then String.sub s start (i - start) :: acc else acc
    else if is_sep s.[i] then
      let acc =
        if i > start then String.sub s start (i - start) :: acc else acc
      in
      scan (i + 1) (i + 1) acc
    else scan (i + 1) start acc
  in
  List.rev (scan 0 0 [])

let crack w =
  let w = String.lowercase_ascii w in
  let proto, rest =
    match scheme_of w with
    | Some (scheme, rest) -> (Some scheme, rest)
    | None ->
        if String.length w > 4 && String.sub w 0 4 = "www." then
          (Some "http", w)
        else (None, w)
  in
  match proto with
  | None -> []
  | Some scheme ->
      let host, path =
        match String.index_opt rest '/' with
        | None -> (rest, "")
        | Some i ->
            (String.sub rest 0 i,
             String.sub rest (i + 1) (String.length rest - i - 1))
      in
      (* Strip a port and userinfo from the host. *)
      let host =
        match String.rindex_opt host '@' with
        | Some i -> String.sub host (i + 1) (String.length host - i - 1)
        | None -> host
      in
      let host =
        match String.index_opt host ':' with
        | Some i -> String.sub host 0 i
        | None -> host
      in
      let host_tokens =
        split_on_chars [ '.' ] host |> List.map (fun h -> "url:" ^ h)
      in
      let path_tokens =
        split_on_chars [ '/'; '?'; '&'; '='; '.'; '-'; '_'; '#' ] path
        |> List.filter (fun p -> String.length p >= 3)
        |> List.map (fun p -> "url:" ^ p)
      in
      (("proto:" ^ scheme) :: host_tokens) @ path_tokens
