(** BogoFilter-style tokenization: longer tokens admitted (up to 30
    characters, no skip placeholders), header tokens carry a
    ["head:"]-style field prefix for {e every} header, and URLs are kept
    as opaque tokens rather than cracked.  The learner on top is
    identical — the paper's footnote 1 scenario. *)

val name : string
val tokenize : Spamlab_email.Message.t -> string list
val iter_tokens : Spamlab_email.Message.t -> (string -> unit) -> unit

val iter_spans :
  Spamlab_email.Message.t ->
  span:(string -> int -> int -> unit) ->
  token:(string -> unit) ->
  unit
(** Zero-copy form of {!iter_tokens}: body words as byte slices through
    [span], prefixed header tokens through [token]. *)

val iter_body_spans :
  string ->
  int ->
  int ->
  span:(string -> int -> int -> unit) ->
  token:(string -> unit) ->
  unit
(** Body tokens straight from a raw body slice (simple messages). *)
