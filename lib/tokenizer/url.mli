(** URL cracking, after SpamBayes' [crack_urls]: a URL in a message body
    is replaced by structured tokens ([proto:http], [url:host-component],
    [url:path-word]) so that campaign infrastructure shows up as
    high-signal features regardless of the surrounding prose. *)

val looks_like_url : string -> bool
(** True for [scheme://...] and for bare [www.]-prefixed hosts. *)

val looks_like_url_sub : string -> int -> int -> bool
(** [looks_like_url_sub s off len] is [looks_like_url] on the slice
    without allocating, assuming the slice is already lowercased (the
    span word iterator guarantees this). *)

val crack : string -> string list
(** [crack w] is the token list for a URL-like word; [w] itself
    (lowercased) is not included.  Returns [[]] if [w] is not URL-like. *)
