(** Low-level text splitting shared by every tokenizer variant. *)

val split_whitespace : string -> string list
(** Split on runs of spaces, tabs, newlines and carriage returns;
    never returns empty strings. *)

val strip_punctuation : string -> string
(** Remove leading and trailing characters outside [A-Za-z0-9'$-]
    (apostrophes, dollar signs and hyphens are meaningful inside spam
    tokens: ["don't"], ["$99"], ["v-i-a-g-r-a"]). *)

val words : string -> string list
(** [split_whitespace] then [strip_punctuation] then drop empties;
    lowercases everything. *)

val is_ascii_alpha : char -> bool
val is_digit : char -> bool

val iter_word_spans :
  string -> int -> int -> (string -> int -> int -> unit) -> unit
(** [iter_word_spans s off len f] delivers every word {!words} would
    produce for [String.sub s off len] as a byte slice
    [f buf woff wlen] instead of an allocated string: punctuation is
    stripped by offsets on the raw buffer, and a word is copied (into a
    per-domain scratch, lowercased) only when it actually contains an
    uppercase byte.  The slice is valid only for the duration of the
    callback — intern it or copy it before returning.
    @raise Invalid_argument if [off]/[len] do not denote a slice of
    [s]. *)

val has_high_bit : string -> bool
(** True if any byte is >= 0x80 (8-bit character heuristic used by
    SpamBayes to flag likely non-English/binary content). *)

val count_occurrences : char -> string -> int

val count_high_sub : string -> int -> int -> int
(** Number of bytes >= 0x80 in the slice — the span path's 8-bit
    accounting without materializing the body. *)
