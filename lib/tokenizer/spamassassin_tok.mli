(** SpamAssassin-Bayes-style tokenization: tokens up to 15 characters,
    longer words truncated to a ["sk:"]-prefixed 5-character stem
    (SpamAssassin's behaviour), Subject prefixed with ["HSubject:"]
    and other scanned headers with ["H<name>:"], URLs reduced to their
    hostname token. *)

val name : string
val tokenize : Spamlab_email.Message.t -> string list
val iter_tokens : Spamlab_email.Message.t -> (string -> unit) -> unit
