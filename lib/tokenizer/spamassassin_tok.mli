(** SpamAssassin-Bayes-style tokenization: tokens up to 15 characters,
    longer words truncated to a ["sk:"]-prefixed 5-character stem
    (SpamAssassin's behaviour), Subject prefixed with ["HSubject:"]
    and other scanned headers with ["H<name>:"], URLs reduced to their
    hostname token. *)

val name : string
val tokenize : Spamlab_email.Message.t -> string list
val iter_tokens : Spamlab_email.Message.t -> (string -> unit) -> unit

val iter_spans :
  Spamlab_email.Message.t ->
  span:(string -> int -> int -> unit) ->
  token:(string -> unit) ->
  unit
(** Zero-copy form of {!iter_tokens}: short-enough body words as byte
    slices through [span], header/stem/url tokens through [token]. *)

val iter_body_spans :
  string ->
  int ->
  int ->
  span:(string -> int -> int -> unit) ->
  token:(string -> unit) ->
  unit
(** Body tokens straight from a raw body slice (simple messages). *)
