(** Tokenizer interface and registry.

    The paper notes (§1 fn. 1) that SpamBayes, BogoFilter and
    SpamAssassin's Bayes component share the learning algorithm and
    differ primarily in tokenization; the laboratory therefore treats the
    tokenizer as a pluggable component so attacks can be evaluated across
    filter styles. *)

module type S = sig
  val name : string

  val tokenize : Spamlab_email.Message.t -> string list
  (** Token stream in document order, possibly with repeats. *)

  val iter_tokens : Spamlab_email.Message.t -> (string -> unit) -> unit
  (** Push the same stream, in the same order, through a callback
      without materializing the list.  Implementations derive
      [tokenize] from this, so the two cannot disagree. *)

  val iter_spans :
    Spamlab_email.Message.t ->
    span:(string -> int -> int -> unit) ->
    token:(string -> unit) ->
    unit
  (** Zero-copy pass: plain words are delivered as [span buf off len]
      byte slices (valid only for the duration of the callback), while
      computed meta tokens (prefixes, skip:, url:, …) arrive as
      strings through [token].  Emits the same {e multiset} of tokens
      as {!iter_tokens} — document order may differ in where meta
      tokens land, which is irrelevant to the set-of-tokens model.
      Implemented independently of {!iter_tokens}; the differential
      test suite holds the two equal. *)

  val iter_body_spans :
    string ->
    int ->
    int ->
    span:(string -> int -> int -> unit) ->
    token:(string -> unit) ->
    unit
  (** [iter_body_spans buf off len] pushes the tokens the body of a
      {e simple} message (single-part, identity transfer encoding)
      with raw body [buf.[off..off+len-1]] would contribute to
      {!iter_spans} — the fully zero-copy path raw-mbox ingest takes
      when a message needs no MIME processing. *)
end

type t = (module S)

val name : t -> string
val tokenize : t -> Spamlab_email.Message.t -> string list

val iter_tokens : t -> Spamlab_email.Message.t -> (string -> unit) -> unit

val iter_spans :
  t ->
  Spamlab_email.Message.t ->
  span:(string -> int -> int -> unit) ->
  token:(string -> unit) ->
  unit

val iter_body_spans :
  t ->
  string ->
  int ->
  int ->
  span:(string -> int -> int -> unit) ->
  token:(string -> unit) ->
  unit

val unique_tokens : t -> Spamlab_email.Message.t -> string array
(** Distinct tokens of a message, sorted.  SpamBayes both trains and
    classifies on the {e set} of tokens in a message, so this is the
    canonical feature extraction. *)

val unique_of_list : string list -> string array
(** Sort-and-dedup helper shared by attack construction. *)

val unique_counted : string list -> string array * int
(** [unique_counted stream] is [(unique_of_list stream, List.length
    stream)] in a single traversal of the list — the token-volume
    accounting path (§4.2) runs this per generated message. *)

val unique_counted_tokens : t -> Spamlab_email.Message.t -> string array * int
(** [unique_counted_tokens t msg] is
    [unique_counted (tokenize t msg)] without building the token list:
    {!S.iter_tokens} streams into a per-domain reusable buffer which is
    sorted and deduplicated in place.  The fused-ingest fast path —
    safe to call from pool workers. *)

val spambayes : t
val bogofilter : t
val spamassassin : t

val all : (string * t) list
(** Registered tokenizers by name. *)

val find : string -> t option
