module type S = sig
  val name : string
  val tokenize : Spamlab_email.Message.t -> string list
end

type t = (module S)

let tokenize (module T : S) msg = T.tokenize msg

let unique_of_list tokens =
  let sorted = List.sort_uniq String.compare tokens in
  Array.of_list sorted

(* Dedup in place after one materializing traversal, so callers that
   also want the raw stream length (Dataset.of_message) pay a single
   pass over the list instead of sort_uniq + List.length. *)
let unique_counted tokens =
  let arr = Array.of_list tokens in
  let n = Array.length arr in
  if n = 0 then ([||], 0)
  else begin
    Array.sort String.compare arr;
    let w = ref 1 in
    for i = 1 to n - 1 do
      if not (String.equal arr.(i) arr.(!w - 1)) then begin
        arr.(!w) <- arr.(i);
        incr w
      end
    done;
    ((if !w = n then arr else Array.sub arr 0 !w), n)
  end

let unique_tokens t msg = unique_of_list (tokenize t msg)

let spambayes : t = (module Spambayes_tok)
let bogofilter : t = (module Bogofilter_tok)
let spamassassin : t = (module Spamassassin_tok)

let all =
  [ (Spambayes_tok.name, spambayes);
    (Bogofilter_tok.name, bogofilter);
    (Spamassassin_tok.name, spamassassin) ]

let find name = List.assoc_opt name all
