module type S = sig
  val name : string
  val tokenize : Spamlab_email.Message.t -> string list
  val iter_tokens : Spamlab_email.Message.t -> (string -> unit) -> unit

  val iter_spans :
    Spamlab_email.Message.t ->
    span:(string -> int -> int -> unit) ->
    token:(string -> unit) ->
    unit

  val iter_body_spans :
    string ->
    int ->
    int ->
    span:(string -> int -> int -> unit) ->
    token:(string -> unit) ->
    unit
end

type t = (module S)

let name (module T : S) = T.name
let tokenize (module T : S) msg = T.tokenize msg
let iter_tokens (module T : S) msg f = T.iter_tokens msg f
let iter_spans (module T : S) msg ~span ~token = T.iter_spans msg ~span ~token

let iter_body_spans (module T : S) buf off len ~span ~token =
  T.iter_body_spans buf off len ~span ~token

let unique_of_list tokens =
  let sorted = List.sort_uniq String.compare tokens in
  Array.of_list sorted

(* Dedup in place after one materializing traversal, so callers that
   also want the raw stream length (Dataset.of_message) pay a single
   pass over the list instead of sort_uniq + List.length. *)
let unique_counted tokens =
  let arr = Array.of_list tokens in
  let n = Array.length arr in
  if n = 0 then ([||], 0)
  else begin
    Array.sort String.compare arr;
    let w = ref 1 in
    for i = 1 to n - 1 do
      if not (String.equal arr.(i) arr.(!w - 1)) then begin
        arr.(!w) <- arr.(i);
        incr w
      end
    done;
    ((if !w = n then arr else Array.sub arr 0 !w), n)
  end

(* Per-domain scratch for the fused path: the token stream is pushed
   into a reusable growable buffer, then sorted and deduplicated in
   place — no intermediate list cells.  One buffer per domain keeps the
   path safe under the parallel pool without locking. *)
let scratch : string array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (Array.make 1024 ""))

let unique_counted_tokens (module T : S) msg =
  let buf = Domain.DLS.get scratch in
  let n = ref 0 in
  T.iter_tokens msg (fun tok ->
      let arr = !buf in
      let cap = Array.length arr in
      if !n = cap then begin
        let bigger = Array.make (2 * cap) "" in
        Array.blit arr 0 bigger 0 cap;
        buf := bigger
      end;
      !buf.(!n) <- tok;
      incr n);
  let raw = !n in
  if raw = 0 then ([||], 0)
  else begin
    let arr = Array.sub !buf 0 raw in
    Array.sort String.compare arr;
    let w = ref 1 in
    for i = 1 to raw - 1 do
      if not (String.equal arr.(i) arr.(!w - 1)) then begin
        arr.(!w) <- arr.(i);
        incr w
      end
    done;
    ((if !w = raw then arr else Array.sub arr 0 !w), raw)
  end

let unique_tokens t msg = fst (unique_counted_tokens t msg)

let spambayes : t = (module Spambayes_tok)
let bogofilter : t = (module Bogofilter_tok)
let spamassassin : t = (module Spamassassin_tok)

let all =
  [ (Spambayes_tok.name, spambayes);
    (Bogofilter_tok.name, bogofilter);
    (Spamassassin_tok.name, spamassassin) ]

let find name = List.assoc_opt name all
