let name = "spambayes"

let min_word_length = 3
let max_word_length = 12

let skip_token w =
  let n = String.length w / 10 * 10 in
  Printf.sprintf "skip:%c %d" w.[0] n

let email_tokens w =
  match String.index_opt w '@' with
  | Some i when i > 0 && i < String.length w - 1 ->
      let local = String.sub w 0 i in
      let domain = String.sub w (i + 1) (String.length w - i - 1) in
      Some
        (("email name:" ^ local)
         :: List.map
              (fun part -> "email addr:" ^ part)
              (String.split_on_char '.' domain))
  | _ -> None

let word_tokens w =
  if Url.looks_like_url w then Url.crack w
  else
    match email_tokens w with
    | Some tokens -> tokens
    | None ->
        let len = String.length w in
        if len < min_word_length then []
        else if len > max_word_length then [ skip_token w ]
        else [ w ]

let iter_body_text f text =
  List.iter (fun w -> List.iter f (word_tokens w)) (Text.words text)

let tokenize_body_text text =
  let acc = ref [] in
  iter_body_text (fun t -> acc := t :: !acc) text;
  List.rev !acc

let iter_text_with_prefix f prefix text =
  List.iter
    (fun w ->
      let len = String.length w in
      if len >= min_word_length && len <= max_word_length then
        f (prefix ^ w))
    (Text.words text)

let tokenize_text_with_prefix prefix text =
  List.concat_map
    (fun w ->
      let len = String.length w in
      if len < min_word_length || len > max_word_length then []
      else [ prefix ^ w ])
    (Text.words text)

let address_tokens prefix value =
  match Spamlab_email.Address.of_string value with
  | Error _ -> tokenize_text_with_prefix (prefix ^ ":") value
  | Ok addr ->
      let open Spamlab_email.Address in
      let name_tokens =
        match addr.display_name with
        | None -> []
        | Some n -> tokenize_text_with_prefix (prefix ^ ":name:") n
      in
      (prefix ^ ":addr:" ^ String.lowercase_ascii addr.domain)
      :: (prefix ^ ":name:" ^ String.lowercase_ascii addr.local)
      :: name_tokens

let eight_bit_token body =
  if body = "" then []
  else
    let bytes = String.length body in
    let high =
      String.fold_left
        (fun acc c -> if Char.code c >= 0x80 then acc + 1 else acc)
        0 body
    in
    if high = 0 then []
    else
      (* Percentage bucketed to multiples of 5, as SpamBayes does. *)
      let pct = 100 * high / bytes / 5 * 5 in
      [ Printf.sprintf "8bit%%:%d" pct ]

(* Textual chunks arrive transfer-decoded from the MIME layer.  HTML
   chunks are deconstructed: their prose tokenizes normally, markup
   yields html: meta tokens, and link targets go through the URL
   cracker (spam hides its infrastructure in href attributes). *)
let iter_chunk f (kind, text) =
  match kind with
  | Spamlab_email.Mime.Plain -> iter_body_text f text
  | Spamlab_email.Mime.Html ->
      let html = Html.deconstruct text in
      List.iter f html.Html.meta_tokens;
      List.iter (fun u -> List.iter f (Url.crack u)) html.Html.urls;
      iter_body_text f html.Html.visible_text

let structure_tokens headers =
  let open Spamlab_email in
  let of_field field =
    match Header.find headers field with
    | None -> []
    | Some v -> (
        [ field ^ ":" ^ String.lowercase_ascii (String.trim v) ]
        |> List.filter (fun t -> String.length t <= 60))
  in
  of_field "content-transfer-encoding"
  @
  match Header.find headers "content-type" with
  | None -> []
  | Some v -> (
      match Mime.content_type_of_string v with
      | Error _ -> []
      | Ok ct ->
          [ Printf.sprintf "content-type:%s/%s" ct.Mime.media_type
              ct.Mime.subtype ])

(* Received lines carry the relay story: hostnames and IPs.  Hostname
   components become received: tokens; IPs contribute their /16 prefix
   (spam sources cluster in address space, exact hosts churn). *)
let received_tokens headers =
  let all_digits s = s <> "" && String.for_all Text.is_digit s in
  let line_tokens value =
    List.concat_map
      (fun word ->
        if not (String.contains word '.') then []
        else
          let parts = String.split_on_char '.' word in
          if List.for_all all_digits parts then
            match parts with
            | a :: b :: _ -> [ Printf.sprintf "received:ip:%s.%s" a b ]
            | _ -> []
          else
            List.filter_map
              (fun part ->
                if
                  String.length part >= min_word_length
                  && String.length part <= max_word_length
                  && not (all_digits part)
                then Some ("received:" ^ part)
                else None)
              parts)
      (Text.words value)
  in
  List.concat_map line_tokens
    (Spamlab_email.Header.find_all headers "received")

(* Emit form: tokens are pushed through [f] in document order without
   materializing the concatenated stream.  [tokenize] is derived from
   this, so the two can never disagree on order or content. *)
let iter_tokens msg f =
  let open Spamlab_email in
  let headers = Message.headers msg in
  (match Header.find headers "subject" with
  | None -> ()
  | Some s ->
      (* SpamBayes emits subject words both prefixed and bare. *)
      iter_text_with_prefix f "subject:" s;
      iter_body_text f s);
  let addr_field prefix field =
    match Header.find headers field with
    | None -> ()
    | Some v -> List.iter f (address_tokens prefix v)
  in
  addr_field "from" "from";
  addr_field "to" "to";
  addr_field "reply-to" "reply-to";
  List.iter f (received_tokens headers);
  List.iter f (structure_tokens headers);
  let chunks = Mime.text_content msg in
  let decoded_text = String.concat "\n" (List.map snd chunks) in
  List.iter f (eight_bit_token decoded_text);
  List.iter (iter_chunk f) chunks

let tokenize msg =
  let acc = ref [] in
  iter_tokens msg (fun t -> acc := t :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Zero-copy span path.  Deliberately written against
   [Text.iter_word_spans] rather than delegating to [iter_tokens], so
   the differential tests compare two independent implementations.
   Meta tokens (skip:, url:, email, 8bit%) still allocate — they are
   computed strings, not substrings of the message — but plain body
   words, the overwhelming bulk of the stream, travel as slices. *)

let contains_at s off len c =
  let rec go i = i < len && (s.[off + i] = c || go (i + 1)) in
  go 0

let iter_body_spans' emit_span emit_tok buf off len =
  Text.iter_word_spans buf off len (fun wbuf woff wlen ->
      if
        Url.looks_like_url_sub wbuf woff wlen
        || contains_at wbuf woff wlen '@'
      then
        (* Rare shapes: materialize and reuse the string-path rules so
           the two paths cannot drift on URLs or addresses. *)
        List.iter emit_tok (word_tokens (String.sub wbuf woff wlen))
      else if wlen < min_word_length then ()
      else if wlen > max_word_length then
        emit_tok (Printf.sprintf "skip:%c %d" wbuf.[woff] (wlen / 10 * 10))
      else emit_span wbuf woff wlen)

(* 8bit% meta token over decoded chunks without concatenating them:
   [String.concat "\n"] in the legacy path contributes one low byte per
   separator, accounted for here. *)
let eight_bit_of_chunks emit_tok chunks =
  let bytes, high, _ =
    List.fold_left
      (fun (b, h, first) (_, text) ->
        let len = String.length text in
        ( (if first then len else b + 1 + len),
          h + Text.count_high_sub text 0 len,
          false ))
      (0, 0, true) chunks
  in
  if bytes > 0 && high > 0 then
    emit_tok (Printf.sprintf "8bit%%:%d" (100 * high / bytes / 5 * 5))

let iter_chunk_spans emit_span emit_tok (kind, text) =
  match kind with
  | Spamlab_email.Mime.Plain ->
      iter_body_spans' emit_span emit_tok text 0 (String.length text)
  | Spamlab_email.Mime.Html ->
      let html = Html.deconstruct text in
      List.iter emit_tok html.Html.meta_tokens;
      List.iter (fun u -> List.iter emit_tok (Url.crack u)) html.Html.urls;
      iter_body_spans' emit_span emit_tok html.Html.visible_text 0
        (String.length html.Html.visible_text)

let iter_spans msg ~span ~token =
  let open Spamlab_email in
  let headers = Message.headers msg in
  (match Header.find headers "subject" with
  | None -> ()
  | Some s ->
      iter_text_with_prefix token "subject:" s;
      iter_body_spans' span token s 0 (String.length s));
  let addr_field prefix field =
    match Header.find headers field with
    | None -> ()
    | Some v -> List.iter token (address_tokens prefix v)
  in
  addr_field "from" "from";
  addr_field "to" "to";
  addr_field "reply-to" "reply-to";
  List.iter token (received_tokens headers);
  List.iter token (structure_tokens headers);
  let chunks = Mime.text_content msg in
  eight_bit_of_chunks token chunks;
  List.iter (iter_chunk_spans span token) chunks

(* The body tokens of a simple message (single part, no transfer
   encoding) straight from a raw slice — the path raw-mbox ingest takes
   when no MIME processing is needed.  Matches what [iter_spans] emits
   for the body of such a message: the 8bit% meta token, then words. *)
let iter_body_spans buf off len ~span ~token =
  let high = Text.count_high_sub buf off len in
  if len > 0 && high > 0 then
    token (Printf.sprintf "8bit%%:%d" (100 * high / len / 5 * 5));
  iter_body_spans' span token buf off len
