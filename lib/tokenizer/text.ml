let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let split_whitespace s =
  let n = String.length s in
  let rec scan i start acc =
    if i >= n then
      if i > start then String.sub s start (i - start) :: acc else acc
    else if is_space s.[i] then
      let acc =
        if i > start then String.sub s start (i - start) :: acc else acc
      in
      scan (i + 1) (i + 1) acc
    else scan (i + 1) start acc
  in
  List.rev (scan 0 0 [])

let is_ascii_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'

let is_word_char c =
  is_ascii_alpha c || is_digit c || c = '\'' || c = '$' || c = '-'

let strip_punctuation s =
  let n = String.length s in
  let rec first i = if i < n && not (is_word_char s.[i]) then first (i + 1) else i in
  let rec last i = if i >= 0 && not (is_word_char s.[i]) then last (i - 1) else i in
  let lo = first 0 in
  let hi = last (n - 1) in
  if hi < lo then "" else String.sub s lo (hi - lo + 1)

let words s =
  split_whitespace s
  |> List.filter_map (fun w ->
         let w = strip_punctuation (String.lowercase_ascii w) in
         if w = "" then None else Some w)

let is_upper c = c >= 'A' && c <= 'Z'

(* Scratch buffer for lowercasing a word slice in place; one per domain
   so pool workers never contend.  Grown geometrically, reused for every
   word of every message the domain ingests. *)
let lower_scratch : Bytes.t ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (Bytes.create 256))

(* Span form of [words]: every canonical word (lowercased, punctuation
   stripped, non-empty) of [s.[off .. off+len-1]] is delivered as a
   slice [(buf, woff, wlen)] instead of an allocated string.  Lowercasing
   cannot change whether a byte is a word character, so punctuation can
   be stripped on the raw buffer by offsets; only a word that actually
   contains an uppercase byte is copied (into the per-domain scratch,
   valid just for the duration of the callback). *)
let iter_word_spans s off len f =
  let limit = off + len in
  let scratch = Domain.DLS.get lower_scratch in
  let emit lo hi =
    (* [lo..hi] inclusive, non-empty, all word chars at the ends. *)
    let wlen = hi - lo + 1 in
    let rec has_up i = i <= hi && (is_upper s.[i] || has_up (i + 1)) in
    if not (has_up lo) then f s lo wlen
    else begin
      if Bytes.length !scratch < wlen then begin
        let cap = ref (2 * Bytes.length !scratch) in
        while !cap < wlen do
          cap := 2 * !cap
        done;
        scratch := Bytes.create !cap
      end;
      let b = !scratch in
      for i = 0 to wlen - 1 do
        let c = String.unsafe_get s (lo + i) in
        Bytes.unsafe_set b i
          (if is_upper c then Char.unsafe_chr (Char.code c + 32) else c)
      done;
      (* The scratch is only ever read through this slice before the
         next word overwrites it, so exposing it as a string is safe. *)
      f (Bytes.unsafe_to_string b) 0 wlen
    end
  in
  let rec skip_space i = if i < limit && is_space s.[i] then skip_space (i + 1) else i in
  let rec word_end i = if i < limit && not (is_space s.[i]) then word_end (i + 1) else i in
  let rec go i =
    let start = skip_space i in
    if start < limit then begin
      let stop = word_end start in
      let rec first i = if i < stop && not (is_word_char s.[i]) then first (i + 1) else i in
      let rec last i = if i >= start && not (is_word_char s.[i]) then last (i - 1) else i in
      let lo = first start in
      let hi = last (stop - 1) in
      if hi >= lo then emit lo hi;
      go stop
    end
  in
  if off < 0 || len < 0 || limit > String.length s then
    invalid_arg "Text.iter_word_spans";
  go off

let has_high_bit s = String.exists (fun c -> Char.code c >= 0x80) s

(* [eight_bit_stats_sub s off len] counts high bytes in a slice without
   touching anything else — the span path's replacement for scanning a
   materialized body string. *)
let count_high_sub s off len =
  let acc = ref 0 in
  for i = off to off + len - 1 do
    if Char.code (String.unsafe_get s i) >= 0x80 then incr acc
  done;
  !acc

let count_occurrences c s =
  String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 s
