let name = "bogofilter"

let min_word_length = 3
let max_word_length = 30

let keep w =
  let n = String.length w in
  n >= min_word_length && n <= max_word_length

(* Emit form; [tokenize] is derived from it.  This also removes the old
   quadratic [acc @ toks] accumulation over header fields. *)
let iter_tokens msg f =
  let open Spamlab_email in
  Header.fold
    (fun () name value ->
      let prefix = String.lowercase_ascii name ^ ":" in
      List.iter (fun w -> if keep w then f (prefix ^ w)) (Text.words value))
    ()
    (Message.headers msg);
  List.iter (fun w -> if keep w then f w) (Text.words (Message.body msg))

let tokenize msg =
  let acc = ref [] in
  iter_tokens msg (fun t -> acc := t :: !acc);
  List.rev !acc
