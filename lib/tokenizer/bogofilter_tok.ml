let name = "bogofilter"

let min_word_length = 3
let max_word_length = 30

let keep w =
  let n = String.length w in
  n >= min_word_length && n <= max_word_length

(* Emit form; [tokenize] is derived from it.  This also removes the old
   quadratic [acc @ toks] accumulation over header fields. *)
let iter_tokens msg f =
  let open Spamlab_email in
  Header.fold
    (fun () name value ->
      let prefix = String.lowercase_ascii name ^ ":" in
      List.iter (fun w -> if keep w then f (prefix ^ w)) (Text.words value))
    ()
    (Message.headers msg);
  List.iter (fun w -> if keep w then f w) (Text.words (Message.body msg))

let tokenize msg =
  let acc = ref [] in
  iter_tokens msg (fun t -> acc := t :: !acc);
  List.rev !acc

(* Zero-copy span path, written against [Text.iter_word_spans] rather
   than delegating to [iter_tokens] so the differential tests compare
   independent implementations.  Header tokens are prefixed and so
   inherently allocate; body words — the bulk — travel as slices. *)

let keep_len n = n >= min_word_length && n <= max_word_length

let iter_body_spans buf off len ~span ~token:_ =
  Text.iter_word_spans buf off len (fun wbuf woff wlen ->
      if keep_len wlen then span wbuf woff wlen)

let iter_spans msg ~span ~token =
  let open Spamlab_email in
  Header.fold
    (fun () name value ->
      let prefix = String.lowercase_ascii name ^ ":" in
      Text.iter_word_spans value 0 (String.length value)
        (fun wbuf woff wlen ->
          if keep_len wlen then
            token (prefix ^ String.sub wbuf woff wlen)))
    ()
    (Message.headers msg);
  let body = Message.body msg in
  iter_body_spans body 0 (String.length body) ~span ~token
