(** SpamBayes-style tokenization (tokenizer.py, simplified but faithful
    in the properties the attacks exploit):

    - body words are lowercased, stripped of edge punctuation, and kept
      when 3–12 characters long;
    - longer words become ["skip:<c> <n>"] placeholder tokens (first
      character and length rounded down to a multiple of 10);
    - URL-like words are cracked into [proto:]/[url:] tokens;
    - words containing ['@'] produce [email addr:domain] /
      [email name:local] tokens;
    - Subject words are emitted with a ["subject:"] prefix (and also as
      plain tokens, as SpamBayes does);
    - From/To/Reply-To addresses produce prefixed address tokens;
    - a body with 8-bit bytes yields a ["8bit%:<pct>"] meta token;
    - bodies are read through the MIME layer: transfer encodings
      (base64, quoted-printable) are reversed, multiparts traversed, and
      HTML parts deconstructed into prose tokens, ["html:<tag>"] meta
      tokens and cracked link URLs;
    - Content-Type and Content-Transfer-Encoding headers yield
      structural meta tokens (base64-encoded spam is itself a tell);
    - Received headers yield relay tokens: hostname components as
      ["received:<part>"] and IP /16 prefixes as ["received:ip:a.b"]. *)

val name : string
val tokenize : Spamlab_email.Message.t -> string list
val iter_tokens : Spamlab_email.Message.t -> (string -> unit) -> unit

val iter_spans :
  Spamlab_email.Message.t ->
  span:(string -> int -> int -> unit) ->
  token:(string -> unit) ->
  unit
(** Zero-copy form of {!iter_tokens}: plain body words are delivered as
    byte slices through [span]; computed meta tokens (skip:, url:,
    email, subject:, 8bit%, …) still arrive as strings through [token].
    Same multiset of tokens as {!iter_tokens} (implemented
    independently; see the differential tests). *)

val iter_body_spans :
  string ->
  int ->
  int ->
  span:(string -> int -> int -> unit) ->
  token:(string -> unit) ->
  unit
(** Body tokens of a {e simple} message (single part, no transfer
    encoding) straight from a raw body slice — what {!iter_spans}
    emits for the body of such a message. *)

val tokenize_body_text : string -> string list
(** Body tokenization only (used by attack construction to predict which
    tokens an attack email will contribute). *)

val max_word_length : int
(** Words longer than this become skip tokens (12, as in SpamBayes). *)

val min_word_length : int
(** Words shorter than this are dropped (3, as in SpamBayes). *)
