let name = "spamassassin"

let max_word_length = 15

let scanned_headers = [ "subject"; "from"; "to"; "reply-to" ]

let stem w =
  if String.length w <= max_word_length then w
  else "sk:" ^ String.sub w 0 5

let body_word w =
  if Url.looks_like_url w then
    (* Keep only the hostname as a single token. *)
    match Url.crack w with
    | _proto :: host :: _ -> [ host ]
    | tokens -> tokens
  else if String.length w < 3 then []
  else [ stem w ]

(* Emit form; [tokenize] is derived from it. *)
let iter_tokens msg f =
  let open Spamlab_email in
  List.iter
    (fun field ->
      match Header.find (Message.headers msg) field with
      | None -> ()
      | Some value ->
          let prefix = "h" ^ field ^ ":" in
          List.iter
            (fun w -> if String.length w >= 3 then f (prefix ^ stem w))
            (Text.words value))
    scanned_headers;
  List.iter
    (fun w -> List.iter f (body_word w))
    (Text.words (Message.body msg))

let tokenize msg =
  let acc = ref [] in
  iter_tokens msg (fun t -> acc := t :: !acc);
  List.rev !acc
