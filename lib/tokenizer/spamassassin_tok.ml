let name = "spamassassin"

let max_word_length = 15

let scanned_headers = [ "subject"; "from"; "to"; "reply-to" ]

let stem w =
  if String.length w <= max_word_length then w
  else "sk:" ^ String.sub w 0 5

let body_word w =
  if Url.looks_like_url w then
    (* Keep only the hostname as a single token. *)
    match Url.crack w with
    | _proto :: host :: _ -> [ host ]
    | tokens -> tokens
  else if String.length w < 3 then []
  else [ stem w ]

(* Emit form; [tokenize] is derived from it. *)
let iter_tokens msg f =
  let open Spamlab_email in
  List.iter
    (fun field ->
      match Header.find (Message.headers msg) field with
      | None -> ()
      | Some value ->
          let prefix = "h" ^ field ^ ":" in
          List.iter
            (fun w -> if String.length w >= 3 then f (prefix ^ stem w))
            (Text.words value))
    scanned_headers;
  List.iter
    (fun w -> List.iter f (body_word w))
    (Text.words (Message.body msg))

let tokenize msg =
  let acc = ref [] in
  iter_tokens msg (fun t -> acc := t :: !acc);
  List.rev !acc

(* Zero-copy span path (independent of [iter_tokens]; see the
   differential tests).  Short-enough body words travel as slices; URL
   hosts and sk: stems are computed strings and still allocate. *)

let iter_body_spans buf off len ~span ~token =
  Text.iter_word_spans buf off len (fun wbuf woff wlen ->
      if Url.looks_like_url_sub wbuf woff wlen then
        List.iter token (body_word (String.sub wbuf woff wlen))
      else if wlen < 3 then ()
      else if wlen <= max_word_length then span wbuf woff wlen
      else token ("sk:" ^ String.sub wbuf woff 5))

let iter_spans msg ~span ~token =
  let open Spamlab_email in
  List.iter
    (fun field ->
      match Header.find (Message.headers msg) field with
      | None -> ()
      | Some value ->
          let prefix = "h" ^ field ^ ":" in
          Text.iter_word_spans value 0 (String.length value)
            (fun wbuf woff wlen ->
              if wlen >= 3 then
                token (prefix ^ stem (String.sub wbuf woff wlen))))
    scanned_headers;
  let body = Message.body msg in
  iter_body_spans body 0 (String.length body) ~span ~token
