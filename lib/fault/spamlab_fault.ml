module Obs = Spamlab_obs.Obs

type kind = Transient | Fatal | Crash

exception Injected of { site : string; kind : kind; occurrence : int }

let () =
  Printexc.register_printer (function
    | Injected { site; kind; occurrence } ->
        let kind =
          match kind with
          | Transient -> "transient"
          | Fatal -> "fatal"
          | Crash -> "crash"
        in
        Some
          (Printf.sprintf "Spamlab_fault.Injected(%s:%s@%d)" site kind
             occurrence)
    | _ -> None)

let grammar = "site:kind@n[+n...] or site:kind~p, clauses comma-separated"

(* The authoritative site catalogue, sorted by name.  [check] accepts
   any string, but every site compiled into the tree must be declared
   here: `spamlab fault sites` renders this list (so the README table
   cannot drift from the code), the chaos orchestrator derives its
   randomized schedules from it, and a test asserts it stays in sync
   with the sites the suites exercise. *)
let known_sites =
  [
    ("checkpoint.record", "before a sweep checkpoint line is appended");
    ("db.save.rename", "before the atomic rename of a token-db save");
    ("db.save.write", "before each write syscall of a token-db save");
    ("intern.grow", "before the intern table grows (fires pre-mutation)");
    ("pool.task", "at the head of every supervised pool task");
    ("score.cache.fill", "before a probability-cache slot is filled");
    ("serve.accept", "before a ready connection is accepted");
    ( "serve.deadline",
      "when an armed I/O deadline starts a wait (transient = simulated \
       timeout)" );
    ("serve.publish", "at the head of a snapshot publish, before any mutation");
    ("serve.read", "before every protocol read syscall");
    ("serve.write", "before every protocol write syscall");
    ("store.compact", "before a shard journal folds into its segment");
    ("store.evict", "before a cached tenant overlay is evicted");
    ("store.journal.append", "before an op record is buffered for a journal");
  ]

type selector = Occurrences of int list | Probability of float

type site_config = {
  kind : kind;
  selector : selector;
  count : int Atomic.t;  (** occurrences of [check] seen so far *)
}

(* The whole registry is swapped atomically so the disabled fast path in
   [check] is a single load.  Per-site occurrence counters live inside
   the table and survive for the lifetime of one configuration. *)
let sites : (string, site_config) Hashtbl.t option Atomic.t =
  Atomic.make None

let seed_ref = Atomic.make 0
let injected = Obs.counter "fault.injected"
let fatal = Obs.counter "fault.fatal"

(* splitmix64 finalizer: mixes (seed, site, occurrence) into a uniform
   word so probability selectors are pure functions of their inputs —
   no hidden generator state, hence jobs- and order-invariant given a
   deterministic per-site occurrence numbering. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw ~seed ~site ~occurrence =
  let h = Int64.of_int (Hashtbl.hash site) in
  let z = Int64.of_int seed in
  let z = mix64 (Int64.add z (Int64.mul h 0x9e3779b97f4a7c15L)) in
  let z = mix64 (Int64.add z (Int64.of_int occurrence)) in
  (* 53 uniform bits -> [0,1) *)
  Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53

let kind_of_string = function
  | "transient" -> Ok Transient
  | "fatal" -> Ok Fatal
  | "crash" -> Ok Crash
  | s -> Error (Printf.sprintf "unknown fault kind %S" s)

let parse_selector body =
  match String.index_opt body '@' with
  | Some i ->
      let kind_s = String.sub body 0 i in
      let occs = String.sub body (i + 1) (String.length body - i - 1) in
      let parts = String.split_on_char '+' occs in
      let rec occurrences acc = function
        | [] -> Ok (List.sort_uniq compare (List.rev acc))
        | p :: rest -> (
            match int_of_string_opt p with
            | Some n when n >= 1 -> occurrences (n :: acc) rest
            | _ ->
                Error
                  (Printf.sprintf "occurrence %S is not a positive integer" p))
      in
      Result.bind (occurrences [] parts) (fun occs ->
          Result.map (fun kind -> (kind, Occurrences occs))
            (kind_of_string kind_s))
  | None -> (
      match String.index_opt body '~' with
      | Some i -> (
          let kind_s = String.sub body 0 i in
          let p_s = String.sub body (i + 1) (String.length body - i - 1) in
          match float_of_string_opt p_s with
          | Some p when Float.is_finite p && p >= 0.0 && p <= 1.0 ->
              Result.map (fun kind -> (kind, Probability p))
                (kind_of_string kind_s)
          | _ ->
              Error
                (Printf.sprintf "probability %S is not a float in [0,1]" p_s))
      | None ->
          Error
            (Printf.sprintf "missing selector in %S (expected @n or ~p)" body))

let parse_clause clause =
  match String.index_opt clause ':' with
  | None -> Error (Printf.sprintf "missing ':' in clause %S" clause)
  | Some i ->
      let site = String.sub clause 0 i in
      let body = String.sub clause (i + 1) (String.length clause - i - 1) in
      if site = "" then Error (Printf.sprintf "empty site in clause %S" clause)
      else
        Result.map
          (fun (kind, selector) ->
            (site, { kind; selector; count = Atomic.make 0 }))
          (parse_selector body)

let parse spec =
  let clauses =
    List.filter
      (fun s -> s <> "")
      (List.map String.trim (String.split_on_char ',' spec))
  in
  let table = Hashtbl.create 8 in
  let rec go = function
    | [] -> Ok table
    | clause :: rest -> (
        match parse_clause clause with
        | Error e -> Error e
        | Ok (site, config) ->
            if Hashtbl.mem table site then
              Error (Printf.sprintf "duplicate site %S" site)
            else (
              Hashtbl.replace table site config;
              go rest))
  in
  go clauses

let disable () = Atomic.set sites None

let configure ?(seed = 0) spec =
  match parse spec with
  | Error e -> Error (Printf.sprintf "fault spec: %s (grammar: %s)" e grammar)
  | Ok table ->
      Atomic.set seed_ref seed;
      if Hashtbl.length table = 0 then Atomic.set sites None
      else Atomic.set sites (Some table);
      Ok ()

let configure_env ?seed () =
  match Sys.getenv_opt "SPAMLAB_FAULTS" with
  | None | Some "" -> Ok ()
  | Some spec -> configure ?seed spec

let enabled () = Atomic.get sites <> None

let fire site kind occurrence =
  Obs.incr injected;
  match kind with
  | Crash ->
      Printf.eprintf "spamlab: injected crash at %s (occurrence %d)\n%!" site
        occurrence;
      exit 70
  | Fatal ->
      Obs.incr fatal;
      raise (Injected { site; kind; occurrence })
  | Transient -> raise (Injected { site; kind; occurrence })

let check site =
  match Atomic.get sites with
  | None -> ()
  | Some table -> (
      match Hashtbl.find_opt table site with
      | None -> ()
      | Some { kind; selector; count } -> (
          let occurrence = 1 + Atomic.fetch_and_add count 1 in
          match selector with
          | Occurrences occs ->
              if List.mem occurrence occs then fire site kind occurrence
          | Probability p ->
              if draw ~seed:(Atomic.get seed_ref) ~site ~occurrence < p then
                fire site kind occurrence))

let is_transient = function
  | Injected { kind = Transient; _ } -> true
  | _ -> false
