(** Deterministic, seed-derived fault injection.

    The laboratory's robustness layer needs reproducible failures: a
    retried transient fault must strike the same site on the same
    occasion in every run of the same spec, or a "survives faults"
    test proves nothing.  This module is a process-wide registry of
    {e fault sites} — named program points (["pool.task"],
    ["db.save.write"], ["checkpoint.record"]) that consult the
    registry via {!check}.  A spec, from [--fault-spec] or the
    [SPAMLAB_FAULTS] environment variable, arms selected sites.

    {2 Overhead and determinism contract}

    Disabled (the default, and whenever the spec does not name a
    site), {!check} is one atomic load and a return — no allocation,
    no clock, no randomness — so instrumented binaries behave
    byte-identically to uninstrumented ones.  Armed, every decision is
    a pure function of (spec, seed, per-site occurrence number): the
    nth {!check} of a site always decides the same way, independent of
    scheduling, wall clock, or [--jobs].

    {2 Spec grammar}

    {v
    spec       ::= clause (',' clause)*
    clause     ::= site ':' kind selector
    kind       ::= "transient" | "fatal" | "crash"
    selector   ::= '@' occurrence ('+' occurrence)*   1-based hit numbers
                 | '~' probability                    float in [0,1]
    v}

    Examples: ["pool.task:transient@2+7"] (the 2nd and 7th pool task
    fail transiently), ["db.save.write:crash@1"] (the first database
    write dies mid-write), ["pool.task:transient~0.01"] (each task
    check fails with probability 0.01, derived from the seed).

    Kinds: [Transient] faults model recoverable blips (I/O hiccups,
    task restarts) — {!Spamlab_parallel} retries them; [Fatal] faults
    are injected errors that supervision must surface, not mask;
    [Crash] simulates a kill — the process exits immediately with
    status 70, leaving whatever half-written state exists on disk for
    recovery code to face. *)

type kind = Transient | Fatal | Crash

exception
  Injected of { site : string; kind : kind; occurrence : int }
      (** Raised by {!check} at an armed site ([Transient] and [Fatal]
          kinds; [Crash] never raises — it exits). [occurrence] is the
          1-based count of {!check} calls on that site so far. *)

val configure : ?seed:int -> string -> (unit, string) result
(** Parse a spec and arm its sites, replacing any previous
    configuration.  [seed] (default 0) drives probability selectors;
    occurrence selectors ignore it.  The empty string disarms
    everything (equivalent to {!disable}).  Not safe to call while
    pool maps are running.  [Error] describes the first syntax
    problem. *)

val configure_env : ?seed:int -> unit -> (unit, string) result
(** {!configure} from [SPAMLAB_FAULTS]; [Ok ()] when unset. *)

val disable : unit -> unit
(** Disarm all sites.  Testing hook; also what a spec-free run is. *)

val enabled : unit -> bool
(** True when any site is armed. *)

val check : string -> unit
(** [check site] — the probe placed at a fault site.  Counts the
    occurrence and, when the armed selector fires: [Transient]/[Fatal]
    raise {!Injected}; [Crash] prints one line to stderr and exits the
    process with status 70 (simulating a kill at this exact point).
    Always a no-op for unarmed sites. *)

val is_transient : exn -> bool
(** True exactly for [Injected {kind = Transient; _}] — the
    classification the pool's retry supervision keys on. *)

val grammar : string
(** One-line description of the spec grammar, for CLI help and error
    messages. *)

val known_sites : (string * string) list
(** Every fault site compiled into the tree, as [(name, description)]
    sorted by name.  {!check} accepts any string, but this catalogue is
    the single source of truth for documentation ([spamlab fault
    sites]), for the chaos orchestrator's randomized schedules, and for
    the test that pins the listing to the sites the suites exercise.
    Adding a [check] call without declaring its site here fails that
    test. *)
