external now_ns : unit -> int64 = "spamlab_obs_monotonic_ns"
