(** Monotonic clock (CLOCK_MONOTONIC via a local C stub — no library
    dependency).  All span timestamps in the observability layer come
    from here; differences are meaningful, absolute values are not. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock.  Thread- and domain-safe. *)
