type counter = { name : string; cell : int Atomic.t }

type span_stat = {
  mutable count : int;
  mutable total_ns : int64;
  mutable max_ns : int64;
}

(* Flags are Atomics so that [enabled] is one relaxed load on the fast
   path; everything structural (both tables, the sink, the origin) is
   guarded by [mutex]. *)
let tracing_flag = Atomic.make false
let metrics_flag = Atomic.make false
let detail_flag = Atomic.make false
let mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let span_stats : (string * int, span_stat) Hashtbl.t = Hashtbl.create 64
let sink : out_channel option ref = ref None
let next_span_id = Atomic.make 0
let origin_ns = ref None

let tracing () = Atomic.get tracing_flag
let metrics () = Atomic.get metrics_flag
let enabled () = Atomic.get tracing_flag || Atomic.get metrics_flag
let detail () = Atomic.get detail_flag && enabled ()

let locked f =
  Mutex.lock mutex;
  match f () with
  | v ->
      Mutex.unlock mutex;
      v
  | exception e ->
      Mutex.unlock mutex;
      raise e

(* The clock origin is pinned by whichever enable call comes first, so
   trace timestamps of one run share one zero point. *)
let ensure_origin_locked () =
  match !origin_ns with
  | Some t -> t
  | None ->
      let t = Clock.now_ns () in
      origin_ns := Some t;
      t

let start_trace ~path =
  locked (fun () ->
      if !sink <> None then
        invalid_arg "Obs.start_trace: a trace sink is already open";
      let oc = open_out path in
      ignore (ensure_origin_locked ());
      output_string oc
        (Json.line
           [
             Json.str "ev" "meta"; Json.str "format" "spamlab-trace";
             Json.int "version" 1;
           ]);
      output_char oc '\n';
      sink := Some oc);
  Atomic.set tracing_flag true

let enable_metrics () =
  locked (fun () -> ignore (ensure_origin_locked ()));
  Atomic.set metrics_flag true

let enable_detail () = Atomic.set detail_flag true

let configure_from_env () =
  match Sys.getenv_opt "SPAMLAB_OBS_DETAIL" with
  | Some ("1" | "true" | "yes") -> enable_detail ()
  | Some _ | None -> ()

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { name; cell = Atomic.make 0 } in
          Hashtbl.replace counters name c;
          c)

let add c n = if enabled () then ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1

let domain_id () = (Domain.self () :> int)

let stat_locked key =
  match Hashtbl.find_opt span_stats key with
  | Some s -> s
  | None ->
      let s = { count = 0; total_ns = 0L; max_ns = 0L } in
      Hashtbl.replace span_stats key s;
      s

let emit_span_locked ~name ~domain ~start_ns ~stop_ns =
  match !sink with
  | None -> ()
  | Some oc ->
      let origin = ensure_origin_locked () in
      let id = Atomic.fetch_and_add next_span_id 1 in
      let t0 = Int64.sub start_ns origin in
      let t1 = Int64.sub stop_ns origin in
      output_string oc
        (Json.line
           [
             Json.str "ev" "span_open"; Json.str "name" name;
             Json.int "id" id; Json.int "domain" domain; Json.i64 "t_ns" t0;
           ]);
      output_char oc '\n';
      output_string oc
        (Json.line
           [
             Json.str "ev" "span_close"; Json.str "name" name;
             Json.int "id" id; Json.int "domain" domain; Json.i64 "t_ns" t1;
             Json.i64 "dur_ns" (Int64.sub t1 t0);
           ]);
      output_char oc '\n'

let record_span name ~start_ns ~stop_ns =
  if enabled () then begin
    let domain = domain_id () in
    let dur = Int64.sub stop_ns start_ns in
    let dur = if Int64.compare dur 0L < 0 then 0L else dur in
    locked (fun () ->
        let s = stat_locked (name, domain) in
        s.count <- s.count + 1;
        s.total_ns <- Int64.add s.total_ns dur;
        if Int64.compare dur s.max_ns > 0 then s.max_ns <- dur;
        emit_span_locked ~name ~domain ~start_ns ~stop_ns)
  end

let span name f =
  if not (enabled ()) then f ()
  else begin
    let start_ns = Clock.now_ns () in
    match f () with
    | v ->
        record_span name ~start_ns ~stop_ns:(Clock.now_ns ());
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        record_span name ~start_ns ~stop_ns:(Clock.now_ns ());
        Printexc.raise_with_backtrace e bt
  end

let tick name =
  if enabled () then begin
    let domain = domain_id () in
    locked (fun () ->
        let s = stat_locked (name, domain) in
        s.count <- s.count + 1)
  end

let counters_snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun name c acc ->
          let v = Atomic.get c.cell in
          if v = 0 then acc else (name, v) :: acc)
        counters [])
  |> List.sort compare

let counter_value name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> Atomic.get c.cell
      | None -> 0)

let span_count name =
  locked (fun () ->
      Hashtbl.fold
        (fun (n, _) s acc -> if n = name then acc + s.count else acc)
        span_stats 0)

let stop () =
  locked (fun () ->
      match !sink with
      | None -> ()
      | Some oc ->
          let snapshot =
            Hashtbl.fold
              (fun name c acc -> (name, Atomic.get c.cell) :: acc)
              counters []
            |> List.filter (fun (_, v) -> v <> 0)
            |> List.sort compare
          in
          List.iter
            (fun (name, value) ->
              output_string oc
                (Json.line
                   [
                     Json.str "ev" "counter"; Json.str "name" name;
                     Json.int "value" value;
                   ]);
              output_char oc '\n')
            snapshot;
          close_out oc;
          sink := None);
  Atomic.set tracing_flag false;
  Atomic.set metrics_flag false;
  Atomic.set detail_flag false

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.reset span_stats)

(* ------------------------------------------------------------------ *)
(* Plain-text metrics dump                                             *)

(* Aggregate (name, domain) stats by name; remember which domains each
   name ran on for the utilization section. *)
let aggregated_locked () =
  let by_name : (string, span_stat * (int * int) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  Hashtbl.iter
    (fun (name, domain) s ->
      let total, domains =
        match Hashtbl.find_opt by_name name with
        | Some entry -> entry
        | None ->
            let entry =
              ({ count = 0; total_ns = 0L; max_ns = 0L }, ref [])
            in
            Hashtbl.replace by_name name entry;
            entry
      in
      total.count <- total.count + s.count;
      total.total_ns <- Int64.add total.total_ns s.total_ns;
      if Int64.compare s.max_ns total.max_ns > 0 then
        total.max_ns <- s.max_ns;
      domains := (domain, s.count) :: !domains)
    span_stats;
  Hashtbl.fold (fun name (s, ds) acc -> (name, s, List.sort compare !ds) :: acc)
    by_name []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let ms ns = Int64.to_float ns /. 1e6

let dump_metrics oc =
  let counters = counters_snapshot () in
  let spans = locked (fun () -> aggregated_locked ()) in
  output_string oc "== spamlab metrics ==\n";
  if counters = [] then output_string oc "counters: none\n"
  else begin
    output_string oc "counters:\n";
    List.iter
      (fun (name, v) -> Printf.fprintf oc "  %-40s %14d\n" name v)
      counters
  end;
  let timed = List.filter (fun (_, s, _) -> s.total_ns <> 0L) spans in
  let ticked = List.filter (fun (_, s, _) -> s.total_ns = 0L && s.count > 0) spans in
  if timed = [] then output_string oc "spans: none\n"
  else begin
    Printf.fprintf oc "spans:%38s %10s %12s %12s %12s\n" "" "count"
      "total ms" "mean ms" "max ms";
    List.iter
      (fun (name, s, _) ->
        Printf.fprintf oc "  %-42s %10d %12.2f %12.4f %12.2f\n" name s.count
          (ms s.total_ns)
          (ms s.total_ns /. float_of_int (max 1 s.count))
          (ms s.max_ns))
      timed
  end;
  let with_domains =
    ticked @ List.filter (fun (_, _, ds) -> List.length ds > 1) timed
  in
  if with_domains <> [] then begin
    output_string oc "per-domain distribution (count by domain id):\n";
    List.iter
      (fun (name, _, ds) ->
        Printf.fprintf oc "  %-42s %s\n" name
          (String.concat " "
             (List.map (fun (d, c) -> Printf.sprintf "d%d=%d" d c) ds)))
      with_domains
  end;
  flush oc
