(** Process-wide observability: monotonic-clock spans and counters
    with a thread-safe, domain-aware registry, an optional JSONL trace
    sink, and a plain-text metrics dump.

    {2 Overhead contract}

    Everything is {e disabled by default}.  While disabled:

    - {!span} is a flag test plus a tail call of the thunk — no
      allocation, no clock read, no lock;
    - {!add}/{!incr}/{!tick} are a flag test and return;
    - instrumented code produces byte-identical output to
      uninstrumented code, because nothing here writes to any channel
      until {!dump_metrics} or {!stop} is called.

    While enabled, counter updates are a single atomic fetch-and-add
    (no lock), and span closes take one mutex-guarded registry update
    (plus two JSONL lines when a trace sink is open).  The mutex is
    only contended by simultaneous span closes, which in the
    experiment harness happen at per-fold/per-grid-point granularity,
    not per message.

    {2 Jobs invariance}

    Counter totals and span {e counts} for experiment-layer
    instrumentation are pure functions of the work done, so they are
    identical at every [--jobs] setting (the determinism contract of
    {!Spamlab_parallel}).  Span {e durations}, per-domain breakdowns,
    and the [pool.*] scheduling instrumentation necessarily reflect
    actual scheduling and are not jobs-invariant.

    {2 Trace format}

    The sink is JSON Lines: one flat JSON object per line.

    - [{"ev":"meta","format":"spamlab-trace","version":1}] — first line;
    - [{"ev":"span_open","name":N,"id":I,"domain":D,"t_ns":T}]
    - [{"ev":"span_close","name":N,"id":I,"domain":D,"t_ns":T,"dur_ns":DUR}]
      — every open is followed (not necessarily adjacently) by exactly
      one close with the same [id];
    - [{"ev":"counter","name":N,"value":V}] — final counter values,
      written by {!stop}, sorted by name.

    Timestamps are nanoseconds relative to the first enable call, from
    {!Clock} (monotonic). *)

type counter
(** Handle to a named counter.  Handles are cheap and may be kept in
    module-level bindings; re-registering a name returns the same
    underlying cell. *)

(** {1 State} *)

val tracing : unit -> bool
val metrics : unit -> bool

val enabled : unit -> bool
(** [tracing () || metrics ()] — the master gate on all recording. *)

val detail : unit -> bool
(** True only when detail instrumentation was opted into {e and}
    {!enabled} — gates per-message classification timing, which is too
    hot to record by default even in traced runs. *)

val start_trace : path:string -> unit
(** Open [path] as the JSONL sink (truncating) and enable tracing.
    @raise Sys_error if the file cannot be opened.
    @raise Invalid_argument if a sink is already open. *)

val enable_metrics : unit -> unit
(** Enable in-memory aggregation for {!dump_metrics} (independent of
    tracing). *)

val enable_detail : unit -> unit

val configure_from_env : unit -> unit
(** Honour [SPAMLAB_OBS_DETAIL=1] (see {!enable_detail}).  Called by
    the CLI entry points after flag parsing. *)

val stop : unit -> unit
(** Flush final counter values to the sink, close it, and disable all
    recording (tracing, metrics, detail).  Aggregated data survives —
    {!dump_metrics} reads the registry, not the flags — so call it
    after [stop].  Idempotent. *)

(** {1 Recording} *)

val counter : string -> counter

val add : counter -> int -> unit
(** Atomic add; a no-op while disabled (so totals reflect only the
    instrumented window). *)

val incr : counter -> unit

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when enabled, records its wall
    duration under [name] for the calling domain (and emits
    open/close events when tracing).  Exceptions propagate with their
    backtraces; the span is closed either way. *)

val record_span : string -> start_ns:int64 -> stop_ns:int64 -> unit
(** Record an externally-timed span — for intervals that start on one
    domain and end on another (e.g. queue wait between [submit] and
    task start), which the {!span} combinator cannot express. *)

val tick : string -> unit
(** Count one occurrence of [name] on the calling domain, with no
    duration — e.g. one work item claimed by this domain.  Renders in
    the metrics dump as a per-domain distribution (pool
    utilization). *)

(** {1 Reporting and introspection} *)

val dump_metrics : out_channel -> unit
(** Plain-text summary: counters (sorted by name), span aggregates
    (count / total / mean / max, aggregated over domains), and
    per-domain distributions for ticked names. *)

val counter_value : string -> int
(** Current value of a named counter; 0 if never registered. *)

val counters_snapshot : unit -> (string * int) list
(** All counters with non-zero values, sorted by name. *)

val span_count : string -> int
(** Times a span [name] closed (summed over domains). *)

val reset : unit -> unit
(** Zero all counters and span statistics (keeps registered counter
    handles valid).  Testing hook. *)
