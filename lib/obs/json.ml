type field = string * string (* key, already-rendered value *)

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str key value = (key, Printf.sprintf "\"%s\"" (escape_string value))
let int key value = (key, string_of_int value)
let i64 key value = (key, Int64.to_string value)

let line fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (key, value) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string key);
      Buffer.add_string buf "\":";
      Buffer.add_string buf value)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf
