/* Monotonic clock for span timing.  CLOCK_MONOTONIC never jumps
   backwards (NTP slews it but never steps it), which is the property
   span durations need; wall-clock time is not used anywhere in the
   observability layer. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <stdint.h>
#include <time.h>

CAMLprim value spamlab_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
