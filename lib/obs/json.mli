(** Minimal JSON emission for the JSONL trace sink.  Only what the
    trace format needs: flat objects of string/int fields, one per
    line.  No parser — the test suite carries its own small validator,
    so the format is checked from the outside. *)

type field

val str : string -> string -> field
(** [str key value]: a string-valued field; [value] is escaped. *)

val int : string -> int -> field

val i64 : string -> int64 -> field

val line : field list -> string
(** One JSONL line: a flat object in the given field order, no
    trailing newline. *)

val escape_string : string -> string
(** JSON string-body escaping (backslash, quote, control characters as
    \u00XX).  Exposed for tests. *)
