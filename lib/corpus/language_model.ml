open Spamlab_stats

type component = {
  words : string array;
  weight : float;
  zipf_exponent : float;
}

type t = {
  components : (string array * Sampler.categorical) array;
  mixture : Sampler.categorical;
  weights : float array;
  prob_index : (string, float) Hashtbl.t option Atomic.t;
  prob_lock : Mutex.t;
}

let make components =
  if components = [] then invalid_arg "Language_model.make: no components";
  List.iter
    (fun c ->
      if Array.length c.words = 0 then
        invalid_arg "Language_model.make: empty component";
      if c.weight <= 0.0 then
        invalid_arg "Language_model.make: non-positive weight";
      if c.zipf_exponent <= 0.0 then
        invalid_arg "Language_model.make: non-positive exponent")
    components;
  let weights = Array.of_list (List.map (fun c -> c.weight) components) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let weights = Array.map (fun w -> w /. total) weights in
  {
    components =
      Array.of_list
        (List.map
           (fun c ->
             ( c.words,
               Sampler.zipf ~exponent:c.zipf_exponent (Array.length c.words)
             ))
           components);
    mixture = Sampler.categorical weights;
    weights;
    prob_index = Atomic.make None;
    prob_lock = Mutex.create ();
  }

let head_exponent = 1.1

(* Class-specific and colloquial vocabularies decay more gently than the
   shared function-word head: no business or slang word appears in
   nearly every message the way "the" does.  Without this, the top
   class words are present in ~99% of their class and single-handedly
   veto any poisoning flip - unrealistically strong evidence. *)
let specific_exponent = 0.9

(* The rare pools get a flatter decay still: they model the long tail
   where occurrence counts are small and roughly uniform. *)
let rare_exponent = 0.45

let ham (v : Vocabulary.t) =
  make
    [
      { words = v.shared; weight = 0.40; zipf_exponent = head_exponent };
      { words = v.ham_specific; weight = 0.10; zipf_exponent = specific_exponent };
      { words = v.colloquial; weight = 0.07; zipf_exponent = specific_exponent };
      {
        (* Nonstandard rarities (names, codes, jargon) lead the tail:
           they recur in email more than dictionary-only rare words. *)
        words = Array.append v.rare_nonstandard v.rare_standard;
        weight = 0.43;
        zipf_exponent = rare_exponent;
      };
    ]

let spam (v : Vocabulary.t) =
  make
    [
      { words = v.shared; weight = 0.40; zipf_exponent = head_exponent };
      { words = v.spam_specific; weight = 0.22; zipf_exponent = specific_exponent };
      { words = v.colloquial; weight = 0.02; zipf_exponent = specific_exponent };
      {
        words = Array.append v.rare_nonstandard v.rare_standard;
        weight = 0.38;
        zipf_exponent = rare_exponent;
      };
    ]

let sample_word t rng =
  let c = Sampler.categorical_draw t.mixture rng in
  let words, zipf = t.components.(c) in
  words.(Sampler.categorical_draw zipf rng)

let sample_words t rng n = List.init n (fun _ -> sample_word t rng)

let support t =
  let seen = Hashtbl.create 4096 in
  Array.iter
    (fun (words, _) -> Array.iter (fun w -> Hashtbl.replace seen w ()) words)
    t.components;
  let out = Array.make (Hashtbl.length seen) "" in
  let i = ref 0 in
  Hashtbl.iter
    (fun w () ->
      out.(!i) <- w;
      incr i)
    seen;
  Array.sort String.compare out;
  out

let build_prob_index t =
  let table = Hashtbl.create 16384 in
  Array.iteri
    (fun ci (words, zipf) ->
      let weight = t.weights.(ci) in
      Array.iteri
        (fun wi w ->
          let p = weight *. Sampler.categorical_prob zipf wi in
          let existing =
            Option.value ~default:0.0 (Hashtbl.find_opt table w)
          in
          Hashtbl.replace table w (existing +. p))
        words)
    t.components;
  table

(* Double-checked lazy build: pool workers may race here, and a plain
   mutable field would have no publication guarantee under the OCaml 5
   memory model (a reader could observe the Some before the table's
   contents).  The Atomic read is the lock-free steady-state path; the
   build is serialized and published once. *)
let word_prob t w =
  let table =
    match Atomic.get t.prob_index with
    | Some table -> table
    | None ->
        Mutex.protect t.prob_lock (fun () ->
            match Atomic.get t.prob_index with
            | Some table -> table
            | None ->
                let table = build_prob_index t in
                Atomic.set t.prob_index (Some table);
                table)
  in
  Option.value ~default:0.0 (Hashtbl.find_opt table w)
