open Spamlab_stats
module Label = Spamlab_spambayes.Label

type labeled = Label.gold * Spamlab_email.Message.t

let generate ?pool config rng ~size ~spam_fraction =
  if size < 0 then invalid_arg "Trec.generate: negative size";
  if spam_fraction < 0.0 || spam_fraction > 1.0 then
    invalid_arg "Trec.generate: spam_fraction outside [0,1]";
  let nspam =
    int_of_float (Float.round (float_of_int size *. spam_fraction))
  in
  (* Each message draws from its own child stream, pre-split by index
     from a single advance of the caller's rng.  Message [i] is a pure
     function of (root state, i), so construction can fan over the
     domain pool and the corpus is identical at every jobs count. *)
  let root = Rng.split rng in
  let build i =
    let child = Rng.split_indexed root i in
    if i < nspam then (Label.Spam, Generator.spam config child)
    else (Label.Ham, Generator.ham config child)
  in
  let messages =
    match pool with
    | Some p ->
        Spamlab_parallel.Pool.map_array p build (Array.init size Fun.id)
    | None -> Array.init size build
  in
  Rng.shuffle rng messages;
  messages

let select_label want corpus =
  let n =
    Array.fold_left
      (fun n (label, _) -> if label = want then n + 1 else n)
      0 corpus
  in
  let out = Array.make n (snd corpus.(0)) in
  let j = ref 0 in
  Array.iter
    (fun (label, msg) ->
      if label = want then begin
        out.(!j) <- msg;
        incr j
      end)
    corpus;
  out

let ham_only corpus =
  if Array.length corpus = 0 then [||] else select_label Label.Ham corpus

let spam_only corpus =
  if Array.length corpus = 0 then [||] else select_label Label.Spam corpus

let counts corpus =
  Array.fold_left
    (fun (ham, spam) (label, _) ->
      match label with
      | Label.Ham -> (ham + 1, spam)
      | Label.Spam -> (ham, spam + 1))
    (0, 0) corpus

let to_mbox_files ~ham_path ~spam_path corpus =
  Spamlab_email.Mbox.write_file ham_path
    (Array.to_list (ham_only corpus));
  Spamlab_email.Mbox.write_file spam_path
    (Array.to_list (spam_only corpus))

let of_mbox_files ~ham_path ~spam_path =
  match
    ( Spamlab_email.Mbox.read_file ham_path,
      Spamlab_email.Mbox.read_file spam_path )
  with
  | Ok hams, Ok spams ->
      Ok
        (Array.append
           (Array.of_list (List.map (fun m -> (Label.Ham, m)) hams))
           (Array.of_list (List.map (fun m -> (Label.Spam, m)) spams)))
  | Error e, _ -> Error ("ham mbox: " ^ e)
  | _, Error e -> Error ("spam mbox: " ^ e)

let of_mbox_files_lenient ~ham_path ~spam_path =
  match
    ( Spamlab_email.Mbox.read_file_lenient ham_path,
      Spamlab_email.Mbox.read_file_lenient spam_path )
  with
  | Ok (hams, ham_dropped), Ok (spams, spam_dropped) ->
      Ok
        ( Array.append
            (Array.of_list (List.map (fun m -> (Label.Ham, m)) hams))
            (Array.of_list (List.map (fun m -> (Label.Spam, m)) spams)),
          ham_dropped + spam_dropped )
  | Error e, _ -> Error ("ham mbox: " ^ e)
  | _, Error e -> Error ("spam mbox: " ^ e)
