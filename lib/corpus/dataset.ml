module Label = Spamlab_spambayes.Label
module Filter = Spamlab_spambayes.Filter
module Tokenizer = Spamlab_tokenizer.Tokenizer

module Intern = Spamlab_spambayes.Intern

type example = {
  label : Label.gold;
  tokens : string array;
  ids : int array;
  raw_token_count : int;
}

let of_tokens label tokens ~raw_token_count =
  { label; tokens; ids = Intern.intern_array tokens; raw_token_count }

let of_message tokenizer label msg =
  let tokens, raw_token_count =
    Tokenizer.unique_counted (Tokenizer.tokenize tokenizer msg)
  in
  of_tokens label tokens ~raw_token_count

let of_labeled tokenizer corpus =
  Array.map (fun (label, msg) -> of_message tokenizer label msg) corpus

let train_filter filter examples =
  Array.iter (fun e -> Filter.train_ids filter e.label e.ids) examples

let classify filter e = Filter.classify_ids filter e.ids

let kfold ~k arr =
  let n = Array.length arr in
  if k < 2 then invalid_arg "Dataset.kfold: k must be at least 2";
  if k > n then invalid_arg "Dataset.kfold: more folds than elements";
  Array.init k (fun i ->
      let lo = i * n / k in
      let hi = (i + 1) * n / k in
      let test = Array.sub arr lo (hi - lo) in
      let train =
        Array.append (Array.sub arr 0 lo) (Array.sub arr hi (n - hi))
      in
      (train, test))

let split rng frac arr =
  if frac < 0.0 || frac > 1.0 then invalid_arg "Dataset.split: bad fraction";
  let copy = Array.copy arr in
  Spamlab_stats.Rng.shuffle rng copy;
  let cut = int_of_float (frac *. float_of_int (Array.length copy)) in
  (Array.sub copy 0 cut, Array.sub copy cut (Array.length copy - cut))

let total_raw_tokens examples =
  Array.fold_left (fun acc e -> acc + e.raw_token_count) 0 examples

let filter_label label examples =
  Array.of_list
    (List.filter (fun e -> e.label = label) (Array.to_list examples))
