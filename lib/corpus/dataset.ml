module Label = Spamlab_spambayes.Label
module Filter = Spamlab_spambayes.Filter
module Tokenizer = Spamlab_tokenizer.Tokenizer

module Intern = Spamlab_spambayes.Intern

type example = {
  label : Label.gold;
  tokens : string array;
  ids : int array;
  raw_token_count : int;
}

let of_tokens label tokens ~raw_token_count =
  { label; tokens; ids = Intern.intern_array tokens; raw_token_count }

module Ingest = Spamlab_spambayes.Ingest

(* Zero-copy path: tokenizers push byte slices which intern in place
   (Ingest.with_unique_ids); only the distinct tokens are ever
   materialized as strings — shared with the intern table, not
   allocated per message.  The string-sorted [tokens]/[ids] order of
   the legacy pipeline is preserved: attack construction and the roni
   defense iterate [tokens] and rely on it.

   The sort runs over an int permutation, never over boxed pairs: a
   per-message (string * id) array is large enough to be allocated
   directly in the major heap, and filling and sorting it floods the
   remembered set with old-to-young pointers — each message then
   forces minor collections, which at --jobs > 1 are stop-the-world
   rendezvous across every domain.  An int array takes no write
   barrier at all. *)
let sorted_perm ids n =
  let perm = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      String.compare (Intern.to_string ids.(a)) (Intern.to_string ids.(b)))
    perm;
  perm

let of_message tokenizer label msg =
  Ingest.with_unique_ids tokenizer msg (fun ids n raw ->
      let perm = sorted_perm ids n in
      {
        label;
        tokens = Array.init n (fun k -> Intern.to_string ids.(perm.(k)));
        ids = Array.init n (fun k -> ids.(perm.(k)));
        raw_token_count = raw;
      })

let tokenize_ids tokenizer msg =
  Ingest.with_unique_ids tokenizer msg (fun ids n raw ->
      let perm = sorted_perm ids n in
      (Array.init n (fun k -> ids.(perm.(k))), raw))

let of_labeled ?pool tokenizer corpus =
  let build (label, msg) = of_message tokenizer label msg in
  match pool with
  | Some p -> Spamlab_parallel.Pool.map_array p build corpus
  | None -> Array.map build corpus

(* Id-set examples for callers that never look at token strings
   (benches, the daemon-style classify path): distinct ids in
   ascending id order plus the raw stream length, no string array. *)
let of_messages_ids ?pool tokenizer corpus =
  let build (label, msg) =
    Ingest.with_unique_ids tokenizer msg (fun ids n raw ->
        (label, Array.sub ids 0 n, raw))
  in
  match pool with
  | Some p -> Spamlab_parallel.Pool.map_array p build corpus
  | None -> Array.map build corpus

let train_filter filter examples =
  Array.iter (fun e -> Filter.train_ids filter e.label e.ids) examples

let classify filter e = Filter.classify_ids filter e.ids

let kfold ~k arr =
  let n = Array.length arr in
  if k < 2 then invalid_arg "Dataset.kfold: k must be at least 2";
  if k > n then invalid_arg "Dataset.kfold: more folds than elements";
  Array.init k (fun i ->
      let lo = i * n / k in
      let hi = (i + 1) * n / k in
      let test = Array.sub arr lo (hi - lo) in
      let train =
        Array.append (Array.sub arr 0 lo) (Array.sub arr hi (n - hi))
      in
      (train, test))

let split rng frac arr =
  if frac < 0.0 || frac > 1.0 then invalid_arg "Dataset.split: bad fraction";
  let copy = Array.copy arr in
  Spamlab_stats.Rng.shuffle rng copy;
  let cut = int_of_float (frac *. float_of_int (Array.length copy)) in
  (Array.sub copy 0 cut, Array.sub copy cut (Array.length copy - cut))

let total_raw_tokens examples =
  Array.fold_left (fun acc e -> acc + e.raw_token_count) 0 examples

let filter_label label examples =
  let n =
    Array.fold_left
      (fun n e -> if e.label = label then n + 1 else n)
      0 examples
  in
  if n = 0 then [||]
  else begin
    let out = Array.make n examples.(0) in
    let j = ref 0 in
    Array.iter
      (fun e ->
        if e.label = label then begin
          out.(!j) <- e;
          incr j
        end)
      examples;
    out
  end
