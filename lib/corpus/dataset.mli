(** Tokenized datasets and resampling: the bridge between generated
    messages and the learner.  Messages are tokenized once into
    {!example}s; training, attacks and evaluation then operate on token
    arrays (the fast path for cross-validated sweeps). *)

type example = {
  label : Spamlab_spambayes.Label.gold;
  tokens : string array;  (** Distinct tokens, sorted. *)
  ids : int array;
      (** [tokens] interned elementwise ({!Spamlab_spambayes.Intern}) —
          same length, same order.  Training and classification run on
          these; the strings remain for attacks, reporting and
          persistence. *)
  raw_token_count : int;  (** Stream length before dedup (token-volume
                              accounting, §4.2). *)
}

val of_labeled :
  ?pool:Spamlab_parallel.Pool.t ->
  Spamlab_tokenizer.Tokenizer.t ->
  Trec.labeled array ->
  example array
(** Tokenize every message; with [?pool] the per-message work fans over
    the domain pool (pure per message, so jobs-invariant up to intern
    id assignment — compare [tokens], never [ids], across runs). *)

val of_message :
  Spamlab_tokenizer.Tokenizer.t ->
  Spamlab_spambayes.Label.gold ->
  Spamlab_email.Message.t ->
  example
(** Zero-copy message → example: tokenizers push byte slices which
    intern in place ({!Spamlab_spambayes.Ingest.with_unique_ids}); the
    distinct tokens are materialized as strings shared with the intern
    table, sorted, and paired with their ids — same [tokens]/[ids]
    arrays as the legacy string pipeline, without per-token
    allocation. *)

val tokenize_ids :
  Spamlab_tokenizer.Tokenizer.t -> Spamlab_email.Message.t -> int array * int
(** [tokenize_ids t msg] is the id half of {!of_message}: the sorted
    deduplicated interned ids plus the raw stream length, for callers
    that never need the strings. *)

val of_messages_ids :
  ?pool:Spamlab_parallel.Pool.t ->
  Spamlab_tokenizer.Tokenizer.t ->
  Trec.labeled array ->
  (Spamlab_spambayes.Label.gold * int array * int) array
(** Batched id-set extraction for callers that never look at token
    strings: per message, [(label, distinct ids in ascending id order,
    raw stream length)].  Rides the zero-copy span path with one
    per-domain scratch buffer across the batch (see
    {!Spamlab_spambayes.Ingest}); with [?pool] messages fan over the
    domain pool. *)

val of_tokens :
  Spamlab_spambayes.Label.gold ->
  string array ->
  raw_token_count:int ->
  example
(** Build an example from an already-deduplicated token array (attack
    payloads, synthetic fixtures); interns the ids. *)

val train_filter : Spamlab_spambayes.Filter.t -> example array -> unit
(** Train every example into the filter. *)

val classify :
  Spamlab_spambayes.Filter.t -> example -> Spamlab_spambayes.Classify.result

val kfold : k:int -> 'a array -> ('a array * 'a array) array
(** [kfold ~k arr] partitions [arr] into [k] consecutive folds and
    returns [(train, test)] pairs, test being the i-th fold.  The input
    order is the randomization (corpora are generated shuffled).
    @raise Invalid_argument if [k < 2] or [k] exceeds the array
    length. *)

val split : Spamlab_stats.Rng.t -> float -> 'a array -> 'a array * 'a array
(** [split rng frac arr] shuffles a copy and splits at
    [frac × length]. *)

val total_raw_tokens : example array -> int

val filter_label :
  Spamlab_spambayes.Label.gold -> example array -> example array
