(** Labeled corpus builder — the stand-in for TREC 2005.

    The real corpus has 92,189 messages, 57.3% spam.  Experiments here
    sample inboxes of the sizes Table 1 prescribes (2,000–10,000
    messages at 50% or 75% spam prevalence) from the generative models;
    {!generate} produces such a sample directly. *)

type labeled = Spamlab_spambayes.Label.gold * Spamlab_email.Message.t

val generate :
  ?pool:Spamlab_parallel.Pool.t ->
  Generator.config ->
  Spamlab_stats.Rng.t ->
  size:int ->
  spam_fraction:float ->
  labeled array
(** Exactly [round (size × spam_fraction)] spam and the rest ham, in
    shuffled order.  Each message is built from its own rng child,
    pre-split by index ({!Spamlab_stats.Rng.split_indexed}) from one
    advance of [rng]: the corpus is a pure function of the rng state,
    [size] and [spam_fraction], and with [?pool] message construction
    fans over the domain pool with output identical at every jobs
    count.  @raise Invalid_argument if [size < 0] or the fraction is
    outside [0,1]. *)

val ham_only : labeled array -> Spamlab_email.Message.t array
val spam_only : labeled array -> Spamlab_email.Message.t array

val counts : labeled array -> int * int
(** (ham, spam) counts. *)

val to_mbox_files :
  ham_path:string -> spam_path:string -> labeled array -> unit
(** Persist a corpus as two mbox files (the layout TREC tooling and the
    CLI use). *)

val of_mbox_files :
  ham_path:string -> spam_path:string -> (labeled array, string) result

val of_mbox_files_lenient :
  ham_path:string ->
  spam_path:string ->
  (labeled array * int, string) result
(** Like {!of_mbox_files} but unparseable messages are quarantined
    (dropped) rather than failing the load; the [int] is how many were
    dropped across both files.  Missing files are still [Error]. *)
