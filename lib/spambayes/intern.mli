(** Global token interning: strings to dense int ids.

    Every token the process ever sees maps to one small int; the hot
    paths ({!Token_db}, {!Classify}) then index count arrays instead of
    hashing strings.  The table is process-global and append-only: an id,
    once assigned, never changes and never goes away, so ids may be
    stored in long-lived structures ({!Token_db} bases,
    [Dataset.example]) and shared freely between domains.

    {2 Domain safety}

    Interning is thread-safe: new assignments take a mutex (one lock per
    {!intern_array} call, not per token).  {!freeze} publishes a
    lock-free snapshot of the current table, so lookups of
    already-interned strings — the entire steady state of an experiment
    after its corpus is built — cost one hashtable probe with no lock.
    Interning {e after} a freeze is still correct (misses fall back to
    the mutex path); freezing again refreshes the snapshot.

    {!to_string} is lock-free by construction: id-to-string slots are
    written exactly once, before the id is handed out, and ids only
    travel between domains along happens-before edges (the pool queue,
    a mutex), so a reader's view of the table always covers every id it
    can name.

    {2 Determinism}

    Id {e values} depend on interning order and are therefore
    schedule-dependent under parallel fan-out.  They never reach any
    output: scores depend only on counts, clue ordering ties break on
    the token {e string}, and {!Token_db.save} resolves ids back to
    strings and sorts.  Nothing downstream may compare or order ids
    across runs. *)

val id : string -> int
(** Intern one string (assigning a fresh id on first sight). *)

val intern_array : string array -> int array
(** Intern a batch elementwise — at most one lock acquisition for all
    misses together. *)

val find : string -> int option
(** Lookup without interning — never mutates, so read-only paths
    (e.g. [Token_db.spam_count] on an arbitrary string) stay
    contention-free. *)

val to_string : int -> string
(** The string for an assigned id.
    @raise Invalid_argument on an id never returned by this module. *)

val freeze : unit -> unit
(** Publish a lock-free lookup snapshot of the table as of now.  Call
    after corpus/payload construction, before parallel fan-out.  Safe at
    any time, from any domain, any number of times.  (The snapshot also
    refreshes itself automatically once the table has grown well past
    it, so omitting the call costs amortized-O(1) extra work, not
    correctness.) *)

val size : unit -> int
(** Number of distinct strings interned so far. *)
