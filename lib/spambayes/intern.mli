(** Global token interning: strings to dense int ids.

    Every token the process ever sees maps to one small int; the hot
    paths ({!Token_db}, {!Classify}) then index count arrays instead of
    hashing strings.  The table is process-global and append-only: an id,
    once assigned, never changes and never goes away, so ids may be
    stored in long-lived structures ({!Token_db} bases,
    [Dataset.example]) and shared freely between domains.

    {2 Zero-copy slices}

    The table is an open-addressing map hashed with FNV-1a over raw
    bytes, so {!intern_sub} can intern a {e slice} of a message buffer
    directly: the slice is hashed and compared in place against the
    stored strings, and a substring is materialized only on the first
    sighting of a brand-new token ([intern.first_sighting] counter).
    The steady state of ingest — every token already known — allocates
    nothing.

    {2 Domain safety}

    Interning is thread-safe: new assignments take a mutex (one lock per
    {!intern_array} call, not per token).  {!freeze} publishes a
    lock-free snapshot of the current table, so lookups of
    already-interned strings or slices — the entire steady state of an
    experiment after its corpus is built — cost one table probe with no
    lock.  Interning {e after} a freeze is still correct (misses fall
    back to the mutex path); freezing again refreshes the snapshot.

    {!to_string} is lock-free by construction: id-to-string slots are
    written exactly once, before the id is handed out, and ids only
    travel between domains along happens-before edges (the pool queue,
    a mutex, the frozen-snapshot atomic), so a reader's view of the
    table always covers every id it can name.

    {2 Faults}

    Growing the slot table consults the {!Spamlab_fault} site
    ["intern.grow"] {e before} any mutation, so an injected transient
    fault leaves the table untouched and pool supervision can retry the
    interning task.

    {2 Determinism}

    Id {e values} depend on interning order and are therefore
    schedule-dependent under parallel fan-out.  They never reach any
    output: scores depend only on counts, clue ordering ties break on
    the token {e string}, and {!Token_db.save} resolves ids back to
    strings and sorts.  Nothing downstream may compare or order ids
    across runs. *)

val id : string -> int
(** Intern one string (assigning a fresh id on first sight). *)

val intern_sub : string -> int -> int -> int
(** [intern_sub buf off len] is [id (String.sub buf off len)] without
    the substring: the slice is hashed and compared in place, and the
    token string is materialized only when the slice has never been
    seen before.
    @raise Invalid_argument if [off]/[len] do not denote a slice of
    [buf]. *)

val intern_array : string array -> int array
(** Intern a batch elementwise — at most one lock acquisition for all
    misses together. *)

val probe_frozen_sub : string -> int -> int -> int
(** Lock-free probe of the published snapshot only: the slice's id, or
    [-1] when the snapshot does not hold it.  A miss is {e tentative} —
    the live table may already have the string (interned since the last
    refresh) — so callers must resolve misses through {!intern_batch}
    (or {!intern_sub}), never treat them as "absent".
    @raise Invalid_argument on a bad slice. *)

val intern_batch : string array -> int -> int array -> unit
(** [intern_batch strs n out] interns [strs.(0 .. n-1)] under a single
    lock acquisition and writes the ids to [out.(0 .. n-1)].  The
    companion of {!probe_frozen_sub}: collect snapshot misses for a
    whole message, then resolve them all here — one lock per message,
    not one per brand-new token.
    @raise Invalid_argument if [n] exceeds either array's length. *)

val find : string -> int option
(** Lookup without interning — never mutates, so read-only paths
    (e.g. [Token_db.spam_count] on an arbitrary string) stay
    contention-free. *)

val find_sub : string -> int -> int -> int option
(** Slice lookup without interning; agrees with
    [find (String.sub buf off len)] allocation-free.
    @raise Invalid_argument on a bad slice. *)

val to_string : int -> string
(** The string for an assigned id.
    @raise Invalid_argument on an id never returned by this module. *)

val freeze : unit -> unit
(** Publish a lock-free lookup snapshot of the table as of now.  Call
    after corpus/payload construction, before parallel fan-out.  Safe at
    any time, from any domain, any number of times.  (The snapshot also
    refreshes itself automatically once the table has grown well past
    it, so omitting the call costs amortized-O(1) extra work, not
    correctness.)  Also rebuilds the {!rank} table (O(V log V), only
    here — never on the automatic refresh). *)

val rank : int -> int
(** The position of [to_string id] in the byte-sorted vocabulary as of
    the last {!freeze}, or [-1] for ids interned since (or never
    assigned).  For two covered ids, [compare (rank a) (rank b)] agrees
    exactly with [String.compare (to_string a) (to_string b)] — the
    int-compare form of Classify's clue tie-break.  Distinct ids hold
    distinct strings, so distinct covered ids never share a rank. *)

val size : unit -> int
(** Number of distinct strings interned so far. *)
