open Spamlab_stats

type clue = { token : string; score : float }

type result = {
  indicator : float;
  verdict : Label.verdict;
  clues : clue list;
}

let by_strength_desc a b =
  let sa = Float.abs (a.score -. 0.5) in
  let sb = Float.abs (b.score -. 0.5) in
  match Float.compare sb sa with
  | 0 -> String.compare a.token b.token
  | c -> c

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* The comparator is a total order on distinct tokens, so the selection
   does not depend on the order candidates arrive in. *)
let select_scored (options : Options.t) candidates =
  let scored =
    List.filter
      (fun c -> Float.abs (c.score -. 0.5) >= options.minimum_prob_strength)
      candidates
  in
  take options.max_discriminators (List.sort by_strength_desc scored)

(* Candidate accumulation iterates the token array directly: scoring
   allocates nothing per rejected token, which matters because most
   tokens fall inside the strength band.  Accumulation order is
   irrelevant — [select_scored] sorts by a total order on distinct
   tokens. *)
let select_discriminators (options : Options.t) db tokens =
  let candidates = ref [] in
  Array.iter
    (fun token ->
      let score = Score.smoothed options db token in
      if Float.abs (score -. 0.5) >= options.minimum_prob_strength then
        candidates := { token; score } :: !candidates)
    tokens;
  select_scored options !candidates

let indicator_of_clues = function
  | [] -> 0.5
  | clues -> Fisher.indicator (List.map (fun c -> c.score) clues)

(* SpamBayes boundary semantics: a score at a cutoff takes the more
   severe class — I >= theta1 is spam, theta0 <= I < theta1 is unsure,
   I < theta0 is ham.  (Nelson et al. report accuracy at the theta1
   threshold; the previous <= comparisons classified an indicator
   exactly at spam_cutoff as unsure and at ham_cutoff as ham.) *)
let verdict_of_indicator (options : Options.t) indicator =
  if indicator >= options.spam_cutoff then Label.Spam_v
  else if indicator >= options.ham_cutoff then Label.Unsure_v
  else Label.Ham_v

(* The scoring engine: where each interned id's smoothed probability
   comes from.  Every way the stack scores — straight off a db, through
   a per-filter probability cache, or through the tenant fast path
   (shared prior cache + overlay dirty set) — is one of these, so the
   selection/Fisher pipeline below has exactly one implementation and
   the variants can be differentially tested against each other.  A
   variant rather than a closure: the scoring loop dispatches once per
   message and runs a monomorphic per-token loop, instead of paying an
   indirect call and a boxed float return per token. *)
type engine =
  | Uncached of Options.t * Token_db.t
  | Cached of Prob_cache.t
  | Overlay of { cache : Prob_cache.t; db : Token_db.t; same_totals : bool }

let engine options db = Uncached (options, db)
let engine_cached cache = Cached cache

let engine_overlay cache db =
  let prior = Prob_cache.db cache in
  (* The cached prior probability is valid for the tenant exactly when
     the tenant reads the same counts the prior does: the id is not in
     its copy-on-write overlay AND the message totals agree (training
     the tenant changes its N_S/N_H, which shifts every token's
     probability, cached or not).  [same_totals] is hoisted here — the
     overlay must not be trained while this engine is in use (the
     store builds a fresh engine per locked [with_user_engine] call). *)
  let same_totals =
    Token_db.nspam db = Token_db.nspam prior
    && Token_db.nham db = Token_db.nham prior
  in
  Overlay { cache; db; same_totals }

let engine_options = function
  | Uncached (options, _) -> options
  | Cached cache | Overlay { cache; _ } -> Prob_cache.options cache

(* Selection scratch, one per domain: candidates accumulate into
   parallel unboxed arrays (id, probability, strength) and an index
   permutation is sorted instead of the candidates themselves.  This
   replaces the boxed candidate list + [List.sort]: scoring a message
   allocates only the final <= max_discriminators clue records, swaps
   move machine ints, and comparisons read a precomputed strength
   instead of recomputing [Float.abs] — which matters because selection,
   not probability lookup, is most of a message's scoring time. *)
type scratch = {
  mutable s_raw : float array;  (* per-token probabilities, 0..n-1 *)
  mutable s_ids : int array;
  mutable s_probs : float array;
  mutable s_str : float array;
  mutable s_idx : int array;
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        s_raw = Array.make 256 0.0;
        s_ids = Array.make 256 0;
        s_probs = Array.make 256 0.0;
        s_str = Array.make 256 0.0;
        s_idx = Array.make 256 0;
      })

let ensure_scratch sc n =
  if Array.length sc.s_ids < n then begin
    let cap = max n (2 * Array.length sc.s_ids) in
    sc.s_raw <- Array.make cap 0.0;
    sc.s_ids <- Array.make cap 0;
    sc.s_probs <- Array.make cap 0.0;
    sc.s_str <- Array.make cap 0.0;
    sc.s_idx <- Array.make cap 0
  end

(* The selection order is the total order [by_strength_desc] imposes:
   stronger first, ties by token bytes ascending.  Ties are common —
   token probabilities cluster (every hapax of a class scores the
   same), so a lot of comparisons fall through to the tie-break — and
   byte-comparing tokens there is what used to dominate scoring.  For
   ids covered by the interner's rank table (everything interned
   before the last [Intern.freeze] — in practice the whole trained
   vocabulary) the tie-break is one int compare; the byte compare only
   runs for ids interned since.  Strengths are |p - 0.5| ∈ [0, 0.5],
   never NaN and never -0.0, so flat float compares agree with
   [Float.compare]; equal positions (duplicate ids) are identical
   records, so unstable sorting cannot change the materialized
   output. *)
let[@inline] str_at sc a = Array.unsafe_get sc.s_str a

let[@inline] token_before sc a b =
  let ia = Array.unsafe_get sc.s_ids a and ib = Array.unsafe_get sc.s_ids b in
  let ra = Intern.rank ia and rb = Intern.rank ib in
  if ra >= 0 && rb >= 0 then ra < rb
  else String.compare (Intern.to_string ia) (Intern.to_string ib) < 0

let[@inline] before sc a b =
  let sa = str_at sc a and sb = str_at sc b in
  if sa <> sb then sa > sb else token_before sc a b

(* In-place quicksort over the index permutation: Hoare partition,
   median-of-three pivot, insertion sort below 12 elements. *)
let sort_cands sc c =
  let idx = sc.s_idx in
  let swap i j =
    let t = Array.unsafe_get idx i in
    Array.unsafe_set idx i (Array.unsafe_get idx j);
    Array.unsafe_set idx j t
  in
  let rec loop lo hi =
    if hi - lo < 12 then begin
      if hi > lo then
        for i = lo + 1 to hi do
          let v = idx.(i) in
          let j = ref (i - 1) in
          while !j >= lo && before sc v idx.(!j) do
            idx.(!j + 1) <- idx.(!j);
            decr j
          done;
          idx.(!j + 1) <- v
        done
    end
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if before sc idx.(mid) idx.(lo) then swap mid lo;
      if before sc idx.(hi) idx.(lo) then swap hi lo;
      if before sc idx.(hi) idx.(mid) then swap hi mid;
      let pivot = idx.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while before sc idx.(!i) pivot do
          incr i
        done;
        while before sc pivot idx.(!j) do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      loop lo !j;
      loop !i hi
    end
  in
  if c > 1 then loop 0 (c - 1)

(* Stage one of scoring: each token's probability lands in the scratch
   [s_raw] array, through whichever source the engine names — a
   monomorphic loop per variant, all stores unboxed. *)
let fill_raw e ids n raw =
  match e with
  | Uncached (options, db) ->
      for i = 0 to n - 1 do
        Array.unsafe_set raw i
          (Score.smoothed_id options db (Array.unsafe_get ids i))
      done
  | Cached cache -> Prob_cache.collect cache ids n raw
  | Overlay { cache; db; same_totals } ->
      let options = Prob_cache.options cache in
      for i = 0 to n - 1 do
        let id = Array.unsafe_get ids i in
        let p =
          if same_totals && not (Token_db.overlay_mem db id) then
            Prob_cache.get cache id
          else Score.smoothed_id options db id
        in
        Array.unsafe_set raw i p
      done

let score_engine_sub e ids n =
  let options = engine_options e in
  let min_strength = options.Options.minimum_prob_strength in
  let sc = Domain.DLS.get scratch_key in
  ensure_scratch sc n;
  let raw = sc.s_raw in
  fill_raw e ids n raw;
  let c = ref 0 in
  for i = 0 to n - 1 do
    let id = Array.unsafe_get ids i in
    let p = Array.unsafe_get raw i in
    let s = Float.abs (p -. 0.5) in
    if s >= min_strength then begin
      let k = !c in
      Array.unsafe_set sc.s_ids k id;
      Array.unsafe_set sc.s_probs k p;
      Array.unsafe_set sc.s_str k s;
      Array.unsafe_set sc.s_idx k k;
      c := k + 1
    end
  done;
  let c = !c in
  sort_cands sc c;
  (* Winners materialized back-to-front so the clue list comes out in
     sort order; losers never become records.  [raw] is done carrying
     per-token probabilities by now, so its prefix doubles as the
     winner-score buffer Fisher folds over — the same scores in the
     same order as the clue list, no list of floats in between. *)
  let w = min options.Options.max_discriminators c in
  let clues = ref [] in
  for k = w - 1 downto 0 do
    let p = sc.s_idx.(k) in
    let score = Array.unsafe_get sc.s_probs p in
    Array.unsafe_set raw k score;
    clues := { token = Intern.to_string sc.s_ids.(p); score } :: !clues
  done;
  let clues = !clues in
  let indicator = Fisher.indicator_sub raw w in
  { indicator; verdict = verdict_of_indicator options indicator; clues }

let score_engine e ids = score_engine_sub e ids (Array.length ids)
let score_ids options db ids = score_engine (engine options db) ids

(* Length-limited form for callers that reuse one scratch id buffer
   across messages (Ingest.classify_many): scores ids.(0..n-1) without
   slicing the array. *)
let score_ids_sub options db ids n = score_engine_sub (engine options db) ids n

let score_tokens options db tokens =
  score_ids options db (Intern.intern_array tokens)

let score_clues options candidates =
  let clues = select_scored options candidates in
  let indicator = indicator_of_clues clues in
  { indicator; verdict = verdict_of_indicator options indicator; clues }

(* The pre-cache scoring path, kept verbatim: uncached probabilities,
   eager per-candidate clue materialization, list filter/sort/take
   selection.  The differential suite holds every engine bit-identical
   to this, and [bench classify] measures it as the baseline the
   cached hot path is compared against. *)
let score_ids_reference (options : Options.t) db ids =
  let candidates = ref [] in
  Array.iter
    (fun id ->
      let score = Score.smoothed_id options db id in
      if Float.abs (score -. 0.5) >= options.minimum_prob_strength then
        candidates := { token = Intern.to_string id; score } :: !candidates)
    ids;
  let clues = select_scored options !candidates in
  let indicator = indicator_of_clues clues in
  { indicator; verdict = verdict_of_indicator options indicator; clues }
