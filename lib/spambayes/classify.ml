open Spamlab_stats

type clue = { token : string; score : float }

type result = {
  indicator : float;
  verdict : Label.verdict;
  clues : clue list;
}

let by_strength_desc a b =
  let sa = Float.abs (a.score -. 0.5) in
  let sb = Float.abs (b.score -. 0.5) in
  match Float.compare sb sa with
  | 0 -> String.compare a.token b.token
  | c -> c

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* The comparator is a total order on distinct tokens, so the selection
   does not depend on the order candidates arrive in. *)
let select_scored (options : Options.t) candidates =
  let scored =
    List.filter
      (fun c -> Float.abs (c.score -. 0.5) >= options.minimum_prob_strength)
      candidates
  in
  take options.max_discriminators (List.sort by_strength_desc scored)

(* Candidate accumulation iterates the token array directly: scoring
   allocates nothing per rejected token, which matters because most
   tokens fall inside the strength band.  Accumulation order is
   irrelevant — [select_scored] sorts by a total order on distinct
   tokens. *)
let select_discriminators (options : Options.t) db tokens =
  let candidates = ref [] in
  Array.iter
    (fun token ->
      let score = Score.smoothed options db token in
      if Float.abs (score -. 0.5) >= options.minimum_prob_strength then
        candidates := { token; score } :: !candidates)
    tokens;
  select_scored options !candidates

let indicator_of_clues = function
  | [] -> 0.5
  | clues -> Fisher.indicator (List.map (fun c -> c.score) clues)

(* SpamBayes boundary semantics: a score at a cutoff takes the more
   severe class — I >= theta1 is spam, theta0 <= I < theta1 is unsure,
   I < theta0 is ham.  (Nelson et al. report accuracy at the theta1
   threshold; the previous <= comparisons classified an indicator
   exactly at spam_cutoff as unsure and at ham_cutoff as ham.) *)
let verdict_of_indicator (options : Options.t) indicator =
  if indicator >= options.spam_cutoff then Label.Spam_v
  else if indicator >= options.ham_cutoff then Label.Unsure_v
  else Label.Ham_v

(* The id path: counts come from two array reads per token instead of
   two string-hashtable probes.  Clue tokens are materialized as strings
   up front (only for candidates that clear the strength band), so the
   sort tie-break — String.compare on the token — is byte-for-byte the
   same as the string path's. *)
let select_discriminators_ids (options : Options.t) db ids =
  let candidates = ref [] in
  Array.iter
    (fun id ->
      let score = Score.smoothed_id options db id in
      if Float.abs (score -. 0.5) >= options.minimum_prob_strength then
        candidates := { token = Intern.to_string id; score } :: !candidates)
    ids;
  select_scored options !candidates

let score_ids options db ids =
  let clues = select_discriminators_ids options db ids in
  let indicator = indicator_of_clues clues in
  { indicator; verdict = verdict_of_indicator options indicator; clues }

(* Length-limited form for callers that reuse one scratch id buffer
   across messages (Ingest.classify_many): scores ids.(0..n-1) without
   slicing the array. *)
let score_ids_sub (options : Options.t) db ids n =
  let candidates = ref [] in
  for i = 0 to n - 1 do
    let id = Array.unsafe_get ids i in
    let score = Score.smoothed_id options db id in
    if Float.abs (score -. 0.5) >= options.minimum_prob_strength then
      candidates := { token = Intern.to_string id; score } :: !candidates
  done;
  let clues = select_scored options !candidates in
  let indicator = indicator_of_clues clues in
  { indicator; verdict = verdict_of_indicator options indicator; clues }

let score_tokens options db tokens =
  score_ids options db (Intern.intern_array tokens)

let score_clues options candidates =
  let clues = select_scored options candidates in
  let indicator = indicator_of_clues clues in
  { indicator; verdict = verdict_of_indicator options indicator; clues }
