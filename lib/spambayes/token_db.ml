type counts = { mutable spam : int; mutable ham : int }

type t = {
  table : (string, counts) Hashtbl.t;
  mutable nspam : int;
  mutable nham : int;
}

let create () = { table = Hashtbl.create 4096; nspam = 0; nham = 0 }

let copy t =
  let table = Hashtbl.create (Hashtbl.length t.table) in
  Hashtbl.iter
    (fun token c -> Hashtbl.replace table token { spam = c.spam; ham = c.ham })
    t.table;
  { table; nspam = t.nspam; nham = t.nham }

let nspam t = t.nspam
let nham t = t.nham

let counts_of t token =
  match Hashtbl.find_opt t.table token with
  | Some c -> c
  | None ->
      let c = { spam = 0; ham = 0 } in
      Hashtbl.replace t.table token c;
      c

let spam_count t token =
  match Hashtbl.find_opt t.table token with Some c -> c.spam | None -> 0

let ham_count t token =
  match Hashtbl.find_opt t.table token with Some c -> c.ham | None -> 0

let distinct_tokens t = Hashtbl.length t.table

let train t label tokens =
  (match label with
  | Label.Spam -> t.nspam <- t.nspam + 1
  | Label.Ham -> t.nham <- t.nham + 1);
  Array.iter
    (fun token ->
      let c = counts_of t token in
      match label with
      | Label.Spam -> c.spam <- c.spam + 1
      | Label.Ham -> c.ham <- c.ham + 1)
    tokens

let train_many t label tokens k =
  if k < 0 then invalid_arg "Token_db.train_many: negative count";
  if k > 0 then begin
    (match label with
    | Label.Spam -> t.nspam <- t.nspam + k
    | Label.Ham -> t.nham <- t.nham + k);
    Array.iter
      (fun token ->
        let c = counts_of t token in
        match label with
        | Label.Spam -> c.spam <- c.spam + k
        | Label.Ham -> c.ham <- c.ham + k)
      tokens
  end

let untrain t label tokens =
  (* Validate before mutating so a failed untrain leaves the DB intact. *)
  let global_ok =
    match label with Label.Spam -> t.nspam > 0 | Label.Ham -> t.nham > 0
  in
  if not global_ok then
    invalid_arg "Token_db.untrain: no trained message of that class";
  Array.iter
    (fun token ->
      let present =
        match (Hashtbl.find_opt t.table token, label) with
        | Some c, Label.Spam -> c.spam > 0
        | Some c, Label.Ham -> c.ham > 0
        | None, _ -> false
      in
      if not present then
        invalid_arg
          (Printf.sprintf "Token_db.untrain: token %S was never trained" token))
    tokens;
  (match label with
  | Label.Spam -> t.nspam <- t.nspam - 1
  | Label.Ham -> t.nham <- t.nham - 1);
  Array.iter
    (fun token ->
      let c = Hashtbl.find t.table token in
      (match label with
      | Label.Spam -> c.spam <- c.spam - 1
      | Label.Ham -> c.ham <- c.ham - 1);
      if c.spam = 0 && c.ham = 0 then Hashtbl.remove t.table token)
    tokens

let iter f t = Hashtbl.iter (fun token c -> f token ~spam:c.spam ~ham:c.ham) t.table

let fold f init t =
  Hashtbl.fold (fun token c acc -> f acc token ~spam:c.spam ~ham:c.ham) t.table init

(* Tokens come straight from attacker-controlled email bodies, so they
   can contain the format's own delimiters.  Version 2 escapes exactly
   the characters the line format gives meaning to: backslash, tab,
   newline, carriage return. *)
let escape_token token =
  let needs_escaping = ref false in
  String.iter
    (fun c ->
      match c with
      | '\\' | '\t' | '\n' | '\r' -> needs_escaping := true
      | _ -> ())
    token;
  if not !needs_escaping then token
  else begin
    let buf = Buffer.create (String.length token + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | c -> Buffer.add_char buf c)
      token;
    Buffer.contents buf
  end

let unescape_token s =
  if not (String.contains s '\\') then Ok s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec loop i =
      if i >= n then Ok (Buffer.contents buf)
      else
        match s.[i] with
        | '\\' ->
            if i + 1 >= n then Error "dangling backslash in token"
            else (
              match s.[i + 1] with
              | '\\' ->
                  Buffer.add_char buf '\\';
                  loop (i + 2)
              | 't' ->
                  Buffer.add_char buf '\t';
                  loop (i + 2)
              | 'n' ->
                  Buffer.add_char buf '\n';
                  loop (i + 2)
              | 'r' ->
                  Buffer.add_char buf '\r';
                  loop (i + 2)
              | c -> Error (Printf.sprintf "bad escape \\%c in token" c))
        | c ->
            Buffer.add_char buf c;
            loop (i + 1)
    in
    loop 0
  end

let save oc t =
  Printf.fprintf oc "spamlab-token-db 2 %d %d\n" t.nspam t.nham;
  (* Sorted output makes the format canonical and diffable. *)
  let entries =
    fold (fun acc token ~spam ~ham -> (token, spam, ham) :: acc) [] t
  in
  let entries =
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) entries
  in
  List.iter
    (fun (token, spam, ham) ->
      Printf.fprintf oc "%s\t%d\t%d\n" (escape_token token) spam ham)
    entries

let load ic =
  let ( let* ) r f = Result.bind r f in
  match In_channel.input_line ic with
  | None -> Error "empty token-db file"
  | Some header -> (
      match String.split_on_char ' ' header with
      | [ "spamlab-token-db"; ("1" | "2") as version; nspam; nham ] -> (
          match (int_of_string_opt nspam, int_of_string_opt nham) with
          | Some nspam, Some nham when nspam >= 0 && nham >= 0 ->
              let t = create () in
              t.nspam <- nspam;
              t.nham <- nham;
              let decode_token raw =
                (* Version 1 wrote tokens verbatim (and could not contain
                   the delimiters it would have corrupted on), so its
                   tokens must not be unescaped. *)
                if version = "1" then Ok raw else unescape_token raw
              in
              let entry line =
                match String.split_on_char '\t' line with
                | [ raw; spam; ham ] -> (
                    let* token = decode_token raw in
                    match (int_of_string_opt spam, int_of_string_opt ham) with
                    | Some spam, Some ham ->
                        if spam < 0 || ham < 0 then
                          Error
                            (Printf.sprintf "negative count on line %S" line)
                        else if spam > nspam || ham > nham then
                          Error
                            (Printf.sprintf
                               "count exceeds header message totals on line \
                                %S"
                               line)
                        else Ok (token, spam, ham)
                    | _ -> Error (Printf.sprintf "bad counts on line %S" line)
                    )
                | _ -> Error (Printf.sprintf "bad line %S" line)
              in
              let rec loop () =
                match In_channel.input_line ic with
                | None -> Ok t
                | Some "" -> loop ()
                | Some line ->
                    let* token, spam, ham = entry line in
                    if Hashtbl.mem t.table token then
                      Error (Printf.sprintf "duplicate token %S" token)
                    else begin
                      Hashtbl.replace t.table token { spam; ham };
                      loop ()
                    end
              in
              loop ()
          | _ -> Error "bad message counts in header")
      | _ -> Error "not a spamlab token-db file")
