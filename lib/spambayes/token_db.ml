module Obs = Spamlab_obs.Obs

let db_copies = Obs.counter "spambayes.db_copies"
let db_copy_delta_entries = Obs.counter "spambayes.db_copy_delta_entries"

type counts = { mutable spam : int; mutable ham : int }

(* Counts live in int arrays indexed by interned token id, offset by
   [off] so a filter that only ever sees late-interned ids (RONI trains
   thousands of tiny throwaway filters after the corpus has interned
   its whole vocabulary) does not allocate the dense prefix.

   Copy-on-write: [copy] shares the base arrays physically and marks
   both sides [shared]; from then on every write goes through [delta],
   a small id-keyed overlay holding the {e absolute} counts of touched
   ids.  Reads consult delta first, base second.  Invariants:
   - [shared = false] implies [delta] is empty (writes hit the arrays);
   - once shared, a [t] stays shared (another copy may still hold the
     arrays), so base slots are immutable from that point on;
   - [distinct] counts ids whose combined count is non-zero, maintained
     on every 0-to-positive / positive-to-0 transition. *)
type t = {
  mutable base_spam : int array;
  mutable base_ham : int array;
  mutable off : int;
  mutable shared : bool;
  delta : (int, counts) Hashtbl.t;
  mutable nspam : int;
  mutable nham : int;
  mutable distinct : int;
  (* Bumped once per mutating call.  Probability caches (Prob_cache)
     stamp each cached float with the generation it was computed under;
     validity is one int compare.  Starts at 1 so a stamp of 0 can mean
     "never filled".  Wholesale invalidation is semantically forced:
     every mutation changes nspam/nham (train/untrain) or may follow
     one (the set_counts family), and the smoothing formula reads the
     global totals, so one changed count shifts every token's
     probability. *)
  mutable generation : int;
}

let create () =
  {
    base_spam = [||];
    base_ham = [||];
    off = 0;
    shared = false;
    delta = Hashtbl.create 16;
    nspam = 0;
    nham = 0;
    distinct = 0;
    generation = 1;
  }

let copy t =
  t.shared <- true;
  Obs.incr db_copies;
  Obs.add db_copy_delta_entries (Hashtbl.length t.delta);
  (* The overlay cells are mutable records, so [Hashtbl.copy] alone
     would leave both sides sharing them — a later [bump] on either db
     would mutate the other's counts in place, silently (no generation
     bump on the victim), which breaks every cache keyed on its
     generation.  Each cell is cloned. *)
  let delta = Hashtbl.create (max 16 (Hashtbl.length t.delta)) in
  Hashtbl.iter
    (fun id c -> Hashtbl.add delta id { spam = c.spam; ham = c.ham })
    t.delta;
  {
    base_spam = t.base_spam;
    base_ham = t.base_ham;
    off = t.off;
    shared = true;
    delta;
    nspam = t.nspam;
    nham = t.nham;
    distinct = t.distinct;
    generation = t.generation;
  }

let generation t = t.generation
let[@inline] touch t = t.generation <- t.generation + 1

let nspam t = t.nspam
let nham t = t.nham
let distinct_tokens t = t.distinct

let[@inline] base_spam_read t id =
  let i = id - t.off in
  if i >= 0 && i < Array.length t.base_spam then
    Array.unsafe_get t.base_spam i
  else 0

let[@inline] base_ham_read t id =
  let i = id - t.off in
  if i >= 0 && i < Array.length t.base_ham then Array.unsafe_get t.base_ham i
  else 0

let spam_count_id t id =
  if Hashtbl.length t.delta = 0 then base_spam_read t id
  else
    match Hashtbl.find_opt t.delta id with
    | Some c -> c.spam
    | None -> base_spam_read t id

let ham_count_id t id =
  if Hashtbl.length t.delta = 0 then base_ham_read t id
  else
    match Hashtbl.find_opt t.delta id with
    | Some c -> c.ham
    | None -> base_ham_read t id

(* String lookups go through [Intern.find], which never interns:
   querying an arbitrary string must not grow the global table. *)
let spam_count t token =
  match Intern.find token with None -> 0 | Some id -> spam_count_id t id

let ham_count t token =
  match Intern.find token with None -> 0 | Some id -> ham_count_id t id

(* Grow the base arrays to cover [id] (unshared path only). *)
let ensure_base t id =
  let len = Array.length t.base_spam in
  if len = 0 then begin
    t.base_spam <- Array.make 64 0;
    t.base_ham <- Array.make 64 0;
    t.off <- id
  end
  else begin
    let i = id - t.off in
    if i < 0 || i >= len then begin
      let lo = min t.off id and hi = max (t.off + len) (id + 1) in
      (* Geometric growth so a train loop over ascending ids stays
         amortized O(1) per token. *)
      let cap = max (hi - lo) (2 * len) in
      let spam = Array.make cap 0 and ham = Array.make cap 0 in
      Array.blit t.base_spam 0 spam (t.off - lo) len;
      Array.blit t.base_ham 0 ham (t.off - lo) len;
      t.base_spam <- spam;
      t.base_ham <- ham;
      t.off <- lo
    end
  end

(* The write-side cell for [id] on the shared path: absolute counts,
   initialized from base on first touch. *)
let delta_cell t id =
  match Hashtbl.find_opt t.delta id with
  | Some c -> c
  | None ->
      let c = { spam = base_spam_read t id; ham = base_ham_read t id } in
      Hashtbl.replace t.delta id c;
      c

(* Add [k] (possibly negative) to one class count of [id], maintaining
   [distinct] across zero transitions. *)
let bump t label id k =
  if t.shared then begin
    let c = delta_cell t id in
    let was = c.spam + c.ham in
    (match label with
    | Label.Spam -> c.spam <- c.spam + k
    | Label.Ham -> c.ham <- c.ham + k);
    let now = c.spam + c.ham in
    if was = 0 && now > 0 then t.distinct <- t.distinct + 1
    else if was > 0 && now = 0 then t.distinct <- t.distinct - 1
  end
  else begin
    ensure_base t id;
    let i = id - t.off in
    let arr =
      match label with Label.Spam -> t.base_spam | Label.Ham -> t.base_ham
    in
    let was = t.base_spam.(i) + t.base_ham.(i) in
    arr.(i) <- arr.(i) + k;
    let now = t.base_spam.(i) + t.base_ham.(i) in
    if was = 0 && now > 0 then t.distinct <- t.distinct + 1
    else if was > 0 && now = 0 then t.distinct <- t.distinct - 1
  end

let train_ids t label ids =
  touch t;
  (match label with
  | Label.Spam -> t.nspam <- t.nspam + 1
  | Label.Ham -> t.nham <- t.nham + 1);
  Array.iter (fun id -> bump t label id 1) ids

let train t label tokens = train_ids t label (Intern.intern_array tokens)

let train_many_ids t label ids k =
  if k < 0 then invalid_arg "Token_db.train_many: negative count";
  if k > 0 then begin
    touch t;
    (match label with
    | Label.Spam -> t.nspam <- t.nspam + k
    | Label.Ham -> t.nham <- t.nham + k);
    Array.iter (fun id -> bump t label id k) ids
  end

let train_many t label tokens k =
  train_many_ids t label (Intern.intern_array tokens) k

let untrain_ids t label ids =
  let global_ok =
    match label with Label.Spam -> t.nspam > 0 | Label.Ham -> t.nham > 0
  in
  if not global_ok then
    invalid_arg "Token_db.untrain: no trained message of that class";
  (* Validate before mutating so a failed untrain leaves the DB intact.
     The check is occurrence-aware: an id appearing m times in [ids]
     needs a count of at least m — checking mere presence per distinct
     id would let the decrement loop drive a duplicated token negative
     (and previously raised Not_found mid-loop, after mutation). *)
  let mult = Hashtbl.create (Array.length ids) in
  Array.iter
    (fun id ->
      Hashtbl.replace mult id
        (1 + Option.value ~default:0 (Hashtbl.find_opt mult id)))
    ids;
  Array.iter
    (fun id ->
      match Hashtbl.find_opt mult id with
      | None -> () (* later duplicate of an already-validated id *)
      | Some m ->
          Hashtbl.remove mult id;
          let have =
            match label with
            | Label.Spam -> spam_count_id t id
            | Label.Ham -> ham_count_id t id
          in
          if have < m then
            invalid_arg
              (Printf.sprintf "Token_db.untrain: token %S was never trained"
                 (Intern.to_string id)))
    ids;
  touch t;
  (match label with
  | Label.Spam -> t.nspam <- t.nspam - 1
  | Label.Ham -> t.nham <- t.nham - 1);
  Array.iter (fun id -> bump t label id (-1)) ids

let untrain t label tokens = untrain_ids t label (Intern.intern_array tokens)

(* Iteration skips combined-zero entries, so the observable contents
   match the old hashtable representation (which removed emptied
   tokens).  Order is unspecified, as before; all callers either sort
   (save, good-word ranking) or fold commutatively. *)
let fold f init t =
  let acc = ref init in
  let len = Array.length t.base_spam in
  let use_delta = Hashtbl.length t.delta > 0 in
  for i = 0 to len - 1 do
    let id = t.off + i in
    let spam, ham =
      if use_delta then
        match Hashtbl.find_opt t.delta id with
        | Some c -> (c.spam, c.ham)
        | None -> (t.base_spam.(i), t.base_ham.(i))
      else (t.base_spam.(i), t.base_ham.(i))
    in
    if spam <> 0 || ham <> 0 then acc := f !acc (Intern.to_string id) ~spam ~ham
  done;
  if use_delta then
    Hashtbl.iter
      (fun id c ->
        if
          (id < t.off || id >= t.off + len) && (c.spam <> 0 || c.ham <> 0)
        then acc := f !acc (Intern.to_string id) ~spam:c.spam ~ham:c.ham)
      t.delta;
  !acc

let iter f t = fold (fun () token ~spam ~ham -> f token ~spam ~ham) () t

(* Tokens come straight from attacker-controlled email bodies, so they
   can contain the format's own delimiters.  Version 2 escapes exactly
   the characters the line format gives meaning to: backslash, tab,
   newline, carriage return. *)
let escape_token token =
  let needs_escaping = ref false in
  String.iter
    (fun c ->
      match c with
      | '\\' | '\t' | '\n' | '\r' -> needs_escaping := true
      | _ -> ())
    token;
  if not !needs_escaping then token
  else begin
    let buf = Buffer.create (String.length token + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | c -> Buffer.add_char buf c)
      token;
    Buffer.contents buf
  end

let unescape_token s =
  if not (String.contains s '\\') then Ok s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec loop i =
      if i >= n then Ok (Buffer.contents buf)
      else
        match s.[i] with
        | '\\' ->
            if i + 1 >= n then Error "dangling backslash in token"
            else (
              match s.[i + 1] with
              | '\\' ->
                  Buffer.add_char buf '\\';
                  loop (i + 2)
              | 't' ->
                  Buffer.add_char buf '\t';
                  loop (i + 2)
              | 'n' ->
                  Buffer.add_char buf '\n';
                  loop (i + 2)
              | 'r' ->
                  Buffer.add_char buf '\r';
                  loop (i + 2)
              | c -> Error (Printf.sprintf "bad escape \\%c in token" c))
        | c ->
            Buffer.add_char buf c;
            loop (i + 1)
    in
    loop 0
  end

(* Load-side write of one entry into a fresh (unshared) db.  A line with
   both counts zero is accepted but not retained: the count arrays
   cannot distinguish "present with zero counts" from "absent", and
   neither can any score (both read 0/0). *)
let set_counts t token ~spam ~ham =
  if spam <> 0 || ham <> 0 then begin
    touch t;
    let id = Intern.id token in
    ensure_base t id;
    let i = id - t.off in
    t.base_spam.(i) <- spam;
    t.base_ham.(i) <- ham;
    t.distinct <- t.distinct + 1
  end

(* Absolute-count write that is legal on both representation paths:
   the sharded store uses it to materialize a tenant overlay over a
   shared (hence [shared = true]) global prior, where [set_counts]'s
   unshared-only contract does not hold. *)
let set_counts_id t id ~spam ~ham =
  if spam < 0 || ham < 0 then
    invalid_arg "Token_db.set_counts_id: negative count";
  touch t;
  if t.shared then begin
    let c = delta_cell t id in
    let was = c.spam + c.ham in
    c.spam <- spam;
    c.ham <- ham;
    let now = spam + ham in
    if was = 0 && now > 0 then t.distinct <- t.distinct + 1
    else if was > 0 && now = 0 then t.distinct <- t.distinct - 1
  end
  else begin
    let len = Array.length t.base_spam in
    let i = id - t.off in
    (* Zeroing an id the arrays never covered is a no-op (absent and
       0/0 are the same observable state); don't grow for it. *)
    if spam <> 0 || ham <> 0 || (len > 0 && i >= 0 && i < len) then begin
      ensure_base t id;
      let i = id - t.off in
      let was = t.base_spam.(i) + t.base_ham.(i) in
      t.base_spam.(i) <- spam;
      t.base_ham.(i) <- ham;
      let now = spam + ham in
      if was = 0 && now > 0 then t.distinct <- t.distinct + 1
      else if was > 0 && now = 0 then t.distinct <- t.distinct - 1
    end
  end

let set_message_counts t ~nspam ~nham =
  if nspam < 0 || nham < 0 then
    invalid_arg "Token_db.set_message_counts: negative count";
  touch t;
  t.nspam <- nspam;
  t.nham <- nham

let overlay_size t = Hashtbl.length t.delta
let overlay_mem t id = Hashtbl.mem t.delta id

let fold_overlay f init t =
  let acc = ref init in
  Hashtbl.iter
    (fun id c -> acc := f !acc id ~spam:c.spam ~ham:c.ham)
    t.delta;
  !acc

(* CRC-32 (IEEE 802.3, polynomial 0xedb88320), table-driven.  The v3
   footer checksums the header and every entry line, so a truncated or
   bit-flipped save is detected instead of loaded as a silently wrong
   database.  The table is built eagerly: saves can in principle happen
   off the main domain, and [Lazy.force] is not domain-safe. *)
let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc_init = 0xffffffff
let crc_finish reg = reg lxor 0xffffffff

let crc_feed reg s =
  let reg = ref reg in
  String.iter
    (fun ch ->
      reg := crc_table.((!reg lxor Char.code ch) land 0xff) lxor (!reg lsr 8))
    s;
  !reg

let footer_prefix = "#spamlab-db-footer "

let entries_sorted t =
  (* Sorted output makes the format canonical and diffable — and
     independent of id assignment order, so saves are byte-identical
     across runs and jobs settings. *)
  let entries =
    fold (fun acc token ~spam ~ham -> (token, spam, ham) :: acc) [] t
  in
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) entries

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "spamlab-token-db 3 %d %d\n" t.nspam t.nham);
  let entries = entries_sorted t in
  List.iter
    (fun (token, spam, ham) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%d\t%d\n" (escape_token token) spam ham))
    entries;
  let crc = crc_finish (crc_feed crc_init (Buffer.contents buf)) in
  Buffer.add_string buf
    (Printf.sprintf "%scrc32=%08x entries=%d\n" footer_prefix crc
       (List.length entries));
  Buffer.contents buf

let save oc t = output_string oc (to_string t)

type verify_report = {
  version : int;
  nspam : int;
  nham : int;
  entries : int;
  checksum : [ `Ok | `Absent ];
}

type salvage = {
  db : t;
  version : int;
  kept : int;
  dropped : int;
  checksum_ok : bool option;
}

let parse_header line =
  match String.split_on_char ' ' line with
  | [ "spamlab-token-db"; version; nspam; nham ] -> (
      match int_of_string_opt version with
      | Some ((1 | 2 | 3) as v) -> (
          match (int_of_string_opt nspam, int_of_string_opt nham) with
          | Some nspam, Some nham when nspam >= 0 && nham >= 0 ->
              Ok (v, nspam, nham)
          | _ -> Error "bad message counts in header")
      | Some v -> Error (Printf.sprintf "unsupported token-db version %d" v)
      | None -> Error "not a spamlab token-db file")
  | _ -> Error "not a spamlab token-db file"

let parse_footer line =
  Scanf.sscanf_opt line "#spamlab-db-footer crc32=%x entries=%d%!"
    (fun crc entries -> (crc, entries))

(* One entry line, validated against the header totals.  Shared by the
   strict and salvage parsers. *)
let parse_entry ~version ~nspam ~nham line =
  let ( let* ) r f = Result.bind r f in
  match String.split_on_char '\t' line with
  | [ raw; spam; ham ] -> (
      (* Version 1 wrote tokens verbatim (and could not contain the
         delimiters it would have corrupted on), so its tokens must not
         be unescaped. *)
      let* token = if version = 1 then Ok raw else unescape_token raw in
      match (int_of_string_opt spam, int_of_string_opt ham) with
      | Some spam, Some ham ->
          if spam < 0 || ham < 0 then
            Error (Printf.sprintf "negative count on line %S" line)
          else if spam > nspam || ham > nham then
            Error
              (Printf.sprintf "count exceeds header message totals on line %S"
                 line)
          else Ok (token, spam, ham)
      | _ -> Error (Printf.sprintf "bad counts on line %S" line))
  | _ -> Error (Printf.sprintf "bad line %S" line)

let parse_strict s =
  let ( let* ) r f = Result.bind r f in
  if String.trim s = "" then Error "empty token-db file"
  else
    let header, rest =
      match String.split_on_char '\n' s with
      | header :: rest -> (header, rest)
      | [] -> assert false
    in
    let* version, nspam, nham = parse_header header in
    let t = create () in
    t.nspam <- nspam;
    t.nham <- nham;
    let seen = Hashtbl.create 4096 in
    let crc = ref (crc_feed crc_init (header ^ "\n")) in
    let entries = ref 0 in
    let footer = ref None in
    let finish () =
      match !footer with
      | None ->
          if version >= 3 then
            Error "truncated file: missing checksum footer"
          else
            Ok { version; nspam; nham; entries = !entries; checksum = `Absent }
      | Some (fcrc, fentries) ->
          if fentries <> !entries then
            Error
              (Printf.sprintf
                 "entry count mismatch: footer says %d, file has %d" fentries
                 !entries)
          else if fcrc <> crc_finish !crc then
            Error "checksum mismatch: file is corrupted or truncated"
          else Ok { version; nspam; nham; entries = !entries; checksum = `Ok }
    in
    let rec loop = function
      | [] -> finish ()
      | line :: rest when !footer <> None ->
          if line = "" then loop rest
          else Error "content after checksum footer"
      | line :: rest when String.starts_with ~prefix:footer_prefix line -> (
          match parse_footer line with
          | Some f ->
              footer := Some f;
              loop rest
          | None -> Error (Printf.sprintf "bad footer line %S" line))
      | "" :: rest ->
          (* v1/v2 tolerated blank lines; under a checksum they count as
             bytes, and [to_string] never writes one, so a v3 file with
             a blank line fails the CRC comparison at the footer. *)
          crc := crc_feed !crc "\n";
          loop rest
      | line :: rest ->
          crc := crc_feed !crc (line ^ "\n");
          let* token, spam, ham = parse_entry ~version ~nspam ~nham line in
          if Hashtbl.mem seen token then
            Error (Printf.sprintf "duplicate token %S" token)
          else begin
            Hashtbl.replace seen token ();
            set_counts t token ~spam ~ham;
            incr entries;
            loop rest
          end
    in
    (* The final "" produced by a trailing newline is consumed by the
       blank-line cases; it only feeds the CRC before the footer, where
       a genuine v3 file never has it. *)
    let rest =
      match List.rev rest with "" :: r -> List.rev r | _ -> rest
    in
    Result.map (fun report -> (t, report)) (loop rest)

(* The "never raises" guarantee: anything the parser throws (it should
   not, but corrupt input earns paranoia) becomes [Error] — except
   resource exhaustion, which must propagate. *)
let guard f =
  match f () with
  | r -> r
  | exception ((Out_of_memory | Stack_overflow) as exn) -> raise exn
  | exception exn -> Error ("token-db parse error: " ^ Printexc.to_string exn)

let of_string s = guard (fun () -> Result.map fst (parse_strict s))
let verify_string s = guard (fun () -> Result.map snd (parse_strict s))

let salvage_string s =
  guard @@ fun () ->
  if String.trim s = "" then Error "empty token-db file"
  else
    let header, rest =
      match String.split_on_char '\n' s with
      | header :: rest -> (header, rest)
      | [] -> assert false
    in
    match parse_header header with
    | Error e -> Error e
    | Ok (version, nspam, nham) ->
        let t = create () in
        t.nspam <- nspam;
        t.nham <- nham;
        let seen = Hashtbl.create 4096 in
        let kept = ref 0 and dropped = ref 0 in
        let crc = ref (crc_feed crc_init (header ^ "\n")) in
        let footer = ref None in
        List.iter
          (fun line ->
            if line = "" then ()
            else if String.starts_with ~prefix:footer_prefix line then
              match parse_footer line with
              | Some f -> footer := Some f
              | None -> incr dropped
            else begin
              if !footer = None then crc := crc_feed !crc (line ^ "\n");
              match parse_entry ~version ~nspam ~nham line with
              | Ok (token, spam, ham) when not (Hashtbl.mem seen token) ->
                  Hashtbl.replace seen token ();
                  set_counts t token ~spam ~ham;
                  incr kept
              | Ok _ | Error _ -> incr dropped
            end)
          rest;
        let checksum_ok =
          Option.map (fun (fcrc, _) -> fcrc = crc_finish !crc) !footer
        in
        Ok { db = t; version; kept = !kept; dropped = !dropped; checksum_ok }

let load ic =
  match In_channel.input_all ic with
  | s -> of_string s
  | exception Sys_error e -> Error e
