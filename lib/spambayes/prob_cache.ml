module Obs = Spamlab_obs.Obs

let c_hits = Obs.counter "spambayes.prob_cache_hits"
let c_fills = Obs.counter "spambayes.prob_cache_fills"

(* Kill switch, read once at startup: with SPAMLAB_NO_PROB_CACHE=1
   every [get] computes uncached.  ci.sh uses it to byte-compare
   cached vs uncached experiment output. *)
let disabled =
  match Sys.getenv_opt "SPAMLAB_NO_PROB_CACHE" with
  | Some "1" -> true
  | _ -> false

(* [probs.(id)] holds the smoothed probability of token [id] computed
   under db generation [stamps.(id)]; NaN means "slot never filled"
   (a smoothed probability is never NaN: the formula returns x on a
   zero denominator and s > 0 keeps the divisor positive).  Private
   caches validate per-slot against the db's current generation and
   grow on demand.  Shared caches (daemon snapshot, store prior) are
   single-generation: sized once to the intern table, never grown or
   restamped, valid only while the db stays at [created_gen] — which
   makes every concurrent fill race benign (the only values a slot
   can ever hold are NaN and the one correct probability). *)
type t = {
  options : Options.t;
  db : Token_db.t;
  shared : bool;
  created_gen : int;
  mutable probs : float array;
  mutable stamps : int array;
}

let create ?(shared = false) options db =
  let n = if shared then Intern.size () else 0 in
  {
    options;
    db;
    shared;
    created_gen = Token_db.generation db;
    probs = Array.make n nan;
    stamps = (if shared then [||] else Array.make n 0);
  }

let options t = t.options
let db t = t.db

let[@inline] uncached t id = Score.smoothed_id t.options t.db id

(* Grow the private arrays to cover [id]; geometric so a scan over
   ascending ids stays amortized O(1). *)
let ensure t id =
  let len = Array.length t.probs in
  if id >= len then begin
    let cap = max (id + 1) (max 64 (2 * len)) in
    let probs = Array.make cap nan and stamps = Array.make cap 0 in
    Array.blit t.probs 0 probs 0 len;
    Array.blit t.stamps 0 stamps 0 len;
    t.probs <- probs;
    t.stamps <- stamps
  end

(* The fill path carries the [score.cache.fill] fault site: a
   transient fault falls through to the uncached compute without
   writing the slot — byte-identical output, the slot just stays
   cold.  Fatal raises; crash exits, as everywhere. *)
let fill t id gen =
  match Spamlab_fault.check "score.cache.fill" with
  | () ->
      Obs.incr c_fills;
      let p = uncached t id in
      if t.shared then Array.unsafe_set t.probs id p
      else begin
        ensure t id;
        Array.unsafe_set t.probs id p;
        Array.unsafe_set t.stamps id gen
      end;
      p
  | exception e when Spamlab_fault.is_transient e -> uncached t id

let get t id =
  if disabled then uncached t id
  else begin
    let gen = Token_db.generation t.db in
    if t.shared then
      if gen <> t.created_gen || id >= Array.length t.probs then uncached t id
      else begin
        let p = Array.unsafe_get t.probs id in
        if Float.is_nan p then fill t id gen
        else begin
          Obs.incr c_hits;
          p
        end
      end
    else if id < Array.length t.probs && Array.unsafe_get t.stamps id = gen
    then begin
      let p = Array.unsafe_get t.probs id in
      if Float.is_nan p then fill t id gen
      else begin
        Obs.incr c_hits;
        p
      end
    end
    else fill t id gen
  end

(* Batched [get]: the form Classify's scoring loop uses.  Per-token
   [get] pays a call with a boxed float return, two atomic loads in the
   hit counter, and re-reads the generation every time; here those are
   hoisted out of the loop and probabilities land in the caller's float
   array as unboxed stores, so a hit costs one bounds check, one load
   and one NaN test.  In private mode a fill can replace the arrays
   ([ensure]), so that branch re-reads them through [t] each token —
   still cheap, and fills are the cold path by construction. *)
let collect t ids n out =
  if disabled then
    for i = 0 to n - 1 do
      Array.unsafe_set out i (uncached t (Array.unsafe_get ids i))
    done
  else begin
    let gen = Token_db.generation t.db in
    let hits = ref 0 in
    (if t.shared then
       if gen <> t.created_gen then
         for i = 0 to n - 1 do
           Array.unsafe_set out i (uncached t (Array.unsafe_get ids i))
         done
       else begin
         let probs = t.probs in
         let len = Array.length probs in
         for i = 0 to n - 1 do
           let id = Array.unsafe_get ids i in
           if id < len then begin
             let p = Array.unsafe_get probs id in
             if Float.is_nan p then Array.unsafe_set out i (fill t id gen)
             else begin
               incr hits;
               Array.unsafe_set out i p
             end
           end
           else Array.unsafe_set out i (uncached t id)
         done
       end
     else
       for i = 0 to n - 1 do
         let id = Array.unsafe_get ids i in
         if
           id < Array.length t.probs
           && Array.unsafe_get t.stamps id = gen
         then begin
           let p = Array.unsafe_get t.probs id in
           if Float.is_nan p then Array.unsafe_set out i (fill t id gen)
           else begin
             incr hits;
             Array.unsafe_set out i p
           end
         end
         else Array.unsafe_set out i (fill t id gen)
       done);
    if !hits > 0 then Obs.add c_hits !hits
  end
