(** Zero-copy ingest: raw message bytes to interned id sets.

    The hot path of every experiment is tokenize → look up token
    probabilities → score.  This module is the allocation-free form of
    the first step: tokenizers push byte {e slices}
    ({!Spamlab_tokenizer.Tokenizer.S.iter_spans}) which are hashed
    straight into the intern table ({!Intern.intern_sub}), ids
    accumulate in one per-domain scratch buffer, and the distinct set
    is produced by an in-place sort — on the steady state (every token
    already interned) nothing per-message is allocated.

    Ids come out sorted by {e id value}, a set representation; this is
    deliberately not the string-sorted order of [Dataset.example]
    (nothing downstream of this path orders tokens, and id order is
    schedule-dependent — see {!Intern}).

    {2 Raw mail}

    The [_raw] entry points consume full raw mbox bytes without
    building [Message.t] values: chunks are delimited by offsets
    ({!iter_raw_messages}, mirroring [Mbox.chunks_of]), headers are
    parsed by offsets with SpamAssassin-style [$IGNORED_HDRS]
    suppression ({!ignored_header}), and the body of a simple message
    (no MIME headers, no [">From"] quoting, no CRLF) tokenizes directly
    from the buffer.  Messages that need MIME decoding or body fixups
    fall back to a materialized message — same tokens, one copy.  A
    malformed message (header line without a colon) is dropped, as in
    [Mbox.parse_lenient].

    Raw-path tokens are exactly what the string pipeline produces
    after the ignored headers are removed — the differential tests
    hold the two equal.

    {2 Counters}

    [ingest.msgs] and [ingest.bytes] count ingested messages and raw
    bytes; both are allocation-free and untouched when observability
    is disabled. *)

val with_unique_ids :
  Spamlab_tokenizer.Tokenizer.t ->
  Spamlab_email.Message.t ->
  (int array -> int -> int -> 'a) ->
  'a
(** [with_unique_ids t msg f] tokenizes [msg] through the span path
    and calls [f ids distinct raw]: [ids.(0 .. distinct-1)] are the
    message's distinct token ids in ascending id order, [raw] is the
    total token-stream length.  [ids] is the per-domain scratch
    buffer — valid only during [f], do not retain it. *)

val unique_ids :
  Spamlab_tokenizer.Tokenizer.t ->
  Spamlab_email.Message.t ->
  int array * int
(** Materialized form of {!with_unique_ids}:
    [(distinct ids, raw count)]. *)

val classify_many :
  Options.t ->
  Token_db.t ->
  Spamlab_tokenizer.Tokenizer.t ->
  Spamlab_email.Message.t array ->
  Classify.result array
(** Batched classification: every message goes span-tokenize →
    dedup-in-scratch → {!Classify.score_engine_sub}, reusing one
    per-domain id buffer across the whole batch.  Results are
    positionally aligned with the input.  This form scores through the
    uncached reference engine; cached callers use
    {!classify_many_engine}. *)

val classify_many_engine :
  Classify.engine ->
  Spamlab_tokenizer.Tokenizer.t ->
  Spamlab_email.Message.t array ->
  Classify.result array
(** {!classify_many} scoring through an explicit {!Classify.engine}
    (per-filter probability cache, daemon snapshot cache, tenant
    overlay) — output is bit-identical to the uncached form. *)

(** {1 Raw mail} *)

val ignored_header : string -> bool
(** True for headers in the suppression set (case-insensitive):
    delivery bookkeeping, list plumbing and other filters' verdicts,
    after SpamAssassin's [$IGNORED_HDRS].  Headers the tokenizers mine
    (Subject, From, To, Reply-To, Received, Content-Type,
    Content-Transfer-Encoding) are never suppressed. *)

val iter_raw_messages : string -> (off:int -> len:int -> unit) -> unit
(** Walk the message chunks of a raw mbox buffer by offsets —
    the regions [Mbox.chunks_of] would produce, separator lines
    excluded.  An all-whitespace buffer yields nothing. *)

val raw_message_chunks : string -> (int * int) array
(** Materialized [(off, len)] chunk list of a raw mbox buffer — the
    fan-out unit for pool workers ([Pool.map_array] over chunks, each
    worker calling {!classify_raw}). *)

val with_unique_ids_raw :
  Spamlab_tokenizer.Tokenizer.t ->
  string ->
  off:int ->
  len:int ->
  (int array -> int -> int -> 'a) ->
  'a option
(** Like {!with_unique_ids} on one raw message chunk (headers
    suppressed per {!ignored_header}); [None] if the chunk is
    malformed. *)

val unique_ids_raw :
  Spamlab_tokenizer.Tokenizer.t ->
  string ->
  off:int ->
  len:int ->
  (int array * int) option

val classify_raw :
  Options.t ->
  Token_db.t ->
  Spamlab_tokenizer.Tokenizer.t ->
  string ->
  off:int ->
  len:int ->
  Classify.result option
(** Classify one raw message chunk; [None] if malformed. *)

val classify_mbox :
  Options.t ->
  Token_db.t ->
  Spamlab_tokenizer.Tokenizer.t ->
  string ->
  Classify.result option array
(** Classify every message of a raw mbox buffer in order ([None] for
    malformed chunks).  Single-domain; for pool fan-out compose
    {!raw_message_chunks} with {!classify_raw}. *)

val classify_raw_engine :
  Classify.engine ->
  Spamlab_tokenizer.Tokenizer.t ->
  string ->
  off:int ->
  len:int ->
  Classify.result option
(** {!classify_raw} through an explicit engine — the daemon's CLASSIFY
    fan-out path (shared snapshot cache across pool workers). *)

val classify_mbox_engine :
  Classify.engine ->
  Spamlab_tokenizer.Tokenizer.t ->
  string ->
  Classify.result option array
(** {!classify_mbox} through an explicit engine. *)
