(** Token spam scores: Robinson's smoothed probability (paper Eq. 1–2).

    The raw score
    {[ PS(w) = (N_H · N_S(w)) / (N_H · N_S(w) + N_S · N_H(w)) ]}
    is the spam frequency of [w] normalized by class priors, and
    {[ f(w) = (s·x + N(w)·PS(w)) / (s + N(w)) ]}
    shrinks it toward the prior [x] with strength [s], where
    N(w) = N_S(w) + N_H(w). *)

val raw : Token_db.t -> string -> float option
(** [raw db w] is PS(w), or [None] when the token has never been seen in
    either class (the ratio is undefined); also [None] when one class
    has no training messages at all and the other ratio is zero. *)

val smoothed : Options.t -> Token_db.t -> string -> float
(** [smoothed options db w] is f(w) ∈ (0,1).  Unknown tokens score
    exactly the prior [options.unknown_word_prob]. *)

val smoothed_id : Options.t -> Token_db.t -> int -> float
(** [smoothed] by interned token id — the hot path: the same float
    sequence, with the two string-hashtable lookups replaced by two
    array reads. *)

val smoothed_counts :
  Options.t -> spam:int -> ham:int -> nspam:int -> nham:int -> float
(** f(w) as a pure function of the token's per-class counts and the
    class totals — exactly the arithmetic [smoothed] performs after its
    DB lookups, bit for bit.  Lets callers that already hold the counts
    (or can derive them, as the poisoning sweep does) score without
    touching the token DB. *)

val strength : Options.t -> Token_db.t -> string -> float
(** |f(w) − 0.5| — the discriminator-selection key. *)

val is_significant : Options.t -> Token_db.t -> string -> bool
(** Whether the token clears the minimum-strength band and may enter
    δ(E). *)
