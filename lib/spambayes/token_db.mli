(** The token count database behind Eq. (1): per-token spam/ham message
    presence counts N_S(w), N_H(w) and the global message counts N_S,
    N_H.

    Counts are {e message presence} counts — a token appearing five
    times in one message contributes 1 — matching SpamBayes' set
    semantics.  Callers pass deduplicated token arrays (see
    {!Spamlab_tokenizer.Tokenizer.unique_tokens}); this module trusts
    them.

    {2 Representation}

    Counts are stored in int arrays indexed by interned token id (see
    {!Intern}), so the [_id] variants of every operation touch no
    string and hash nothing.  The string variants intern (writes) or
    probe the intern table without growing it (reads), then defer to
    the id path; both views are always coherent.

    {!copy} is copy-on-write: the copy shares the base count arrays and
    both sides write subsequent changes into a small per-instance
    overlay, so copying costs O(|changes since the last copy|) — O(1)
    for the ubiquitous copy-then-poison pattern — instead of O(|DB|).

    One representational consequence: an entry whose counts return to
    0/0 (or is loaded as 0/0) is indistinguishable from an absent one.
    {!distinct_tokens}, {!iter}, {!fold} and {!save} all treat such
    entries as absent, exactly as the previous implementation removed
    emptied tokens from its table. *)

type t

val create : unit -> t

val copy : t -> t
(** Logically-deep copy: mutations of the copy never affect the
    original, and vice versa.  O(|delta|) where delta is the set of
    tokens either side touched since the arrays were last materially
    copied — O(1) in the RONI / poisoning pattern (copy a freshly
    trained base, then train candidates into the copy). *)

val nspam : t -> int
(** Number of spam messages trained. *)

val nham : t -> int

val spam_count : t -> string -> int
(** N_S(w); 0 for unknown tokens.  Never grows the intern table. *)

val ham_count : t -> string -> int

val spam_count_id : t -> int -> int
(** N_S(w) by interned id — the hot path: two array reads, no
    hashing.  Ids never present in this db read 0. *)

val ham_count_id : t -> int -> int

val distinct_tokens : t -> int
(** Number of tokens with a non-zero combined count. *)

val generation : t -> int
(** Mutation counter: starts at 1 and is bumped once per mutating call
    ({!train}/{!untrain} and friends, [set_counts_id],
    [set_message_counts]).  {!Prob_cache} stamps each cached
    probability with the generation it was computed under, so cache
    validity is one int compare.  Invalidation is deliberately
    wholesale — every mutation changes (or may accompany a change to)
    the global message totals N_S/N_H, which enter the smoothing
    formula for {e every} token, so a per-token dirty set cannot be
    sound.  {!copy} inherits the counter value; caches key on the db
    {e instance}, so the shared value is never compared across
    instances. *)

val train : t -> Label.gold -> string array -> unit
(** [train t label tokens] records one message of class [label] whose
    distinct tokens are [tokens]. *)

val train_ids : t -> Label.gold -> int array -> unit
(** {!train} on pre-interned ids (see {!Intern.intern_array}). *)

val train_many : t -> Label.gold -> string array -> int -> unit
(** [train_many t label tokens k] records [k] identical messages in one
    pass — equivalent to calling {!train} [k] times but O(|tokens|).
    Poisoning experiments train hundreds of identical dictionary-attack
    emails; this keeps them tractable at paper scale.
    @raise Invalid_argument if [k < 0]. *)

val train_many_ids : t -> Label.gold -> int array -> int -> unit

val untrain : t -> Label.gold -> string array -> unit
(** Exact inverse of {!train} for the same arguments.  Validation is
    occurrence-aware — a token appearing m times in the array needs a
    recorded count of at least m — and happens entirely before any
    mutation, so a failed untrain leaves the database intact.
    @raise Invalid_argument if it would drive any count negative
    (indicates the message was never trained). *)

val untrain_ids : t -> Label.gold -> int array -> unit

val set_counts_id : t -> int -> spam:int -> ham:int -> unit
(** [set_counts_id t id ~spam ~ham] overwrites both counts of [id] with
    the given absolute values, on either representation path (unlike
    training, this is legal on a copy-on-write snapshot, where the
    write lands in the overlay).  The sharded tenant store uses it to
    materialize a per-user overlay over a shared global prior from
    segment rows and journal replay.  Does {e not} touch the message
    totals — pair with {!set_message_counts}.
    @raise Invalid_argument on a negative count. *)

val set_message_counts : t -> nspam:int -> nham:int -> unit
(** Overwrite the global message counts N_S, N_H.
    @raise Invalid_argument on a negative count. *)

val overlay_size : t -> int
(** Number of ids in the copy-on-write overlay — i.e. touched since
    this instance last shared its base arrays; 0 for a never-copied
    db.  The tenant store's eviction accounting keys off this. *)

val overlay_mem : t -> int -> bool
(** [overlay_mem t id] is true when [id] has a copy-on-write overlay
    cell — i.e. was touched since this instance last shared its base
    arrays.  O(1).  The tenant scoring fast path uses this as the
    per-overlay dirty set: an id {e not} in the overlay reads the same
    counts as the shared prior, so (when the message totals also agree)
    its cached prior probability is valid for the tenant. *)

val fold_overlay : ('a -> int -> spam:int -> ham:int -> 'a) -> 'a -> t -> 'a
(** Fold over {e only} the copy-on-write overlay cells: each visited id
    was touched since the last share, and [spam]/[ham] are its current
    absolute counts (possibly equal to the shared base's, possibly
    0/0).  Order is unspecified.  This is how the sharded store
    extracts a tenant's delta-vs-prior in O(|touched|) without walking
    the full base arrays. *)

val iter : (string -> spam:int -> ham:int -> unit) -> t -> unit
(** Visit every token with a non-zero combined count, in unspecified
    order. *)

val fold : ('a -> string -> spam:int -> ham:int -> 'a) -> 'a -> t -> 'a

val to_string : t -> string
(** The saved byte representation, format version 3: a header line
    [spamlab-token-db 3 nspam nham], one [token<TAB>spam<TAB>ham] line
    per token sorted by token, then a footer line
    [#spamlab-db-footer crc32=XXXXXXXX entries=N] where the CRC-32
    (IEEE) covers every preceding byte and [N] is the entry-line count
    — so truncation and bit flips are detectable on load.  Backslash,
    tab, newline, and carriage return inside tokens are escaped as
    [\\], [\t], [\n], [\r] — tokens come from attacker-controlled email
    bodies, so they can contain the format's own delimiters.  Ids are
    resolved back to strings and sorted, so the bytes are independent
    of interning order. *)

val save : out_channel -> t -> unit
(** [output_string oc (to_string t)].  For atomic on-disk persistence
    use {!Filter.save_file}, which writes to a temp file, fsyncs, and
    renames. *)

val of_string : string -> (t, string) result
(** Strict parse of versions 1 (legacy, verbatim tokens), 2 (escaped),
    and 3 (escaped + checksum footer).  Returns [Error] — never a
    silently-corrupt database, and never an exception (resource
    exhaustion aside) — on a malformed header or line, a bad escape
    sequence, a negative count, a per-token count exceeding the
    header's message totals, a duplicate token line, and (v3) a missing
    footer, an entry-count mismatch, or a checksum mismatch.  A line
    with both counts zero is accepted but not retained (see the
    representation note above). *)

val load : in_channel -> (t, string) result
(** {!of_string} on the channel's remaining contents.  I/O errors
    become [Error]; this function never raises. *)

type verify_report = {
  version : int;
  nspam : int;
  nham : int;
  entries : int;
  checksum : [ `Ok | `Absent ];  (** [`Absent] for v1/v2 (no footer). *)
}

val verify_string : string -> (verify_report, string) result
(** Strict parse (exactly {!of_string}'s validation), reporting what
    was checked instead of the database.  Backs [spamlab db verify]. *)

type salvage = {
  db : t;  (** Everything recoverable: all well-formed entry lines. *)
  version : int;
  kept : int;  (** Entry lines recovered into [db]. *)
  dropped : int;  (** Malformed or duplicate lines discarded. *)
  checksum_ok : bool option;
      (** [None] when no footer was found (v1/v2 or truncated v3). *)
}

val salvage_string : string -> (salvage, string) result
(** Best-effort partial recovery from a corrupt save: keeps every
    parseable entry line, drops the rest, and reports the damage.
    [Error] only when the header itself is unusable.  Never raises. *)

(** {2 Format plumbing}

    The sharded store's segment and journal files reuse this module's
    escaping and checksum conventions so every on-disk format in the
    tree shares one dialect (and one set of tests). *)

val escape_token : string -> string
(** Escape backslash, tab, newline, carriage return as [\\], [\t],
    [\n], [\r] (identity when none occur — no allocation). *)

val unescape_token : string -> (string, string) result
(** Inverse of {!escape_token}; [Error] on a dangling or unknown
    escape. *)

val crc_init : int
(** Initial CRC-32 (IEEE) register value. *)

val crc_feed : int -> string -> int
(** Feed bytes through the CRC register. *)

val crc_finish : int -> int
(** Finalize the register into the checksum value. *)
