(** The token count database behind Eq. (1): per-token spam/ham message
    presence counts N_S(w), N_H(w) and the global message counts N_S,
    N_H.

    Counts are {e message presence} counts — a token appearing five
    times in one message contributes 1 — matching SpamBayes' set
    semantics.  Callers pass deduplicated token arrays (see
    {!Spamlab_tokenizer.Tokenizer.unique_tokens}); this module trusts
    them. *)

type t

val create : unit -> t

val copy : t -> t
(** Deep copy: mutations of the copy never affect the original.  Used by
    the RONI defense, which repeatedly trains tentative candidates. *)

val nspam : t -> int
(** Number of spam messages trained. *)

val nham : t -> int

val spam_count : t -> string -> int
(** N_S(w); 0 for unknown tokens. *)

val ham_count : t -> string -> int

val distinct_tokens : t -> int

val train : t -> Label.gold -> string array -> unit
(** [train t label tokens] records one message of class [label] whose
    distinct tokens are [tokens]. *)

val train_many : t -> Label.gold -> string array -> int -> unit
(** [train_many t label tokens k] records [k] identical messages in one
    pass — equivalent to calling {!train} [k] times but O(|tokens|).
    Poisoning experiments train hundreds of identical dictionary-attack
    emails; this keeps them tractable at paper scale.
    @raise Invalid_argument if [k < 0]. *)

val untrain : t -> Label.gold -> string array -> unit
(** Exact inverse of {!train} for the same arguments.  @raise
    Invalid_argument if it would drive any count negative (indicates the
    message was never trained). *)

val iter : (string -> spam:int -> ham:int -> unit) -> t -> unit

val fold : ('a -> string -> spam:int -> ham:int -> 'a) -> 'a -> t -> 'a

val save : out_channel -> t -> unit
(** Line-oriented text format, version 2: a header line
    [spamlab-token-db 2 nspam nham], then one [token<TAB>spam<TAB>ham]
    line per token, sorted by token.  Backslash, tab, newline, and
    carriage return inside tokens are escaped as [\\], [\t], [\n], [\r]
    — tokens come from attacker-controlled email bodies, so they can
    contain the format's own delimiters. *)

val load : in_channel -> (t, string) result
(** Reads version 2 (escaped) and version 1 (legacy, verbatim tokens)
    files.  Returns [Error] — never a silently-corrupt database — on a
    malformed header or line, a bad escape sequence, a negative count, a
    per-token count exceeding the header's message totals, or a
    duplicate token line. *)
