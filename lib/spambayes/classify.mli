(** Message scoring: discriminator selection δ(E) and the Fisher-combined
    indicator I(E) (paper Eq. 3–4, §2.3 fn. 3).

    From a message's distinct tokens, the at-most-150 tokens with scores
    furthest from 0.5 and outside the (0.4, 0.6) band are selected; their
    scores are combined through two chi-square tails into
    I(E) = (1 + H − S)/2 ∈ [0,1], then thresholded into a three-way
    verdict. *)

type clue = { token : string; score : float }
(** One selected discriminator and its f(w). *)

type result = {
  indicator : float;  (** I(E) ∈ [0,1]; 1 is maximally spammy. *)
  verdict : Label.verdict;
  clues : clue list;  (** δ(E) sorted by descending |f − 0.5|. *)
}

type engine
(** A scoring engine: options plus a way to obtain each interned
    token's smoothed probability.  The selection/Fisher pipeline is
    implemented once over this; all variants are bit-identical in
    output, differing only in where the per-token float comes from. *)

val engine : Options.t -> Token_db.t -> engine
(** The uncached reference: every probability recomputed from counts
    via {!Score.smoothed_id}. *)

val engine_cached : Prob_cache.t -> engine
(** Probabilities served from a generation-stamped cache (see
    {!Prob_cache}); the filter/daemon hot path. *)

val engine_overlay : Prob_cache.t -> Token_db.t -> engine
(** Tenant fast path: [engine_overlay prior_cache overlay_db] scores
    [overlay_db] (a copy-on-write overlay of the cache's db, the
    shared global prior).  Ids outside the overlay's dirty set — the
    overwhelming majority, overlays are tiny by design — hit the
    shared prior cache when the message totals agree; diverging ids
    (and everything, once the tenant has trained and its totals
    shifted) recompute from the overlay's counts.  The overlay must
    not be mutated while the engine is in use; build a fresh engine
    per locked access. *)

val engine_options : engine -> Options.t

val score_engine : engine -> int array -> result
(** Full pipeline on pre-interned distinct-token ids through an
    engine.  [score_ids options db] ≡ [score_engine (engine options
    db)] — and, bit-for-bit, [score_engine] over any cached variant of
    the same (options, db). *)

val score_engine_sub : engine -> int array -> int -> result
(** [score_engine_sub e ids n] is {!score_engine} on
    [Array.sub ids 0 n] without the copy. *)

val select_discriminators :
  Options.t -> Token_db.t -> string array -> clue list
(** δ(E) for a distinct-token array: filters by minimum strength, sorts
    by descending strength (ties broken by token name for
    reproducibility), truncates to [max_discriminators]. *)

val indicator_of_clues : clue list -> float
(** I(E) from selected clues; 0.5 for an empty δ(E) (no evidence). *)

val verdict_of_indicator : Options.t -> float -> Label.verdict
(** Thresholding with SpamBayes boundary semantics — a score exactly at
    a cutoff takes the more severe class: I < θ0 ham, θ0 ≤ I < θ1
    unsure, I ≥ θ1 spam. *)

val score_tokens : Options.t -> Token_db.t -> string array -> result
(** Full pipeline on a distinct-token array.  Interns the tokens (one
    batch) and defers to {!score_ids}; results are identical either
    way. *)

val score_ids : Options.t -> Token_db.t -> int array -> result
(** Full pipeline on pre-interned distinct-token ids — the hot path for
    datasets that carry id arrays ([Dataset.example]). *)

val score_ids_sub : Options.t -> Token_db.t -> int array -> int -> result
(** [score_ids_sub options db ids n] is [score_ids] on
    [Array.sub ids 0 n] without the copy — the batched-classify path
    ({!Ingest.classify_many}) reuses one per-domain scratch buffer
    across messages. *)

val score_clues : Options.t -> clue list -> result
(** The scoring pipeline on candidate clues whose f(w) was computed by
    the caller (e.g. from cached counts via {!Score.smoothed_counts}):
    filters by minimum strength, selects, Fisher-combines.  Candidates
    may arrive in any order and may or may not be pre-filtered — the
    result is identical to [score_tokens] on the same token → score
    mapping. *)

val score_ids_reference : Options.t -> Token_db.t -> int array -> result
(** The pre-cache scoring path, kept verbatim: uncached probabilities,
    eager per-candidate clue materialization, list-based selection.
    Semantically ≡ {!score_ids}; exists so the differential test suite
    and [bench classify] compare every engine (and the scratch-array
    selection) against unchanged baseline code rather than against
    themselves. *)
