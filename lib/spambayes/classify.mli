(** Message scoring: discriminator selection δ(E) and the Fisher-combined
    indicator I(E) (paper Eq. 3–4, §2.3 fn. 3).

    From a message's distinct tokens, the at-most-150 tokens with scores
    furthest from 0.5 and outside the (0.4, 0.6) band are selected; their
    scores are combined through two chi-square tails into
    I(E) = (1 + H − S)/2 ∈ [0,1], then thresholded into a three-way
    verdict. *)

type clue = { token : string; score : float }
(** One selected discriminator and its f(w). *)

type result = {
  indicator : float;  (** I(E) ∈ [0,1]; 1 is maximally spammy. *)
  verdict : Label.verdict;
  clues : clue list;  (** δ(E) sorted by descending |f − 0.5|. *)
}

val select_discriminators :
  Options.t -> Token_db.t -> string array -> clue list
(** δ(E) for a distinct-token array: filters by minimum strength, sorts
    by descending strength (ties broken by token name for
    reproducibility), truncates to [max_discriminators]. *)

val indicator_of_clues : clue list -> float
(** I(E) from selected clues; 0.5 for an empty δ(E) (no evidence). *)

val verdict_of_indicator : Options.t -> float -> Label.verdict
(** Thresholding with SpamBayes boundary semantics — a score exactly at
    a cutoff takes the more severe class: I < θ0 ham, θ0 ≤ I < θ1
    unsure, I ≥ θ1 spam. *)

val score_tokens : Options.t -> Token_db.t -> string array -> result
(** Full pipeline on a distinct-token array.  Interns the tokens (one
    batch) and defers to {!score_ids}; results are identical either
    way. *)

val score_ids : Options.t -> Token_db.t -> int array -> result
(** Full pipeline on pre-interned distinct-token ids — the hot path for
    datasets that carry id arrays ([Dataset.example]). *)

val score_ids_sub : Options.t -> Token_db.t -> int array -> int -> result
(** [score_ids_sub options db ids n] is [score_ids] on
    [Array.sub ids 0 n] without the copy — the batched-classify path
    ({!Ingest.classify_many}) reuses one per-domain scratch buffer
    across messages. *)

val score_clues : Options.t -> clue list -> result
(** The scoring pipeline on candidate clues whose f(w) was computed by
    the caller (e.g. from cached counts via {!Score.smoothed_counts}):
    filters by minimum strength, selects, Fisher-combines.  Candidates
    may arrive in any order and may or may not be pre-filtered — the
    result is identical to [score_tokens] on the same token → score
    mapping. *)
