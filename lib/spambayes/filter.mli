(** The assembled spam filter: tokenizer + token database + scoring,
    with incremental train/untrain.  This is the system under attack. *)

type t

val create :
  ?options:Options.t -> ?tokenizer:Spamlab_tokenizer.Tokenizer.t -> unit -> t
(** Defaults: {!Options.default} and the SpamBayes tokenizer. *)

val options : t -> Options.t
val set_options : t -> Options.t -> t
(** Functional update (shares the token database) — used by the
    dynamic-threshold defense to retarget cutoffs without retraining. *)

val tokenizer : t -> Spamlab_tokenizer.Tokenizer.t
val db : t -> Token_db.t
(** The live database; mutating it mutates the filter. *)

val copy : t -> t
(** Logically-deep copy (independent database) — O(1) via the token
    DB's copy-on-write snapshot (see {!Token_db.copy}). *)

val with_db : t -> Token_db.t -> t
(** Functional update swapping in another database under the same
    options and tokenizer — the tenant-scoped view: the sharded store
    hands out per-user overlay databases, and [with_db] dresses one as
    a full filter for classify/train entry points. *)

val engine : t -> Classify.engine
(** The filter's scoring engine: probabilities served from its
    generation-stamped {!Prob_cache} (training invalidates it via the
    db generation; no explicit flush needed).  Single-domain, like the
    filter itself.  Every [classify*] entry point below scores through
    this. *)

val features : t -> Spamlab_email.Message.t -> string array
(** Distinct tokens of a message under this filter's tokenizer. *)

val train : t -> Label.gold -> Spamlab_email.Message.t -> unit
val train_tokens : t -> Label.gold -> string array -> unit
(** Train on pre-extracted distinct tokens (the fast path for large
    experiments where messages are tokenized once and reused). *)

val train_tokens_many : t -> Label.gold -> string array -> int -> unit
(** [train_tokens_many t label tokens k]: train [k] identical messages in
    one O(|tokens|) pass (see {!Token_db.train_many}). *)

val untrain : t -> Label.gold -> Spamlab_email.Message.t -> unit
val untrain_tokens : t -> Label.gold -> string array -> unit

val train_ids : t -> Label.gold -> int array -> unit
(** Train on pre-interned distinct-token ids (see
    {!Intern.intern_array}) — the hot path for [Dataset.example]s,
    which carry their id arrays. *)

val train_ids_many : t -> Label.gold -> int array -> int -> unit
val untrain_ids : t -> Label.gold -> int array -> unit

val train_corpus :
  t -> (Label.gold * Spamlab_email.Message.t) list -> unit

val classify : t -> Spamlab_email.Message.t -> Classify.result
val classify_tokens : t -> string array -> Classify.result
val classify_ids : t -> int array -> Classify.result

val classify_many :
  t -> Spamlab_email.Message.t array -> Classify.result array
(** Batched classification through the zero-copy ingest path (see
    {!Ingest.classify_many}): one per-domain scratch buffer across the
    batch, no per-message arrays. *)

val classify_raw :
  t -> string -> off:int -> len:int -> Classify.result option
(** Classify one raw mbox message chunk straight from the buffer
    (header suppression per {!Ingest.ignored_header}); [None] if the
    chunk is malformed. *)

val classify_mbox : t -> string -> Classify.result option array
(** Classify every message of a raw mbox buffer, in order. *)

val score : t -> Spamlab_email.Message.t -> float
(** Just I(E). *)

val token_score : t -> string -> float
(** f(w) under this filter's current state. *)

val save_file : t -> string -> unit
(** Persist the token database (options and tokenizer choice are code,
    not data).  Crash-safe: the bytes are written to [path ^ ".tmp"],
    fsynced, and atomically renamed over [path], so an interrupted save
    leaves the previous file intact rather than a torn half-write.
    Fault sites: [db.save.write] (mid-write to the temp file) and
    [db.save.rename] (durable temp, not yet published). *)

val load_file :
  ?options:Options.t ->
  ?tokenizer:Spamlab_tokenizer.Tokenizer.t ->
  string ->
  (t, string) result
(** Strict load (see {!Token_db.of_string}).  A missing or unreadable
    file is [Error], not an exception. *)
