type t = {
  options : Options.t;
  tokenizer : Spamlab_tokenizer.Tokenizer.t;
  db : Token_db.t;
  (* Per-filter probability cache over (options, db).  Training
     invalidates it implicitly via the db generation counter; the
     functional updates below rebuild it because a cache binds one
     (options, db) pair.  Private (single-domain) — every pool
     worker builds its own filter. *)
  cache : Prob_cache.t;
}

let make options tokenizer db =
  { options; tokenizer; db; cache = Prob_cache.create options db }

let create ?(options = Options.default)
    ?(tokenizer = Spamlab_tokenizer.Tokenizer.spambayes) () =
  make options tokenizer (Token_db.create ())

let options t = t.options
let set_options t options = make options t.tokenizer t.db
let tokenizer t = t.tokenizer
let db t = t.db
let copy t = make t.options t.tokenizer (Token_db.copy t.db)
let with_db t db = make t.options t.tokenizer db
let engine t = Classify.engine_cached t.cache

let features t msg = Spamlab_tokenizer.Tokenizer.unique_tokens t.tokenizer msg

let train_tokens t label tokens = Token_db.train t.db label tokens
let train_tokens_many t label tokens k = Token_db.train_many t.db label tokens k
let untrain_tokens t label tokens = Token_db.untrain t.db label tokens
let train_ids t label ids = Token_db.train_ids t.db label ids
let train_ids_many t label ids k = Token_db.train_many_ids t.db label ids k
let untrain_ids t label ids = Token_db.untrain_ids t.db label ids

let train t label msg = train_tokens t label (features t msg)
let untrain t label msg = untrain_tokens t label (features t msg)

let train_corpus t examples =
  List.iter (fun (label, msg) -> train t label msg) examples

(* Per-message timing is detail-level: this is the hot path, and even
   with tracing on, a span per classified message would dominate the
   trace.  [Obs.detail] is a single flag read when observability is off,
   and only opted into via SPAMLAB_OBS_DETAIL=1. *)
let classify_tokens t tokens =
  if Spamlab_obs.Obs.detail () then
    Spamlab_obs.Obs.span "spambayes.classify" (fun () ->
        Classify.score_engine (engine t) (Intern.intern_array tokens))
  else Classify.score_engine (engine t) (Intern.intern_array tokens)

let classify_ids t ids =
  if Spamlab_obs.Obs.detail () then
    Spamlab_obs.Obs.span "spambayes.classify" (fun () ->
        Classify.score_engine (engine t) ids)
  else Classify.score_engine (engine t) ids

let classify t msg = classify_tokens t (features t msg)

(* Batched/raw entry points ride the zero-copy ingest path, scoring
   through the filter's cache. *)
let classify_many t msgs = Ingest.classify_many_engine (engine t) t.tokenizer msgs

let classify_raw t buf ~off ~len =
  Ingest.classify_raw_engine (engine t) t.tokenizer buf ~off ~len

let classify_mbox t buf = Ingest.classify_mbox_engine (engine t) t.tokenizer buf

let score t msg = (classify t msg).Classify.indicator

let token_score t token = Score.smoothed t.options t.db token

(* Crash-safe persistence: serialize, write to a sibling temp file,
   fsync, then atomically rename over the destination.  A crash at any
   point leaves either the old file or the new one — never a torn
   half-write — and the fsync-before-rename ordering means the rename
   can't land before the data it names.  The two fault sites bracket
   the vulnerable window: [db.save.write] fires mid-write (simulating
   a torn write to the temp file), [db.save.rename] fires after the
   temp file is durable but before it is published. *)
let save_file t path =
  let data = Token_db.to_string t.db in
  let tmp = path ^ ".tmp" in
  let write () =
    let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        (* Raw-descriptor writes through the shared short-write/EINTR
           loop; the two halves keep the db.save.write fault site in
           the middle of the byte stream. *)
        let half = String.length data / 2 in
        Spamlab_io.really_write_string fd data 0 half;
        Spamlab_fault.check "db.save.write";
        Spamlab_io.really_write_string fd data half (String.length data - half);
        Unix.fsync fd)
  in
  (match write () with
  | () -> ()
  | exception exn ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise exn);
  Spamlab_fault.check "db.save.rename";
  Sys.rename tmp path;
  (* Make the rename itself durable.  Directory fsync is not portable
     everywhere, so failure to open or sync the directory is not an
     error — the data file itself is already synced. *)
  match Unix.openfile (Filename.dirname path) [ O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dirfd ->
      Fun.protect
        ~finally:(fun () -> Unix.close dirfd)
        (fun () -> try Unix.fsync dirfd with Unix.Unix_error _ -> ())

let load_file ?(options = Options.default)
    ?(tokenizer = Spamlab_tokenizer.Tokenizer.spambayes) path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          Result.map (fun db -> make options tokenizer db) (Token_db.load ic))
