let interned_tokens = Spamlab_obs.Obs.counter "spambayes.interned_tokens"

(* Id-to-string slots not yet assigned hold this sentinel, compared
   physically: the empty string is a legitimate token (the token-db
   round-trip tests train it), so no string value can mark "unset". *)
let unset = Bytes.unsafe_to_string (Bytes.create 0)

type state = {
  mutex : Mutex.t;
  table : (string, int) Hashtbl.t;  (* live; only touched under [mutex] *)
  mutable names : string array;  (* id -> string; slots written once *)
  mutable count : int;
}

let st =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 65_536;
    names = Array.make 1_024 unset;
    count = 0;
  }

(* Lock-free lookup snapshot: a copy of [st.table], never mutated after
   publication.  [Atomic] gives the publication edge. *)
let frozen : (string, int) Hashtbl.t Atomic.t =
  Atomic.make (Hashtbl.create 1)

(* Refresh the snapshot whenever the table has grown well past it, so
   steady-state lookups stay lock-free even if nobody calls [freeze]
   explicitly.  Geometric threshold keeps the copies amortized O(1) per
   interned string.  Only touched under [st.mutex]. *)
let next_refresh = ref 1_024

let refresh_locked () =
  if st.count >= !next_refresh then begin
    Atomic.set frozen (Hashtbl.copy st.table);
    next_refresh := (2 * st.count) + 1_024
  end

let intern_locked s =
  match Hashtbl.find_opt st.table s with
  | Some id -> id
  | None ->
      let id = st.count in
      if id >= Array.length st.names then begin
        let bigger = Array.make (2 * Array.length st.names) unset in
        Array.blit st.names 0 bigger 0 id;
        (* Publish the grown array only after copying: a racing
           [to_string] sees either array, both valid for ids < count. *)
        st.names <- bigger
      end;
      st.names.(id) <- s;
      st.count <- id + 1;
      Hashtbl.replace st.table s id;
      Spamlab_obs.Obs.incr interned_tokens;
      id

let id s =
  match Hashtbl.find_opt (Atomic.get frozen) s with
  | Some id -> id
  | None ->
      Mutex.protect st.mutex (fun () ->
          let id = intern_locked s in
          refresh_locked ();
          id)

let intern_array tokens =
  let snapshot = Atomic.get frozen in
  let n = Array.length tokens in
  let out = Array.make n (-1) in
  let missing = ref false in
  for i = 0 to n - 1 do
    match Hashtbl.find_opt snapshot tokens.(i) with
    | Some id -> out.(i) <- id
    | None -> missing := true
  done;
  if !missing then
    Mutex.protect st.mutex (fun () ->
        for i = 0 to n - 1 do
          if out.(i) < 0 then out.(i) <- intern_locked tokens.(i)
        done;
        refresh_locked ());
  out

let find s =
  match Hashtbl.find_opt (Atomic.get frozen) s with
  | Some id -> Some id
  | None -> Mutex.protect st.mutex (fun () -> Hashtbl.find_opt st.table s)

let to_string id =
  let names = st.names in
  if id < 0 || id >= Array.length names then
    invalid_arg "Intern.to_string: unknown id"
  else begin
    let s = names.(id) in
    if s == unset then invalid_arg "Intern.to_string: unknown id" else s
  end

let freeze () =
  Mutex.protect st.mutex (fun () -> Atomic.set frozen (Hashtbl.copy st.table))

let size () = st.count
