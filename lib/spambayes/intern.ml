let interned_tokens = Spamlab_obs.Obs.counter "spambayes.interned_tokens"
let first_sighting = Spamlab_obs.Obs.counter "intern.first_sighting"

(* Id-to-string slots not yet assigned hold this sentinel, compared
   physically: the empty string is a legitimate token (the token-db
   round-trip tests train it), so no string value can mark "unset". *)
let unset = Bytes.unsafe_to_string (Bytes.create 0)

(* The table is open-addressing over [slots] so that lookups can hash a
   {e byte slice} of a raw message buffer and compare it against the
   stored strings without ever materializing a substring — stdlib
   [Hashtbl] can only be probed with an allocated key.  A slot holds
   [id + 1] ([0] is empty); the per-id [hashes] array makes resizes and
   negative probes cheap (no rehash, one int compare before the byte
   compare). *)

(* FNV-1a over the slice (offset basis truncated to OCaml's 63-bit
   int).  Native-int arithmetic wraps, which is all a hash needs;
   [land max_int] keeps the masked index non-negative. *)
let fnv_prime = 0x100000001b3

let hash_sub s off len =
  let h = ref 0x3bf29ce484222325 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime
  done;
  !h land max_int

let eq_sub name s off len =
  String.length name = len
  &&
  let rec go i =
    i >= len
    || String.unsafe_get name i = String.unsafe_get s (off + i) && go (i + 1)
  in
  go 0

type state = {
  mutex : Mutex.t;
  mutable slots : int array;  (* live; only touched under [mutex] *)
  mutable names : string array;  (* id -> string; slots written once *)
  mutable hashes : int array;  (* id -> hash; written with [names] *)
  mutable count : int;
}

let initial_capacity = 131_072  (* power of two; load factor <= 1/2 *)

let st =
  {
    mutex = Mutex.create ();
    slots = Array.make initial_capacity 0;
    names = Array.make 1_024 unset;
    hashes = Array.make 1_024 0;
    count = 0;
  }

(* Lock-free lookup snapshot: a copy of [st.slots], never mutated after
   publication.  [Atomic] gives the publication edge; every id a
   snapshot can name had its [names]/[hashes] slot written before the
   snapshot was taken, so probing a snapshot against [st.names] is safe
   from any domain (the same write-once argument as [to_string]). *)
let frozen : int array Atomic.t = Atomic.make (Array.make 1 0)

(* Probe [slots] for the slice [s.[off .. off+len-1]] with hash [h].
   Returns the id, or -1 when absent.  Linear probing; the table never
   exceeds half full, so runs terminate on an empty slot. *)
let probe slots h s off len =
  let mask = Array.length slots - 1 in
  let names = st.names in
  let hashes = st.hashes in
  let rec go i =
    match Array.unsafe_get slots i with
    | 0 -> -1
    | v ->
        let id = v - 1 in
        if Array.unsafe_get hashes id = h && eq_sub names.(id) s off len then
          id
        else go ((i + 1) land mask)
  in
  go (h land mask)

let insert_slot slots h id =
  let mask = Array.length slots - 1 in
  let rec go i =
    if slots.(i) = 0 then slots.(i) <- id + 1 else go ((i + 1) land mask)
  in
  go (h land mask)

(* Double the slot table.  The fault site fires before any mutation, so
   an injected transient here leaves the table untouched and the
   supervised task can simply retry. *)
let grow_locked () =
  Spamlab_fault.check "intern.grow";
  let bigger = Array.make (2 * Array.length st.slots) 0 in
  for id = 0 to st.count - 1 do
    insert_slot bigger st.hashes.(id) id
  done;
  st.slots <- bigger

(* Refresh the snapshot whenever the table has grown well past it, so
   steady-state lookups stay lock-free even if nobody calls [freeze]
   explicitly.  Geometric threshold keeps the copies amortized O(1) per
   interned string; the factor is deliberately small (1/4 growth per
   refresh) because every token interned since the last refresh costs
   its callers a snapshot miss — materialize, queue, resolve under the
   mutex — until the next one.  Only touched under [st.mutex]. *)
let next_refresh = ref 1_024

let refresh_locked () =
  if st.count >= !next_refresh then begin
    Atomic.set frozen (Array.copy st.slots);
    next_refresh := st.count + (st.count / 4) + 1_024
  end

(* [make_name] materializes the key only on a genuine first sighting —
   the zero-copy contract: an already-known slice costs one probe and
   zero allocations. *)
let intern_locked h s off len make_name =
  match probe st.slots h s off len with
  | id when id >= 0 -> id
  | _ ->
      if 2 * (st.count + 1) > Array.length st.slots then grow_locked ();
      let id = st.count in
      if id >= Array.length st.names then begin
        let cap = Array.length st.names in
        let bigger = Array.make (2 * cap) unset in
        Array.blit st.names 0 bigger 0 id;
        let bigger_h = Array.make (2 * cap) 0 in
        Array.blit st.hashes 0 bigger_h 0 id;
        (* Publish the grown arrays only after copying: a racing
           [to_string] or frozen probe sees either array, both valid for
           ids < count. *)
        st.hashes <- bigger_h;
        st.names <- bigger
      end;
      st.names.(id) <- make_name ();
      st.hashes.(id) <- h;
      insert_slot st.slots h id;
      st.count <- id + 1;
      Spamlab_obs.Obs.incr interned_tokens;
      id

let id s =
  let len = String.length s in
  let h = hash_sub s 0 len in
  match probe (Atomic.get frozen) h s 0 len with
  | id when id >= 0 -> id
  | _ ->
      Mutex.protect st.mutex (fun () ->
          let id = intern_locked h s 0 len (fun () -> s) in
          refresh_locked ();
          id)

let intern_sub s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Intern.intern_sub";
  let h = hash_sub s off len in
  match probe (Atomic.get frozen) h s off len with
  | id when id >= 0 -> id
  | _ ->
      Mutex.protect st.mutex (fun () ->
          let id =
            intern_locked h s off len (fun () ->
                Spamlab_obs.Obs.incr first_sighting;
                String.sub s off len)
          in
          refresh_locked ();
          id)

(* Snapshot-only probe: never takes the lock, so a miss may be stale
   (the live table can already hold the slice).  Callers collect such
   misses and resolve them in one [intern_batch] — one lock per
   message instead of one per first-sighting token, which is what
   keeps multi-domain corpus construction off the mutex. *)
let probe_frozen_sub s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Intern.probe_frozen_sub";
  probe (Atomic.get frozen) (hash_sub s off len) s off len

let intern_batch strs n out =
  if n > Array.length strs || n > Array.length out then
    invalid_arg "Intern.intern_batch";
  if n > 0 then begin
    (* Hash outside the lock: with several domains feeding fresh-token
       storms (cold corpus construction), the hold time of the mutex is
       what serializes them, so the critical section is probe+insert
       only. *)
    let hs = Array.make n 0 in
    for i = 0 to n - 1 do
      hs.(i) <- hash_sub strs.(i) 0 (String.length strs.(i))
    done;
    Mutex.protect st.mutex (fun () ->
        for i = 0 to n - 1 do
          let s = strs.(i) in
          out.(i) <-
            intern_locked hs.(i) s 0 (String.length s) (fun () ->
                Spamlab_obs.Obs.incr first_sighting;
                s)
        done;
        refresh_locked ())
  end

let intern_array tokens =
  let snapshot = Atomic.get frozen in
  let n = Array.length tokens in
  let out = Array.make n (-1) in
  let missing = ref false in
  for i = 0 to n - 1 do
    let s = tokens.(i) in
    match probe snapshot (hash_sub s 0 (String.length s)) s 0 (String.length s)
    with
    | id when id >= 0 -> out.(i) <- id
    | _ -> missing := true
  done;
  if !missing then
    Mutex.protect st.mutex (fun () ->
        for i = 0 to n - 1 do
          if out.(i) < 0 then begin
            let s = tokens.(i) in
            let len = String.length s in
            out.(i) <- intern_locked (hash_sub s 0 len) s 0 len (fun () -> s)
          end
        done;
        refresh_locked ());
  out

let find_sub s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Intern.find_sub";
  let h = hash_sub s off len in
  match probe (Atomic.get frozen) h s off len with
  | id when id >= 0 -> Some id
  | _ -> (
      match
        Mutex.protect st.mutex (fun () -> probe st.slots h s off len)
      with
      | id when id >= 0 -> Some id
      | _ -> None)

let find s = find_sub s 0 (String.length s)

let to_string id =
  let names = st.names in
  if id < 0 || id >= Array.length names then
    invalid_arg "Intern.to_string: unknown id"
  else begin
    let s = names.(id) in
    if s == unset then invalid_arg "Intern.to_string: unknown id" else s
  end

(* Lexicographic ranks: [rank id] = the position of [to_string id] in
   the byte-sorted vocabulary as of the last {!freeze}, or -1 for ids
   interned since.  Classify's clue tie-break is byte order on the
   token string; for covered ids that is one int compare instead of a
   byte compare — which matters because token probabilities cluster
   (every hapax of a class scores the same), so sorting clues compares
   a lot of equal-strength pairs.  Built only on explicit [freeze]
   (the "vocabulary is stable now" signal), never on the automatic
   snapshot refresh: interning storms must not pay O(V log V) each
   refresh.  Published by [Atomic] like [frozen]; the array is never
   mutated after publication. *)
let ranks : int array Atomic.t = Atomic.make [||]

let build_ranks_locked () =
  let n = st.count in
  let names = st.names in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> String.compare names.(a) names.(b)) order;
  let rk = Array.make n 0 in
  for pos = 0 to n - 1 do
    rk.(order.(pos)) <- pos
  done;
  Atomic.set ranks rk

let[@inline] rank id =
  let rk = Atomic.get ranks in
  if id >= 0 && id < Array.length rk then Array.unsafe_get rk id else -1

let freeze () =
  Mutex.protect st.mutex (fun () ->
      Atomic.set frozen (Array.copy st.slots);
      build_ranks_locked ())

let size () = st.count
