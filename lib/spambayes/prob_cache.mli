(** Generation-stamped per-token probability cache: the classify hot
    path reads one float per token instead of recomputing
    {!Score.smoothed_id} (two count lookups plus ~10 float ops) per
    occurrence.

    {2 Keying and invalidation}

    A cache binds one {!Options.t} to one {!Token_db.t} instance.
    Slots are indexed by interned token id and stamped with the db
    {!Token_db.generation} they were computed under; a lookup is valid
    iff the stamp equals the db's current generation — one int
    compare.  Invalidation is wholesale by construction: every db
    mutation bumps the generation, and must, because train/untrain
    change the global message totals N_S/N_H which enter the smoothing
    denominator of {e every} token.  Refill is lazy per token (NaN is
    the "never computed" sentinel — a smoothed probability is never
    NaN), so an interleaved train/classify workload pays O(tokens
    actually rescored), not O(vocabulary) per train.

    {2 Sharing and domain safety}

    [shared:true] caches serve concurrent readers (the daemon's
    published snapshot fanned across the pool, the tenant store's
    global prior).  They are {e single-generation}: sized to the
    intern table at creation, never grown or restamped, and valid only
    while the db remains at its creation generation (both dbs are
    immutable by contract — the daemon republishes a fresh snapshot +
    cache after training).  Under that restriction every data race is
    benign: a slot only ever holds NaN or the one correct probability,
    so racing fills write the same bytes and a torn read of NaN just
    recomputes.  Private caches ([shared:false], the default) grow on
    demand and must stay single-domain.

    {2 Escape hatches}

    Setting [SPAMLAB_NO_PROB_CACHE=1] in the environment makes every
    {!get} compute uncached (read once at startup) — ci.sh diffs
    cached vs uncached experiment bytes with it.  The fill path checks
    fault site [score.cache.fill]: a transient fault falls through to
    the uncached compute without touching the slot, byte-identically. *)

type t

val create : ?shared:bool -> Options.t -> Token_db.t -> t
(** [create options db] — a cold cache over [db].  [shared] (default
    false) selects the fixed-size single-generation variant safe for
    concurrent readers of an immutable [db]; see above. *)

val get : t -> int -> float
(** [get t id] = [Score.smoothed_id (options t) (db t) id], served
    from the cache when the slot's stamp matches the db's current
    generation, recomputed (and cached) otherwise.  Bit-identical to
    the uncached compute in every case. *)

val collect : t -> int array -> int -> float array -> unit
(** [collect t ids n out] stores [get t ids.(i)] into [out.(i)] for
    [0 <= i < n] — the batched form the scoring loop uses.  Same
    results as [n] calls to {!get}, but the generation and kill-switch
    checks are hoisted out of the loop and each hit is one bounds
    check, one float load and one NaN test stored unboxed (no per-token
    call or float boxing). *)

val options : t -> Options.t
val db : t -> Token_db.t

val disabled : bool
(** True when [SPAMLAB_NO_PROB_CACHE=1] was set at startup. *)
