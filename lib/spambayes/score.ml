let raw db token =
  let nspam = Token_db.nspam db in
  let nham = Token_db.nham db in
  let spam_ratio =
    if nspam = 0 then 0.0
    else float_of_int (Token_db.spam_count db token) /. float_of_int nspam
  in
  let ham_ratio =
    if nham = 0 then 0.0
    else float_of_int (Token_db.ham_count db token) /. float_of_int nham
  in
  let denominator = spam_ratio +. ham_ratio in
  if denominator = 0.0 then None else Some (spam_ratio /. denominator)

let smoothed_counts (options : Options.t) ~spam ~ham ~nspam ~nham =
  let x = options.unknown_word_prob in
  let s = options.unknown_word_strength in
  let spam_ratio =
    if nspam = 0 then 0.0 else float_of_int spam /. float_of_int nspam
  in
  let ham_ratio =
    if nham = 0 then 0.0 else float_of_int ham /. float_of_int nham
  in
  let denominator = spam_ratio +. ham_ratio in
  if denominator = 0.0 then x
  else
    let ps = spam_ratio /. denominator in
    let n = float_of_int (spam + ham) in
    ((s *. x) +. (n *. ps)) /. (s +. n)

let smoothed (options : Options.t) db token =
  smoothed_counts options
    ~spam:(Token_db.spam_count db token)
    ~ham:(Token_db.ham_count db token)
    ~nspam:(Token_db.nspam db) ~nham:(Token_db.nham db)

let smoothed_id (options : Options.t) db id =
  smoothed_counts options
    ~spam:(Token_db.spam_count_id db id)
    ~ham:(Token_db.ham_count_id db id)
    ~nspam:(Token_db.nspam db) ~nham:(Token_db.nham db)

let strength options db token =
  Float.abs (smoothed options db token -. 0.5)

let is_significant options db token =
  strength options db token >= options.minimum_prob_strength
