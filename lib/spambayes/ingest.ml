module Tok = Spamlab_tokenizer.Tokenizer
module Message = Spamlab_email.Message
module Header = Spamlab_email.Header
module Obs = Spamlab_obs.Obs

let ingest_msgs = Obs.counter "ingest.msgs"
let ingest_bytes = Obs.counter "ingest.bytes"

(* ------------------------------------------------------------------ *)
(* Per-domain id scratch.  One growable int buffer per domain: the
   span sink pushes every raw token id into it, then it is sorted and
   deduplicated in place.  Nothing per-message is allocated on the
   steady-state path — not the token strings (interned slices), not
   the id array (reused), not the sort (in place). *)

type scratch = {
  mutable ids : int array;
  (* Tokens the frozen intern snapshot did not know, waiting for one
     batched [Intern.intern_batch] at end of message: the string, the
     position in [ids] holding its placeholder, and a reused output
     buffer for the resolved ids.  Kept in lockstep. *)
  mutable miss : string array;
  mutable miss_pos : int array;
  mutable miss_ids : int array;
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        ids = Array.make 4_096 0;
        miss = Array.make 256 "";
        miss_pos = Array.make 256 0;
        miss_ids = Array.make 256 0;
      })

(* In-place quicksort over ids.(lo..hi), insertion sort for short
   runs.  [Array.sort] would need a [Array.sub] copy to sort a prefix;
   this avoids the per-message allocation. *)
let rec sort_range (a : int array) lo hi =
  if hi - lo < 16 then
    for i = lo + 1 to hi do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  else begin
    (* Median-of-three pivot, guards against sorted/duplicate runs. *)
    let mid = lo + ((hi - lo) / 2) in
    let swap i j =
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    in
    if a.(mid) < a.(lo) then swap mid lo;
    if a.(hi) < a.(lo) then swap hi lo;
    if a.(hi) < a.(mid) then swap hi mid;
    let pivot = a.(mid) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while a.(!i) < pivot do
        incr i
      done;
      while a.(!j) > pivot do
        decr j
      done;
      if !i <= !j then begin
        swap !i !j;
        incr i;
        decr j
      end
    done;
    sort_range a lo !j;
    sort_range a !i hi
  end

(* Sort ids.(0..n-1) and compact out duplicates; returns the distinct
   count.  Distinct ids end up in ascending id order — a set
   representation, deliberately not the string-sorted order of
   [Dataset.example] (nothing downstream of this path orders by
   token). *)
let sort_dedup_prefix (a : int array) n =
  if n = 0 then 0
  else begin
    sort_range a 0 (n - 1);
    let w = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!w - 1) then begin
        a.(!w) <- a.(i);
        incr w
      end
    done;
    !w
  end

let with_sink f =
  let sc = Domain.DLS.get scratch_key in
  let n = ref 0 in
  let m = ref 0 in
  let push id =
    let arr = sc.ids in
    let cap = Array.length arr in
    if !n = cap then begin
      let bigger = Array.make (2 * cap) 0 in
      Array.blit arr 0 bigger 0 cap;
      sc.ids <- bigger
    end;
    sc.ids.(!n) <- id;
    incr n
  in
  (* A snapshot miss materializes the token (the first-sighting
     contract already pays that allocation) and queues it; the whole
     queue resolves through one lock in [Intern.intern_batch] below,
     so fresh-token storms — corpus construction fanned over the pool
     — cost one mutex acquisition per message, not per token. *)
  let push_miss tok =
    let cap = Array.length sc.miss in
    if !m = cap then begin
      let miss = Array.make (2 * cap) "" in
      Array.blit sc.miss 0 miss 0 cap;
      sc.miss <- miss;
      let pos = Array.make (2 * cap) 0 in
      Array.blit sc.miss_pos 0 pos 0 cap;
      sc.miss_pos <- pos;
      sc.miss_ids <- Array.make (2 * cap) 0
    end;
    sc.miss.(!m) <- tok;
    sc.miss_pos.(!m) <- !n;
    incr m;
    push (-1)
  in
  f
    ~span:(fun buf off len ->
      match Intern.probe_frozen_sub buf off len with
      | id when id >= 0 -> push id
      | _ -> push_miss (String.sub buf off len))
    ~token:(fun tok ->
      match Intern.probe_frozen_sub tok 0 (String.length tok) with
      | id when id >= 0 -> push id
      | _ -> push_miss tok);
  if !m > 0 then begin
    Intern.intern_batch sc.miss !m sc.miss_ids;
    for i = 0 to !m - 1 do
      sc.ids.(sc.miss_pos.(i)) <- sc.miss_ids.(i);
      sc.miss.(i) <- ""
    done
  end;
  (sc, !n)

let with_unique_ids tokenizer msg f =
  let sc, raw = with_sink (fun ~span ~token ->
      Tok.iter_spans tokenizer msg ~span ~token)
  in
  let distinct = sort_dedup_prefix sc.ids raw in
  if Obs.enabled () then begin
    Obs.incr ingest_msgs;
    Obs.add ingest_bytes (Message.size_bytes msg)
  end;
  f sc.ids distinct raw

let unique_ids tokenizer msg =
  with_unique_ids tokenizer msg (fun ids n raw -> (Array.sub ids 0 n, raw))

(* ------------------------------------------------------------------ *)
(* Header-aware raw-mail ingestion.

   The suppression set follows SpamAssassin's $IGNORED_HDRS (Bayes.pm):
   headers that carry delivery bookkeeping, list-manager plumbing, or
   the output of other spam filters are noise to the learner and are
   dropped before tokenization.  Unlike SpamAssassin we keep the
   headers our tokenizers mine directly (Subject, From, To, Reply-To,
   Received, Content-Type, Content-Transfer-Encoding). *)

let ignored_headers =
  [
    "date";
    "message-id";
    "in-reply-to";
    "references";
    "mime-version";
    "sender";
    "errors-to";
    "precedence";
    "return-path";
    "delivered-to";
    "delivery-date";
    "envelope-to";
    "status";
    "x-status";
    "content-length";
    "lines";
    "x-uid";
    "thread-index";
    "content-class";
    "list-id";
    "list-post";
    "list-help";
    "list-subscribe";
    "list-unsubscribe";
    "list-archive";
    "list-owner";
    "mailing-list";
    "x-beenthere";
    "x-mailman-version";
    "x-mailing-list";
    "x-loop";
    "x-list-host";
    "x-spam-status";
    "x-spam-level";
    "x-spam-flag";
    "x-spam-report";
    "x-spam-score";
    "x-spam-hits";
    "x-spam-checker-version";
    "x-spam-prev-subject";
    "x-antispam";
    "x-rbl-warning";
    "x-mailscanner";
    "x-mailscanner-spamcheck";
    "x-virus-scanned";
    "x-pyzor";
    "x-dcc";
    "x-razor-id";
    "x-mime-autoconverted";
    "x-originalarrivaltime";
    "x-mdaemon-deliver-to";
    "x-scanned-by";
  ]

(* Case-insensitive match of a header-name slice against the ignored
   set, no allocation: length pre-filter then byte compare with ASCII
   folding.  Header counts per message are small (and the set is ~50
   entries), so a linear scan is cheaper than building a probing
   structure for slices. *)
let fold_lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c

let name_eq_sub s off len lit =
  String.length lit = len
  &&
  let rec go i =
    i >= len || (fold_lower s.[off + i] = lit.[i] && go (i + 1))
  in
  go 0

let ignored_slice s off len =
  List.exists (fun lit -> name_eq_sub s off len lit) ignored_headers

let ignored_header name = ignored_slice name 0 (String.length name)

(* ------------------------------------------------------------------ *)
(* Raw mbox scanning by offsets: message chunks are delimited by
   "From " separator lines, exactly as [Mbox.chunks_of] groups them,
   without splitting the buffer into line strings. *)

let is_sep_at buf pos limit =
  pos + 5 <= limit
  && buf.[pos] = 'F'
  && buf.[pos + 1] = 'r'
  && buf.[pos + 2] = 'o'
  && buf.[pos + 3] = 'm'
  && buf.[pos + 4] = ' '

let iter_raw_messages buf f =
  let n = String.length buf in
  let flush start stop = if stop > start then f ~off:start ~len:(stop - start) in
  let rec go line_start chunk_start =
    if line_start >= n then flush chunk_start n
    else if is_sep_at buf line_start n then begin
      flush chunk_start line_start;
      match String.index_from_opt buf line_start '\n' with
      | None -> ()
      | Some nl -> go (nl + 1) (nl + 1)
    end
    else
      match String.index_from_opt buf line_start '\n' with
      | None -> flush chunk_start n
      | Some nl -> go (nl + 1) chunk_start
  in
  (* [Mbox.parse_lenient] treats an all-whitespace mbox as empty; an
     early-exit scan avoids [String.trim]'s copy of the buffer. *)
  let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012' in
  let rec blank i = i >= n || (is_ws buf.[i] && blank (i + 1)) in
  if not (blank 0) then go 0 0

let raw_message_chunks buf =
  let acc = ref [] in
  iter_raw_messages buf (fun ~off ~len -> acc := (off, len) :: !acc);
  Array.of_list (List.rev !acc)

(* A parsed raw chunk.  [Simple] is the zero-copy case — no MIME
   headers, no body fixups — where the body tokenizes straight from the
   mbox buffer.  [Complex] fell back to a materialized [Message.t]
   (still with ignored headers suppressed). *)
type parsed =
  | Simple of { fields : (string * string) list; body_off : int; body_len : int }
  | Complex of Message.t
  | Malformed

let needs_unquote_at buf pos lstop =
  let rec skip i = if i < lstop && buf.[i] = '>' then skip (i + 1) else i in
  let i = skip pos in
  i > pos && i + 5 <= lstop && is_sep_at buf i lstop

(* Body fixups mirror [Rfc2822.parse] + [Mbox.parse_chunk]: every line
   loses a trailing '\r', and ">+From " lines lose one '>'. *)
let body_needs_fixup buf bstart bend =
  let rec scan pos =
    pos < bend
    &&
    let lend =
      match String.index_from_opt buf pos '\n' with
      | Some nl when nl < bend -> nl
      | _ -> bend
    in
    (lend > pos && buf.[lend - 1] = '\r')
    || needs_unquote_at buf pos lend
    || scan (lend + 1)
  in
  scan bstart

let fixup_body buf bstart bend =
  let out = Buffer.create (bend - bstart) in
  let rec go pos =
    if pos <= bend then begin
      let lend =
        match String.index_from_opt buf pos '\n' with
        | Some nl when nl < bend -> nl
        | _ -> bend
      in
      let lstop = if lend > pos && buf.[lend - 1] = '\r' then lend - 1 else lend in
      let pos = if needs_unquote_at buf pos lstop then pos + 1 else pos in
      Buffer.add_substring out buf pos (lstop - pos);
      if lend < bend then begin
        Buffer.add_char out '\n';
        go (lend + 1)
      end
    end
  in
  go bstart;
  Buffer.contents out

let is_mime_header buf off len =
  name_eq_sub buf off len "content-type"
  || name_eq_sub buf off len "content-transfer-encoding"

(* Parse the raw chunk [buf.[off .. off+len-1]] (one mbox message,
   separator excluded) into header fields and a body region, mirroring
   [Mbox.parse_chunk] semantics: one trailing blank line is dropped,
   header values are trimmed and unfolded with spaces, a header line
   without a colon (or with a malformed name) poisons the whole
   message. *)
let parse_raw buf ~off ~len =
  (* Drop the trailing newline [Mbox.print] adds after each body. *)
  let stop = if len > 0 && buf.[off + len - 1] = '\n' then off + len - 1 else off + len in
  let fields = ref [] in
  (* (name, value) of the field being accumulated, or None.  [keep]
     distinguishes a suppressed field (continuations also dropped). *)
  let current = ref None in
  let keep_current = ref true in
  let has_mime = ref false in
  let flush () =
    (match !current with
    | Some f when !keep_current -> fields := f :: !fields
    | _ -> ());
    current := None;
    keep_current := true
  in
  let exception Bad in
  let rec headers pos =
    if pos >= stop then (flush (); stop)
    else begin
      let lend =
        match String.index_from_opt buf pos '\n' with
        | Some nl when nl < stop -> nl
        | _ -> stop
      in
      let lstop = if lend > pos && buf.[lend - 1] = '\r' then lend - 1 else lend in
      if lstop = pos then (flush (); lend + 1)  (* blank line: body next *)
      else if buf.[pos] = ' ' || buf.[pos] = '\t' then begin
        (match !current with
        | None -> raise Bad
        | Some (name, value) ->
            if !keep_current then
              current :=
                Some (name, value ^ " " ^ String.trim (String.sub buf pos (lstop - pos))));
        headers (lend + 1)
      end
      else begin
        flush ();
        let colon =
          let rec find i = if i >= lstop then -1 else if buf.[i] = ':' then i else find (i + 1) in
          find pos
        in
        if colon <= pos then raise Bad;
        let nlen = colon - pos in
        let rec bad_name i =
          i < colon && (buf.[i] = ' ' || buf.[i] = '\t' || bad_name (i + 1))
        in
        if bad_name pos then raise Bad;
        if is_mime_header buf pos nlen then has_mime := true;
        if ignored_slice buf pos nlen then begin
          (* Record that a (suppressed) field is open so its folded
             continuation lines are swallowed with it rather than
             mistaken for orphan continuations — [Mbox.parse_lenient]
             parses the field first and strips it afterwards, so a
             continuation after an ignored header is well-formed. *)
          keep_current := false;
          current := Some ("", "")
        end
        else begin
          let name = String.sub buf pos nlen in
          let value = String.trim (String.sub buf (colon + 1) (lstop - colon - 1)) in
          current := Some (name, value)
        end;
        headers (lend + 1)
      end
    end
  in
  match headers off with
  | exception Bad -> Malformed
  | bstart ->
      let bstart = min bstart stop in
      let fields = List.rev !fields in
      if (not !has_mime) && not (body_needs_fixup buf bstart stop) then
        Simple { fields; body_off = bstart; body_len = stop - bstart }
      else
        Complex
          (Message.make
             ~headers:(Header.of_list fields)
             (fixup_body buf bstart stop))

let with_unique_ids_raw tokenizer buf ~off ~len f =
  match parse_raw buf ~off ~len with
  | Malformed -> None
  | Complex msg ->
      Some
        (with_unique_ids tokenizer msg (fun ids n raw -> f ids n raw))
  | Simple { fields; body_off; body_len } ->
      let hdr_msg = Message.make ~headers:(Header.of_list fields) "" in
      let sc, raw = with_sink (fun ~span ~token ->
          Tok.iter_spans tokenizer hdr_msg ~span ~token;
          Tok.iter_body_spans tokenizer buf body_off body_len ~span ~token)
      in
      let distinct = sort_dedup_prefix sc.ids raw in
      if Obs.enabled () then begin
        Obs.incr ingest_msgs;
        Obs.add ingest_bytes len
      end;
      Some (f sc.ids distinct raw)

let unique_ids_raw tokenizer buf ~off ~len =
  with_unique_ids_raw tokenizer buf ~off ~len (fun ids n raw ->
      (Array.sub ids 0 n, raw))

(* ------------------------------------------------------------------ *)
(* Batched classification: one scratch buffer per domain across the
   whole batch, no per-message arrays. *)

let classify_many_engine e tokenizer msgs =
  Array.map
    (fun msg ->
      with_unique_ids tokenizer msg (fun ids n _raw ->
          Classify.score_engine_sub e ids n))
    msgs

let classify_raw_engine e tokenizer buf ~off ~len =
  with_unique_ids_raw tokenizer buf ~off ~len (fun ids n _raw ->
      Classify.score_engine_sub e ids n)

let classify_mbox_engine e tokenizer buf =
  Array.map
    (fun (off, len) -> classify_raw_engine e tokenizer buf ~off ~len)
    (raw_message_chunks buf)

(* (options, db) forms: the uncached reference engine.  Filter and the
   daemon pass their cached engines through the [_engine] variants. *)
let classify_many options db tokenizer msgs =
  classify_many_engine (Classify.engine options db) tokenizer msgs

let classify_raw options db tokenizer buf ~off ~len =
  classify_raw_engine (Classify.engine options db) tokenizer buf ~off ~len

let classify_mbox options db tokenizer buf =
  classify_mbox_engine (Classify.engine options db) tokenizer buf
