type t = { name : string; words : string array }

let make ~name ~words =
  if Array.length words = 0 then
    invalid_arg "Dictionary_attack.make: empty word list";
  { name; words }

let name t = t.name
let words t = t.words
let word_count t = Array.length t.words

let taxonomy = Taxonomy.dictionary_attack

let email t = Attack_email.make ~words:(Array.to_list t.words)

let emails t ~count = List.init count (fun _ -> email t)

let payload tokenizer t = Attack_email.payload_tokens tokenizer (email t)

let raw_token_count tokenizer t =
  let n = ref 0 in
  Spamlab_tokenizer.Tokenizer.iter_tokens tokenizer (email t) (fun _ ->
      incr n);
  !n

let train filter tokenizer t ~count =
  let tokens = payload tokenizer t in
  Spamlab_spambayes.Filter.train_tokens_many filter Spamlab_spambayes.Label.Spam
    tokens count
