open Spamlab_stats
module Dataset = Spamlab_corpus.Dataset
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify

type config = {
  train_size : int;
  validation_size : int;
  trials : int;
  threshold : float;
}

let default_config =
  { train_size = 20; validation_size = 50; trials = 5; threshold = 5.0 }

type assessment = {
  mean_ham_impact : float;
  per_trial : float array;
  rejected : bool;
}

let ham_as_ham filter validation =
  Array.fold_left
    (fun acc (e : Dataset.example) ->
      if e.label = Label.Ham
         && (Dataset.classify filter e).Classify.verdict = Label.Ham_v
      then acc + 1
      else acc)
    0 validation

(* [ham_as_ham] of [filter] plus one spam training of the candidate,
   without materializing that filter: admitting the candidate changes
   exactly two inputs of every token score — candidate members read
   spam+1 and the spam total reads nspam+1 — so each validation message
   is scored from the baseline's counts with that adjustment applied
   arithmetically.  [Score.smoothed_counts] performs the exact float
   sequence of the DB-lookup path and [Classify.score_clues] orders
   clues by a total order independent of arrival order, so verdicts are
   bit-identical to classifying a copy trained on the candidate (the
   same argument as [Poison.sweep]) — at none of the per-trial cost of
   training a dictionary-sized candidate into the copy. *)
let ham_as_ham_with_candidate filter ~candidate_member validation =
  let module Score = Spamlab_spambayes.Score in
  let module Options = Spamlab_spambayes.Options in
  let module Token_db = Spamlab_spambayes.Token_db in
  let options = Filter.options filter in
  let db = Filter.db filter in
  let nspam = Token_db.nspam db + 1 in
  let nham = Token_db.nham db in
  let min_strength = options.Options.minimum_prob_strength in
  Array.fold_left
    (fun acc (e : Dataset.example) ->
      if e.label = Label.Ham then begin
        let candidates =
          Array.fold_left
            (fun acc id ->
              let spam =
                Token_db.spam_count_id db id
                + (if candidate_member id then 1 else 0)
              in
              let ham = Token_db.ham_count_id db id in
              let score =
                Score.smoothed_counts options ~spam ~ham ~nspam ~nham
              in
              if Float.abs (score -. 0.5) >= min_strength then
                { Classify.token = Spamlab_spambayes.Intern.to_string id;
                  score }
                :: acc
              else acc)
            [] e.ids
        in
        if
          (Classify.score_clues options candidates).Classify.verdict
          = Label.Ham_v
        then acc + 1
        else acc
      end
      else acc)
    0 validation

let assess ?(config = default_config) rng ~pool ~candidate =
  let needed = config.train_size + config.validation_size in
  if Array.length pool < needed then
    invalid_arg "Roni.assess: pool smaller than train + validation sizes";
  if not (Array.exists (fun (e : Dataset.example) -> e.label = Label.Ham) pool)
  then invalid_arg "Roni.assess: pool contains no ham";
  (* The candidate is interned once and turned into a membership set;
     every trial then measures its admission without building the
     with-candidate filter at all (see [ham_as_ham_with_candidate]).
     The per-trial cost is the 20-message baseline train plus 2×|V_ham|
     classifications — independent of the candidate's size. *)
  let candidate_ids = Spamlab_spambayes.Intern.intern_array candidate in
  let candidate_member =
    (* Ids are dense, so membership is a byte table rather than a
       hashtable: the with-candidate scoring loop probes it once per
       validation-token instance. *)
    let table = Bytes.make (Spamlab_spambayes.Intern.size ()) '\000' in
    Array.iter (fun id -> Bytes.set table id '\001') candidate_ids;
    let n = Bytes.length table in
    fun id -> id < n && Bytes.get table id = '\001'
  in
  let per_trial =
    Array.init config.trials (fun _ ->
        let sample = Rng.sample_without_replacement rng needed pool in
        let train = Array.sub sample 0 config.train_size in
        let validation =
          Array.sub sample config.train_size config.validation_size
        in
        let baseline = Filter.create () in
        Dataset.train_filter baseline train;
        let before = ham_as_ham baseline validation in
        let after =
          ham_as_ham_with_candidate baseline ~candidate_member validation
        in
        float_of_int (before - after))
  in
  let mean_ham_impact = Summary.mean per_trial in
  {
    mean_ham_impact;
    per_trial;
    rejected = mean_ham_impact > config.threshold;
  }

(* Candidates are independent, so screening fans out over the domain
   pool when one is supplied.  Each candidate derives its own named RNG
   stream from [rng]'s seed {e before} the fan-out, making the result a
   pure function of (seed, config, pool, stream) — identical at every
   jobs value, including the sequential path.  (This derivation is also
   used when [domains] is absent, so sequential and parallel screening
   agree exactly.) *)
let screen ?(config = default_config) ?domains rng ~pool ~stream =
  let assess_nth i candidate =
    let rng_i = Rng.split_named rng (Printf.sprintf "roni-screen/%d" i) in
    (candidate, assess ~config rng_i ~pool ~candidate)
  in
  let indexed = Array.mapi (fun i candidate -> (i, candidate)) stream in
  let task (i, candidate) = assess_nth i candidate in
  match domains with
  | Some p -> Spamlab_parallel.Pool.map_array p task indexed
  | None -> Array.map task indexed
