module Dataset = Spamlab_corpus.Dataset
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify
module Options = Spamlab_spambayes.Options

type config = { quantile : float }

let config_05 = { quantile = 0.05 }
let config_10 = { quantile = 0.10 }

(* Boundary convention mirrors [Classify.verdict_of_indicator]: a score
   exactly at the threshold is classified with the more severe class, so
   a ham scoring exactly t counts as misclassified (N_H,>= not N_H,>)
   and a spam scoring exactly t is caught (strict <). *)
let utility ~scores t =
  let spam_below, ham_above =
    Array.fold_left
      (fun (sb, ha) (score, gold) ->
        match gold with
        | Label.Spam when score < t -> (sb + 1, ha)
        | Label.Ham when score >= t -> (sb, ha + 1)
        | Label.Spam | Label.Ham -> (sb, ha))
      (0, 0) scores
  in
  if spam_below + ham_above = 0 then 0.5
  else float_of_int spam_below /. float_of_int (spam_below + ham_above)

(* Evaluate g at every candidate threshold in one sorted pass.  With the
   scored set sorted ascending, placing t between positions i-1 and i
   gives N_S,<(t) = spam among the first i and N_H,>(t) = ham among the
   rest (score ties sit on one side; candidates are midpoints so exact
   ties cannot straddle).  Each entry carries a multiplicity so that
   identical poisoned-training emails are scored once and weighted. *)
let candidates_with_utility scores =
  let sorted = Array.copy scores in
  Array.sort (fun (a, _, _) (b, _, _) -> Float.compare a b) sorted;
  let n = Array.length sorted in
  let spam_prefix = Array.make (n + 1) 0 in
  let ham_prefix = Array.make (n + 1) 0 in
  Array.iteri
    (fun i (_, gold, weight) ->
      spam_prefix.(i + 1) <-
        (spam_prefix.(i) + if gold = Label.Spam then weight else 0);
      ham_prefix.(i + 1) <-
        (ham_prefix.(i) + if gold = Label.Ham then weight else 0))
    sorted;
  let total_ham = ham_prefix.(n) in
  let score_at i =
    let s, _, _ = sorted.(i) in
    s
  in
  let candidate i =
    (* Midpoint between sorted.(i-1) and sorted.(i); 0 and 1 at the
       extremes. *)
    if i = 0 then Float.max 0.0 (score_at 0 /. 2.0)
    else if i = n then
      Float.min 1.0 (score_at (n - 1) +. ((1.0 -. score_at (n - 1)) /. 2.0))
    else (score_at (i - 1) +. score_at i) /. 2.0
  in
  (* The prefix counts describe threshold t only when
     score_at(i-1) < t <= score_at(i): everything before position i is
     strictly below t (not caught by ">= t") and everything from i on is
     at or above it.  A candidate violating that — a midpoint between
     equal scores, or the top endpoint when the maximum score is 1.0 so
     the candidate collides with an attained score — would install a
     cutoff whose measured utility disagrees with the verdict function,
     so it is skipped. *)
  let consistent i t =
    (i = 0 || score_at (i - 1) < t) && (i = n || t <= score_at i)
  in
  Array.of_list
    (List.filter_map
       (fun i ->
         let t = candidate i in
         if not (consistent i t) then None
         else
           let spam_below = spam_prefix.(i) in
           let ham_above = total_ham - ham_prefix.(i) in
           let g =
             if spam_below + ham_above = 0 then 0.5
             else
               float_of_int spam_below
               /. float_of_int (spam_below + ham_above)
           in
           Some (t, g))
       (List.init (n + 1) Fun.id))

(* θ0 is the largest threshold still satisfying g(t) ≤ q: pushing it as
   high as the quantile allows keeps the most ham out of the unsure
   band.  Symmetrically θ1 is the smallest threshold with g(t) ≥ 1−q.
   (g is monotone non-decreasing in t, so these are well-defined ends of
   the feasible regions; when no candidate qualifies, fall back to the
   closest one.) *)
let closest_to target table =
  let best = ref table.(0) in
  Array.iter
    (fun (t, g) ->
      let _, bg = !best in
      if Float.abs (g -. target) < Float.abs (bg -. target) then
        best := (t, g))
    table;
  fst !best

let highest_with_utility_at_most target table =
  let best = ref None in
  Array.iter
    (fun (t, g) ->
      if g <= target then
        match !best with
        | Some (bt, _) when bt >= t -> ()
        | _ -> best := Some (t, g))
    table;
  match !best with Some (t, _) -> t | None -> closest_to target table

let lowest_with_utility_at_least target table =
  let best = ref None in
  Array.iter
    (fun (t, g) ->
      if g >= target then
        match !best with
        | Some (bt, _) when bt <= t -> ()
        | _ -> best := Some (t, g))
    table;
  match !best with Some (t, _) -> t | None -> closest_to target table

let thresholds_of_scores ?(config = config_05) scores =
  if Array.length scores = 0 then
    invalid_arg "Dynamic_threshold.thresholds_of_scores: no scores";
  if Array.for_all (fun (_, _, w) -> w <= 0) scores then
    invalid_arg "Dynamic_threshold.thresholds_of_scores: zero total weight";
  let table = candidates_with_utility scores in
  let theta0 = highest_with_utility_at_most config.quantile table in
  let theta1 = lowest_with_utility_at_least (1.0 -. config.quantile) table in
  let theta0 = Float.max 0.0 (Float.min theta0 0.999) in
  let theta1 = Float.min 1.0 theta1 in
  if theta1 > theta0 then (theta0, theta1)
  else (theta0, Float.min 1.0 (theta0 +. 1e-6))

let thresholds ?(config = config_05) rng examples =
  if Array.length examples < 4 then
    invalid_arg "Dynamic_threshold.thresholds: training set too small";
  let half_a, half_b = Dataset.split rng 0.5 examples in
  let filter = Filter.create () in
  Dataset.train_filter filter half_a;
  let scores =
    Array.map
      (fun (e : Dataset.example) ->
        ((Dataset.classify filter e).Classify.indicator, e.label, 1))
      half_b
  in
  thresholds_of_scores ~config scores

let harden ?(config = config_05) rng filter examples =
  let theta0, theta1 = thresholds ~config rng examples in
  Filter.set_options filter
    (Options.with_cutoffs (Filter.options filter) ~ham:theta0 ~spam:theta1)
