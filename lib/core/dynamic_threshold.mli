(** The dynamic threshold defense (§5.2).

    Distribution-shifting attacks raise the scores of ham and spam
    alike, so fixed cutoffs θ0 = 0.15, θ1 = 0.9 stop separating the
    classes — but their {e ranking} survives.  This defense re-derives
    the cutoffs from data: split the (possibly poisoned) training set in
    half, train a filter F on one half, score the other half V, and
    choose thresholds through the utility
    {[ g(t) = N_S,<(t) / (N_S,<(t) + N_H,≥(t)) ]}
    where N_S,<(t) counts spam scoring strictly below [t] and N_H,≥(t)
    ham scoring at or above — the same boundary convention as
    {!Spamlab_spambayes.Classify.verdict_of_indicator}, where a score
    exactly at a cutoff takes the more severe class.  θ0 is placed
    where g ≈ q and θ1 where g ≈ 1 − q, for q ∈ {0.05, 0.10}. *)

type config = {
  quantile : float;  (** q above; the paper tests 0.05 and 0.10. *)
}

val config_05 : config
val config_10 : config

val utility :
  scores:(float * Spamlab_spambayes.Label.gold) array -> float -> float
(** g(t) over a scored validation set; 0.5 when no email is on either
    side (no evidence). *)

val thresholds_of_scores :
  ?config:config ->
  (float * Spamlab_spambayes.Label.gold * int) array ->
  float * float
(** [(θ0, θ1)] from an already-scored validation set; the [int] is a
    multiplicity (identical attack emails can be scored once and
    weighted).  @raise Invalid_argument on an empty or zero-weight
    set. *)

val thresholds :
  ?config:config ->
  Spamlab_stats.Rng.t ->
  Spamlab_corpus.Dataset.example array ->
  float * float
(** [(θ0, θ1)] derived from a training set as described above.
    Guarantees 0 ≤ θ0 < θ1 ≤ 1.  @raise Invalid_argument on a training
    set with fewer than 4 examples. *)

val harden :
  ?config:config ->
  Spamlab_stats.Rng.t ->
  Spamlab_spambayes.Filter.t ->
  Spamlab_corpus.Dataset.example array ->
  Spamlab_spambayes.Filter.t
(** A filter equal to the input but carrying data-derived cutoffs
    (shares the token database). *)
