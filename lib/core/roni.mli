(** The Reject On Negative Impact (RONI) defense (§5.1).

    Before admitting an incoming message into the training set, measure
    its incremental effect: sample several small train/validation splits
    from the trusted pool, train with and without the candidate, and
    compare how many validation ham messages are still classified as
    ham.  A candidate whose admission costs more than a threshold number
    of ham-as-ham classifications (averaged over trials) is rejected.

    Dictionary-attack emails shift thousands of token scores at once and
    are unmistakable under this test; focused-attack emails target a
    future message and barely move validation performance — the paper's
    explanation of why RONI stops the former and not the latter. *)

type config = {
  train_size : int;  (** |T|, default 20. *)
  validation_size : int;  (** |V|, default 50. *)
  trials : int;  (** Independent (T,V) resamples, default 5. *)
  threshold : float;
      (** Reject when the mean ham-as-ham decrease exceeds this; default
          5.0 (between the paper's observed 4.4 non-attack maximum and
          6.8 attack minimum). *)
}

val default_config : config

type assessment = {
  mean_ham_impact : float;
      (** Average decrease in validation ham classified as ham caused by
          training the candidate (positive = harmful). *)
  per_trial : float array;
  rejected : bool;
}

val assess :
  ?config:config ->
  Spamlab_stats.Rng.t ->
  pool:Spamlab_corpus.Dataset.example array ->
  candidate:string array ->
  assessment
(** [assess rng ~pool ~candidate] measures the candidate distinct-token
    array (always trained as spam, per the contamination assumption)
    against train/validation splits sampled from [pool].  The
    with-candidate side is scored arithmetically from the baseline's
    counts (one spam training shifts candidate members' spam counts and
    N_S by one), so the cost per trial is independent of the candidate's
    size — a dictionary-attack candidate carries tens of thousands of
    tokens.  The pool must contain at least
    [train_size + validation_size] examples and at least one ham
    example.  @raise Invalid_argument otherwise. *)

val screen :
  ?config:config ->
  ?domains:Spamlab_parallel.Pool.t ->
  Spamlab_stats.Rng.t ->
  pool:Spamlab_corpus.Dataset.example array ->
  stream:string array array ->
  (string array * assessment) array
(** Assess a whole stream of incoming messages; pairs each candidate
    with its assessment.  Candidates are independent: pass [domains] to
    fan them over the domain pool.  Each candidate's trials draw from
    an RNG stream derived by name from [rng]'s seed (not from [rng]'s
    consumption position), so the result is identical with and without
    [domains], at every pool width. *)
