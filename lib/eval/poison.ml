module Dataset = Spamlab_corpus.Dataset
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify
module Token_db = Spamlab_spambayes.Token_db
module Score = Spamlab_spambayes.Score
module Options = Spamlab_spambayes.Options
module Obs = Spamlab_obs.Obs

(* Work counters for the observability layer.  They are bumped with
   atomic adds from inside pool tasks, so their totals are invariant
   under the [--jobs] setting (unlike the pool's scheduling spans). *)
let messages_classified = Obs.counter "eval.messages_classified"
let tokens_scored = Obs.counter "eval.tokens_scored"

let attack_count ~train_size ~fraction =
  if not (Float.is_finite fraction) || fraction < 0.0 || fraction >= 1.0 then
    invalid_arg "Poison.attack_count: fraction must lie in [0,1)";
  let raw =
    Float.round (float_of_int train_size *. fraction /. (1.0 -. fraction))
  in
  (* Fractions within float rounding of 1.0 blow n*f/(1-f) past max_int,
     and int_of_float on such values is undefined (silently 0 on some
     targets) — refuse instead. *)
  if raw >= float_of_int max_int then
    invalid_arg "Poison.attack_count: attack volume overflows";
  int_of_float raw

let base_filter tokenizer examples =
  let filter = Filter.create ~tokenizer () in
  Dataset.train_filter filter examples;
  filter

let poisoned filter ~payload ~count =
  let copy = Filter.copy filter in
  Filter.train_tokens_many copy Label.Spam payload count;
  copy

let score_examples filter examples =
  Array.map
    (fun (e : Dataset.example) ->
      Obs.incr messages_classified;
      Obs.add tokens_scored (Array.length e.Dataset.tokens);
      ((Dataset.classify filter e).Classify.indicator, e.label))
    examples

let sweep filter ~payload ~counts test =
  (* Training the payload [k] times changes exactly two things in the
     base filter's DB: every payload token's spam count becomes
     spam0 + k, and the spam-message total becomes nspam0 + k.  So look
     each test token's base counts (and payload membership) up once,
     and score every grid point as pure arithmetic over those cached
     counts — no [Filter.copy], no retraining, and no hashtable access
     in the per-count loop.  [Score.smoothed_counts] performs the exact
     float sequence of [Score.smoothed], so each grid point's scores
     are bit-identical to scoring a fresh copy of [filter] trained with
     that count. *)
  let options = Filter.options filter in
  let db = Filter.db filter in
  let nspam0 = Token_db.nspam db in
  let nham = Token_db.nham db in
  let min_strength = options.Options.minimum_prob_strength in
  (* Base counts and payload membership are looked up by interned id —
     [e.ids] is [e.tokens] interned elementwise, so index [i] of both
     arrays names the same token. *)
  let payload_ids = Spamlab_spambayes.Intern.intern_array payload in
  let in_payload =
    let set = Hashtbl.create (2 * Array.length payload_ids) in
    Array.iter (fun id -> Hashtbl.replace set id ()) payload_ids;
    fun id -> Hashtbl.mem set id
  in
  (* Test messages share most of their vocabulary, so scoring each
     token instance at each grid point recomputes (and boxes) the same
     smoothed probability thousands of times.  Instead, index the
     distinct test-fold ids into compact slots, rewrite each message as
     slot indices, and per grid point fill one unboxed float table with
     each distinct token's score — messages then classify by reading
     floats out of that table. *)
  let slot_of_id = Hashtbl.create 4096 in
  let distinct = ref [] in
  let nslots = ref 0 in
  let slot_of id =
    match Hashtbl.find_opt slot_of_id id with
    | Some s -> s
    | None ->
        let s = !nslots in
        Hashtbl.add slot_of_id id s;
        distinct := id :: !distinct;
        incr nslots;
        s
  in
  let prepped =
    Array.map
      (fun (e : Dataset.example) ->
        (e.Dataset.label, e.Dataset.tokens, Array.map slot_of e.Dataset.ids))
      test
  in
  let distinct = Array.of_list (List.rev !distinct) in
  let nslots = !nslots in
  let spam0 = Array.map (fun id -> Token_db.spam_count_id db id) distinct in
  let ham0 = Array.map (fun id -> Token_db.ham_count_id db id) distinct in
  let payload_member = Array.map in_payload distinct in
  let slot_score = Array.make nslots 0.5 in
  List.map
    (fun count ->
      Obs.span "poison.sweep.point" @@ fun () ->
      let nspam = nspam0 + count in
      for s = 0 to nslots - 1 do
        let spam =
          if payload_member.(s) then spam0.(s) + count else spam0.(s)
        in
        slot_score.(s) <-
          Score.smoothed_counts options ~spam ~ham:ham0.(s) ~nspam ~nham
      done;
      Array.map
        (fun (label, tokens, slots) ->
          Obs.incr messages_classified;
          Obs.add tokens_scored (Array.length slots);
          let candidates = ref [] in
          Array.iteri
            (fun i s ->
              let score = slot_score.(s) in
              if Float.abs (score -. 0.5) >= min_strength then
                candidates :=
                  { Classify.token = tokens.(i); score } :: !candidates)
            slots;
          ( (Classify.score_clues options !candidates).Classify.indicator,
            label ))
        prepped)
    counts

let confusion_of_scores options scores =
  let confusion = Confusion.create () in
  Array.iter
    (fun (score, gold) ->
      Confusion.add confusion gold
        (Classify.verdict_of_indicator options score))
    scores;
  confusion
