type experiment = {
  id : string;
  title : string;
  paper_claim : string;
  run : Lab.t -> string;
}

let table1 =
  {
    id = "table1";
    title = "Table 1: experimental parameters";
    paper_claim = "parameter grid as published";
    run = (fun lab -> Params.table1 ~scale:(Lab.scale lab) ());
  }

let fig1 =
  {
    id = "fig1";
    title = "Figure 1: dictionary attacks vs. percent control";
    paper_claim =
      "optimal >= usenet >= aspell everywhere; all three render the \
       filter unusable near 1% control (usenet ~36% ham misclassified \
       at 1%)";
    run =
      (fun lab ->
        let params = Params.dictionary ~scale:(Lab.scale lab) () in
        Dictionary_exp.render (Dictionary_exp.run lab params));
  }

let tokens =
  {
    id = "tokens";
    title = "Section 4.2: attack token volume";
    paper_claim =
      "at 2% message control the usenet attack carries ~6.4x and the \
       aspell attack ~7x the corpus token mass";
    run =
      (fun lab ->
        let params = Params.dictionary ~scale:(Lab.scale lab) () in
        Dictionary_exp.token_volume lab params ~fraction:0.02);
  }

let fig2 =
  {
    id = "fig2";
    title = "Figure 2: focused attack vs. guess probability";
    paper_claim =
      "attack success grows with p; at p=0.3 the target's classification \
       changes ~60% of the time";
    run =
      (fun lab ->
        let params = Params.focused ~scale:(Lab.scale lab) () in
        Focused_exp.render_probability_sweep
          (Focused_exp.probability_sweep lab params));
  }

let fig3 =
  {
    id = "fig3";
    title = "Figure 3: focused attack vs. attack volume";
    paper_claim =
      "misclassification grows with attack count; ~32% as spam at 100 \
       attack emails in a 5,000-message inbox";
    run =
      (fun lab ->
        let params = Params.focused ~scale:(Lab.scale lab) () in
        Focused_exp.render_volume_sweep (Focused_exp.volume_sweep lab params));
  }

let fig4 =
  {
    id = "fig4";
    title = "Figure 4: focused attack effect on token scores";
    paper_claim =
      "tokens included in the attack shift strongly toward 1; excluded \
       tokens decrease slightly";
    run =
      (fun lab ->
        let params = Params.focused ~scale:(Lab.scale lab) () in
        Focused_exp.render_token_shifts (Focused_exp.token_shifts lab params));
  }

let roni =
  {
    id = "roni";
    title = "Section 5.1: RONI defense";
    paper_claim =
      "every dictionary-attack email is rejected, no non-attack spam is \
       (attack impact >= 6.8 ham-as-ham vs <= 4.4 for non-attack)";
    run =
      (fun lab ->
        let params = Params.roni ~scale:(Lab.scale lab) () in
        Roni_exp.render (Roni_exp.run lab params));
  }

let fig5 =
  {
    id = "fig5";
    title = "Figure 5: dynamic threshold defense";
    paper_claim =
      "dynamic thresholds keep ham-as-spam near zero under attack, at \
       the cost of pushing most spam into unsure";
    run =
      (fun lab ->
        let params = Params.threshold ~scale:(Lab.scale lab) () in
        Threshold_exp.render (Threshold_exp.run lab params));
  }

(* ------------------------------------------------------------------ *)
(* Ablations and extensions beyond the paper's evaluation              *)

let ablate_disc =
  {
    id = "ablate-disc";
    title = "Ablation: discriminator cap |delta(E)|";
    paper_claim =
      "extension - SpamBayes fixes 150; fewer discriminators weaken clean \
       accuracy, more do not restore attack resistance";
    run = (fun lab -> Ablation.render_rows
               ~title:"Discriminator cap vs vulnerability (1% usenet attack)"
               (Ablation.discriminator_sweep lab));
  }

let ablate_band =
  {
    id = "ablate-band";
    title = "Ablation: significance band (0.4, 0.6)";
    paper_claim =
      "extension - the minimum |f-0.5| strength gate; wider bands drop \
       weak evidence";
    run = (fun lab -> Ablation.render_rows
               ~title:"Significance band vs vulnerability (1% usenet attack)"
               (Ablation.band_sweep lab));
  }

let ablate_smooth =
  {
    id = "ablate-smooth";
    title = "Ablation: Robinson prior strength s";
    paper_claim =
      "extension - heavier smoothing slows per-token poisoning but blunts \
       legitimate evidence too";
    run = (fun lab -> Ablation.render_rows
               ~title:"Prior strength vs vulnerability (1% usenet attack)"
               (Ablation.smoothing_sweep lab));
  }

let ablate_coverage =
  {
    id = "ablate-coverage";
    title = "Ablation: attacker knowledge (Section 3.4 interpolation)";
    paper_claim =
      "extension - damage grows monotonically with the fraction of the \
       victim's vocabulary the attacker covers (dictionary -> optimal)";
    run = (fun lab -> Ablation.render_coverage (Ablation.coverage_sweep lab));
  }

let pseudospam =
  {
    id = "pseudospam";
    title = "Extension: ham-labeled pseudospam attack (Section 2.2)";
    paper_claim =
      "extension - the paper predicts ham-labeled attacks 'could enable \
       more powerful attacks that place spam in a user's inbox'";
    run = (fun lab -> Extension_exp.render_pseudospam (Extension_exp.pseudospam lab));
  }

let goodword =
  {
    id = "goodword";
    title = "Extension: exploratory good-word evasion baseline (Section 6)";
    paper_claim =
      "extension - the Lowd-Meek/Wittel-Wu attack family the paper \
       contrasts against: no training influence, per-message evasion only";
    run = (fun lab -> Extension_exp.render_good_word (Extension_exp.good_word lab));
  }

let roni_sweep =
  {
    id = "roni-sweep";
    title = "Extension: RONI parameter study (Section 5.1 future work)";
    paper_claim =
      "extension - detection stays near 100% across validation sizes; \
       lower thresholds trade false positives";
    run = (fun lab -> Extension_exp.render_roni_sweep (Extension_exp.roni_sweep lab));
  }

let timeline =
  {
    id = "timeline";
    title = "Extension: attack timeline under weekly retraining (Section 2.1)";
    paper_claim =
      "extension - an undefended weekly-retrain pipeline collapses after \
       the attack burst and stays collapsed; RONI screening keeps \
       delivery intact";
    run = (fun lab -> Timeline_exp.render (Timeline_exp.run lab));
  }

let tokenizers =
  {
    id = "tokenizers";
    title = "Extension: cross-filter transfer (Section 7)";
    paper_claim =
      "extension - the paper predicts the attacks apply to BogoFilter and \
       SpamAssassin's Bayes component, 'although their effect may vary'";
    run =
      (fun lab ->
        Extension_exp.render_tokenizer_comparison
          (Extension_exp.tokenizer_comparison lab));
  }

let budget =
  {
    id = "budget";
    title = "Extension: value of attacker information (Section 3.4)";
    paper_claim =
      "extension - 'the attacker's knowledge usually falls between these \
       extremes'; at equal budgets, better knowledge of the victim's \
       word distribution does strictly more damage";
    run =
      (fun lab ->
        Extension_exp.render_information_value
          (Extension_exp.information_value lab));
  }

let corpus_stats =
  {
    id = "corpus";
    title = "Corpus characterization (the TREC-2005 stand-in)";
    paper_claim =
      "substrate validation - heavy-tailed lengths, sub-linear vocabulary \
       growth, a long singleton tail, and partial ham/spam overlap: the \
       distributional facts the attacks exploit";
    run =
      (fun lab ->
        let size = max 500 (int_of_float (5_000.0 *. Lab.scale lab)) in
        let corpus =
          Lab.corpus_messages lab ~name:"corpus-stats" ~size ~spam_fraction:0.5
        in
        Spamlab_corpus.Corpus_stats.render
          (Spamlab_corpus.Corpus_stats.measure (Lab.tokenizer lab) corpus));
  }

let stealth =
  {
    id = "stealth";
    title = "Extension: split attacks vs size screening (Sections 2.2, 4.2)";
    paper_claim =
      "extension - 'an attack with fewer tokens likely would be harder to        detect; the number of messages is a more visible feature':        splitting defeats size screens at unchanged damage, RONI does not        care";
    run =
      (fun lab -> Extension_exp.render_stealth (Extension_exp.stealth lab));
  }

(* Every experiment runs under an [exp/<id>] span so a trace or metrics
   dump attributes time to experiments without each module opting in. *)
let instrument e =
  let span_name = "exp/" ^ e.id in
  {
    e with
    run = (fun lab -> Spamlab_obs.Obs.span span_name (fun () -> e.run lab));
  }

let all =
  List.map instrument
    [
      table1; corpus_stats; fig1; tokens; fig2; fig3; fig4; roni; fig5;
      ablate_disc; ablate_band; ablate_smooth; ablate_coverage; pseudospam;
      goodword; roni_sweep; timeline; tokenizers; budget; stealth;
    ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids = List.map (fun e -> e.id) all

let run_all lab = List.map (fun e -> (e.id, e.run lab)) all
