module Dataset = Spamlab_corpus.Dataset
module Label = Spamlab_spambayes.Label
module Pipeline = Spamlab_core.Pipeline
module Attack = Spamlab_core.Dictionary_attack
module Roni = Spamlab_core.Roni

type round_row = {
  round_index : int;
  attack_emails : int;
  undefended_delivery : float;
  toe_delivery : float;  (* train-on-error policy *)
  defended_delivery : float;
  rejected : int;
}

let total_rounds = 8
let attack_rounds = [ 3; 4 ]

let build_rounds lab rng ~round_size ~attack_payload =
  List.init total_rounds (fun i ->
      let round_index = i + 1 in
      let clean =
        Lab.corpus lab
          ~name:(Printf.sprintf "timeline/round-%d" round_index)
          ~size:round_size ~spam_fraction:0.5
      in
      if List.mem round_index attack_rounds then begin
        let attack_count = max 2 (round_size / 20) in
        let attack_example =
          Dataset.of_tokens Label.Spam attack_payload
            ~raw_token_count:(Array.length attack_payload)
        in
        let injected =
          Array.append clean (Array.make attack_count attack_example)
        in
        Spamlab_stats.Rng.shuffle rng injected;
        (injected, attack_count)
      end
      else (clean, 0))

let run lab =
  let rng = Lab.rng lab "timeline" in
  let scale = Lab.scale lab in
  let initial_size = max 300 (int_of_float (1_000.0 *. scale)) in
  let round_size = max 100 (int_of_float (500.0 *. scale)) in
  let payload =
    Attack.payload (Lab.tokenizer lab)
      (Attack.make ~name:"usenet" ~words:(Lab.usenet_top lab ~size:19_000))
  in
  let initial_training =
    Lab.corpus lab ~name:"timeline/initial" ~size:initial_size
      ~spam_fraction:0.5
  in
  let rounds_with_counts =
    build_rounds lab rng ~round_size ~attack_payload:payload
  in
  let rounds = List.map fst rounds_with_counts in
  let attack_counts = List.map snd rounds_with_counts in
  (* Rounds and payload are fully interned; freeze before the fan-out
     so in-task id lookups are lock-free. *)
  Spamlab_spambayes.Intern.freeze ();
  (* The three policies replay the same rounds from identical rng
     copies (taken before the fan-out), so they are independent tasks. *)
  let simulations =
    Spamlab_parallel.Pool.map_list (Lab.pool lab)
      (fun (policy, roni, rng) ->
        Spamlab_obs.Obs.span "timeline.policy" @@ fun () ->
        Pipeline.run
          { Pipeline.retrain_period = 1; policy; roni; initial_training }
          rng ~rounds)
      [
        (Pipeline.Train_everything, None, Spamlab_stats.Rng.copy rng);
        (Pipeline.Train_on_error, None, Spamlab_stats.Rng.copy rng);
        ( Pipeline.Train_everything,
          Some Roni.default_config,
          Spamlab_stats.Rng.copy rng );
      ]
  in
  let undefended, toe, defended =
    match simulations with
    | [ u; t; d ] -> (u, t, d)
    | _ -> assert false
  in
  let rec zip3 a b c =
    match (a, b, c) with
    | [], [], [] -> []
    | x :: a, y :: b, z :: c -> (x, y, z) :: zip3 a b c
    | _ -> invalid_arg "Timeline_exp: unequal round lists"
  in
  List.map2
    (fun ((u : Pipeline.round_report), (t : Pipeline.round_report),
          (d : Pipeline.round_report)) attack_emails ->
      {
        round_index = u.Pipeline.round_index;
        attack_emails;
        undefended_delivery =
          100.0 *. Pipeline.ham_delivery_rate u.Pipeline.counts;
        toe_delivery = 100.0 *. Pipeline.ham_delivery_rate t.Pipeline.counts;
        defended_delivery =
          100.0 *. Pipeline.ham_delivery_rate d.Pipeline.counts;
        rejected = d.Pipeline.rejected;
      })
    (zip3 undefended.Pipeline.rounds toe.Pipeline.rounds
       defended.Pipeline.rounds)
    attack_counts

let render rows =
  "Attack timeline: weekly retraining, dictionary-attack burst in rounds 3-4\n\
   (train-on-error retrains only on mistakes, per Section 2.2; the RONI\n\
   pipeline screens spam-labeled mail before training on it)\n\n"
  ^ Table.render
      ~header:
        [
          "round"; "attack emails"; "train-all ham delivery %";
          "train-on-error ham delivery %"; "RONI ham delivery %";
          "RONI rejections";
        ]
      ~rows:
        (List.map
           (fun r ->
             [
               string_of_int r.round_index;
               string_of_int r.attack_emails;
               Table.f2 r.undefended_delivery;
               Table.f2 r.toe_delivery;
               Table.f2 r.defended_delivery;
               string_of_int r.rejected;
             ])
           rows)
  ^ "\n"
  ^ Plot.line_chart ~y_max:100.0 ~x_label:"round"
      ~y_label:"percent of the round's ham delivered as ham"
      [
        ( "train everything",
          List.map
            (fun r -> (float_of_int r.round_index, r.undefended_delivery))
            rows );
        ( "train on error",
          List.map
            (fun r -> (float_of_int r.round_index, r.toe_delivery))
            rows );
        ( "RONI pipeline",
          List.map
            (fun r -> (float_of_int r.round_index, r.defended_delivery))
            rows );
      ]
