module Json = Spamlab_obs.Json

type t = {
  mutable oc : out_channel option;
  table : (string, string) Hashtbl.t;
  mutex : Mutex.t;
}

let header_format = "spamlab-checkpoint"
let header_version = "1"

(* Minimal parser for the flat string-valued objects [Spamlab_obs.Json]
   emits — the exact inverse of its escaping (backslash-escaped quote,
   backslash, n, r, t, and u00XX control bytes).  Returns [None] on
   anything else, which the loader treats as a torn or foreign line to
   skip, never an error. *)
let parse_object line =
  let exception Bad in
  let n = String.length line in
  let i = ref 0 in
  let skip_ws () =
    while !i < n && line.[!i] = ' ' do
      incr i
    done
  in
  let expect c = if !i < n && line.[!i] = c then incr i else raise Bad in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !i >= n then raise Bad;
      match line.[!i] with
      | '"' ->
          incr i;
          Buffer.contents buf
      | '\\' ->
          if !i + 1 >= n then raise Bad;
          (match line.[!i + 1] with
          | '"' ->
              Buffer.add_char buf '"';
              i := !i + 2
          | '\\' ->
              Buffer.add_char buf '\\';
              i := !i + 2
          | 'n' ->
              Buffer.add_char buf '\n';
              i := !i + 2
          | 'r' ->
              Buffer.add_char buf '\r';
              i := !i + 2
          | 't' ->
              Buffer.add_char buf '\t';
              i := !i + 2
          | 'u' ->
              if !i + 5 >= n then raise Bad;
              (match int_of_string_opt ("0x" ^ String.sub line (!i + 2) 4) with
              | Some code when code <= 0xff -> Buffer.add_char buf (Char.chr code)
              | _ -> raise Bad);
              i := !i + 6
          | _ -> raise Bad);
          go ()
      | c ->
          Buffer.add_char buf c;
          incr i;
          go ()
    in
    go ()
  in
  match
    skip_ws ();
    expect '{';
    skip_ws ();
    let fields = ref [] in
    (if !i < n && line.[!i] = '}' then incr i
     else
       let rec field () =
         let key = parse_string () in
         skip_ws ();
         expect ':';
         skip_ws ();
         let value = parse_string () in
         fields := (key, value) :: !fields;
         skip_ws ();
         if !i < n && line.[!i] = ',' then begin
           incr i;
           skip_ws ();
           field ()
         end
         else expect '}'
       in
       field ());
    skip_ws ();
    if !i <> n then raise Bad;
    List.rev !fields
  with
  | fields -> Some fields
  | exception Bad -> None
  | exception _ -> None

let header_line params =
  Json.line
    [
      Json.str "format" header_format;
      Json.str "version" header_version;
      Json.str "params" params;
    ]

let entry_line key value = Json.line [ Json.str "k" key; Json.str "v" value ]

let make oc table = { oc = Some oc; table; mutex = Mutex.create () }

let fresh ~path ~params table =
  match open_out path with
  | exception Sys_error e -> Error e
  | oc ->
      output_string oc (header_line params);
      output_char oc '\n';
      flush oc;
      Ok (make oc table)

let open_ ~path ~params ~resume =
  let table = Hashtbl.create 64 in
  if (not resume) || not (Sys.file_exists path) then fresh ~path ~params table
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error e -> Error e
    | contents -> (
        let header, rest =
          match String.split_on_char '\n' contents with
          | header :: rest -> (header, rest)
          | [] -> ("", [])
        in
        match parse_object header with
        | None ->
            Error (Printf.sprintf "%s: not a spamlab checkpoint file" path)
        | Some fields -> (
            let field k = List.assoc_opt k fields in
            if field "format" <> Some header_format then
              Error (Printf.sprintf "%s: not a spamlab checkpoint file" path)
            else if field "version" <> Some header_version then
              Error
                (Printf.sprintf "%s: unsupported checkpoint version %s" path
                   (Option.value ~default:"(none)" (field "version")))
            else
              match field "params" with
              | Some p when p = params -> (
                  List.iter
                    (fun line ->
                      if line <> "" then
                        match parse_object line with
                        | Some fields -> (
                            match
                              (List.assoc_opt "k" fields,
                               List.assoc_opt "v" fields)
                            with
                            | Some k, Some v -> Hashtbl.replace table k v
                            | _ -> ())
                        | None -> () (* torn trailing write: recompute *))
                    rest;
                  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
                  | exception Sys_error e -> Error e
                  | oc ->
                      (* A file torn mid-line lacks its final newline;
                         terminate it so the next record starts clean. *)
                      if
                        String.length contents > 0
                        && contents.[String.length contents - 1] <> '\n'
                      then begin
                        output_char oc '\n';
                        flush oc
                      end;
                      Ok (make oc table))
              | Some p ->
                  Error
                    (Printf.sprintf
                       "%s: checkpoint params mismatch (file has %S, run has \
                        %S) — refusing to mix worlds"
                       path p params)
              | None ->
                  Error (Printf.sprintf "%s: checkpoint header missing params"
                           path)))

let find t key = Mutex.protect t.mutex (fun () -> Hashtbl.find_opt t.table key)

let record t ~key ~value =
  Mutex.protect t.mutex (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
          output_string oc (entry_line key value);
          output_char oc '\n';
          flush oc;
          Hashtbl.replace t.table key value);
  Spamlab_fault.check "checkpoint.record"

let entries t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.table)

let close t =
  Mutex.protect t.mutex (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
          t.oc <- None;
          close_out oc)
