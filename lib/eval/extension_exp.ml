open Spamlab_stats
module Dataset = Spamlab_corpus.Dataset
module Generator = Spamlab_corpus.Generator
module Vocabulary = Spamlab_corpus.Vocabulary
module Message = Spamlab_email.Message
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Options = Spamlab_spambayes.Options
module Classify = Spamlab_spambayes.Classify
module Pseudospam = Spamlab_core.Pseudospam_attack
module Good_word = Spamlab_core.Good_word_attack
module Attack = Spamlab_core.Dictionary_attack
module Roni = Spamlab_core.Roni

let world_size lab = max 400 (int_of_float (2_000.0 *. Lab.scale lab))

(* ------------------------------------------------------------------ *)
(* Pseudospam (ham-labeled Causative Integrity attack, §2.2)           *)

type pseudospam_point = {
  attack_fraction : float;
  campaign_spam_as_ham : float;
  campaign_spam_missed : float;
  other_spam_missed : float;
  ham_damage : float;
}

(* A future spam campaign: a fixed vocabulary of campaign-specific words
   (deep ranks of the spam vocabulary, so the clean filter has seen them
   rarely) blended into otherwise ordinary spam. *)
let campaign_vocabulary lab =
  let vocab = (Lab.config lab).Generator.vocabulary in
  let spam_specific = vocab.Vocabulary.spam_specific in
  let n = Array.length spam_specific in
  Array.sub spam_specific (n / 2) (min 300 (n - (n / 2)))

let campaign_message lab rng campaign =
  let config = Lab.config lab in
  let shell = Generator.spam config rng in
  let picked = min (25 + Rng.int rng 25) (Array.length campaign) in
  let campaign_words =
    Array.to_list (Rng.sample_without_replacement rng picked campaign)
  in
  let filler =
    Spamlab_corpus.Language_model.sample_words config.Generator.spam_model rng
      40
  in
  Message.with_body shell
    (Generator.body_of_words rng (campaign_words @ filler))

let pseudospam lab =
  let rng = Lab.rng lab "pseudospam" in
  let size = world_size lab in
  let tokenizer = Lab.tokenizer lab in
  let train = Lab.corpus lab ~name:"pseudospam/train" ~size ~spam_fraction:0.5 in
  let base = Poison.base_filter tokenizer train in
  let campaign = campaign_vocabulary lab in
  let camouflage = (Lab.config lab).Generator.vocabulary.Vocabulary.shared in
  let campaign_test =
    Array.init 100 (fun _ ->
        Dataset.of_message tokenizer Label.Spam
          (campaign_message lab rng campaign))
  in
  let other_test =
    Lab.corpus lab ~name:"pseudospam/test" ~size:(size / 5) ~spam_fraction:0.5
  in
  let plan =
    Pseudospam.craft rng ~campaign ~camouflage ~camouflage_fraction:0.5
      ~count:1
  in
  let payload =
    match plan.Pseudospam.emails with
    | email :: _ ->
        Spamlab_tokenizer.Tokenizer.unique_tokens tokenizer email
    | [] -> assert false
  in
  List.map
    (fun attack_fraction ->
      let count = Poison.attack_count ~train_size:size ~fraction:attack_fraction in
      let filter = Filter.copy base in
      Filter.train_tokens_many filter Label.Ham payload count;
      let campaign_confusion =
        Poison.confusion_of_scores Options.default
          (Poison.score_examples filter campaign_test)
      in
      let other_confusion =
        Poison.confusion_of_scores Options.default
          (Poison.score_examples filter other_test)
      in
      {
        attack_fraction;
        campaign_spam_as_ham =
          100.0 *. Confusion.spam_as_ham_rate campaign_confusion;
        campaign_spam_missed =
          100.0 *. Confusion.spam_misclassified_rate campaign_confusion;
        other_spam_missed =
          100.0 *. Confusion.spam_misclassified_rate other_confusion;
        ham_damage = 100.0 *. Confusion.ham_misclassified_rate other_confusion;
      })
    [ 0.0; 0.005; 0.01; 0.02; 0.05 ]

let render_pseudospam points =
  "Pseudospam attack (Section 2.2's ham-labeled variant):\n\
   attacker whitewashes a future campaign's vocabulary by getting\n\
   innocuous-looking emails trained as ham\n\n"
  ^ Table.render
      ~header:
        [
          "attack %"; "campaign->inbox %"; "campaign missed %";
          "other spam missed %"; "ham damaged %";
        ]
      ~rows:
        (List.map
           (fun p ->
             [
               Printf.sprintf "%.1f" (100.0 *. p.attack_fraction);
               Table.f2 p.campaign_spam_as_ham;
               Table.f2 p.campaign_spam_missed;
               Table.f2 p.other_spam_missed;
               Table.f2 p.ham_damage;
             ])
           points)

(* ------------------------------------------------------------------ *)
(* Good-word evasion (Exploratory Integrity baseline, §6)              *)

type good_word_point = {
  words_budget : int;
  evasion_rate : float;
  as_ham_rate : float;
  mean_words_used : float;
}

let good_word lab =
  let rng = Lab.rng lab "goodword" in
  let size = world_size lab in
  let tokenizer = Lab.tokenizer lab in
  let train = Lab.corpus lab ~name:"goodword/train" ~size ~spam_fraction:0.5 in
  let filter = Poison.base_filter tokenizer train in
  let good_words = Good_word.hammiest_tokens filter ~limit:300 in
  let probes =
    Array.init 40 (fun _ -> Generator.spam (Lab.config lab) rng)
  in
  List.map
    (fun words_budget ->
      let outcomes =
        Array.map
          (fun spam ->
            Good_word.evade filter spam ~good_words ~max_words:words_budget)
          probes
      in
      let evaded =
        Array.to_list outcomes
        |> List.filter (fun r -> r.Good_word.verdict <> Label.Spam_v)
      in
      let as_ham =
        List.filter (fun r -> r.Good_word.verdict = Label.Ham_v) evaded
      in
      let words_used =
        match evaded with
        | [] -> 0.0
        | _ ->
            Summary.mean
              (Array.of_list
                 (List.map
                    (fun r -> float_of_int r.Good_word.words_added)
                    evaded))
      in
      {
        words_budget;
        evasion_rate =
          100.0 *. float_of_int (List.length evaded)
          /. float_of_int (Array.length probes);
        as_ham_rate =
          100.0 *. float_of_int (List.length as_ham)
          /. float_of_int (Array.length probes);
        mean_words_used = words_used;
      })
    [ 0; 10; 25; 50; 100; 200 ]

let render_good_word points =
  "Good-word evasion (Exploratory Integrity baseline, cf. Section 6):\n\
   pad spam with the filter's hammiest tokens until it slips through\n\n"
  ^ Table.render
      ~header:
        [ "word budget"; "evasion % (not spam)"; "as ham %"; "mean words used" ]
      ~rows:
        (List.map
           (fun p ->
             [
               string_of_int p.words_budget;
               Table.f2 p.evasion_rate;
               Table.f2 p.as_ham_rate;
               Table.f2 p.mean_words_used;
             ])
           points)

(* ------------------------------------------------------------------ *)
(* Stealth: split attacks vs size screening vs RONI (§2.2, §4.2)       *)

type stealth_point = {
  chunk_size : int;
  attack_emails : int;
  email_size_percentile : float;
  flagged_by_size_filter : float;
  roni_detection : float;
  ham_misclassified : float;
}

let stealth lab =
  let rng = Lab.rng lab "stealth" in
  let size = world_size lab in
  let tokenizer = Lab.tokenizer lab in
  let train = Lab.corpus lab ~name:"stealth/train" ~size ~spam_fraction:0.5 in
  let test =
    Lab.corpus lab ~name:"stealth/test" ~size:(size / 5) ~spam_fraction:0.5
  in
  let base = Poison.base_filter tokenizer train in
  let words = Lab.usenet_top lab ~size:19_000 in
  let n = Array.length words in
  let copies = max 1 (Poison.attack_count ~train_size:size ~fraction:0.01) in
  let corpus_sizes =
    Array.map (fun (e : Dataset.example) -> e.Dataset.raw_token_count) train
  in
  let p99 =
    Spamlab_stats.Summary.quantile
      (Array.map float_of_int corpus_sizes)
      0.99
  in
  List.map
    (fun chunk_size ->
      let chunk_size = min chunk_size n in
      let chunk_list =
        Spamlab_core.Split_attack.chunks ~words ~chunk_size
      in
      let poisoned = Spamlab_spambayes.Filter.copy base in
      Spamlab_core.Split_attack.train poisoned tokenizer ~words ~chunk_size
        ~copies;
      let confusion =
        Poison.confusion_of_scores Options.default
          (Poison.score_examples poisoned test)
      in
      (* RONI-screen a sample of distinct chunks. *)
      let sample_count = min 5 (Array.length chunk_list) in
      let rejected = ref 0 in
      for i = 0 to sample_count - 1 do
        let payload =
          Spamlab_core.Attack_email.payload_tokens tokenizer
            (Spamlab_core.Attack_email.make
               ~words:(Array.to_list chunk_list.(i)))
        in
        if
          (Spamlab_core.Roni.assess rng ~pool:train ~candidate:payload)
            .Spamlab_core.Roni.rejected
        then incr rejected
      done;
      {
        chunk_size;
        attack_emails = copies * Array.length chunk_list;
        email_size_percentile =
          Spamlab_core.Split_attack.size_percentile ~corpus_sizes chunk_size;
        flagged_by_size_filter =
          (if float_of_int chunk_size > p99 then 100.0 else 0.0);
        roni_detection =
          100.0 *. float_of_int !rejected /. float_of_int sample_count;
        ham_misclassified =
          100.0 *. Confusion.ham_misclassified_rate confusion;
      })
    [ n; 5_000; 1_000; 250 ]

let render_stealth points =
  "Stealth (Sections 2.2 / 4.2): split the dictionary attack into\n\
   normal-sized emails at a constant total token budget\n\n"
  ^ Table.render
      ~header:
        [
          "words/email"; "emails sent"; "size percentile";
          "caught by p99 size screen %"; "caught by RONI %";
          "ham damage %";
        ]
      ~rows:
        (List.map
           (fun p ->
             [
               string_of_int p.chunk_size;
               string_of_int p.attack_emails;
               Table.f2 p.email_size_percentile;
               Table.f2 p.flagged_by_size_filter;
               Table.f2 p.roni_detection;
               Table.f2 p.ham_misclassified;
             ])
           points)
  ^ "\n\
     Splitting trades messages for stealth: smaller attack emails blend\n\
     into normal sizes AND individually fall below the RONI impact\n\
     threshold, while cumulative damage at the same token budget\n\
     degrades only gradually - the Section 2.2 arms race in one table.\n"

(* ------------------------------------------------------------------ *)
(* Value of attacker information (§3.4 constrained attacks)            *)

type budget_point = {
  budget : int;
  source : string;
  ham_as_spam : float;
  ham_misclassified : float;
}

let information_value lab =
  let rng = Lab.rng lab "information-value" in
  let size = world_size lab in
  let tokenizer = Lab.tokenizer lab in
  let train =
    Lab.corpus lab ~name:"information-value/train" ~size ~spam_fraction:0.5
  in
  let test =
    Lab.corpus lab ~name:"information-value/test" ~size:(size / 5)
      ~spam_fraction:0.5
  in
  let base = Poison.base_filter tokenizer train in
  let count = Poison.attack_count ~train_size:size ~fraction:0.01 in
  let ham_model = (Lab.config lab).Generator.ham_model in
  let sampled_estimate =
    Spamlab_core.Informed_attack.estimate_from_sample rng
      ~sample:(fun rng -> Generator.ham (Lab.config lab) rng)
      ~messages:200 ~tokenizer
  in
  let sources budget =
    [
      ( "informed-perfect",
        Spamlab_core.Informed_attack.of_language_model ham_model ~budget );
      ( "informed-sampled",
        Spamlab_core.Informed_attack.select sampled_estimate ~budget );
      ("usenet", Lab.usenet_top lab ~size:budget);
      ("aspell", Lab.aspell lab ~size:budget);
    ]
  in
  List.concat_map
    (fun budget ->
      List.map
        (fun (source, words) ->
          let payload =
            Attack.payload tokenizer (Attack.make ~name:source ~words)
          in
          let poisoned = Poison.poisoned base ~payload ~count in
          let confusion =
            Poison.confusion_of_scores Options.default
              (Poison.score_examples poisoned test)
          in
          {
            budget;
            source;
            ham_as_spam = 100.0 *. Confusion.ham_as_spam_rate confusion;
            ham_misclassified =
              100.0 *. Confusion.ham_misclassified_rate confusion;
          })
        (sources budget))
    [ 1_000; 5_000; 10_000; 25_000; 50_000 ]

let render_information_value points =
  "Value of attacker information (Section 3.4): equal word budgets,\n\
   different knowledge of the victim's word distribution, 1% control\n\n"
  ^ Table.render
      ~header:[ "budget"; "source"; "ham->spam %"; "ham->spam|unsure %" ]
      ~rows:
        (List.map
           (fun p ->
             [
               string_of_int p.budget; p.source; Table.f2 p.ham_as_spam;
               Table.f2 p.ham_misclassified;
             ])
           points)

(* ------------------------------------------------------------------ *)
(* Cross-tokenizer transfer (§7 / §1 fn. 1)                            *)

type tokenizer_point = {
  tokenizer_name : string;
  clean_ham_misclassified : float;
  clean_spam_misclassified : float;
  attacked_ham_as_spam : float;
  attacked_ham_misclassified : float;
}

let tokenizer_comparison lab =
  let size = world_size lab in
  let train_messages =
    Lab.corpus_messages lab ~name:"tokenizers/train" ~size ~spam_fraction:0.5
  in
  let test_messages =
    Lab.corpus_messages lab ~name:"tokenizers/test" ~size:(size / 5)
      ~spam_fraction:0.5
  in
  let attack_words = Lab.usenet_top lab ~size:19_000 in
  let count = Poison.attack_count ~train_size:size ~fraction:0.01 in
  List.map
    (fun (tokenizer_name, tokenizer) ->
      let train = Dataset.of_labeled tokenizer train_messages in
      let test = Dataset.of_labeled tokenizer test_messages in
      let base = Poison.base_filter tokenizer train in
      let payload =
        Attack.payload tokenizer
          (Attack.make ~name:"usenet" ~words:attack_words)
      in
      let poisoned = Poison.poisoned base ~payload ~count in
      let clean =
        Poison.confusion_of_scores Options.default
          (Poison.score_examples base test)
      in
      let attacked =
        Poison.confusion_of_scores Options.default
          (Poison.score_examples poisoned test)
      in
      {
        tokenizer_name;
        clean_ham_misclassified =
          100.0 *. Confusion.ham_misclassified_rate clean;
        clean_spam_misclassified =
          100.0 *. Confusion.spam_misclassified_rate clean;
        attacked_ham_as_spam = 100.0 *. Confusion.ham_as_spam_rate attacked;
        attacked_ham_misclassified =
          100.0 *. Confusion.ham_misclassified_rate attacked;
      })
    Spamlab_tokenizer.Tokenizer.all

let render_tokenizer_comparison points =
  "Cross-filter transfer (Section 7): the same learner behind three\n\
   tokenization styles, same corpus, same 1% usenet dictionary attack\n\n"
  ^ Table.render
      ~header:
        [
          "tokenizer"; "clean ham miscls %"; "clean spam miscls %";
          "attacked ham->spam %"; "attacked ham miscls %";
        ]
      ~rows:
        (List.map
           (fun p ->
             [
               p.tokenizer_name;
               Table.f2 p.clean_ham_misclassified;
               Table.f2 p.clean_spam_misclassified;
               Table.f2 p.attacked_ham_as_spam;
               Table.f2 p.attacked_ham_misclassified;
             ])
           points)

(* ------------------------------------------------------------------ *)
(* RONI parameter sweep (§5.1's announced future work)                 *)

type roni_cell = {
  validation_size : int;
  threshold : float;
  detection_rate : float;
  false_positive_rate : float;
}

let roni_sweep lab =
  let rng = Lab.rng lab "roni-sweep" in
  let size = world_size lab in
  let tokenizer = Lab.tokenizer lab in
  let pool = Lab.corpus lab ~name:"roni-sweep/pool" ~size ~spam_fraction:0.5 in
  let payload =
    Attack.payload tokenizer
      (Attack.make ~name:"usenet" ~words:(Lab.usenet_top lab ~size:19_000))
  in
  let benign =
    Array.init 20 (fun _ ->
        (Dataset.of_message tokenizer Label.Spam
           (Generator.spam (Lab.config lab) rng))
          .Dataset.tokens)
  in
  let repetitions = 5 in
  List.concat_map
    (fun validation_size ->
      List.map
        (fun threshold ->
          let config =
            { Roni.default_config with Roni.validation_size; threshold }
          in
          let rejected_of candidate =
            (Roni.assess ~config rng ~pool ~candidate).Roni.rejected
          in
          let detections = ref 0 in
          for _ = 1 to repetitions do
            if rejected_of payload then incr detections
          done;
          let false_positives =
            Array.fold_left
              (fun acc candidate ->
                if rejected_of candidate then acc + 1 else acc)
              0 benign
          in
          {
            validation_size;
            threshold;
            detection_rate =
              100.0 *. float_of_int !detections /. float_of_int repetitions;
            false_positive_rate =
              100.0 *. float_of_int false_positives
              /. float_of_int (Array.length benign);
          })
        [ 3.0; 5.0; 8.0 ])
    [ 25; 50; 100 ]

let render_roni_sweep cells =
  "RONI parameter study (the larger experiment Section 5.1 plans):\n\
   detection of usenet dictionary-attack emails vs false positives on\n\
   ordinary spam, across validation sizes and rejection thresholds\n\n"
  ^ Table.render
      ~header:[ "validation size"; "threshold"; "detection %"; "false positive %" ]
      ~rows:
        (List.map
           (fun c ->
             [
               string_of_int c.validation_size;
               Table.f2 c.threshold;
               Table.f2 c.detection_rate;
               Table.f2 c.false_positive_rate;
             ])
           cells)
