(** Multi-tenant poisoning at provider scale: 10³–10⁶ mailboxes, each
    with its own Bayes state in a {!Spamlab_store.Store}, a poisoned
    subset, and per-user attack/defense outcomes.

    Every tenant belongs to one of a few {e communities} — corpora
    generated from the same substrate (one vocabulary, one pair of
    language models) under distinct rng streams and spam prevalences,
    so mailboxes are correlated but not identical, like real users of
    one provider.  Each user trains a small sample of their community
    corpus on top of the shared global prior; a Bernoulli-chosen subset
    additionally receives a dictionary attack ([attack_count] payload
    spam trainings).  Everyone then classifies their community's
    held-out ham; poisoned users untrain the attack (the defense) and
    classify again.

    Deterministic: per-user randomness is [Rng.split_indexed] off one
    named stream, users fan over the lab pool in fixed chunks, and the
    report aggregates in chunk order — stdout is byte-identical at
    every [--jobs] and across checkpoint resume.  Store traffic
    counters are returned separately (they are {e not}
    resume-invariant: restored chunks skip re-training). *)

type config = {
  users : int list;  (** Sweep points (tenant counts), run in order. *)
  communities : int;
  train_per_user : int;
  eval_per_user : int;
  poison_fraction : float;  (** Bernoulli per user. *)
  attack_count : int;  (** Attack emails trained into a poisoned user. *)
  store_dir : string option;
      (** Sharded store root ([dir/users-N] per sweep point); [None]
          runs on the in-memory backend. *)
  shards : int;
  cache : int;
  compact_ratio : float;
}

val default_config : config
(** 1000 users, 8 communities, 3 train / 2 eval messages per user, 10%
    poisoned with 4 attack emails, memory backend, default store
    geometry. *)

val run : Lab.t -> config -> (string * string, string) result
(** [(report, detail)]: the deterministic per-sweep-point report for
    stdout and the store-traffic lines for stderr.  [Error] on an
    unusable store directory. *)
