module Label = Spamlab_spambayes.Label

type t = { counts : int array array }
(* counts.(gold).(verdict): gold 0=ham 1=spam; verdict 0=ham 1=unsure
   2=spam. *)

let create () = { counts = Array.init 2 (fun _ -> Array.make 3 0) }

let gold_index = function Label.Ham -> 0 | Label.Spam -> 1

let verdict_index = function
  | Label.Ham_v -> 0
  | Label.Unsure_v -> 1
  | Label.Spam_v -> 2

let add t gold verdict =
  let g = gold_index gold in
  let v = verdict_index verdict in
  t.counts.(g).(v) <- t.counts.(g).(v) + 1

let cells t =
  [|
    t.counts.(0).(0); t.counts.(0).(1); t.counts.(0).(2);
    t.counts.(1).(0); t.counts.(1).(1); t.counts.(1).(2);
  |]

let of_cells cells =
  if Array.length cells <> 6 || Array.exists (fun c -> c < 0) cells then None
  else begin
    let t = create () in
    for g = 0 to 1 do
      for v = 0 to 2 do
        t.counts.(g).(v) <- cells.((g * 3) + v)
      done
    done;
    Some t
  end

let merge a b =
  let out = create () in
  for g = 0 to 1 do
    for v = 0 to 2 do
      out.counts.(g).(v) <- a.counts.(g).(v) + b.counts.(g).(v)
    done
  done;
  out

let count t gold verdict = t.counts.(gold_index gold).(verdict_index verdict)

let row_total t g = Array.fold_left ( + ) 0 t.counts.(g)
let total_ham t = row_total t 0
let total_spam t = row_total t 1
let total t = total_ham t + total_spam t

let rate numerator denominator =
  if denominator = 0 then 0.0
  else float_of_int numerator /. float_of_int denominator

let ham_as_spam_rate t = rate t.counts.(0).(2) (total_ham t)
let ham_as_unsure_rate t = rate t.counts.(0).(1) (total_ham t)

let ham_misclassified_rate t =
  rate (t.counts.(0).(1) + t.counts.(0).(2)) (total_ham t)

let spam_as_ham_rate t = rate t.counts.(1).(0) (total_spam t)
let spam_as_unsure_rate t = rate t.counts.(1).(1) (total_spam t)

let spam_misclassified_rate t =
  rate (t.counts.(1).(0) + t.counts.(1).(1)) (total_spam t)

let accuracy t = rate (t.counts.(0).(0) + t.counts.(1).(2)) (total t)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>            ham  unsure    spam@,\
     gold ham  %5d   %5d   %5d@,\
     gold spam %5d   %5d   %5d@]"
    t.counts.(0).(0) t.counts.(0).(1) t.counts.(0).(2)
    t.counts.(1).(0) t.counts.(1).(1) t.counts.(1).(2)
